//! The multi-run eval server: many concurrent GA runs multiplexed over
//! one shared slave fleet.
//!
//! [`crate::TcpSlavePool`] owns a fleet for exactly one run. This module
//! generalizes it into a long-lived [`EvalServer`] that admits N tenants
//! (distinct `run_id`s, datasets, priorities) and schedules all of their
//! evaluation batches over the same slaves:
//!
//! * **Admission** — [`EvalServer::submit_run`] fingerprints the tenant's
//!   dataset, registers it on the fleet (columns cross the wire once per
//!   slave process; re-submission of a resident dataset ships nothing),
//!   and returns a [`RunHandle`]. Refusals are typed
//!   ([`SubmitError::Saturated`], [`SubmitError::DatasetRejected`], ...)
//!   so a tenant that does not fit degrades alone.
//! * **Fair scheduling** — queued jobs are claimed through a
//!   priority-weighted deficit-round-robin queue
//!   ([`ld_core::WeightedFairQueue`]): over any backlogged window a run
//!   receives `weight / Σ weights` of the fleet, and no run waits more
//!   than `Σ other weights` claims for its next slot.
//! * **Backpressure** — each run may have at most
//!   [`ServerConfig::max_outstanding_batches`] batches in flight;
//!   dispatch beyond that fails fast with
//!   [`ld_core::EvalBackendError::Saturated`] instead of queuing without
//!   bound.
//! * **Fault tolerance** — the retry / retire / rejoin ladder of the
//!   single-run pool, applied per worker: a failed request is retried
//!   over a fresh connection, a dead slave's job is requeued at the
//!   *head* of its run's line (per-run FIFO preserved), retired slaves
//!   are probed back in, and only total fleet loss fails dispatches —
//!   with `AllWorkersFailed` so each tenant's fallback takes over.
//!   Retries/requeues are accounted to the tenant that owned the job;
//!   retirements/rejoins are fleet-level and reported to every tenant's
//!   [`ld_core::FaultEvents`] drain as deltas.
//!
//! A [`RunHandle`] implements both [`EvalBackend`] and [`Evaluator`], so
//! a tenant plugs it into `GaEngine`/`EvalService` exactly like a private
//! pool — spans (`queue`, `request`, `net.roundtrip`, `compute`) land on
//! the *tenant's* observer, parented under its scheduler's dispatch span,
//! which keeps per-run trace attribution working on a shared fleet.

use crate::master::PoolConfig;
use crate::protocol::{read_message, write_message, Message, ProtoError, PROTOCOL_VERSION};
use ld_core::{
    EvalBackend, EvalBackendError, Evaluator, FaultEvents, FitnessStore, Haplotype,
    WeightedFairQueue,
};
use ld_data::{DatasetFingerprint, SnpId};
use ld_observe::span::names as span_names;
use ld_observe::{Event, FleetWatch, Observer};
use std::collections::{HashMap, HashSet};
use std::io::BufWriter;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of an [`EvalServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-request fault-tolerance ladder (timeouts, retries, rejoin
    /// backoff), shared with the single-run pool.
    pub pool: PoolConfig,
    /// Concurrent runs admitted before [`SubmitError::Saturated`]
    /// (0 = unbounded).
    pub max_runs: usize,
    /// Batches one run may have in flight before its dispatches fail
    /// fast with [`EvalBackendError::Saturated`] (0 = unbounded).
    pub max_outstanding_batches: usize,
    /// Shared tiered fitness store, consulted before any job reaches the
    /// fleet and fed by every completed evaluation. Keyed by dataset
    /// fingerprint, so tenants evaluating the *same* dataset memoize for
    /// each other (cross-tenant hits are accounted per run, see
    /// [`RunHandle::store_stats`]); tenants on different datasets never
    /// collide. `None` (the default) disables server-side memoization.
    pub store: Option<Arc<FitnessStore>>,
    /// When set, a slave the fleet watchdog has *confirmed* as a
    /// straggler is de-weighted — its worker concedes one bounded beat
    /// per claim so healthy peers get first shot at the backlog — instead
    /// of being retired. A straggler is slow, not wrong: it keeps
    /// serving (and is never starved; after the yield it claims whatever
    /// remains). Off by default.
    pub deweight_stragglers: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            pool: PoolConfig::default(),
            max_runs: 8,
            max_outstanding_batches: 4,
            store: None,
            deweight_stragglers: false,
        }
    }
}

/// How long a de-weighted straggler's worker concedes the queue to
/// healthy peers before each claim (see
/// [`ServerConfig::deweight_stragglers`]).
const STRAGGLER_YIELD: Duration = Duration::from_millis(2);

/// Everything the server needs to admit one tenant run.
#[derive(Clone)]
pub struct RunSpec {
    run_id: String,
    fingerprint: u64,
    n_snps: usize,
    payload: Vec<u8>,
    weight: u32,
    observer: Observer,
}

impl RunSpec {
    /// A run evaluating against the dataset with content `fingerprint`
    /// and `n_snps` markers. Weight defaults to 1, the observer to
    /// disabled, and the columns payload to empty (valid when the fleet
    /// already holds the fingerprint — e.g. preloaded stores).
    pub fn new(run_id: impl Into<String>, fingerprint: u64, n_snps: usize) -> RunSpec {
        RunSpec {
            run_id: run_id.into(),
            fingerprint,
            n_snps,
            payload: Vec::new(),
            weight: 1,
            observer: Observer::disabled(),
        }
    }

    /// Attach the encoded dataset columns (see [`crate::wire`]) shipped
    /// to slaves that do not hold the fingerprint yet.
    pub fn with_payload(mut self, payload: Vec<u8>) -> RunSpec {
        self.payload = payload;
        self
    }

    /// Fair-share weight (priority): a weight-3 run gets 3× the claims of
    /// a weight-1 run while both are backlogged. Clamped to ≥ 1.
    pub fn with_weight(mut self, weight: u32) -> RunSpec {
        self.weight = weight.max(1);
        self
    }

    /// Per-tenant observer: this run's spans, fault events, and lifecycle
    /// events are emitted here (the fleet-level observer passed to
    /// [`EvalServer::connect`] sees fleet-wide facts only).
    pub fn with_observer(mut self, observer: Observer) -> RunSpec {
        self.observer = observer;
        self
    }
}

/// Why [`EvalServer::submit_run`] refused a run.
#[derive(Debug)]
pub enum SubmitError {
    /// The server already hosts its maximum number of runs.
    Saturated {
        /// Runs currently active.
        active: usize,
        /// The configured admission limit.
        limit: usize,
    },
    /// A slave refused the dataset registration (capacity, width
    /// mismatch, missing columns, loader failure).
    DatasetRejected {
        /// The refusing slave.
        slave: String,
        /// Its stated reason.
        reason: String,
    },
    /// No slave in the fleet was reachable to register the dataset.
    NoSlaves,
    /// A run with this id is already active.
    DuplicateRun(String),
    /// The server has been stopped.
    ServerStopped,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Saturated { active, limit } => {
                write!(f, "server saturated: {active} active runs (limit {limit})")
            }
            SubmitError::DatasetRejected { slave, reason } => {
                write!(f, "dataset rejected by {slave}: {reason}")
            }
            SubmitError::NoSlaves => write!(f, "no slave reachable to register the dataset"),
            SubmitError::DuplicateRun(id) => write!(f, "run id {id:?} is already active"),
            SubmitError::ServerStopped => write!(f, "eval server is stopped"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Per-run fault accounting. Retries and requeues are charged to the run
/// whose job was affected; retirements and rejoins are facts about the
/// shared fleet, surfaced to every run as deltas of the global counters
/// since that run's last drain.
struct RunFaults {
    retries: AtomicU64,
    requeued: AtomicU64,
    seen_retirements: AtomicU64,
    seen_rejoins: AtomicU64,
}

struct RunShared {
    /// Queue key, assigned at admission (stable for the run's lifetime).
    key: u64,
    run_id: String,
    fingerprint: u64,
    n_snps: usize,
    /// Encoded columns, kept for lazy registration on slaves that join
    /// (or rejoin after a restart) mid-run.
    payload: Vec<u8>,
    weight: u32,
    observer: Observer,
    outstanding_batches: AtomicUsize,
    faults: RunFaults,
    /// Jobs served from the shared fitness store instead of the fleet.
    store_hits: AtomicU64,
    /// Store hits whose entry was paid for by a *different* tenant.
    cross_tenant_hits: AtomicU64,
}

/// Completion cell of one in-flight batch.
struct BatchCell {
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    /// `Some(fitness)` per completed job, in submission order.
    results: Vec<Option<f64>>,
    /// Jobs without an outcome yet (in queue or on a slave).
    pending: usize,
    /// Whether any job was abandoned (fleet loss, run closed, stop).
    failed: bool,
}

impl BatchCell {
    fn new(total: usize) -> Arc<BatchCell> {
        Arc::new(BatchCell {
            state: Mutex::new(BatchState {
                results: vec![None; total],
                pending: total,
                failed: false,
            }),
            done: Condvar::new(),
        })
    }

    fn complete(&self, index: usize, fitness: f64) {
        let mut st = self.state.lock().unwrap();
        st.results[index] = Some(fitness);
        st.pending -= 1;
        if st.pending == 0 {
            self.done.notify_all();
        }
    }

    /// Abandon one job: the batch completes as failed (its evaluated
    /// residue intact, per the [`EvalBackend`] contract).
    fn fail(&self) {
        let mut st = self.state.lock().unwrap();
        st.pending -= 1;
        st.failed = true;
        if st.pending == 0 {
            self.done.notify_all();
        }
    }
}

/// One queued evaluation job. Carries its run so a worker can bind the
/// dataset, account faults, and time spans against the right tenant.
struct Job {
    run: Arc<RunShared>,
    batch: Arc<BatchCell>,
    index: usize,
    snps: Vec<SnpId>,
}

struct QueueState {
    queue: WeightedFairQueue<Job>,
    /// Active runs by public id.
    runs: HashMap<String, Arc<RunShared>>,
    /// Workers currently retired (their slave unreachable).
    retired: usize,
}

struct ServerShared {
    state: Mutex<QueueState>,
    work_cv: Condvar,
    cfg: ServerConfig,
    /// Fleet-level observer (retire/rejoin/admission events).
    observer: Observer,
    n_workers: usize,
    stopped: AtomicBool,
    next_key: AtomicU64,
    next_req: AtomicU64,
    /// Lifetime fleet counters backing every run's retire/rejoin deltas.
    retirements: AtomicU64,
    rejoins: AtomicU64,
    /// Fleet anomaly watchdog: per-slave RTT / compute / retry baselines
    /// fed by every served request, verdicts emitted on the fleet
    /// observer and served over `GET /fleet`.
    watch: FleetWatch,
}

impl ServerShared {
    /// Fail every queued job (fleet loss or shutdown) under the state
    /// lock. Lock order is always queue-state before batch-state.
    fn purge_all(st: &mut QueueState) -> usize {
        st.queue.purge(|_, job| {
            job.batch.fail();
            true
        })
    }
}

/// A long-lived evaluation server multiplexing tenant runs over one
/// shared slave fleet. See the module docs for the architecture.
pub struct EvalServer {
    shared: Arc<ServerShared>,
    addrs: Vec<String>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for EvalServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalServer")
            .field("slaves", &self.addrs)
            .field("alive", &self.alive())
            .field("active_runs", &self.active_runs())
            .finish()
    }
}

impl EvalServer {
    /// Connect to every slave address (each must speak protocol v3 — a
    /// shared fleet cannot be served by v1/v2 slaves, which lack dataset
    /// handles) and start one dispatch worker per slave.
    pub fn connect(
        addrs: &[String],
        cfg: ServerConfig,
        observer: Observer,
    ) -> Result<EvalServer, crate::PoolError> {
        if addrs.is_empty() {
            return Err(crate::PoolError::NoSlaves);
        }
        // Fail fast on an unreachable or downlevel fleet: probe each
        // slave once with a throwaway connection.
        for addr in addrs {
            let mut probe =
                WorkerConn::open(addr, &cfg.pool).map_err(|source| crate::PoolError::Connect {
                    addr: addr.clone(),
                    source,
                })?;
            let _ = write_message(&mut probe.writer, &Message::Shutdown);
            observer.emit_with(|| Event::SlaveJoined {
                slave: addr.clone(),
            });
        }
        let watch = FleetWatch::default();
        watch.set_observer(observer.clone());
        let shared = Arc::new(ServerShared {
            state: Mutex::new(QueueState {
                queue: WeightedFairQueue::new(),
                runs: HashMap::new(),
                retired: 0,
            }),
            work_cv: Condvar::new(),
            cfg,
            observer,
            n_workers: addrs.len(),
            stopped: AtomicBool::new(false),
            next_key: AtomicU64::new(1),
            next_req: AtomicU64::new(1),
            retirements: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            watch,
        });
        let workers = addrs
            .iter()
            .map(|addr| {
                let shared = Arc::clone(&shared);
                let addr = addr.clone();
                std::thread::Builder::new()
                    .name(format!("ld-eval-worker-{addr}"))
                    .spawn(move || worker_loop(&shared, &addr))
                    .expect("spawn eval worker thread")
            })
            .collect();
        Ok(EvalServer {
            shared,
            addrs: addrs.to_vec(),
            workers,
        })
    }

    /// Admit a tenant run: reserve a slot (admission control), register
    /// its dataset across the fleet (columns shipped only where the
    /// fingerprint is not already resident), and hand back the tenant's
    /// [`RunHandle`]. Every refusal is typed and affects this run only.
    pub fn submit_run(&self, spec: RunSpec) -> Result<RunHandle, SubmitError> {
        let shared = &self.shared;
        let reject = |reason: &str| {
            let e = Event::RunRejected {
                run_id: spec.run_id.clone(),
                reason: reason.to_string(),
            };
            shared.observer.emit(e.clone());
            spec.observer.emit(e);
        };
        if shared.stopped.load(Ordering::Relaxed) {
            reject("server stopped");
            return Err(SubmitError::ServerStopped);
        }
        let run = Arc::new(RunShared {
            key: shared.next_key.fetch_add(1, Ordering::Relaxed),
            run_id: spec.run_id.clone(),
            fingerprint: spec.fingerprint,
            n_snps: spec.n_snps,
            payload: spec.payload.clone(),
            weight: spec.weight,
            observer: spec.observer.clone(),
            outstanding_batches: AtomicUsize::new(0),
            store_hits: AtomicU64::new(0),
            cross_tenant_hits: AtomicU64::new(0),
            faults: RunFaults {
                retries: AtomicU64::new(0),
                requeued: AtomicU64::new(0),
                seen_retirements: AtomicU64::new(shared.retirements.load(Ordering::Relaxed)),
                seen_rejoins: AtomicU64::new(shared.rejoins.load(Ordering::Relaxed)),
            },
        });
        // Phase 1: reserve the slot under the lock (admission control).
        {
            let mut st = shared.state.lock().unwrap();
            if st.runs.contains_key(&spec.run_id) {
                reject("duplicate run id");
                return Err(SubmitError::DuplicateRun(spec.run_id.clone()));
            }
            let limit = shared.cfg.max_runs;
            if limit > 0 && st.runs.len() >= limit {
                reject("server saturated");
                return Err(SubmitError::Saturated {
                    active: st.runs.len(),
                    limit,
                });
            }
            st.queue.register(run.key, run.weight);
            st.runs.insert(spec.run_id.clone(), Arc::clone(&run));
        }
        // Phase 2: register the dataset fleet-wide, without holding the
        // lock (this does network I/O). An unreachable slave is skipped —
        // its worker binds lazily from the run's payload on rejoin — but
        // an explicit refusal is authoritative and rolls the run back.
        let mut reachable = 0usize;
        for addr in &self.addrs {
            match probe_register(addr, &shared.cfg.pool, &run) {
                Ok(resident) => {
                    reachable += 1;
                    let e = Event::DatasetRegistered {
                        slave: addr.clone(),
                        fingerprint: run.fingerprint,
                        resident,
                    };
                    shared.observer.emit(e.clone());
                    run.observer.emit(e);
                }
                Err(RegisterError::Unreachable(e)) => {
                    shared.observer.emit(Event::Custom {
                        label: "dataset_register_skipped".to_string(),
                        detail: format!("{addr}: {e}"),
                    });
                }
                Err(RegisterError::Refused(reason)) => {
                    self.rollback(&run);
                    reject(&format!("dataset rejected by {addr}: {reason}"));
                    return Err(SubmitError::DatasetRejected {
                        slave: addr.clone(),
                        reason,
                    });
                }
            }
        }
        if reachable == 0 {
            self.rollback(&run);
            reject("no slave reachable");
            return Err(SubmitError::NoSlaves);
        }
        let admitted = Event::RunAdmitted {
            run_id: run.run_id.clone(),
            weight: run.weight,
        };
        shared.observer.emit(admitted.clone());
        run.observer.emit(admitted);
        Ok(RunHandle {
            inner: Arc::new(RunHandleInner {
                run,
                shared: Arc::clone(shared),
            }),
        })
    }

    /// Close a run by id: unregister it and drop its queued work (each
    /// abandoned job fails its batch, so no dispatcher hangs). Returns
    /// `false` when no such run is active. Dropping the last clone of a
    /// run's [`RunHandle`] closes it implicitly.
    pub fn close_run(&self, run_id: &str) -> bool {
        let run = {
            let st = self.shared.state.lock().unwrap();
            match st.runs.get(run_id) {
                Some(r) => Arc::clone(r),
                None => return false,
            }
        };
        close_run_inner(&self.shared, &run);
        true
    }

    /// Ids of the currently active runs, in admission (key) order.
    pub fn active_runs(&self) -> Vec<String> {
        let st = self.shared.state.lock().unwrap();
        let mut runs: Vec<_> = st.runs.values().collect();
        runs.sort_by_key(|r| r.key);
        runs.iter().map(|r| r.run_id.clone()).collect()
    }

    /// Slaves currently serving (total minus retired).
    pub fn alive(&self) -> usize {
        let st = self.shared.state.lock().unwrap();
        self.shared.n_workers - st.retired
    }

    /// Jobs queued across all runs (not counting in-flight requests).
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Jobs queued for one run, or `None` if the run is not active.
    pub fn run_queue_depth(&self, run_id: &str) -> Option<usize> {
        let st = self.shared.state.lock().unwrap();
        let run = st.runs.get(run_id)?;
        st.queue.run_len(run.key)
    }

    /// The slave addresses the server dispatches to.
    pub fn slave_addrs(&self) -> &[String] {
        &self.addrs
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.shared.cfg
    }

    /// The shared fitness store, when one is configured.
    pub fn store(&self) -> Option<&Arc<FitnessStore>> {
        self.shared.cfg.store.as_ref()
    }

    /// The fleet anomaly watchdog (per-slave baselines, standing
    /// verdicts, and the `GET /fleet` rollup).
    pub fn watch(&self) -> &FleetWatch {
        &self.shared.watch
    }

    /// Stop the server: fail all queued work, wake every worker and
    /// waiting dispatcher. Idempotent; also run on drop.
    pub fn stop(&self) {
        self.shared.stopped.store(true, Ordering::Relaxed);
        {
            let mut st = self.shared.state.lock().unwrap();
            ServerShared::purge_all(&mut st);
        }
        self.shared.work_cv.notify_all();
    }

    fn rollback(&self, run: &Arc<RunShared>) {
        let mut st = self.shared.state.lock().unwrap();
        st.runs.remove(&run.run_id);
        st.queue.unregister(run.key);
    }
}

impl Drop for EvalServer {
    fn drop(&mut self) {
        self.stop();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn close_run_inner(shared: &ServerShared, run: &Arc<RunShared>) {
    let dropped = {
        let mut st = shared.state.lock().unwrap();
        if st.runs.remove(&run.run_id).is_none() {
            return; // already closed
        }
        // Fail this run's queued jobs *before* unregistering, so their
        // batches complete (as failed) rather than hang.
        let dropped = st.queue.purge(|key, job| {
            if key == run.key {
                job.batch.fail();
                true
            } else {
                false
            }
        });
        st.queue.unregister(run.key);
        dropped as u64
    };
    let closed = Event::RunClosed {
        run_id: run.run_id.clone(),
        dropped,
    };
    shared.observer.emit(closed.clone());
    run.observer.emit(closed);
}

/// A tenant's handle to the shared fleet, plugging into `GaEngine` /
/// `EvalService` as either an [`EvalBackend`] or an [`Evaluator`].
/// Cloneable; the run closes when the last clone drops.
#[derive(Clone)]
pub struct RunHandle {
    inner: Arc<RunHandleInner>,
}

struct RunHandleInner {
    run: Arc<RunShared>,
    shared: Arc<ServerShared>,
}

impl Drop for RunHandleInner {
    fn drop(&mut self) {
        close_run_inner(&self.shared, &self.run);
    }
}

/// Per-run shared-store accounting (see [`ServerConfig::store`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStoreStats {
    /// Jobs this run had answered by the shared store (no fleet work).
    pub hits: u64,
    /// Of those, hits on entries a *different* tenant paid for.
    pub cross_tenant_hits: u64,
}

impl RunHandle {
    /// The tenant's run id.
    pub fn run_id(&self) -> &str {
        &self.inner.run.run_id
    }

    /// The dataset fingerprint this run evaluates against.
    pub fn fingerprint(&self) -> u64 {
        self.inner.run.fingerprint
    }

    /// Lifetime shared-store accounting for this run. All zeros when the
    /// server runs without a store.
    pub fn store_stats(&self) -> RunStoreStats {
        let run = &self.inner.run;
        RunStoreStats {
            hits: run.store_hits.load(Ordering::Relaxed),
            cross_tenant_hits: run.cross_tenant_hits.load(Ordering::Relaxed),
        }
    }

    /// Whether this run is still admitted on the server.
    pub fn is_active(&self) -> bool {
        let st = self.inner.shared.state.lock().unwrap();
        st.runs.contains_key(&self.inner.run.run_id)
    }

    /// Enqueue one batch of SNP subsets and wait for all of them to
    /// resolve. `Ok((results, failed))` carries a fitness per *completed*
    /// job even when `failed` is set (the abandoned ones are `None`), so
    /// callers can honor the residue contract; `Err` means the batch was
    /// refused up front and nothing was touched.
    fn dispatch_snps(
        &self,
        jobs: Vec<Vec<SnpId>>,
    ) -> Result<(Vec<Option<f64>>, bool), EvalBackendError> {
        let inner = &self.inner;
        let run = &inner.run;
        let shared = &inner.shared;
        let total = jobs.len();
        if total == 0 {
            return Ok((Vec::new(), false));
        }
        // Backpressure: bound this tenant's batches in flight. No job is
        // touched on refusal, so the caller can simply retry later.
        let limit = shared.cfg.max_outstanding_batches;
        let prev = run.outstanding_batches.fetch_add(1, Ordering::SeqCst);
        if limit > 0 && prev >= limit {
            run.outstanding_batches.fetch_sub(1, Ordering::SeqCst);
            return Err(EvalBackendError::Saturated {
                outstanding: prev,
                limit,
            });
        }
        let cell = BatchCell::new(total);
        // Server-side memoization: jobs answered by the shared store never
        // reach the queue. An entry paid for by another tenant (owner ≠
        // this run's key) is a cross-tenant hit — the whole point of
        // sharing one store per fingerprint across runs.
        let misses: Vec<(usize, Vec<SnpId>)> = match &shared.cfg.store {
            Some(store) => {
                let fp = DatasetFingerprint::from_raw(run.fingerprint);
                jobs.into_iter()
                    .enumerate()
                    .filter_map(|(index, snps)| match store.probe(fp, &snps) {
                        Some(hit) => {
                            run.store_hits.fetch_add(1, Ordering::Relaxed);
                            if hit.owner != 0 && hit.owner != run.key {
                                run.cross_tenant_hits.fetch_add(1, Ordering::Relaxed);
                            }
                            cell.complete(index, hit.fitness);
                            None
                        }
                        None => Some((index, snps)),
                    })
                    .collect()
            }
            None => jobs.into_iter().enumerate().collect(),
        };
        if !misses.is_empty() {
            let outstanding = misses.len();
            let enqueue = (|| {
                let mut st = shared.state.lock().unwrap();
                if shared.stopped.load(Ordering::Relaxed) {
                    return Err(EvalBackendError::Backend("eval server stopped".into()));
                }
                if !st.runs.contains_key(&run.run_id) {
                    return Err(EvalBackendError::Backend(format!(
                        "run {:?} is closed",
                        run.run_id
                    )));
                }
                if st.retired == shared.n_workers {
                    // Whole fleet down: fail fast so the tenant's fallback
                    // backend takes the batch (workers keep probing and will
                    // serve again after a rejoin).
                    return Err(EvalBackendError::AllWorkersFailed { outstanding, total });
                }
                for (index, snps) in misses {
                    st.queue.push(
                        run.key,
                        Job {
                            run: Arc::clone(run),
                            batch: Arc::clone(&cell),
                            index,
                            snps,
                        },
                    );
                }
                Ok(())
            })();
            if let Err(e) = enqueue {
                run.outstanding_batches.fetch_sub(1, Ordering::SeqCst);
                return Err(e);
            }
            shared.work_cv.notify_all();
        }
        let (results, failed) = {
            let mut st = cell.state.lock().unwrap();
            while st.pending > 0 {
                st = cell.done.wait(st).unwrap();
            }
            (std::mem::take(&mut st.results), st.failed)
        };
        run.outstanding_batches.fetch_sub(1, Ordering::SeqCst);
        Ok((results, failed))
    }
}

impl EvalBackend for RunHandle {
    fn n_snps(&self) -> usize {
        self.inner.run.n_snps
    }

    fn queue_depth(&self) -> usize {
        let st = self.inner.shared.state.lock().unwrap();
        st.queue.run_len(self.inner.run.key).unwrap_or(0)
    }

    fn backend_name(&self) -> &'static str {
        "eval-server"
    }

    fn take_fault_events(&self) -> FaultEvents {
        let run = &self.inner.run;
        let shared = &self.inner.shared;
        // Fleet-level retire/rejoin counters, reported as the delta since
        // this run's previous drain.
        let global_ret = shared.retirements.load(Ordering::Relaxed);
        let global_rej = shared.rejoins.load(Ordering::Relaxed);
        FaultEvents {
            retries: run.faults.retries.swap(0, Ordering::Relaxed),
            requeued: run.faults.requeued.swap(0, Ordering::Relaxed),
            retirements: global_ret
                - run
                    .faults
                    .seen_retirements
                    .swap(global_ret, Ordering::Relaxed),
            rejoins: global_rej - run.faults.seen_rejoins.swap(global_rej, Ordering::Relaxed),
        }
    }

    fn dispatch(&self, batch: &mut [Haplotype]) -> Result<(), EvalBackendError> {
        let jobs: Vec<Vec<SnpId>> = batch.iter().map(|h| h.snps().to_vec()).collect();
        let total = batch.len();
        let (results, failed) = self.dispatch_snps(jobs)?;
        // Residue contract: apply every completed fitness even when the
        // batch failed, so a fallback only re-evaluates what is missing.
        let mut outstanding = 0usize;
        for (h, fitness) in batch.iter_mut().zip(results) {
            match fitness {
                Some(f) => h.set_fitness(f),
                None => outstanding += 1,
            }
        }
        if failed {
            return Err(EvalBackendError::AllWorkersFailed { outstanding, total });
        }
        Ok(())
    }
}

impl Evaluator for RunHandle {
    fn n_snps(&self) -> usize {
        self.inner.run.n_snps
    }

    fn evaluate_one(&self, snps: &[SnpId]) -> f64 {
        self.try_evaluate_one(snps)
            .expect("shared evaluation fleet failed")
    }

    fn evaluate_batch(&self, batch: &mut [Haplotype]) {
        self.dispatch(batch)
            .expect("shared evaluation fleet failed")
    }

    fn try_evaluate_batch(&self, batch: &mut [Haplotype]) -> Result<(), EvalBackendError> {
        self.dispatch(batch)
    }

    fn take_fault_events(&self) -> FaultEvents {
        EvalBackend::take_fault_events(self)
    }
}

impl std::fmt::Debug for RunHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunHandle")
            .field("run_id", &self.inner.run.run_id)
            .field("fingerprint", &self.inner.run.fingerprint)
            .field("active", &self.is_active())
            .finish()
    }
}

impl RunHandle {
    /// Fallible single evaluation (the [`Evaluator::evaluate_one`] path
    /// without the panic).
    pub fn try_evaluate_one(&self, snps: &[SnpId]) -> Result<f64, EvalBackendError> {
        let (results, _failed) = self.dispatch_snps(vec![snps.to_vec()])?;
        results[0].ok_or(EvalBackendError::AllWorkersFailed {
            outstanding: 1,
            total: 1,
        })
    }
}

// ---------------------------------------------------------------------
// Worker side: one thread per slave, owning its persistent connection.
// ---------------------------------------------------------------------

/// A worker's live connection to its slave, plus the set of dataset
/// fingerprints already bound (registered) on this connection.
struct WorkerConn {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    bound: HashSet<u64>,
}

impl WorkerConn {
    /// Connect and handshake, requiring a protocol-v3 peer.
    fn open(addr: &str, cfg: &PoolConfig) -> Result<WorkerConn, ProtoError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(cfg.request_timeout))?;
        let mut reader = stream.try_clone()?;
        let mut writer = BufWriter::new(stream);
        match read_message(&mut reader)? {
            Message::Hello { version, .. } if version >= 3 => {}
            Message::Hello { version, .. } => {
                return Err(ProtoError::VersionMismatch {
                    ours: PROTOCOL_VERSION,
                    theirs: version,
                })
            }
            other => {
                return Err(ProtoError::Malformed(format!(
                    "expected Hello, got {other:?}"
                )))
            }
        }
        write_message(
            &mut writer,
            &Message::Hello {
                version: PROTOCOL_VERSION,
                n_snps: 0,
            },
        )?;
        Ok(WorkerConn {
            reader,
            writer,
            bound: HashSet::new(),
        })
    }

    /// Bind `run`'s dataset on this connection: resident-first (empty
    /// payload), then once more with the columns attached if the slave
    /// does not hold the fingerprint (e.g. it restarted). Returns whether
    /// the dataset was already resident; `Refused` is authoritative.
    fn bind(&mut self, run: &RunShared) -> Result<bool, RegisterError> {
        if self.bound.contains(&run.fingerprint) {
            return Ok(true);
        }
        let mut payloads: Vec<&[u8]> = vec![&[]];
        if !run.payload.is_empty() {
            payloads.push(&run.payload);
        }
        let attempts = payloads.len();
        for (i, payload) in payloads.into_iter().enumerate() {
            write_message(
                &mut self.writer,
                &Message::RegisterDataset {
                    handle: run.fingerprint,
                    fingerprint: run.fingerprint,
                    n_snps: run.n_snps as u32,
                    payload: payload.to_vec(),
                },
            )
            .map_err(RegisterError::Unreachable)?;
            match read_message(&mut self.reader).map_err(RegisterError::Unreachable)? {
                Message::DatasetAck { accepted: true, .. } => {
                    self.bound.insert(run.fingerprint);
                    // Accepted on the empty-payload attempt means the
                    // fingerprint was already resident: no columns moved.
                    return Ok(i == 0);
                }
                Message::DatasetAck {
                    accepted: false,
                    reason,
                    ..
                } => {
                    if i + 1 == attempts {
                        return Err(RegisterError::Refused(reason));
                    }
                    // Not resident: fall through and ship the columns.
                }
                other => {
                    return Err(RegisterError::Unreachable(ProtoError::Malformed(format!(
                        "expected DatasetAck, got {other:?}"
                    ))))
                }
            }
        }
        unreachable!("register loop always returns")
    }
}

enum RegisterError {
    /// Connection-level failure: retry later / other slave.
    Unreachable(ProtoError),
    /// The slave answered and said no: authoritative for this dataset.
    Refused(String),
}

/// Register `run`'s dataset on one slave over a throwaway connection
/// (the admission-time fleet sweep). Returns whether it was resident.
fn probe_register(addr: &str, cfg: &PoolConfig, run: &RunShared) -> Result<bool, RegisterError> {
    let mut conn = WorkerConn::open(addr, cfg).map_err(RegisterError::Unreachable)?;
    let resident = conn.bind(run)?;
    let _ = write_message(&mut conn.writer, &Message::Shutdown);
    Ok(resident)
}

/// Outcome of one job attempt ladder.
enum JobOutcome {
    Done,
    /// Retries exhausted: the caller must requeue the job and retire.
    Exhausted(Job),
}

fn worker_loop(shared: &Arc<ServerShared>, addr: &str) {
    let mut conn: Option<WorkerConn> = None;
    loop {
        // Claim the next job under the weighted-fair discipline (or stop).
        let claim_started = Instant::now();
        let job = {
            let mut st = shared.state.lock().unwrap();
            let mut yielded = false;
            loop {
                if shared.stopped.load(Ordering::Relaxed) {
                    drop(st);
                    shutdown_conn(conn);
                    return;
                }
                if !yielded
                    && shared.cfg.deweight_stragglers
                    && !st.queue.is_empty()
                    && shared.watch.is_straggler(addr)
                {
                    // De-weighted: concede one bounded beat so healthy
                    // peers claim first, then take whatever remains —
                    // a straggler is slow, not wrong, and never starves.
                    yielded = true;
                    let (guard, _) = shared.work_cv.wait_timeout(st, STRAGGLER_YIELD).unwrap();
                    st = guard;
                    continue;
                }
                if let Some((_key, job)) = st.queue.claim() {
                    break job;
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        // Time this worker spent waiting for a claim, attributed to the
        // claimed job's tenant (parented under its dispatch span).
        let obs = job.run.observer.clone();
        obs.record_span(
            span_names::QUEUE,
            obs.dispatch_span(),
            claim_started.elapsed(),
        );
        match attempt_job(shared, addr, &mut conn, job) {
            JobOutcome::Done => {}
            JobOutcome::Exhausted(job) => {
                retire_and_requeue(shared, addr, job);
                conn = None;
                // Retired: probe the slave back with capped exponential
                // backoff, staying responsive to stop().
                let mut failed_probes: u32 = 0;
                loop {
                    let backoff = shared
                        .cfg
                        .pool
                        .rejoin_backoff
                        .saturating_mul(1u32 << failed_probes.min(16))
                        .min(shared.cfg.pool.max_rejoin_backoff);
                    if sleep_unless_stopped(shared, backoff) {
                        shutdown_conn(conn);
                        return;
                    }
                    match WorkerConn::open(addr, &shared.cfg.pool) {
                        Ok(c) => {
                            conn = Some(c);
                            let mut st = shared.state.lock().unwrap();
                            st.retired -= 1;
                            drop(st);
                            shared.rejoins.fetch_add(1, Ordering::Relaxed);
                            shared.watch.note_rejoined(addr);
                            shared.observer.emit_with(|| Event::SlaveRejoined {
                                slave: addr.to_string(),
                            });
                            break;
                        }
                        Err(_) => failed_probes = failed_probes.saturating_add(1),
                    }
                }
            }
        }
    }
}

/// Sleep for `dur` in short slices; returns `true` if the server stopped.
fn sleep_unless_stopped(shared: &ServerShared, dur: Duration) -> bool {
    let deadline = Instant::now() + dur;
    loop {
        if shared.stopped.load(Ordering::Relaxed) {
            return true;
        }
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return false;
        }
        std::thread::sleep(left.min(Duration::from_millis(25)));
    }
}

fn shutdown_conn(conn: Option<WorkerConn>) {
    if let Some(mut c) = conn {
        let _ = write_message(&mut c.writer, &Message::Shutdown);
    }
}

/// Run the retry ladder for one job on this worker's slave. On success
/// the batch cell is completed in place.
fn attempt_job(
    shared: &ServerShared,
    addr: &str,
    conn: &mut Option<WorkerConn>,
    job: Job,
) -> JobOutcome {
    let run = Arc::clone(&job.run);
    let obs = run.observer.clone();
    let cfg = &shared.cfg.pool;
    for attempt in 0..=cfg.max_retries {
        if attempt > 0 {
            run.faults.retries.fetch_add(1, Ordering::Relaxed);
            obs.emit_with(|| Event::RequestRetried {
                slave: addr.to_string(),
                attempt,
            });
            // Backoff is pure overhead: attributed to the tenant, apart
            // from the request itself.
            let retry_span = obs.span_under(span_names::NET_RETRY, obs.dispatch_span());
            std::thread::sleep(cfg.retry_backoff.saturating_mul(attempt));
            drop(retry_span);
        }
        let request_span = obs.span_under(span_names::REQUEST, obs.dispatch_span());
        // Ensure a live connection.
        if conn.is_none() {
            match WorkerConn::open(addr, cfg) {
                Ok(c) => *conn = Some(c),
                Err(_) => continue,
            }
        }
        let io = conn.as_mut().expect("connection ensured above");
        // Ensure the tenant's dataset is bound on this connection.
        match io.bind(&run) {
            Ok(_) => {}
            Err(RegisterError::Refused(reason)) => {
                // The slave is healthy but will not take this dataset
                // (capacity, width). Hopeless to retry here; treat like a
                // slave failure for this tenant's job so the ladder (and
                // eventually the requeue) moves it elsewhere.
                obs.emit_with(|| Event::Custom {
                    label: "dataset_bind_refused".to_string(),
                    detail: format!("{addr}: {reason}"),
                });
                *conn = None;
                continue;
            }
            Err(RegisterError::Unreachable(_)) => {
                *conn = None;
                continue;
            }
        }
        let id = shared.next_req.fetch_add(1, Ordering::Relaxed);
        let req_started = Instant::now();
        match request_once(io, id, &run, &job.snps, &obs) {
            Ok(RequestReply::Fitness(fitness, compute)) => {
                // Feed the fleet watchdog: round-trip as this worker saw
                // it, the slave's own compute clock, and whether the
                // ladder had to retry to get here.
                shared.watch.observe_request(
                    addr,
                    req_started.elapsed(),
                    compute.map(|us| f64::from(us) / 1e3),
                    attempt > 0,
                );
                if let Some(store) = &shared.cfg.store {
                    // Feed the shared store, stamped with this tenant's
                    // key so later hits can tell cross-tenant reuse apart.
                    let fp = DatasetFingerprint::from_raw(run.fingerprint);
                    let _ = store.insert(fp, &job.snps, fitness, run.key);
                }
                if let Some(compute_us) = compute {
                    // The slave's own clock, carved out of the round-trip
                    // for per-tenant attribution.
                    obs.record_span(
                        span_names::COMPUTE,
                        request_span.id(),
                        Duration::from_micros(u64::from(compute_us)),
                    );
                }
                job.batch.complete(job.index, fitness);
                return JobOutcome::Done;
            }
            Ok(RequestReply::Error(reason)) => {
                // Typed per-request refusal (e.g. handle lost to a slave
                // restart): rebind on the next attempt.
                io.bound.remove(&run.fingerprint);
                obs.emit_with(|| Event::Custom {
                    label: "eval_error".to_string(),
                    detail: format!("{addr}: {reason}"),
                });
            }
            Err(_) => {
                // A half-read stream cannot be reused.
                *conn = None;
            }
        }
    }
    JobOutcome::Exhausted(job)
}

enum RequestReply {
    Fitness(f64, Option<u32>),
    Error(String),
}

/// One send + wait on an open connection, timed as `net.send` /
/// `net.roundtrip` spans on the tenant's observer.
fn request_once(
    io: &mut WorkerConn,
    id: u64,
    run: &RunShared,
    snps: &[SnpId],
    obs: &Observer,
) -> Result<RequestReply, ProtoError> {
    let send_span = obs.span(span_names::NET_SEND);
    write_message(
        &mut io.writer,
        &Message::EvalRequestV3 {
            id,
            run_id: run.key,
            handle: run.fingerprint,
            snps: snps.to_vec(),
        },
    )?;
    drop(send_span);
    let _roundtrip = obs.span(span_names::NET_ROUNDTRIP);
    loop {
        match read_message(&mut io.reader)? {
            Message::EvalResult {
                id: rid,
                fitness,
                compute_us,
                ..
            } if rid == id => return Ok(RequestReply::Fitness(fitness, Some(compute_us))),
            Message::EvalResponse { id: rid, fitness } if rid == id => {
                return Ok(RequestReply::Fitness(fitness, None))
            }
            Message::EvalError { id: rid, reason } if rid == id => {
                return Ok(RequestReply::Error(reason))
            }
            // Stale replies to an abandoned request: skip.
            Message::EvalResult { .. }
            | Message::EvalResponse { .. }
            | Message::EvalError { .. } => continue,
            other => {
                return Err(ProtoError::Malformed(format!(
                    "unexpected message from slave: {other:?}"
                )))
            }
        }
    }
}

/// Requeue the failed job at the head of its run's line and retire this
/// worker. If this was the last live worker, fail everything queued so no
/// dispatcher waits on a dead fleet.
fn retire_and_requeue(shared: &ServerShared, addr: &str, job: Job) {
    let run = Arc::clone(&job.run);
    run.faults.requeued.fetch_add(1, Ordering::Relaxed);
    run.observer.emit_with(|| Event::JobRequeued {
        slave: addr.to_string(),
    });
    {
        let mut st = shared.state.lock().unwrap();
        let key = job.run.key;
        let batch = Arc::clone(&job.batch);
        if !st.queue.push_front(key, job) {
            // The run closed while this job was in flight: the queue no
            // longer knows it. Fail the job so its batch completes.
            batch.fail();
        }
        st.retired += 1;
        // Inside the lock so a dispatcher that fails fast on
        // `retired == n_workers` already sees this retirement accounted.
        shared.retirements.fetch_add(1, Ordering::Relaxed);
        if st.retired == shared.n_workers {
            // Total fleet loss: every incomplete job is in the queue
            // (workers requeue before retiring), so this purge reaches
            // them all, and each waiting dispatch returns
            // `AllWorkersFailed` with its own residue.
            ServerShared::purge_all(&mut st);
        }
    }
    shared.watch.note_retired(addr);
    shared.observer.emit_with(|| Event::SlaveRetired {
        slave: addr.to_string(),
    });
    // Wake a peer to take the requeued job.
    shared.work_cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slave::{DatasetLoader, ObjectiveStore, SlaveServer};
    use ld_core::evaluator::FnEvaluator;

    /// Loader: payload byte 0 scales the SNP-id sum.
    fn scaling_loader() -> DatasetLoader {
        Arc::new(|_fp, n_snps, payload: &[u8]| {
            let scale = f64::from(payload.first().copied().unwrap_or(1));
            Ok(
                Arc::new(FnEvaluator::new(n_snps as usize, move |s: &[SnpId]| {
                    scale * s.iter().sum::<usize>() as f64
                })) as Arc<dyn Evaluator>,
            )
        })
    }

    fn fleet(n: usize, capacity: usize) -> (Vec<SlaveServer>, Vec<String>) {
        let slaves: Vec<SlaveServer> = (0..n)
            .map(|_| {
                let store = Arc::new(ObjectiveStore::new(capacity).with_loader(scaling_loader()));
                SlaveServer::spawn_shared("127.0.0.1:0", store, Observer::disabled()).unwrap()
            })
            .collect();
        let addrs = slaves.iter().map(|s| s.addr().to_string()).collect();
        (slaves, addrs)
    }

    fn fast_cfg() -> ServerConfig {
        ServerConfig {
            pool: PoolConfig {
                request_timeout: Duration::from_secs(2),
                max_retries: 1,
                retry_backoff: Duration::from_millis(5),
                rejoin_backoff: Duration::from_millis(10),
                max_rejoin_backoff: Duration::from_millis(200),
            },
            max_runs: 8,
            max_outstanding_batches: 4,
            store: None,
            deweight_stragglers: false,
        }
    }

    fn spec(id: &str, fp: u64, scale: u8) -> RunSpec {
        RunSpec::new(id, fp, 51).with_payload(vec![scale])
    }

    #[test]
    fn two_tenants_share_one_fleet_with_distinct_datasets() {
        let (_slaves, addrs) = fleet(2, 4);
        let server = EvalServer::connect(&addrs, fast_cfg(), Observer::disabled()).unwrap();
        let a = server.submit_run(spec("run-a", 0xA, 1)).unwrap();
        let b = server
            .submit_run(spec("run-b", 0xB, 3).with_weight(2))
            .unwrap();
        assert_eq!(server.active_runs(), vec!["run-a", "run-b"]);
        // Same haplotypes, different datasets, interleaved batches.
        let mut batch_a: Vec<Haplotype> =
            (1..=6).map(|i| Haplotype::new(vec![i, i + 10])).collect();
        let mut batch_b = batch_a.clone();
        a.dispatch(&mut batch_a).unwrap();
        b.dispatch(&mut batch_b).unwrap();
        for (ha, hb) in batch_a.iter().zip(&batch_b) {
            let sum: usize = ha.snps().iter().sum();
            assert_eq!(ha.fitness(), sum as f64);
            assert_eq!(hb.fitness(), 3.0 * sum as f64);
        }
        assert_eq!(a.try_evaluate_one(&[2, 3]).unwrap(), 5.0);
        assert_eq!(b.try_evaluate_one(&[2, 3]).unwrap(), 15.0);
    }

    #[test]
    fn shared_store_memoizes_across_tenants_by_fingerprint() {
        let (_slaves, addrs) = fleet(2, 4);
        let mut cfg = fast_cfg();
        cfg.store = Some(Arc::new(FitnessStore::in_memory(256)));
        let server = EvalServer::connect(&addrs, cfg, Observer::disabled()).unwrap();
        // Two tenants on the SAME dataset, one on a different one.
        let a = server.submit_run(spec("run-a", 0xA, 2)).unwrap();
        let b = server.submit_run(spec("run-b", 0xA, 2)).unwrap();
        let c = server.submit_run(spec("run-c", 0xC, 5)).unwrap();

        // Tenant A pays for the evaluation...
        assert_eq!(a.try_evaluate_one(&[2, 3]).unwrap(), 10.0);
        assert_eq!(
            a.store_stats(),
            RunStoreStats {
                hits: 0,
                cross_tenant_hits: 0
            }
        );
        // ...a repeat by A hits its own entry (not cross-tenant)...
        assert_eq!(a.try_evaluate_one(&[2, 3]).unwrap(), 10.0);
        assert_eq!(
            a.store_stats(),
            RunStoreStats {
                hits: 1,
                cross_tenant_hits: 0
            }
        );
        // ...and tenant B (same fingerprint) reuses it cross-tenant.
        assert_eq!(b.try_evaluate_one(&[2, 3]).unwrap(), 10.0);
        assert_eq!(
            b.store_stats(),
            RunStoreStats {
                hits: 1,
                cross_tenant_hits: 1
            }
        );
        // Tenant C evaluates a different dataset: same SNP set, different
        // fingerprint, so it must NOT see A's value.
        assert_eq!(c.try_evaluate_one(&[2, 3]).unwrap(), 25.0);
        assert_eq!(
            c.store_stats(),
            RunStoreStats {
                hits: 0,
                cross_tenant_hits: 0
            }
        );
        // A fully store-served batch completes without touching the queue.
        let mut batch = vec![Haplotype::new(vec![2, 3])];
        b.dispatch(&mut batch).unwrap();
        assert_eq!(batch[0].fitness(), 10.0);
        assert_eq!(b.store_stats().hits, 2);
        assert_eq!(
            server
                .store()
                .unwrap()
                .len(DatasetFingerprint::from_raw(0xA)),
            1
        );
    }

    #[test]
    fn admission_control_is_typed_and_isolated() {
        let (_slaves, addrs) = fleet(1, 1);
        let mut cfg = fast_cfg();
        cfg.max_runs = 2;
        let server = EvalServer::connect(&addrs, cfg, Observer::disabled()).unwrap();
        let _a = server.submit_run(spec("run-a", 0xA, 1)).unwrap();
        // Duplicate id.
        match server.submit_run(spec("run-a", 0xA, 1)) {
            Err(SubmitError::DuplicateRun(id)) => assert_eq!(id, "run-a"),
            other => panic!("expected DuplicateRun, got {other:?}", other = other.err()),
        }
        // Slave store is full (capacity 1): a second dataset is refused,
        // and the first tenant keeps working.
        match server.submit_run(spec("run-b", 0xB, 1)) {
            Err(SubmitError::DatasetRejected { reason, .. }) => {
                assert!(reason.contains("capacity exhausted"), "{reason}")
            }
            other => panic!(
                "expected DatasetRejected, got {other:?}",
                other = other.err()
            ),
        }
        assert_eq!(_a.try_evaluate_one(&[1, 2]).unwrap(), 3.0);
        // Same dataset as run-a though: fits (resident), but now the
        // server itself is at max_runs.
        let _b = server.submit_run(spec("run-c", 0xA, 1)).unwrap();
        match server.submit_run(spec("run-d", 0xA, 1)) {
            Err(SubmitError::Saturated { active, limit }) => {
                assert_eq!((active, limit), (2, 2))
            }
            other => panic!("expected Saturated, got {other:?}", other = other.err()),
        }
        assert_eq!(server.active_runs().len(), 2);
    }

    #[test]
    fn backpressure_bounds_batches_in_flight() {
        // A deliberately slow dataset so the first batch stays in flight.
        let slow_loader: DatasetLoader = Arc::new(|_fp, n_snps, _payload: &[u8]| {
            Ok(Arc::new(FnEvaluator::new(n_snps as usize, |s: &[SnpId]| {
                std::thread::sleep(Duration::from_millis(150));
                s.len() as f64
            })) as Arc<dyn Evaluator>)
        });
        let store = Arc::new(ObjectiveStore::new(4).with_loader(slow_loader));
        let slave = SlaveServer::spawn_shared("127.0.0.1:0", store, Observer::disabled()).unwrap();
        let mut cfg = fast_cfg();
        cfg.max_outstanding_batches = 1;
        let server =
            EvalServer::connect(&[slave.addr().to_string()], cfg, Observer::disabled()).unwrap();
        let handle = server
            .submit_run(RunSpec::new("slow", 0x5, 51).with_payload(vec![1]))
            .unwrap();
        let h2 = handle.clone();
        let t = std::thread::spawn(move || {
            let mut batch = vec![Haplotype::new(vec![1]), Haplotype::new(vec![2])];
            h2.dispatch(&mut batch).unwrap();
        });
        std::thread::sleep(Duration::from_millis(50));
        let mut batch = vec![Haplotype::new(vec![3])];
        match handle.dispatch(&mut batch) {
            Err(EvalBackendError::Saturated { outstanding, limit }) => {
                assert_eq!((outstanding, limit), (1, 1));
            }
            other => panic!("expected Saturated, got {other:?}"),
        }
        assert!(!batch[0].is_evaluated(), "refused batch must be untouched");
        t.join().unwrap();
        // In-flight batch drained: the same dispatch now succeeds.
        handle.dispatch(&mut batch).unwrap();
        assert_eq!(batch[0].fitness(), 1.0);
    }

    #[test]
    fn closing_a_run_fails_only_its_own_work() {
        let (_slaves, addrs) = fleet(2, 4);
        let server = EvalServer::connect(&addrs, fast_cfg(), Observer::disabled()).unwrap();
        let a = server.submit_run(spec("run-a", 0xA, 1)).unwrap();
        assert!(server.close_run("run-a"));
        assert!(!server.close_run("run-a"), "second close is a no-op");
        assert!(!a.is_active());
        match a.try_evaluate_one(&[1, 2]) {
            Err(EvalBackendError::Backend(msg)) => assert!(msg.contains("closed"), "{msg}"),
            other => panic!("expected Backend(closed), got {other:?}"),
        }
        // An unrelated tenant is unaffected.
        let b = server.submit_run(spec("run-b", 0xB, 2)).unwrap();
        assert_eq!(b.try_evaluate_one(&[1, 2]).unwrap(), 6.0);
    }

    #[test]
    fn dropping_the_last_handle_closes_the_run() {
        let (_slaves, addrs) = fleet(1, 4);
        let server = EvalServer::connect(&addrs, fast_cfg(), Observer::disabled()).unwrap();
        let a = server.submit_run(spec("run-a", 0xA, 1)).unwrap();
        let a2 = a.clone();
        drop(a);
        assert!(a2.is_active(), "a clone still holds the run open");
        drop(a2);
        assert_eq!(server.active_runs().len(), 0);
    }

    #[test]
    fn total_fleet_loss_is_a_typed_error_and_recovers_on_rejoin() {
        let (slaves, addrs) = fleet(1, 4);
        let server = EvalServer::connect(&addrs, fast_cfg(), Observer::disabled()).unwrap();
        let handle = server.submit_run(spec("run-a", 0xA, 1)).unwrap();
        assert_eq!(handle.try_evaluate_one(&[1]).unwrap(), 1.0);
        // Kill the only slave.
        let addr = slaves[0].addr().to_string();
        drop(slaves);
        let deadline = Instant::now() + Duration::from_secs(10);
        let err = loop {
            match handle.try_evaluate_one(&[1, 2]) {
                Err(e) => break e,
                Ok(_) => {
                    assert!(Instant::now() < deadline, "fleet never noticed the loss");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        };
        assert!(
            matches!(err, EvalBackendError::AllWorkersFailed { .. }),
            "unexpected error: {err}"
        );
        let faults = EvalBackend::take_fault_events(&handle);
        assert!(
            faults.retirements >= 1,
            "retirement not accounted: {faults:?}"
        );
        // Resurrect the slave at the same address: the worker rejoins and
        // the tenant is served again, with columns re-shipped from the
        // run's payload (the store restarted empty).
        let store = Arc::new(ObjectiveStore::new(4).with_loader(scaling_loader()));
        let _revived = SlaveServer::spawn_shared(&addr, store, Observer::disabled()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match handle.try_evaluate_one(&[1, 2]) {
                Ok(f) => {
                    assert_eq!(f, 3.0);
                    break;
                }
                Err(_) => {
                    assert!(Instant::now() < deadline, "worker never rejoined");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        let faults = EvalBackend::take_fault_events(&handle);
        assert!(faults.rejoins >= 1, "rejoin not accounted: {faults:?}");
    }
}
