//! The eval server's JSON control surface: submit / status / result.
//!
//! [`MultiRunApi`] implements `ld-observe`'s
//! [`ApiHandler`](ld_observe::ApiHandler) extension seam, so mounting it
//! on an [`ld_observe::ExposeServer`] turns the metrics endpoint into a
//! small multi-tenant control plane:
//!
//! | route | method | meaning |
//! |---|---|---|
//! | `/runs` | POST | submit a run (`{"run_id", "workload", "seed", "weight"}`) |
//! | `/runs` | GET | list runs with state and queue depth |
//! | `/runs/<id>` | GET | one run's status |
//! | `/runs/<id>/result` | GET | final result (202 while still running) |
//! | `/runs/<id>/dynamics` | GET | search-dynamics series (`?since=<gen>` for increments) |
//! | `/fleet` | GET | per-slave watchdog baselines and standing anomaly verdicts |
//!
//! `/health` additionally grows a per-run section (via
//! [`ApiHandler::health_runs`](ld_observe::ApiHandler::health_runs)).
//!
//! What a "workload" *is* stays the embedder's business: the API calls a
//! [`RunLauncher`] to actually start the GA (typically: build a dataset,
//! [`crate::EvalServer::submit_run`], spawn an engine thread on the
//! returned handle) and the launcher reports completion back through the
//! shared [`RunBoard`]. This keeps `ld-net` free of engine-configuration
//! concerns while examples and tests wire real runs.

use crate::server::SubmitError;
use crate::EvalServer;
use ld_observe::{ApiHandler, ApiResponse};
use parking_lot::Mutex;
use serde_json::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A parsed run submission.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Tenant run id (unique among active runs).
    pub run_id: String,
    /// Free-form workload selector interpreted by the launcher
    /// (e.g. a dataset name).
    pub workload: String,
    /// RNG seed for the run.
    pub seed: u64,
    /// Fair-share weight (≥ 1).
    pub weight: u32,
}

/// Starts a submitted run. Returning `Err` maps the typed
/// [`SubmitError`] onto an HTTP status; on `Ok` the run is marked
/// running until the launcher calls [`RunBoard::finish`] or
/// [`RunBoard::fail`].
pub type RunLauncher = Arc<dyn Fn(&RunRequest) -> Result<(), SubmitError> + Send + Sync>;

#[derive(Debug, Clone)]
enum RunState {
    Running,
    /// Final result, as a JSON value produced by the launcher.
    Finished(String),
    Failed(String),
}

/// Shared run-lifecycle board: the launcher holds a clone and reports
/// terminal states; the API reads it for status/result routes.
#[derive(Clone, Default)]
pub struct RunBoard {
    states: Arc<Mutex<HashMap<String, RunState>>>,
}

impl RunBoard {
    /// A fresh, empty board.
    pub fn new() -> RunBoard {
        RunBoard::default()
    }

    /// Record a run's final result (any JSON value, e.g. the best
    /// haplotypes and fitness).
    pub fn finish(&self, run_id: &str, result_json: String) {
        self.states
            .lock()
            .insert(run_id.to_string(), RunState::Finished(result_json));
    }

    /// Record a run's terminal failure.
    pub fn fail(&self, run_id: &str, error: impl Into<String>) {
        self.states
            .lock()
            .insert(run_id.to_string(), RunState::Failed(error.into()));
    }

    fn start(&self, run_id: &str) {
        self.states
            .lock()
            .insert(run_id.to_string(), RunState::Running);
    }

    fn get(&self, run_id: &str) -> Option<RunState> {
        self.states.lock().get(run_id).cloned()
    }

    fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.states.lock().keys().cloned().collect();
        ids.sort();
        ids
    }
}

/// The submit/status/result API over one [`EvalServer`].
pub struct MultiRunApi {
    server: Arc<EvalServer>,
    launcher: RunLauncher,
    board: RunBoard,
    dynamics: Option<ld_observe::DynamicsBoard>,
}

impl MultiRunApi {
    /// Wrap `server`, starting submitted runs through `launcher`, which
    /// reports terminal states on `board` (keep a clone of the board
    /// inside the launcher).
    pub fn new(server: Arc<EvalServer>, launcher: RunLauncher, board: RunBoard) -> MultiRunApi {
        MultiRunApi {
            server,
            launcher,
            board,
            dynamics: None,
        }
    }

    /// Attach a [`ld_observe::DynamicsBoard`] (the same clone that sits in
    /// the observer fan-out as a sink) to serve `/runs/<id>/dynamics` and
    /// enrich run statuses with a search phase.
    pub fn with_dynamics(mut self, dynamics: ld_observe::DynamicsBoard) -> MultiRunApi {
        self.dynamics = Some(dynamics);
        self
    }

    /// The board the launcher reports completion through.
    pub fn board(&self) -> RunBoard {
        self.board.clone()
    }

    fn submit(&self, body: &[u8]) -> ApiResponse {
        let text = String::from_utf8_lossy(body);
        let value: Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                return ApiResponse::json_status(
                    400,
                    format!(
                        "{{\"error\":\"bad json: {}\"}}",
                        json_escape(&e.to_string())
                    ),
                )
            }
        };
        let Some(run_id) = value.get("run_id").and_then(|v| v.as_str()) else {
            return ApiResponse::json_status(
                400,
                "{\"error\":\"missing required field: run_id\"}".to_string(),
            );
        };
        if run_id.is_empty() {
            return ApiResponse::json_status(
                400,
                "{\"error\":\"run_id must be non-empty\"}".to_string(),
            );
        }
        if matches!(self.board.get(run_id), Some(RunState::Running)) {
            return ApiResponse::json_status(
                409,
                format!("{{\"error\":\"run {} is active\"}}", json_quote(run_id)),
            );
        }
        let request = RunRequest {
            run_id: run_id.to_string(),
            workload: value
                .get("workload")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
            seed: value.get("seed").and_then(|v| v.as_u64()).unwrap_or(0),
            weight: value
                .get("weight")
                .and_then(|v| v.as_u64())
                .map_or(1, |w| w.max(1).min(u64::from(u32::MAX)) as u32),
        };
        // Mark running *before* launching: a synchronous launcher may
        // finish (or fail) the run before it returns, and that terminal
        // state must not be clobbered.
        self.board.start(run_id);
        match (self.launcher)(&request) {
            Ok(()) => {
                ApiResponse::json_status(202, format!("{{\"accepted\":{}}}", json_quote(run_id)))
            }
            Err(e) => {
                self.board.states.lock().remove(run_id);
                let status = match &e {
                    SubmitError::DuplicateRun(_) => 409,
                    SubmitError::DatasetRejected { .. } => 400,
                    SubmitError::Saturated { .. }
                    | SubmitError::NoSlaves
                    | SubmitError::ServerStopped => 503,
                };
                ApiResponse::json_status(
                    status,
                    format!("{{\"error\":{}}}", json_quote(&e.to_string())),
                )
            }
        }
    }

    /// One run's status fragment (a JSON object, without the id).
    fn status_fragment(&self, run_id: &str) -> Option<String> {
        let state = self.board.get(run_id)?;
        let (label, extra) = match &state {
            RunState::Running => ("running", String::new()),
            RunState::Finished(_) => ("finished", String::new()),
            RunState::Failed(e) => ("failed", format!(",\"error\":{}", json_quote(e))),
        };
        let queued = self
            .server
            .run_queue_depth(run_id)
            .map_or(String::new(), |q| format!(",\"queued\":{q}"));
        let dynamics = self
            .dynamics
            .as_ref()
            .and_then(|d| d.status_fragment(run_id))
            .map_or(String::new(), |frag| format!(",\"dynamics\":{frag}"));
        Some(format!(
            "{{\"state\":\"{label}\"{queued}{extra}{dynamics}}}"
        ))
    }

    fn list(&self) -> ApiResponse {
        let entries: Vec<String> = self
            .board
            .ids()
            .iter()
            .filter_map(|id| {
                let frag = self.status_fragment(id)?;
                Some(format!("{}:{}", json_quote(id), frag))
            })
            .collect();
        ApiResponse::json(format!(
            "{{\"runs\":{{{}}},\"alive_slaves\":{},\"queue_depth\":{}}}",
            entries.join(","),
            self.server.alive(),
            self.server.queue_depth(),
        ))
    }

    fn status(&self, run_id: &str) -> ApiResponse {
        match self.status_fragment(run_id) {
            Some(frag) => ApiResponse::json(format!(
                "{{\"run_id\":{},\"status\":{frag}}}",
                json_quote(run_id)
            )),
            None => not_found(run_id),
        }
    }

    fn result(&self, run_id: &str) -> ApiResponse {
        match self.board.get(run_id) {
            Some(RunState::Finished(result)) => ApiResponse::json(result),
            Some(RunState::Running) => ApiResponse::json_status(
                202,
                format!(
                    "{{\"run_id\":{},\"state\":\"running\"}}",
                    json_quote(run_id)
                ),
            ),
            Some(RunState::Failed(e)) => ApiResponse::json_status(
                503,
                format!(
                    "{{\"run_id\":{},\"state\":\"failed\",\"error\":{}}}",
                    json_quote(run_id),
                    json_quote(&e)
                ),
            ),
            None => not_found(run_id),
        }
    }
}

fn not_found(run_id: &str) -> ApiResponse {
    ApiResponse::json_status(
        404,
        format!("{{\"error\":\"no such run: {}\"}}", json_escape(run_id)),
    )
}

impl ApiHandler for MultiRunApi {
    fn handle(&self, method: &str, path: &str, query: &str, body: &[u8]) -> Option<ApiResponse> {
        match (method, path) {
            ("POST", "/runs") => Some(self.submit(body)),
            ("GET", "/runs") => Some(self.list()),
            ("GET", "/fleet") => self.server.watch().handle(method, path, query, body),
            ("GET", p) => {
                let rest = p.strip_prefix("/runs/")?;
                if let Some(id) = rest.strip_suffix("/result") {
                    Some(self.result(id))
                } else if let Some(id) = rest.strip_suffix("/dynamics") {
                    match &self.dynamics {
                        Some(board) => board.handle(method, path, query, body),
                        None => Some(not_found(id)),
                    }
                } else if rest.contains('/') {
                    None
                } else {
                    Some(self.status(rest))
                }
            }
            _ => None,
        }
    }

    fn health_runs(&self) -> Vec<(String, String)> {
        self.board
            .ids()
            .iter()
            .filter_map(|id| Some((id.clone(), self.status_fragment(id)?)))
            .collect()
    }
}

/// Escape a string's content for embedding inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A complete JSON string literal (quotes included).
fn json_quote(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{RunSpec, ServerConfig};
    use crate::slave::{DatasetLoader, ObjectiveStore, SlaveServer};
    use ld_core::Evaluator;
    use ld_data::SnpId;
    use ld_observe::Observer;

    fn sum_loader() -> DatasetLoader {
        Arc::new(|_fp, n_snps, _payload: &[u8]| {
            Ok(Arc::new(ld_core::evaluator::FnEvaluator::new(
                n_snps as usize,
                |s: &[SnpId]| s.iter().sum::<usize>() as f64,
            )) as Arc<dyn Evaluator>)
        })
    }

    /// An API whose launcher submits to a real (loopback) eval server,
    /// evaluates one haplotype, and finishes immediately.
    fn api_fixture(max_runs: usize) -> (SlaveServer, Arc<EvalServer>, Arc<MultiRunApi>) {
        let store = Arc::new(ObjectiveStore::new(8).with_loader(sum_loader()));
        let slave = SlaveServer::spawn_shared("127.0.0.1:0", store, Observer::disabled()).unwrap();
        let server = Arc::new(
            EvalServer::connect(
                &[slave.addr().to_string()],
                ServerConfig {
                    max_runs,
                    ..ServerConfig::default()
                },
                Observer::disabled(),
            )
            .unwrap(),
        );
        let board = RunBoard::new();
        let launch_server = Arc::clone(&server);
        let launch_board = board.clone();
        let launcher: RunLauncher = Arc::new(move |req: &RunRequest| {
            let handle = launch_server
                .submit_run(RunSpec::new(&req.run_id, 0xF00D, 51).with_payload(vec![1]))?;
            let fitness = handle
                .try_evaluate_one(&[1, 2, (req.seed % 10) as usize + 3])
                .map_err(|e| SubmitError::DatasetRejected {
                    slave: "fleet".into(),
                    reason: e.to_string(),
                })?;
            launch_board.finish(&req.run_id, format!("{{\"best_fitness\":{fitness}}}"));
            Ok(())
        });
        let api = MultiRunApi::new(Arc::clone(&server), launcher, board);
        (slave, server, Arc::new(api))
    }

    #[test]
    fn submit_status_result_roundtrip() {
        let (_slave, _server, api) = api_fixture(8);
        let resp = api
            .handle(
                "POST",
                "/runs",
                "",
                br#"{"run_id":"r1","seed":4,"weight":2}"#,
            )
            .unwrap();
        assert_eq!(resp.status, 202, "{}", resp.body);
        // The fixture launcher is synchronous, so the result is final by
        // the time the submit response is in hand.
        let resp = api.handle("GET", "/runs/r1/result", "", b"").unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("best_fitness"), "{}", resp.body);
        let listing = api.handle("GET", "/runs", "", b"").unwrap();
        assert_eq!(listing.status, 200);
        assert!(listing.body.contains("\"r1\""), "{}", listing.body);
        let status = api.handle("GET", "/runs/r1", "", b"").unwrap();
        assert_eq!(status.status, 200);
        assert!(!api.health_runs().is_empty());
    }

    #[test]
    fn errors_are_mapped_to_http_statuses() {
        let (_slave, server, api) = api_fixture(1);
        assert_eq!(api.handle("POST", "/runs", "", b"{").unwrap().status, 400);
        assert_eq!(
            api.handle("POST", "/runs", "", b"{\"seed\":1}")
                .unwrap()
                .status,
            400,
            "missing run_id"
        );
        assert_eq!(
            api.handle("GET", "/runs/ghost", "", b"").unwrap().status,
            404
        );
        assert_eq!(
            api.handle("GET", "/runs/ghost/result", "", b"")
                .unwrap()
                .status,
            404
        );
        // Fill the server's only run slot out-of-band, then submit: the
        // launcher's typed Saturated becomes a 503.
        let _held = server
            .submit_run(RunSpec::new("holder", 0xF00D, 51).with_payload(vec![1]))
            .unwrap();
        let resp = api
            .handle("POST", "/runs", "", br#"{"run_id":"r2"}"#)
            .unwrap();
        assert_eq!(resp.status, 503, "{}", resp.body);
        // Unknown routes fall through to the built-ins.
        assert!(api.handle("GET", "/metrics", "", b"").is_none());
        assert!(api.handle("DELETE", "/runs", "", b"").is_none());
    }

    #[test]
    fn fleet_route_serves_watchdog_rollup() {
        let (slave, _server, api) = api_fixture(8);
        // One submitted run = one real evaluation over the fleet, so the
        // watchdog has at least one sample for the slave.
        let resp = api
            .handle("POST", "/runs", "", br#"{"run_id":"r1","seed":4}"#)
            .unwrap();
        assert_eq!(resp.status, 202, "{}", resp.body);
        let resp = api.handle("GET", "/fleet", "", b"").unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        let slaves = v.get("slaves").and_then(|x| x.as_array()).unwrap();
        assert_eq!(slaves.len(), 1, "{}", resp.body);
        assert_eq!(
            slaves[0].get("addr").and_then(|x| x.as_str()),
            Some(slave.addr().to_string().as_str())
        );
        assert!(slaves[0].get("samples").and_then(|x| x.as_u64()).unwrap() >= 1);
        assert!(slaves[0].get("flagged").unwrap().is_null(), "{}", resp.body);
        // Non-GET still falls through to the built-in 405.
        assert!(api.handle("POST", "/fleet", "", b"").is_none());
    }

    #[test]
    fn dynamics_route_serves_board_series() {
        use ld_observe::{DynamicsBoard, DynamicsSnapshot, Envelope, Event, Sink};

        let (_slave, _server, api) = api_fixture(8);
        // Without a board the route is a 404, not a fall-through.
        assert_eq!(
            api.handle("GET", "/runs/r1/dynamics", "", b"")
                .unwrap()
                .status,
            404
        );

        let board = DynamicsBoard::new();
        let snap = DynamicsSnapshot {
            population: 4,
            unique_fraction: 1.0,
            mean_pairwise_hamming: 2.0,
            occupancy_entropy: 0.7,
            snps_used: 5,
            fixed_snps: 1,
            fixation_spectrum: [4, 0, 0, 1],
            fitness_q1: 1.0,
            fitness_median: 2.0,
            fitness_q3: 3.0,
            best_fitness: 4.0,
            fitness_gain: 0.5,
            true_evals: 12,
            cache_hits: 3,
            evals_per_gain: 24.0,
            immigrants: 0,
            mutation_rates: vec![0.3, 0.3, 0.3],
            mutation_profits: vec![0.1, 0.0, 0.0],
            crossover_rates: vec![0.5, 0.5],
            crossover_profits: vec![0.0, 0.0],
        };
        for generation in 1..=3u64 {
            board.accept(&Envelope {
                ts_ms: 1,
                run_id: "r1".to_string(),
                generation,
                batch_id: 0,
                event: Event::Dynamics(Box::new(snap.clone())),
            });
        }
        // Rebuild the api with the board attached (api_fixture returns Arc).
        let (_slave2, server2, _) = api_fixture(8);
        let api = MultiRunApi::new(
            server2,
            Arc::new(|_req: &RunRequest| Ok(())),
            RunBoard::new(),
        )
        .with_dynamics(board);

        let resp = api.handle("GET", "/runs/r1/dynamics", "", b"").unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(v.get("run_id").and_then(|x| x.as_str()), Some("r1"));
        assert_eq!(v.get("latest_generation").and_then(|x| x.as_u64()), Some(3));
        let snaps = v.get("snapshots").and_then(|x| x.as_array()).unwrap();
        assert_eq!(snaps.len(), 3);

        // Incremental polling only returns generations after `since`.
        let resp = api
            .handle("GET", "/runs/r1/dynamics", "since=2", b"")
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
        let snaps = v.get("snapshots").and_then(|x| x.as_array()).unwrap();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].get("generation").and_then(|x| x.as_u64()), Some(3));

        // Bad cursor and unknown run map onto 400/404.
        assert_eq!(
            api.handle("GET", "/runs/r1/dynamics", "since=banana", b"")
                .unwrap()
                .status,
            400
        );
        assert_eq!(
            api.handle("GET", "/runs/ghost/dynamics", "", b"")
                .unwrap()
                .status,
            404
        );

        // The run status carries the board's phase fragment.
        api.board().start("r1");
        let status = api.handle("GET", "/runs/r1", "", b"").unwrap();
        assert!(status.body.contains("\"dynamics\""), "{}", status.body);
        assert!(status.body.contains("\"searching\""), "{}", status.body);
    }
}
