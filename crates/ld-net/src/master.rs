//! The master side: a pool of TCP slave connections behind the
//! [`EvalBackend`] dispatch seam (and, for compatibility, the
//! [`Evaluator`] trait).
//!
//! [`EvalBackend::dispatch`] is one synchronous evaluation phase (paper
//! Figure 6): jobs go into a shared work stack; one master-side thread per
//! live slave pulls jobs on demand (PVM-style task farming, so a slow node
//! simply takes fewer jobs), sends the request, and waits for the response
//! under a per-request deadline ([`PoolConfig::request_timeout`]).
//!
//! **Fault tolerance** (see `DESIGN.md` §"Failure model of the evaluation
//! layer"): a failed or timed-out request is retried with exponential
//! backoff over a fresh connection ([`PoolConfig::max_retries`]); a slave
//! that keeps failing is *retired* and its in-flight job is requeued onto
//! the work stack, so jobs are never lost. Retired slaves are probed again
//! at the start of every dispatch (with capped exponential backoff) and
//! *rejoin* the pool when they reconnect. Only when every slave is retired
//! mid-batch does dispatch return a typed
//! [`EvalBackendError::AllWorkersFailed`] — partial results are applied
//! first, so a fallback backend only re-evaluates the residue. All
//! recovery events are counted and drained through
//! [`EvalBackend::take_fault_events`].

use crate::protocol::{
    read_message, write_message, Message, ProtoError, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};
use ld_core::{EvalBackend, EvalBackendError, Evaluator, FaultEvents, Haplotype};
use ld_data::SnpId;
use ld_observe::span::names as span_names;
use ld_observe::{
    Counter, Event, FleetWatch, Gauge, Histogram, Observer, SlaveHealth, LATENCY_MS_BUCKETS,
};
use std::io::BufWriter;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Tunable fault-tolerance knobs of a [`TcpSlavePool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Per-request read deadline; a response not arriving in time counts
    /// as a request failure (retried like a connection error).
    pub request_timeout: Duration,
    /// Re-attempts per request (each over a fresh connection) before the
    /// slave is retired and the job requeued.
    pub max_retries: u32,
    /// Base sleep between request retries (multiplied by the attempt
    /// number: linear backoff bounded by `max_retries`).
    pub retry_backoff: Duration,
    /// Sleep before the first rejoin probe of a retired slave.
    pub rejoin_backoff: Duration,
    /// Cap on the exponentially growing rejoin backoff.
    pub max_rejoin_backoff: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            request_timeout: Duration::from_secs(10),
            max_retries: 2,
            retry_backoff: Duration::from_millis(25),
            rejoin_backoff: Duration::from_millis(50),
            max_rejoin_backoff: Duration::from_secs(2),
        }
    }
}

struct ConnIo {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    /// Protocol version the slave greeted with; v≥2 peers answer with
    /// `EvalResult` (timing attached) instead of `EvalResponse`.
    peer_version: u32,
}

/// Timing a v2 slave attached to its reply; `None` for v1 peers (the
/// field is *absent*, never zero-as-data).
#[derive(Debug, Clone, Copy)]
struct SlaveCompute {
    compute_us: u32,
    scratch_warm: bool,
}

/// Connection state of one slave: live (`io` present) or retired (`io`
/// absent, with rejoin bookkeeping).
struct Link {
    io: Option<ConnIo>,
    failed_rejoins: u32,
    next_rejoin: Instant,
}

/// One slave slot. The lock serializes request/response traffic per slave
/// (each dispatch runs at most one worker thread per slot).
struct SlaveSlot {
    addr: String,
    link: Mutex<Link>,
    /// Requests served over the pool's lifetime (never reset).
    served: AtomicU64,
    /// Total round-trip time of served requests, in nanoseconds.
    rtt_ns: AtomicU64,
    /// Total slave-reported compute time (v2 peers only), microseconds.
    compute_us: AtomicU64,
    /// Requests that carried a compute-time report (v2 peers only).
    compute_samples: AtomicU64,
    /// Most recent request or reconnect failure, for the health table.
    /// Cleared on the next successful request, so a populated value
    /// means "failing now", not "failed once long ago".
    /// Lock order: `link` before `last_error` (never the reverse).
    last_error: Mutex<Option<String>>,
    /// Failures over the slot's lifetime (never reset: history survives
    /// the `last_error` clear).
    errors: AtomicU64,
    /// Wall-clock timestamp (ms since epoch) of the most recent failure;
    /// 0 = never failed. Not cleared on success, so the health table can
    /// still say *when* a recovered slave last failed.
    last_error_ts_ms: AtomicU64,
    /// Per-slave metric handles, registered when an observer attaches.
    metrics: OnceLock<SlotMetrics>,
}

impl SlaveSlot {
    fn new(addr: String, io: ConnIo) -> SlaveSlot {
        SlaveSlot {
            addr,
            link: Mutex::new(Link {
                io: Some(io),
                failed_rejoins: 0,
                next_rejoin: Instant::now(),
            }),
            served: AtomicU64::new(0),
            rtt_ns: AtomicU64::new(0),
            compute_us: AtomicU64::new(0),
            compute_samples: AtomicU64::new(0),
            last_error: Mutex::new(None),
            errors: AtomicU64::new(0),
            last_error_ts_ms: AtomicU64::new(0),
            metrics: OnceLock::new(),
        }
    }

    fn note_error(&self, err: &ProtoError) {
        *self.last_error.lock().unwrap() = Some(err.to_string());
        self.errors.fetch_add(1, Ordering::Relaxed);
        self.last_error_ts_ms.store(now_ms(), Ordering::Relaxed);
    }

    /// Record one successfully served request: its round-trip time and,
    /// for v2 slaves, the slave's own compute time. Clears `last_error` —
    /// the slot is demonstrably healthy again — while `errors` and
    /// `last_error_ts_ms` keep the history.
    fn note_served(&self, rtt: Duration, compute: Option<SlaveCompute>) {
        self.last_error.lock().unwrap().take();
        self.served.fetch_add(1, Ordering::Relaxed);
        self.rtt_ns
            .fetch_add(rtt.as_nanos() as u64, Ordering::Relaxed);
        if let Some(c) = compute {
            self.compute_us
                .fetch_add(u64::from(c.compute_us), Ordering::Relaxed);
            self.compute_samples.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(m) = self.metrics.get() {
            m.served.inc();
            m.rtt_ms.observe(rtt.as_secs_f64() * 1e3);
            if let Some(c) = compute {
                m.compute_ms.observe(f64::from(c.compute_us) / 1e3);
                if !c.scratch_warm {
                    // First evaluation on a fresh connection: scratch
                    // allocation is on this request's critical path.
                    m.cold_evals.inc();
                }
            }
        }
    }
}

/// Registry handles for one slave (labelled by address).
struct SlotMetrics {
    served: Counter,
    rtt_ms: Histogram,
    compute_ms: Histogram,
    cold_evals: Counter,
}

#[derive(Default)]
struct PoolFaults {
    retries: AtomicU64,
    retirements: AtomicU64,
    rejoins: AtomicU64,
    requeued: AtomicU64,
}

/// A pool of remote evaluation slaves implementing [`Evaluator`] and
/// [`EvalBackend`].
pub struct TcpSlavePool {
    slaves: Vec<SlaveSlot>,
    n_snps: usize,
    cfg: PoolConfig,
    next_id: AtomicU64,
    faults: PoolFaults,
    /// Attached observability handle (disabled until [`set_observer`]).
    ///
    /// [`set_observer`]: TcpSlavePool::set_observer
    observer: OnceLock<Observer>,
    /// Gauge mirroring [`TcpSlavePool::alive`], updated on retire/rejoin.
    active_gauge: OnceLock<Gauge>,
    /// Fleet anomaly watchdog, created when an observer attaches; `None`
    /// means the whole anomaly layer is inert (no baselines, no locks).
    watch: OnceLock<FleetWatch>,
}

/// Pool construction errors.
#[derive(Debug)]
pub enum PoolError {
    /// No addresses supplied.
    NoSlaves,
    /// A slave could not be reached or greeted.
    Connect {
        /// Slave address.
        addr: String,
        /// Underlying failure.
        source: ProtoError,
    },
    /// Slaves disagree about the dataset width.
    InconsistentPanels {
        /// Widths seen, in address order.
        widths: Vec<u32>,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::NoSlaves => write!(f, "no slave addresses supplied"),
            PoolError::Connect { addr, source } => write!(f, "connecting {addr}: {source}"),
            PoolError::InconsistentPanels { widths } => {
                write!(f, "slaves serve different panels: {widths:?}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

impl TcpSlavePool {
    /// Connect to every address and perform the `Hello` handshake, with
    /// the default [`PoolConfig`].
    pub fn connect(addrs: &[String]) -> Result<TcpSlavePool, PoolError> {
        Self::connect_with(addrs, PoolConfig::default())
    }

    /// [`TcpSlavePool::connect`] with explicit fault-tolerance knobs.
    pub fn connect_with(addrs: &[String], cfg: PoolConfig) -> Result<TcpSlavePool, PoolError> {
        if addrs.is_empty() {
            return Err(PoolError::NoSlaves);
        }
        let mut slaves = Vec::with_capacity(addrs.len());
        let mut widths = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let (io, n_snps) =
                Self::connect_io(addr, &cfg).map_err(|source| PoolError::Connect {
                    addr: addr.clone(),
                    source,
                })?;
            widths.push(n_snps);
            slaves.push(SlaveSlot::new(addr.clone(), io));
        }
        if widths.windows(2).any(|w| w[0] != w[1]) {
            return Err(PoolError::InconsistentPanels { widths });
        }
        Ok(TcpSlavePool {
            n_snps: widths[0] as usize,
            slaves,
            cfg,
            next_id: AtomicU64::new(1),
            faults: PoolFaults::default(),
            observer: OnceLock::new(),
            active_gauge: OnceLock::new(),
            watch: OnceLock::new(),
        })
    }

    /// Open one connection and perform the `Hello` handshake (also applies
    /// the per-request read deadline to the socket). Peers announcing any
    /// version in `MIN_SUPPORTED_VERSION..=PROTOCOL_VERSION` are accepted;
    /// a v≥2 slave additionally receives our own `Hello` so it upgrades
    /// to timed `EvalResult` replies (a v1 slave is never sent a frame it
    /// wouldn't understand).
    fn connect_io(addr: &str, cfg: &PoolConfig) -> Result<(ConnIo, u32), ProtoError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(cfg.request_timeout))?;
        let mut reader = stream.try_clone()?;
        let mut writer = BufWriter::new(stream);
        let (peer_version, n_snps) = match read_message(&mut reader)? {
            Message::Hello { version, n_snps } => {
                if !(MIN_SUPPORTED_VERSION..=PROTOCOL_VERSION).contains(&version) {
                    return Err(ProtoError::VersionMismatch {
                        ours: PROTOCOL_VERSION,
                        theirs: version,
                    });
                }
                (version, n_snps)
            }
            other => {
                return Err(ProtoError::Malformed(format!(
                    "expected Hello, got {other:?}"
                )))
            }
        };
        if peer_version >= 2 {
            write_message(
                &mut writer,
                &Message::Hello {
                    version: PROTOCOL_VERSION,
                    n_snps: 0, // the master serves no panel; width is the slave's to announce
                },
            )?;
        }
        Ok((
            ConnIo {
                reader,
                writer,
                peer_version,
            },
            n_snps,
        ))
    }

    /// Number of slaves currently live (connected).
    pub fn alive(&self) -> usize {
        self.slaves
            .iter()
            .filter(|s| s.link.lock().unwrap().io.is_some())
            .count()
    }

    /// Addresses of retired (disconnected) slaves.
    pub fn dead_slaves(&self) -> Vec<String> {
        self.slaves
            .iter()
            .filter(|s| s.link.lock().unwrap().io.is_none())
            .map(|s| s.addr.clone())
            .collect()
    }

    /// The pool's fault-tolerance configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.cfg
    }

    /// Attach an [`Observer`]: pool transitions (retire, rejoin, retry,
    /// requeue) are emitted as events — inheriting whatever
    /// generation/batch span the engine and scheduler have stamped — and
    /// per-slave request metrics are registered in the observer's
    /// registry. The first call wins; later calls are ignored (the pool
    /// is shared behind `&self` during dispatch).
    pub fn set_observer(&self, observer: Observer) {
        if self.observer.get().is_some() {
            return;
        }
        if let Some(reg) = observer.registry() {
            let active = reg.gauge("ld_net_pool_active_slaves", "Slaves currently connected");
            active.set(self.alive() as f64);
            let _ = self.active_gauge.set(active);
            for slot in &self.slaves {
                let labels = [("slave", slot.addr.as_str())];
                let _ = slot.metrics.set(SlotMetrics {
                    served: reg.counter_with(
                        "ld_net_slave_served_total",
                        "Requests served, per slave",
                        &labels,
                    ),
                    rtt_ms: reg.histogram_with(
                        "ld_net_slave_rtt_ms",
                        "Request round-trip time per slave (ms)",
                        LATENCY_MS_BUCKETS,
                        &labels,
                    ),
                    compute_ms: reg.histogram_with(
                        "ld_net_slave_compute_ms",
                        "Slave-reported compute time per request (ms, v2 slaves only)",
                        LATENCY_MS_BUCKETS,
                        &labels,
                    ),
                    cold_evals: reg.counter_with(
                        "ld_net_slave_cold_evals_total",
                        "Requests served on a cold (first-use) scratch workspace",
                        &labels,
                    ),
                });
            }
        }
        for slot in &self.slaves {
            observer.emit_with(|| Event::SlaveJoined {
                slave: slot.addr.clone(),
            });
        }
        // The anomaly watchdog rides the observer: per-request samples
        // start flowing the moment one is attached, and verdicts are
        // emitted as typed events into the same stream.
        let watch = FleetWatch::default();
        watch.set_observer(observer.clone());
        let _ = self.watch.set(watch);
        let _ = self.observer.set(observer);
    }

    /// The attached observer, or a disabled one.
    fn obs(&self) -> Observer {
        self.observer.get().cloned().unwrap_or_default()
    }

    /// The fleet watchdog, present once an observer is attached. Useful
    /// for mounting its `GET /fleet` rollup on an expose server.
    pub fn watch(&self) -> Option<&FleetWatch> {
        self.watch.get()
    }

    fn update_active_gauge(&self) {
        if let Some(g) = self.active_gauge.get() {
            g.set(self.alive() as f64);
        }
    }

    /// Per-slave health table: requests served, mean round-trip time,
    /// retired flag, the most recent error (populated only while the
    /// slave is actually failing — cleared by the next success), the
    /// failure history (`errors`, `last_error_ts_ms`), and any standing
    /// watchdog verdict. Feeds the unified run report; counters
    /// accumulate over the pool's lifetime.
    pub fn health(&self) -> Vec<SlaveHealth> {
        self.slaves
            .iter()
            .map(|s| {
                let served = s.served.load(Ordering::Relaxed);
                let rtt_ns = s.rtt_ns.load(Ordering::Relaxed);
                let compute_samples = s.compute_samples.load(Ordering::Relaxed);
                let error_ts = s.last_error_ts_ms.load(Ordering::Relaxed);
                SlaveHealth {
                    addr: s.addr.clone(),
                    served,
                    mean_rtt_ms: if served == 0 {
                        0.0
                    } else {
                        rtt_ns as f64 / served as f64 / 1e6
                    },
                    // Absent (not zero) when the slave never reported
                    // compute time — i.e. it speaks protocol v1.
                    mean_compute_ms: if compute_samples == 0 {
                        None
                    } else {
                        Some(
                            s.compute_us.load(Ordering::Relaxed) as f64
                                / compute_samples as f64
                                / 1e3,
                        )
                    },
                    retired: s.link.lock().unwrap().io.is_none(),
                    last_error: s.last_error.lock().unwrap().clone(),
                    errors: s.errors.load(Ordering::Relaxed),
                    last_error_ts_ms: if error_ts == 0 { None } else { Some(error_ts) },
                    flagged: self
                        .watch
                        .get()
                        .and_then(|w| w.flagged(&s.addr))
                        .map(|k| k.as_str().to_string()),
                }
            })
            .collect()
    }

    /// Probe every retired slave whose backoff has elapsed; successful
    /// reconnects rejoin the pool. Called at the start of every dispatch
    /// and by [`TcpSlavePool::try_evaluate_one`].
    fn try_rejoin_retired(&self) {
        let now = Instant::now();
        let mut rejoined: Vec<&str> = Vec::new();
        for slot in &self.slaves {
            let mut link = slot.link.lock().unwrap();
            if link.io.is_some() || now < link.next_rejoin {
                continue;
            }
            match Self::connect_io(&slot.addr, &self.cfg) {
                Ok((io, n_snps)) if n_snps as usize == self.n_snps => {
                    link.io = Some(io);
                    link.failed_rejoins = 0;
                    self.faults.rejoins.fetch_add(1, Ordering::Relaxed);
                    rejoined.push(&slot.addr);
                }
                _ => {
                    link.failed_rejoins = link.failed_rejoins.saturating_add(1);
                    let backoff = self
                        .cfg
                        .rejoin_backoff
                        .saturating_mul(1u32 << link.failed_rejoins.min(16))
                        .min(self.cfg.max_rejoin_backoff);
                    link.next_rejoin = Instant::now() + backoff;
                }
            }
        }
        if !rejoined.is_empty() {
            let obs = self.obs();
            for addr in rejoined {
                obs.emit_with(|| Event::SlaveRejoined { slave: addr.into() });
                if let Some(w) = self.watch.get() {
                    w.note_rejoined(addr);
                }
            }
            self.update_active_gauge();
        }
    }

    /// Retire a slave: sever its connection and schedule a rejoin probe.
    fn retire(&self, slot: &SlaveSlot) {
        {
            let mut link = slot.link.lock().unwrap();
            link.io = None;
            link.failed_rejoins = 0;
            link.next_rejoin = Instant::now() + self.cfg.rejoin_backoff;
        }
        self.faults.retirements.fetch_add(1, Ordering::Relaxed);
        self.obs().emit_with(|| Event::SlaveRetired {
            slave: slot.addr.clone(),
        });
        if let Some(w) = self.watch.get() {
            w.note_retired(&slot.addr);
        }
        self.update_active_gauge();
    }

    /// Send one request on an open connection and wait for its response
    /// (bounded by the socket's read deadline). The send and the
    /// response wait are timed as `net.send` / `net.roundtrip` spans
    /// (nested under the caller's `request` span via the thread-local
    /// stack; inert when the observer is disabled).
    fn request_once(
        io: &mut ConnIo,
        id: u64,
        snps: &[SnpId],
        obs: &Observer,
    ) -> Result<(f64, Option<SlaveCompute>), ProtoError> {
        let send_span = obs.span(span_names::NET_SEND);
        write_message(
            &mut io.writer,
            &Message::EvalRequest {
                id,
                snps: snps.to_vec(),
            },
        )?;
        drop(send_span);
        let _roundtrip_span = obs.span(span_names::NET_ROUNDTRIP);
        loop {
            match read_message(&mut io.reader)? {
                Message::EvalResponse { id: rid, fitness } if rid == id => {
                    return Ok((fitness, None))
                }
                Message::EvalResult {
                    id: rid,
                    fitness,
                    compute_us,
                    scratch_warm,
                } if rid == id => {
                    if io.peer_version < 2 {
                        return Err(ProtoError::Malformed(
                            "EvalResult from a v1 slave".to_string(),
                        ));
                    }
                    return Ok((
                        fitness,
                        Some(SlaveCompute {
                            compute_us,
                            scratch_warm,
                        }),
                    ));
                }
                Message::EvalResponse { .. } | Message::EvalResult { .. } => {
                    // A stale response from an earlier, abandoned request;
                    // skip it and keep waiting for ours.
                    continue;
                }
                other => {
                    return Err(ProtoError::Malformed(format!(
                        "unexpected message from slave: {other:?}"
                    )))
                }
            }
        }
    }

    /// Evaluate `snps` on `slot`, reconnecting and retrying (with linear
    /// backoff) on failure. `None` means the slot must be retired.
    fn request_with_retry(&self, slot: &SlaveSlot, snps: &[SnpId]) -> Option<f64> {
        let obs = self.obs();
        for attempt in 0..=self.cfg.max_retries {
            if attempt > 0 {
                self.faults.retries.fetch_add(1, Ordering::Relaxed);
                obs.emit_with(|| Event::RequestRetried {
                    slave: slot.addr.clone(),
                    attempt,
                });
                // Backoff is pure overhead; attribute it separately from
                // the request itself.
                let retry_span = obs.span_under(span_names::NET_RETRY, obs.dispatch_span());
                std::thread::sleep(self.cfg.retry_backoff.saturating_mul(attempt));
                drop(retry_span);
            }
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            // One attempt = connect (if severed) + send + wait. Parented
            // under the scheduler's published dispatch span because pool
            // workers run on their own threads.
            let request_span = obs.span_under(span_names::REQUEST, obs.dispatch_span());
            let mut link = slot.link.lock().unwrap();
            if link.io.is_none() {
                match Self::connect_io(&slot.addr, &self.cfg) {
                    Ok((io, n_snps)) if n_snps as usize == self.n_snps => link.io = Some(io),
                    Err(e) => {
                        slot.note_error(&e);
                        continue;
                    }
                    Ok(_) => continue, // panel width changed under us
                }
            }
            let io = link.io.as_mut().expect("connection ensured above");
            let started = Instant::now();
            match Self::request_once(io, id, snps, &obs) {
                Ok((fitness, compute)) => {
                    let rtt = started.elapsed();
                    slot.note_served(rtt, compute);
                    if let Some(w) = self.watch.get() {
                        w.observe_request(
                            &slot.addr,
                            rtt,
                            compute.map(|c| f64::from(c.compute_us) / 1e3),
                            attempt > 0,
                        );
                    }
                    if let Some(c) = compute {
                        // The slave's own clock: a synthetic span nested
                        // under this request, so attribution can carve
                        // compute out of the round-trip.
                        obs.record_span(
                            span_names::COMPUTE,
                            request_span.id(),
                            Duration::from_micros(u64::from(c.compute_us)),
                        );
                    }
                    return Some(fitness);
                }
                Err(e) => {
                    // A half-read stream cannot be reused: sever it so the
                    // next attempt (or rejoin probe) starts clean.
                    link.io = None;
                    slot.note_error(&e);
                }
            }
        }
        None
    }

    /// Evaluate one haplotype, surfacing total slave loss as a typed error
    /// instead of panicking.
    pub fn try_evaluate_one(&self, snps: &[SnpId]) -> Result<f64, EvalBackendError> {
        self.try_rejoin_retired();
        for slot in &self.slaves {
            if slot.link.lock().unwrap().io.is_none() {
                continue;
            }
            match self.request_with_retry(slot, snps) {
                Some(f) => return Ok(f),
                None => self.retire(slot),
            }
        }
        Err(EvalBackendError::AllWorkersFailed {
            outstanding: 1,
            total: 1,
        })
    }

    /// Drain the pool's fault counters (shared by both trait impls).
    fn drain_faults(&self) -> FaultEvents {
        FaultEvents {
            retries: self.faults.retries.swap(0, Ordering::Relaxed),
            retirements: self.faults.retirements.swap(0, Ordering::Relaxed),
            rejoins: self.faults.rejoins.swap(0, Ordering::Relaxed),
            requeued: self.faults.requeued.swap(0, Ordering::Relaxed),
        }
    }
}

/// Shared state of one in-flight batch, guarded by a mutex + condvar
/// (replacing the former sleep/`recv_timeout` polling loops): workers
/// sleep on the condvar when the stack is empty, and are woken by a
/// requeue or by batch completion.
struct BatchState {
    /// Jobs not yet claimed (requeued jobs land back here).
    work: Vec<(usize, Vec<SnpId>)>,
    /// Completed `(index, fitness)` pairs.
    results: Vec<(usize, f64)>,
    /// Jobs without a result yet (claimed or not).
    outstanding: usize,
}

impl EvalBackend for TcpSlavePool {
    fn n_snps(&self) -> usize {
        self.n_snps
    }

    fn queue_depth(&self) -> usize {
        0 // dispatch is synchronous; no jobs linger between batches
    }

    fn backend_name(&self) -> &'static str {
        "tcp-slave-pool"
    }

    fn take_fault_events(&self) -> FaultEvents {
        self.drain_faults()
    }

    fn dispatch(&self, batch: &mut [Haplotype]) -> Result<(), EvalBackendError> {
        if batch.is_empty() {
            return Ok(());
        }
        self.try_rejoin_retired();
        let live: Vec<&SlaveSlot> = self
            .slaves
            .iter()
            .filter(|s| s.link.lock().unwrap().io.is_some())
            .collect();
        let total = batch.len();
        if live.is_empty() {
            return Err(EvalBackendError::AllWorkersFailed {
                outstanding: total,
                total,
            });
        }

        let monitor = Mutex::new(BatchState {
            work: batch
                .iter()
                .enumerate()
                .map(|(i, h)| (i, h.snps().to_vec()))
                .collect(),
            results: Vec::with_capacity(total),
            outstanding: total,
        });
        let work_cv = Condvar::new();

        std::thread::scope(|scope| {
            for slot in live {
                let monitor = &monitor;
                let work_cv = &work_cv;
                scope.spawn(move || loop {
                    // Claim a job, or sleep until one is requeued / the
                    // batch completes.
                    let claim_started = Instant::now();
                    let (index, snps) = {
                        let mut st = monitor.lock().unwrap();
                        loop {
                            if st.outstanding == 0 {
                                return;
                            }
                            if let Some(job) = st.work.pop() {
                                break job;
                            }
                            st = work_cv.wait(st).unwrap();
                        }
                    };
                    // Time this worker spent waiting for work (lock +
                    // condvar); recorded only for a claimed job, so the
                    // final batch-done wakeup never counts.
                    let obs = self.obs();
                    obs.record_span(
                        span_names::QUEUE,
                        obs.dispatch_span(),
                        claim_started.elapsed(),
                    );
                    match self.request_with_retry(slot, &snps) {
                        Some(fitness) => {
                            let mut st = monitor.lock().unwrap();
                            st.results.push((index, fitness));
                            st.outstanding -= 1;
                            if st.outstanding == 0 {
                                work_cv.notify_all();
                            }
                        }
                        None => {
                            // Retries exhausted: requeue the job (never
                            // lost), wake a peer to take it, retire the
                            // slave, and exit this worker.
                            self.retire(slot);
                            self.faults.requeued.fetch_add(1, Ordering::Relaxed);
                            self.obs().emit_with(|| Event::JobRequeued {
                                slave: slot.addr.clone(),
                            });
                            let mut st = monitor.lock().unwrap();
                            st.work.push((index, snps));
                            work_cv.notify_all();
                            return;
                        }
                    }
                });
            }
        });

        let st = monitor.into_inner().unwrap();
        for &(index, fitness) in &st.results {
            batch[index].set_fitness(fitness);
        }
        if st.outstanding > 0 {
            // Every worker retired mid-batch. Completed jobs keep their
            // results (the EvalBackend residue contract), so a fallback
            // backend only re-evaluates what is still unevaluated.
            return Err(EvalBackendError::AllWorkersFailed {
                outstanding: st.outstanding,
                total,
            });
        }
        Ok(())
    }
}

impl Evaluator for TcpSlavePool {
    fn n_snps(&self) -> usize {
        self.n_snps
    }

    fn evaluate_one(&self, snps: &[SnpId]) -> f64 {
        // Legacy infallible API; prefer `try_evaluate_one`.
        self.try_evaluate_one(snps)
            .expect("every evaluation slave failed and none could be rejoined")
    }

    fn evaluate_batch(&self, batch: &mut [Haplotype]) {
        // Legacy infallible API; prefer `try_evaluate_batch`.
        self.dispatch(batch)
            .expect("every evaluation slave failed and none could be rejoined")
    }

    fn try_evaluate_batch(&self, batch: &mut [Haplotype]) -> Result<(), EvalBackendError> {
        self.dispatch(batch)
    }

    fn take_fault_events(&self) -> FaultEvents {
        self.drain_faults()
    }
}

impl Drop for TcpSlavePool {
    fn drop(&mut self) {
        for slot in &self.slaves {
            let mut link = slot.link.lock().unwrap();
            if let Some(io) = link.io.as_mut() {
                let _ = write_message(&mut io.writer, &Message::Shutdown);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::TcpListener;

    /// A fake peer that greets with the wrong protocol version.
    fn spawn_bad_version_peer() -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                let hello = Message::Hello {
                    version: PROTOCOL_VERSION + 1,
                    n_snps: 51,
                };
                let _ = stream.write_all(&hello.encode());
                // Hold the socket briefly so the master reads the greeting.
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        });
        addr
    }

    #[test]
    fn version_mismatch_is_rejected_at_connect() {
        let addr = spawn_bad_version_peer();
        let err = match TcpSlavePool::connect(&[addr.to_string()]) {
            Err(e) => e,
            Ok(_) => panic!("connected to an incompatible peer"),
        };
        match err {
            PoolError::Connect { source, .. } => {
                assert!(
                    matches!(source, ProtoError::VersionMismatch { .. }),
                    "wrong source: {source}"
                );
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    /// A fake peer that sends garbage instead of a Hello.
    #[test]
    fn non_hello_greeting_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                let msg = Message::Shutdown;
                let _ = stream.write_all(&msg.encode());
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        });
        let err = match TcpSlavePool::connect(&[addr.to_string()]) {
            Err(e) => e,
            Ok(_) => panic!("connected despite bad greeting"),
        };
        assert!(matches!(
            err,
            PoolError::Connect {
                source: ProtoError::Malformed(_),
                ..
            }
        ));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = PoolConfig::default();
        assert!(cfg.request_timeout >= Duration::from_secs(1));
        assert!(cfg.max_retries >= 1);
        assert!(cfg.rejoin_backoff <= cfg.max_rejoin_backoff);
    }
}
