//! The master side: a pool of TCP slave connections behind the
//! [`EvalBackend`] dispatch seam (and, for compatibility, the
//! [`Evaluator`] trait).
//!
//! [`EvalBackend::dispatch`] is one synchronous evaluation phase (paper
//! Figure 6):
//! jobs go into a shared work stack; one master-side thread per live slave
//! pulls jobs on demand (PVM-style task farming, so a slow node simply
//! takes fewer jobs), sends the request, and waits for the response.
//!
//! **Fault tolerance:** if a slave connection fails mid-batch, its
//! in-flight job is pushed back onto the stack, the slave is retired, and
//! the remaining slaves finish the batch. Only when *every* slave has
//! failed does the pool panic (the engine cannot make progress without
//! fitness values).

use crate::protocol::{read_message, write_message, Message, ProtoError, PROTOCOL_VERSION};
use crossbeam::channel::{unbounded, RecvTimeoutError};
use ld_core::{EvalBackend, Evaluator, Haplotype};
use ld_data::SnpId;
use parking_lot::Mutex;
use std::io::BufWriter;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// One slave connection (stream halves behind a lock, since the pool is
/// shared by reference).
struct SlaveConn {
    addr: String,
    io: Mutex<ConnIo>,
    dead: AtomicBool,
}

struct ConnIo {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

/// A pool of remote evaluation slaves implementing [`Evaluator`].
pub struct TcpSlavePool {
    slaves: Vec<SlaveConn>,
    n_snps: usize,
}

/// Pool construction errors.
#[derive(Debug)]
pub enum PoolError {
    /// No addresses supplied.
    NoSlaves,
    /// A slave could not be reached or greeted.
    Connect {
        /// Slave address.
        addr: String,
        /// Underlying failure.
        source: ProtoError,
    },
    /// Slaves disagree about the dataset width.
    InconsistentPanels {
        /// Widths seen, in address order.
        widths: Vec<u32>,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::NoSlaves => write!(f, "no slave addresses supplied"),
            PoolError::Connect { addr, source } => write!(f, "connecting {addr}: {source}"),
            PoolError::InconsistentPanels { widths } => {
                write!(f, "slaves serve different panels: {widths:?}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

impl TcpSlavePool {
    /// Connect to every address and perform the `Hello` handshake.
    pub fn connect(addrs: &[String]) -> Result<TcpSlavePool, PoolError> {
        if addrs.is_empty() {
            return Err(PoolError::NoSlaves);
        }
        let mut slaves = Vec::with_capacity(addrs.len());
        let mut widths = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let (conn, n_snps) = Self::connect_one(addr).map_err(|source| PoolError::Connect {
                addr: addr.clone(),
                source,
            })?;
            widths.push(n_snps);
            slaves.push(conn);
        }
        if widths.windows(2).any(|w| w[0] != w[1]) {
            return Err(PoolError::InconsistentPanels { widths });
        }
        Ok(TcpSlavePool {
            n_snps: widths[0] as usize,
            slaves,
        })
    }

    fn connect_one(addr: &str) -> Result<(SlaveConn, u32), ProtoError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut reader = stream.try_clone()?;
        let writer = BufWriter::new(stream);
        let n_snps = match read_message(&mut reader)? {
            Message::Hello { version, n_snps } => {
                if version != PROTOCOL_VERSION {
                    return Err(ProtoError::VersionMismatch {
                        ours: PROTOCOL_VERSION,
                        theirs: version,
                    });
                }
                n_snps
            }
            other => {
                return Err(ProtoError::Malformed(format!(
                    "expected Hello, got {other:?}"
                )))
            }
        };
        Ok((
            SlaveConn {
                addr: addr.to_string(),
                io: Mutex::new(ConnIo { reader, writer }),
                dead: AtomicBool::new(false),
            },
            n_snps,
        ))
    }

    /// Number of slaves still considered alive.
    pub fn alive(&self) -> usize {
        self.slaves
            .iter()
            .filter(|s| !s.dead.load(Ordering::Relaxed))
            .count()
    }

    /// Addresses of retired (failed) slaves.
    pub fn dead_slaves(&self) -> Vec<String> {
        self.slaves
            .iter()
            .filter(|s| s.dead.load(Ordering::Relaxed))
            .map(|s| s.addr.clone())
            .collect()
    }

    /// Send one request on one connection and wait for its response.
    fn request(conn: &SlaveConn, id: u64, snps: &[SnpId]) -> Result<f64, ProtoError> {
        let mut io = conn.io.lock();
        write_message(
            &mut io.writer,
            &Message::EvalRequest {
                id,
                snps: snps.to_vec(),
            },
        )?;
        loop {
            match read_message(&mut io.reader)? {
                Message::EvalResponse { id: rid, fitness } if rid == id => return Ok(fitness),
                Message::EvalResponse { .. } => {
                    // A stale response from a requeued job evaluated twice;
                    // skip it and keep waiting for ours.
                    continue;
                }
                other => {
                    return Err(ProtoError::Malformed(format!(
                        "unexpected message from slave: {other:?}"
                    )))
                }
            }
        }
    }
}

impl EvalBackend for TcpSlavePool {
    fn n_snps(&self) -> usize {
        self.n_snps
    }

    fn queue_depth(&self) -> usize {
        0 // dispatch is synchronous; no jobs linger between batches
    }

    fn backend_name(&self) -> &'static str {
        "tcp-slave-pool"
    }

    fn dispatch(&self, batch: &mut [Haplotype]) {
        if batch.is_empty() {
            return;
        }
        // Shared work stack: (index, snps). Requeued jobs land back here.
        let work: Mutex<Vec<(usize, Vec<SnpId>)>> = Mutex::new(
            batch
                .iter()
                .enumerate()
                .map(|(i, h)| (i, h.snps().to_vec()))
                .collect(),
        );
        let (result_tx, result_rx) = unbounded::<(usize, f64)>();
        let done = AtomicBool::new(false);
        let alive_workers = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for conn in &self.slaves {
                if conn.dead.load(Ordering::Relaxed) {
                    continue;
                }
                alive_workers.fetch_add(1, Ordering::SeqCst);
                let work = &work;
                let result_tx = result_tx.clone();
                let done = &done;
                let alive_workers = &alive_workers;
                scope.spawn(move || {
                    let mut next_id: u64 = 1;
                    loop {
                        if done.load(Ordering::Relaxed) {
                            break;
                        }
                        let job = work.lock().pop();
                        let Some((index, snps)) = job else {
                            // Stack empty: the batch may still be finishing
                            // on other slaves (and could requeue on their
                            // failure), so poll briefly.
                            std::thread::sleep(Duration::from_millis(1));
                            continue;
                        };
                        match Self::request(conn, next_id, &snps) {
                            Ok(fitness) => {
                                next_id += 1;
                                let _ = result_tx.send((index, fitness));
                            }
                            Err(_) => {
                                // Slave failed: requeue the job, retire.
                                conn.dead.store(true, Ordering::Relaxed);
                                work.lock().push((index, snps));
                                break;
                            }
                        }
                    }
                    alive_workers.fetch_sub(1, Ordering::SeqCst);
                });
            }
            drop(result_tx);

            let mut received = 0usize;
            while received < batch.len() {
                match result_rx.recv_timeout(Duration::from_millis(100)) {
                    Ok((index, fitness)) => {
                        batch[index].set_fitness(fitness);
                        received += 1;
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        if alive_workers.load(Ordering::SeqCst) == 0 {
                            done.store(true, Ordering::Relaxed);
                            panic!(
                                "all evaluation slaves failed with {} of {} jobs outstanding",
                                batch.len() - received,
                                batch.len()
                            );
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        if received < batch.len() {
                            done.store(true, Ordering::Relaxed);
                            panic!(
                                "all evaluation slaves failed with {} of {} jobs outstanding",
                                batch.len() - received,
                                batch.len()
                            );
                        }
                    }
                }
            }
            done.store(true, Ordering::Relaxed);
        });
    }
}

impl Evaluator for TcpSlavePool {
    fn n_snps(&self) -> usize {
        self.n_snps
    }

    fn evaluate_one(&self, snps: &[SnpId]) -> f64 {
        for conn in &self.slaves {
            if conn.dead.load(Ordering::Relaxed) {
                continue;
            }
            match Self::request(conn, 0, snps) {
                Ok(f) => return f,
                Err(_) => {
                    conn.dead.store(true, Ordering::Relaxed);
                }
            }
        }
        panic!("every evaluation slave has failed");
    }

    fn evaluate_batch(&self, batch: &mut [Haplotype]) {
        self.dispatch(batch);
    }
}

impl Drop for TcpSlavePool {
    fn drop(&mut self) {
        for conn in &self.slaves {
            if !conn.dead.load(Ordering::Relaxed) {
                let mut io = conn.io.lock();
                let _ = write_message(&mut io.writer, &Message::Shutdown);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::TcpListener;

    /// A fake peer that greets with the wrong protocol version.
    fn spawn_bad_version_peer() -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                let hello = Message::Hello {
                    version: PROTOCOL_VERSION + 1,
                    n_snps: 51,
                };
                let _ = stream.write_all(&hello.encode());
                // Hold the socket briefly so the master reads the greeting.
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        });
        addr
    }

    #[test]
    fn version_mismatch_is_rejected_at_connect() {
        let addr = spawn_bad_version_peer();
        let err = match TcpSlavePool::connect(&[addr.to_string()]) {
            Err(e) => e,
            Ok(_) => panic!("connected to an incompatible peer"),
        };
        match err {
            PoolError::Connect { source, .. } => {
                assert!(
                    matches!(source, ProtoError::VersionMismatch { .. }),
                    "wrong source: {source}"
                );
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    /// A fake peer that sends garbage instead of a Hello.
    #[test]
    fn non_hello_greeting_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((mut stream, _)) = listener.accept() {
                let msg = Message::Shutdown;
                let _ = stream.write_all(&msg.encode());
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        });
        let err = match TcpSlavePool::connect(&[addr.to_string()]) {
            Err(e) => e,
            Ok(_) => panic!("connected despite bad greeting"),
        };
        assert!(matches!(
            err,
            PoolError::Connect {
                source: ProtoError::Malformed(_),
                ..
            }
        ));
    }
}
