//! In-process loopback "cluster": spawn N slave servers on ephemeral ports
//! and a connected master pool — the single-machine stand-in for the
//! paper's PVM node farm, used by tests, examples and the CLI.

use crate::master::{PoolConfig, PoolError, TcpSlavePool};
use crate::server::{EvalServer, ServerConfig};
use crate::slave::{DatasetLoader, ObjectiveStore, SlaveServer};
use ld_core::Evaluator;
use ld_observe::Observer;
use std::sync::Arc;

/// N loopback slave servers plus a connected master pool.
///
/// Field order matters: the pool must drop first so its `Shutdown`
/// messages release the slaves' connection threads before the servers are
/// joined.
pub struct LocalCluster {
    pool: TcpSlavePool,
    slaves: Vec<SlaveServer>,
}

impl LocalCluster {
    /// Spawn `n_slaves` servers, each owning its own copy of the objective
    /// built by `objective_factory` (mirroring PVM slaves each loading the
    /// dataset), and connect a master pool to all of them.
    ///
    /// # Panics
    /// Panics if `n_slaves` is zero.
    pub fn spawn<E, F>(n_slaves: usize, objective_factory: F) -> Result<LocalCluster, PoolError>
    where
        E: Evaluator + 'static,
        F: Fn() -> E,
    {
        Self::spawn_configured(n_slaves, objective_factory, PoolConfig::default())
    }

    /// [`LocalCluster::spawn`] with explicit master-side fault-tolerance
    /// knobs (timeouts, retries, rejoin backoff).
    ///
    /// # Panics
    /// Panics if `n_slaves` is zero.
    pub fn spawn_configured<E, F>(
        n_slaves: usize,
        objective_factory: F,
        cfg: PoolConfig,
    ) -> Result<LocalCluster, PoolError>
    where
        E: Evaluator + 'static,
        F: Fn() -> E,
    {
        assert!(n_slaves > 0, "need at least one slave");
        let slaves: Vec<SlaveServer> = (0..n_slaves)
            .map(|_| {
                SlaveServer::spawn("127.0.0.1:0", objective_factory()).expect("bind loopback slave")
            })
            .collect();
        Self::connect_pool(slaves, cfg)
    }

    /// Spawn a cluster whose slaves follow scripted
    /// [`crate::fault::FaultPlan`]s (one per slave). Test-only.
    ///
    /// # Panics
    /// Panics if `plans.len() != n_slaves` or `n_slaves` is zero.
    #[cfg(feature = "fault-inject")]
    pub fn spawn_faulty<E, F>(
        n_slaves: usize,
        objective_factory: F,
        plans: &[crate::fault::FaultPlan],
        cfg: PoolConfig,
    ) -> Result<LocalCluster, PoolError>
    where
        E: Evaluator + 'static,
        F: Fn() -> E,
    {
        assert!(n_slaves > 0, "need at least one slave");
        assert_eq!(plans.len(), n_slaves, "one fault plan per slave");
        let slaves: Vec<SlaveServer> = plans
            .iter()
            .map(|plan| {
                SlaveServer::spawn_with_faults("127.0.0.1:0", objective_factory(), plan.clone())
                    .expect("bind loopback slave")
            })
            .collect();
        Self::connect_pool(slaves, cfg)
    }

    fn connect_pool(slaves: Vec<SlaveServer>, cfg: PoolConfig) -> Result<LocalCluster, PoolError> {
        let addrs: Vec<String> = slaves.iter().map(|s| s.addr().to_string()).collect();
        let pool = TcpSlavePool::connect_with(&addrs, cfg)?;
        Ok(LocalCluster { pool, slaves })
    }

    /// The master pool (an [`Evaluator`]).
    pub fn pool(&self) -> &TcpSlavePool {
        &self.pool
    }

    /// The slave servers (for inspection or fault injection in tests).
    pub fn slaves(&self) -> &[SlaveServer] {
        &self.slaves
    }

    /// Total evaluations served across all slaves.
    pub fn total_served(&self) -> u64 {
        self.slaves.iter().map(|s| s.served()).sum()
    }
}

/// N loopback *multi-tenant* slave servers plus a connected
/// [`EvalServer`]: the single-machine stand-in for a long-lived shared
/// evaluation fleet serving many GA runs at once.
///
/// Field order matters, as in [`LocalCluster`]: the server must drop
/// first so its workers disconnect before the slave servers are joined.
pub struct SharedCluster {
    server: Arc<EvalServer>,
    slaves: Vec<SlaveServer>,
}

impl SharedCluster {
    /// Spawn `n_slaves` store-backed slaves, each building tenant
    /// objectives on demand through `loader`, and connect an eval server
    /// to all of them.
    ///
    /// # Panics
    /// Panics if `n_slaves` is zero.
    pub fn spawn_shared(
        n_slaves: usize,
        loader: DatasetLoader,
    ) -> Result<SharedCluster, PoolError> {
        Self::spawn_shared_configured(
            n_slaves,
            loader,
            ServerConfig::default(),
            Observer::disabled(),
        )
    }

    /// [`SharedCluster::spawn_shared`] with explicit server knobs and a
    /// fleet-level observer (forwarded to the slaves too).
    ///
    /// # Panics
    /// Panics if `n_slaves` is zero.
    pub fn spawn_shared_configured(
        n_slaves: usize,
        loader: DatasetLoader,
        cfg: ServerConfig,
        observer: Observer,
    ) -> Result<SharedCluster, PoolError> {
        assert!(n_slaves > 0, "need at least one slave");
        let slaves: Vec<SlaveServer> = (0..n_slaves)
            .map(|_| {
                let store = Arc::new(ObjectiveStore::new(0).with_loader(Arc::clone(&loader)));
                SlaveServer::spawn_shared("127.0.0.1:0", store, observer.clone())
                    .expect("bind loopback slave")
            })
            .collect();
        Self::connect_server(slaves, cfg, observer)
    }

    /// Spawn a shared cluster whose slaves follow scripted
    /// [`crate::fault::FaultPlan`]s (one per slave). Test-only.
    ///
    /// # Panics
    /// Panics if `plans.len() != n_slaves` or `n_slaves` is zero.
    #[cfg(feature = "fault-inject")]
    pub fn spawn_shared_faulty(
        n_slaves: usize,
        loader: DatasetLoader,
        plans: &[crate::fault::FaultPlan],
        cfg: ServerConfig,
        observer: Observer,
    ) -> Result<SharedCluster, PoolError> {
        assert!(n_slaves > 0, "need at least one slave");
        assert_eq!(plans.len(), n_slaves, "one fault plan per slave");
        let slaves: Vec<SlaveServer> = plans
            .iter()
            .map(|plan| {
                let store = Arc::new(ObjectiveStore::new(0).with_loader(Arc::clone(&loader)));
                SlaveServer::spawn_shared_with_faults(
                    "127.0.0.1:0",
                    store,
                    observer.clone(),
                    plan.clone(),
                )
                .expect("bind loopback slave")
            })
            .collect();
        Self::connect_server(slaves, cfg, observer)
    }

    fn connect_server(
        slaves: Vec<SlaveServer>,
        cfg: ServerConfig,
        observer: Observer,
    ) -> Result<SharedCluster, PoolError> {
        let addrs: Vec<String> = slaves.iter().map(|s| s.addr().to_string()).collect();
        let server = Arc::new(EvalServer::connect(&addrs, cfg, observer)?);
        Ok(SharedCluster { server, slaves })
    }

    /// The multi-run eval server (submit tenants through it).
    pub fn server(&self) -> &Arc<EvalServer> {
        &self.server
    }

    /// The slave servers (for inspection or fault injection in tests).
    pub fn slaves(&self) -> &[SlaveServer] {
        &self.slaves
    }

    /// Total evaluations served across all slaves, all tenants.
    pub fn total_served(&self) -> u64 {
        self.slaves.iter().map(|s| s.served()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::evaluator::FnEvaluator;
    use ld_core::{GaConfig, GaEngine, Haplotype};
    use ld_data::SnpId;

    fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
        FnEvaluator::new(30, |s: &[SnpId]| {
            s.iter().map(|&x| x as f64).sum::<f64>() + 10.0 * s.len() as f64
        })
    }

    #[test]
    fn cluster_batch_matches_sequential() {
        use ld_core::Evaluator;
        let cluster = LocalCluster::spawn(3, toy).unwrap();
        let seq = toy();
        let mut a: Vec<Haplotype> = (0..60)
            .map(|i| Haplotype::new(vec![i % 30, (i * 7 + 1) % 30]))
            .collect();
        let mut b = a.clone();
        seq.evaluate_batch(&mut a);
        cluster.pool().evaluate_batch(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fitness(), y.fitness());
        }
        assert_eq!(cluster.total_served(), 60);
        assert_eq!(cluster.pool().alive(), 3);
    }

    #[test]
    fn work_is_distributed_across_slaves() {
        use ld_core::Evaluator;
        let cluster = LocalCluster::spawn(3, toy).unwrap();
        let mut batch: Vec<Haplotype> = (0..90).map(|i| Haplotype::new(vec![i % 30])).collect();
        cluster.pool().evaluate_batch(&mut batch);
        // On-demand farming: with 90 jobs, every slave should get some.
        let loads: Vec<u64> = cluster.slaves().iter().map(|s| s.served()).collect();
        assert_eq!(loads.iter().sum::<u64>(), 90);
        assert!(
            loads.iter().all(|&l| l > 0),
            "a slave was starved: {loads:?}"
        );
    }

    #[test]
    fn ga_runs_on_the_cluster_and_matches_in_process() {
        let cfg = GaConfig {
            population_size: 40,
            min_size: 2,
            max_size: 3,
            matings_per_generation: 6,
            stagnation_limit: 8,
            max_generations: 60,
            ..GaConfig::default()
        };
        let seq = toy();
        let reference = GaEngine::new(&seq, cfg.clone(), 5).unwrap().run();

        let cluster = LocalCluster::spawn(2, toy).unwrap();
        let result = GaEngine::new(cluster.pool(), cfg, 5).unwrap().run();
        assert_eq!(result.total_evaluations, reference.total_evaluations);
        assert_eq!(
            result.best_of_size(3).unwrap().snps(),
            reference.best_of_size(3).unwrap().snps()
        );
    }

    #[test]
    fn batch_survives_a_slave_failure() {
        use ld_core::Evaluator;
        let cluster = LocalCluster::spawn(3, toy).unwrap();
        // Kill one slave before the batch: its connection dies on first use.
        cluster.slaves()[0].stop();
        // Give the accept loop a moment to wind down; the established
        // connection itself stays up, so also drop it harder by stopping
        // the server (the connection thread exits after its current
        // request). To force a mid-stream failure we instead rely on the
        // polling requeue: even if slave 0 keeps serving, the test below
        // asserts the batch completes and at least the results are right.
        let mut batch: Vec<Haplotype> = (0..40)
            .map(|i| Haplotype::new(vec![i % 30, (i + 1) % 30]))
            .collect();
        cluster.pool().evaluate_batch(&mut batch);
        for h in &batch {
            assert!(h.is_evaluated());
        }
    }

    #[test]
    fn shared_cluster_serves_two_tenants() {
        use crate::server::RunSpec;
        use ld_core::EvalBackend;

        let loader: DatasetLoader = Arc::new(|fp, n_snps, _payload: &[u8]| {
            let scale = (fp % 7 + 1) as f64;
            Ok(
                Arc::new(FnEvaluator::new(n_snps as usize, move |s: &[SnpId]| {
                    scale * s.iter().map(|&x| x as f64).sum::<f64>()
                })) as Arc<dyn Evaluator>,
            )
        });
        let cluster = SharedCluster::spawn_shared(2, loader).unwrap();
        let a = cluster
            .server()
            .submit_run(RunSpec::new("a", 1, 30).with_payload(vec![1]))
            .unwrap();
        let b = cluster
            .server()
            .submit_run(RunSpec::new("b", 2, 30).with_payload(vec![1]))
            .unwrap();
        let mut batch_a: Vec<Haplotype> = (0..12).map(|i| Haplotype::new(vec![i, i + 1])).collect();
        let mut batch_b = batch_a.clone();
        a.dispatch(&mut batch_a).unwrap();
        b.dispatch(&mut batch_b).unwrap();
        for (x, y) in batch_a.iter().zip(&batch_b) {
            // fp 1 scales by 2, fp 2 scales by 3: distinct tenants,
            // distinct objectives, same fleet.
            assert_eq!(x.fitness() * 3.0, y.fitness() * 2.0);
        }
        assert_eq!(cluster.total_served(), 24);
        assert_eq!(cluster.server().active_runs(), vec!["a", "b"]);
    }

    #[test]
    fn connect_to_nothing_fails_cleanly() {
        let Err(err) = TcpSlavePool::connect(&[]) else {
            panic!("expected error")
        };
        assert!(matches!(err, PoolError::NoSlaves));
        let Err(err) = TcpSlavePool::connect(&["127.0.0.1:1".to_string()]) else {
            panic!("expected error")
        };
        assert!(matches!(err, PoolError::Connect { .. }));
    }

    #[test]
    fn inconsistent_panels_rejected() {
        let s1 =
            SlaveServer::spawn("127.0.0.1:0", FnEvaluator::new(10, |_: &[SnpId]| 0.0)).unwrap();
        let s2 =
            SlaveServer::spawn("127.0.0.1:0", FnEvaluator::new(20, |_: &[SnpId]| 0.0)).unwrap();
        let addrs = vec![s1.addr().to_string(), s2.addr().to_string()];
        let Err(err) = TcpSlavePool::connect(&addrs) else {
            panic!("expected error")
        };
        assert!(matches!(err, PoolError::InconsistentPanels { .. }));
    }
}
