//! # ld-net — distributed master/slaves evaluation over TCP
//!
//! The paper ran its synchronous master/slaves evaluation on a cluster via
//! **C/PVM** (Parallel Virtual Machine): slave processes on remote nodes
//! were "initiated at the beginning", loaded the dataset once, and then
//! exchanged *(solution → fitness)* messages with the master for every
//! evaluation (§4.5, Figure 6). PVM is long obsolete; this crate rebuilds
//! that substrate on plain TCP:
//!
//! * [`protocol`] — a small length-prefixed binary wire format
//!   (`bytes`-based): `Hello` handshake, `EvalRequest { id, snps }`,
//!   `EvalResponse { id, fitness }`, `Shutdown`; protocol v2 adds
//!   `EvalResult` — a reply carrying the slave's own compute time —
//!   negotiated through the existing `Hello` exchange so v1 peers keep
//!   working in both directions (see the [`protocol`] docs).
//! * [`slave`] — the slave daemon: owns the objective (= "accesses the
//!   data once"), accepts master connections, and answers evaluation
//!   requests; one thread per connection.
//! * [`master`] — [`master::TcpSlavePool`], an [`ld_core::Evaluator`]
//!   whose `evaluate_batch` deals jobs to the connected slaves through a
//!   shared work queue (on-demand load balancing, like PVM's task
//!   farming). A slave that dies mid-batch has its in-flight job requeued
//!   and is retired — the batch completes as long as one slave survives.
//! * [`cluster`] — helpers to spawn an in-process loopback "cluster" for
//!   tests, examples and single-machine use.
//! * `fault` *(feature `fault-inject`, test-only)* — deterministic
//!   scripted fault injection: connection drops, slave kills, slow
//!   responses, handshake sabotage. Powers the recovery test suite and
//!   the CI fault matrix.
//!
//! The GA engine does not know any of this exists: the pool plugs into the
//! same batched-evaluation seam as the in-process evaluators. When slaves
//! fail, the pool retries, requeues and rejoins (see `DESIGN.md`,
//! "Failure model of the evaluation layer"); only total slave loss
//! surfaces, as a typed [`ld_core::EvalBackendError`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod master;
pub mod protocol;
pub mod slave;

pub use cluster::LocalCluster;
#[cfg(feature = "fault-inject")]
pub use fault::FaultPlan;
pub use master::{PoolConfig, PoolError, TcpSlavePool};
pub use slave::SlaveServer;
