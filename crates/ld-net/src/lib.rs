//! # ld-net — distributed master/slaves evaluation over TCP
//!
//! The paper ran its synchronous master/slaves evaluation on a cluster via
//! **C/PVM** (Parallel Virtual Machine): slave processes on remote nodes
//! were "initiated at the beginning", loaded the dataset once, and then
//! exchanged *(solution → fitness)* messages with the master for every
//! evaluation (§4.5, Figure 6). PVM is long obsolete; this crate rebuilds
//! that substrate on plain TCP:
//!
//! * [`protocol`] — a small length-prefixed binary wire format
//!   (`bytes`-based): `Hello` handshake, `EvalRequest { id, snps }`,
//!   `EvalResponse { id, fitness }`, `Shutdown`; protocol v2 adds
//!   `EvalResult` — a reply carrying the slave's own compute time —
//!   negotiated through the existing `Hello` exchange so v1 peers keep
//!   working in both directions (see the [`protocol`] docs).
//! * [`slave`] — the slave daemon: owns the objective (= "accesses the
//!   data once"), accepts master connections, and answers evaluation
//!   requests; one thread per connection. Protocol v3 turns it
//!   multi-tenant: an [`slave::ObjectiveStore`] holds many datasets at
//!   once, registered by content fingerprint with the columns shipped at
//!   most once per slave process.
//! * [`master`] — [`master::TcpSlavePool`], an [`ld_core::Evaluator`]
//!   whose `evaluate_batch` deals jobs to the connected slaves through a
//!   shared work queue (on-demand load balancing, like PVM's task
//!   farming). A slave that dies mid-batch has its in-flight job requeued
//!   and is retired — the batch completes as long as one slave survives.
//! * [`server`] — [`server::EvalServer`], the multi-run generalization:
//!   one long-lived server multiplexing N concurrent GA runs (distinct
//!   run ids, datasets, priorities) over one shared slave fleet, with
//!   weighted-fair scheduling, per-run backpressure, typed admission
//!   control, and the same retry/retire/rejoin fault ladder per tenant.
//! * [`wire`] — the versioned dataset columns codec (+ content
//!   fingerprint) carried inside v3 `RegisterDataset` frames.
//! * [`api`] — [`api::MultiRunApi`], a JSON submit/status/result surface
//!   for the eval server, mounted on `ld-observe`'s `ExposeServer`.
//! * [`cluster`] — helpers to spawn an in-process loopback "cluster" for
//!   tests, examples and single-machine use.
//! * `fault` *(feature `fault-inject`, test-only)* — deterministic
//!   scripted fault injection: connection drops, slave kills, slow
//!   responses, handshake sabotage. Powers the recovery test suite and
//!   the CI fault matrix.
//!
//! The GA engine does not know any of this exists: the pool (single run)
//! and the [`server::RunHandle`] (shared fleet) plug into the same
//! batched-evaluation seam as the in-process evaluators. When slaves
//! fail, the pool retries, requeues and rejoins (see `DESIGN.md`,
//! "Failure model of the evaluation layer"); only total slave loss
//! surfaces, as a typed [`ld_core::EvalBackendError`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cluster;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod master;
pub mod protocol;
pub mod server;
pub mod slave;
pub mod wire;

pub use api::{MultiRunApi, RunBoard, RunLauncher, RunRequest};
pub use cluster::{LocalCluster, SharedCluster};
#[cfg(feature = "fault-inject")]
pub use fault::FaultPlan;
pub use ld_data::DatasetFingerprint;
pub use master::{PoolConfig, PoolError, TcpSlavePool};
pub use server::{EvalServer, RunHandle, RunSpec, RunStoreStats, ServerConfig, SubmitError};
pub use slave::{DatasetLoader, ObjectiveStore, SlaveServer};
