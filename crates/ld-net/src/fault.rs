//! Deterministic, scriptable fault injection for the evaluation layer.
//!
//! Compiled only under the test-only `fault-inject` feature. A
//! [`FaultPlan`] scripts how one slave misbehaves — drop the connection
//! after N requests, kill the whole server after K evaluations, delay
//! every response, refuse or corrupt the handshake — and
//! [`crate::slave::SlaveServer::spawn_with_faults`] wires it into the
//! serving loop. Plans are plain data: given the same plan, seed and
//! cluster size, every run injects the identical fault sequence, which is
//! what lets the recovery tests assert *bit-identical* GA results against
//! a fault-free reference.

use std::time::Duration;

/// A scripted misbehavior for one slave server.
///
/// The default plan is inert (no faults). Knobs compose: a plan may both
/// delay responses and later kill the server.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Close each master connection (without responding) once it has
    /// served this many requests. The server keeps accepting, so the
    /// master can reconnect — repeated drops look like a flapping node.
    pub drop_connection_after: Option<u64>,
    /// Stop the whole server (accept loop and all connections) once it
    /// has served this many evaluations in total, dying mid-request
    /// without a response.
    pub kill_server_after: Option<u64>,
    /// Sleep this long before every response — a slow (but correct) node.
    pub response_delay: Option<Duration>,
    /// Accept TCP connections but close them without ever greeting.
    pub refuse_handshake: bool,
    /// Greet with garbage bytes instead of a `Hello`.
    pub corrupt_handshake: bool,
}

impl FaultPlan {
    /// The inert plan: behave normally.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when no fault is scripted.
    pub fn is_none(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Close each connection after `n` served requests.
    pub fn drop_connection_after(mut self, n: u64) -> FaultPlan {
        self.drop_connection_after = Some(n);
        self
    }

    /// Kill the server after `n` total served evaluations.
    pub fn kill_server_after(mut self, n: u64) -> FaultPlan {
        self.kill_server_after = Some(n);
        self
    }

    /// Delay every response by `d`.
    pub fn response_delay(mut self, d: Duration) -> FaultPlan {
        self.response_delay = Some(d);
        self
    }

    /// Close connections before greeting.
    pub fn refuse_handshake(mut self) -> FaultPlan {
        self.refuse_handshake = true;
        self
    }

    /// Greet with garbage instead of `Hello`.
    pub fn corrupt_handshake(mut self) -> FaultPlan {
        self.corrupt_handshake = true;
        self
    }

    /// The CI fault matrix: build the per-slave plans for a named seeded
    /// scenario, or `None` for an unknown name.
    ///
    /// Scenarios (victim/survivor slots and magnitudes derive from
    /// `seed` via splitmix64, so the same seed always scripts the same
    /// faults):
    ///
    /// * `kill-one` — one slave dies after a handful of evaluations.
    /// * `kill-all-but-one` — every slave but one dies, staggered.
    /// * `slow-slave` — one slave answers correctly but slowly.
    /// * `flapping-reconnect` — one slave drops every connection after a
    ///   few requests, forcing repeated retire/rejoin cycles.
    pub fn matrix(name: &str, n_slaves: usize, seed: u64) -> Option<Vec<FaultPlan>> {
        assert!(n_slaves > 0, "need at least one slave");
        let mut state = seed;
        let pick = (splitmix64(&mut state) as usize) % n_slaves;
        let mut plans = vec![FaultPlan::none(); n_slaves];
        match name {
            "kill-one" => {
                let after = 3 + splitmix64(&mut state) % 5;
                plans[pick] = FaultPlan::none().kill_server_after(after);
            }
            "kill-all-but-one" => {
                for (i, plan) in plans.iter_mut().enumerate() {
                    if i != pick {
                        let after = 2 + splitmix64(&mut state) % 4 + i as u64;
                        *plan = FaultPlan::none().kill_server_after(after);
                    }
                }
            }
            "slow-slave" => {
                let delay = Duration::from_millis(5 + splitmix64(&mut state) % 15);
                plans[pick] = FaultPlan::none().response_delay(delay);
            }
            "flapping-reconnect" => {
                let every = 2 + splitmix64(&mut state) % 3;
                plans[pick] = FaultPlan::none().drop_connection_after(every);
            }
            _ => return None,
        }
        Some(plans)
    }
}

/// splitmix64 — tiny seedable generator so plans need no RNG dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::none().kill_server_after(3).is_none());
    }

    #[test]
    fn matrix_is_deterministic() {
        for name in [
            "kill-one",
            "kill-all-but-one",
            "slow-slave",
            "flapping-reconnect",
        ] {
            let a = FaultPlan::matrix(name, 4, 7).unwrap();
            let b = FaultPlan::matrix(name, 4, 7).unwrap();
            assert_eq!(a, b, "{name} not deterministic");
            assert_eq!(a.len(), 4);
            assert!(a.iter().any(|p| !p.is_none()), "{name} scripted nothing");
        }
        assert!(FaultPlan::matrix("no-such-scenario", 4, 7).is_none());
    }

    #[test]
    fn kill_all_but_one_leaves_one_survivor() {
        for seed in 0..16 {
            let plans = FaultPlan::matrix("kill-all-but-one", 3, seed).unwrap();
            assert_eq!(plans.iter().filter(|p| p.is_none()).count(), 1);
        }
    }

    #[test]
    fn different_seeds_move_the_victim() {
        let victims: std::collections::HashSet<usize> = (0..32)
            .map(|seed| {
                let plans = FaultPlan::matrix("kill-one", 4, seed).unwrap();
                plans.iter().position(|p| !p.is_none()).unwrap()
            })
            .collect();
        assert!(victims.len() > 1, "seed never moves the victim");
    }
}
