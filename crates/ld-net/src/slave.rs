//! The slave daemon: owns the objective(s), answers evaluation requests.
//!
//! Mirrors the paper's PVM slaves: "the slaves are initiated at the
//! beginning and access only once to the data" — the dataset/objective is
//! loaded at construction; each master connection then only carries
//! `(solution → fitness)` traffic.
//!
//! Since protocol v3 a slave can serve **many datasets at once** through
//! an [`ObjectiveStore`]: masters register a dataset under a content
//! fingerprint (shipping its columns exactly once per slave process) and
//! then address it by handle, so one shared slave fleet can evaluate for
//! several concurrent GA runs (see [`crate::server::EvalServer`]).

use crate::protocol::{read_message, write_message, Message, ProtoError, PROTOCOL_VERSION};
use ld_core::Evaluator;
use ld_observe::{Event, Observer};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// With `fault-inject`, every connection carries an optional scripted
/// fault plan; without it, the handle is a zero-sized no-op.
#[cfg(feature = "fault-inject")]
type PlanHandle = Option<Arc<crate::fault::FaultPlan>>;
#[cfg(not(feature = "fault-inject"))]
type PlanHandle = ();

#[cfg(feature = "fault-inject")]
fn no_plan() -> PlanHandle {
    None
}
#[cfg(not(feature = "fault-inject"))]
fn no_plan() -> PlanHandle {}

/// Builds an [`Evaluator`] from a registered dataset's columns blob:
/// `(fingerprint, n_snps, payload) -> evaluator`.
pub type DatasetLoader =
    Arc<dyn Fn(u64, u32, &[u8]) -> Result<Arc<dyn Evaluator>, String> + Send + Sync>;

/// Process-level registry of datasets a slave can evaluate against.
///
/// Keys are content fingerprints, negotiated through the v3
/// `RegisterDataset`/`DatasetAck` exchange; residency is shared across
/// every connection of the slave process, so a dataset's columns travel
/// the wire **once** no matter how many masters (or reconnects) follow.
/// Capacity is bounded ([`ObjectiveStore::with_capacity`]): registration
/// of one dataset too many is refused with a typed reason, which the
/// master surfaces as an admission error — a tenant whose panel does not
/// fit degrades alone, without evicting resident tenants.
pub struct ObjectiveStore {
    /// Objective served to v1/v2 masters (plain `EvalRequest`), if any.
    default: Option<Arc<dyn Evaluator>>,
    datasets: Mutex<HashMap<u64, Arc<dyn Evaluator>>>,
    loader: Option<DatasetLoader>,
    max_datasets: usize,
}

impl ObjectiveStore {
    /// An empty store holding at most `max_datasets` registered datasets
    /// (0 = unbounded). Without a [`DatasetLoader`] it only accepts
    /// fingerprints preloaded via [`ObjectiveStore::preload`].
    pub fn new(max_datasets: usize) -> ObjectiveStore {
        ObjectiveStore {
            default: None,
            datasets: Mutex::new(HashMap::new()),
            loader: None,
            max_datasets,
        }
    }

    /// Attach the loader that materializes evaluators from registered
    /// columns blobs.
    pub fn with_loader(mut self, loader: DatasetLoader) -> ObjectiveStore {
        self.loader = Some(loader);
        self
    }

    /// Set the objective answering un-handled (v1/v2) `EvalRequest`s.
    pub fn with_default(mut self, objective: Arc<dyn Evaluator>) -> ObjectiveStore {
        self.default = Some(objective);
        self
    }

    /// Wrap a single objective, as [`SlaveServer::spawn`] does: it serves
    /// plain requests *and* is pre-registered under `fingerprint` for v3
    /// masters.
    pub fn single(fingerprint: u64, objective: Arc<dyn Evaluator>) -> ObjectiveStore {
        let store = ObjectiveStore::new(0).with_default(Arc::clone(&objective));
        store.datasets.lock().insert(fingerprint, objective);
        store
    }

    /// Insert a dataset without going through the wire (tests, or slaves
    /// that load their panels at start like the paper's). Returns `false`
    /// when capacity is exhausted.
    pub fn preload(&self, fingerprint: u64, objective: Arc<dyn Evaluator>) -> bool {
        let mut map = self.datasets.lock();
        if self.is_full(&map) && !map.contains_key(&fingerprint) {
            return false;
        }
        map.insert(fingerprint, objective);
        true
    }

    /// Registered datasets currently resident.
    pub fn len(&self) -> usize {
        self.datasets.lock().len()
    }

    /// Whether no dataset is resident.
    pub fn is_empty(&self) -> bool {
        self.datasets.lock().is_empty()
    }

    /// Panel width announced in the slave's `Hello` (the default
    /// objective's, or 0 for a store-only multi-tenant slave).
    fn hello_n_snps(&self) -> u32 {
        self.default.as_ref().map_or(0, |d| d.n_snps() as u32)
    }

    fn is_full(&self, map: &HashMap<u64, Arc<dyn Evaluator>>) -> bool {
        self.max_datasets > 0 && map.len() >= self.max_datasets
    }

    /// Resolve a `RegisterDataset`: residency check, then (for a fresh
    /// fingerprint with columns attached) capacity check and load.
    /// `Ok(resident)` means the dataset is bound; the flag says whether it
    /// was already there. `Err(reason)` becomes the NACK reason.
    fn register(
        &self,
        fingerprint: u64,
        n_snps: u32,
        payload: &[u8],
    ) -> Result<(Arc<dyn Evaluator>, bool), String> {
        let mut map = self.datasets.lock();
        if let Some(existing) = map.get(&fingerprint) {
            let have = existing.n_snps() as u32;
            if have != n_snps {
                return Err(format!(
                    "panel width mismatch: resident dataset has {have} SNPs, master expects {n_snps}"
                ));
            }
            return Ok((Arc::clone(existing), true));
        }
        if payload.is_empty() {
            return Err(format!(
                "unknown fingerprint {fingerprint:#x} (no columns attached)"
            ));
        }
        if self.is_full(&map) {
            return Err(format!(
                "dataset capacity exhausted ({} resident, max {})",
                map.len(),
                self.max_datasets
            ));
        }
        let loader = self
            .loader
            .as_ref()
            .ok_or_else(|| "slave has no dataset loader".to_string())?;
        let evaluator = loader(fingerprint, n_snps, payload)?;
        let have = evaluator.n_snps() as u32;
        if have != n_snps {
            return Err(format!(
                "panel width mismatch: loaded dataset has {have} SNPs, master expects {n_snps}"
            ));
        }
        map.insert(fingerprint, Arc::clone(&evaluator));
        Ok((evaluator, false))
    }
}

/// A running slave server.
pub struct SlaveServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl SlaveServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) and serve
    /// evaluations of `objective` until [`SlaveServer::stop`] or drop.
    ///
    /// Each accepted connection is served on its own thread; a connection
    /// ends on `Shutdown`, EOF, or a protocol error. The objective is
    /// also pre-registered for v3 masters under fingerprint 0.
    pub fn spawn<E>(addr: &str, objective: E) -> std::io::Result<SlaveServer>
    where
        E: Evaluator + 'static,
    {
        let store = Arc::new(ObjectiveStore::single(0, Arc::new(objective)));
        Self::spawn_inner(addr, store, no_plan(), Observer::disabled())
    }

    /// Bind a multi-tenant slave serving every dataset in (or loadable
    /// into) `store`. Socket-level failures in the accept loop are
    /// absorbed and logged through `observer` as
    /// [`Event::SlaveIoError`]s — the daemon never panics on a bad
    /// connection.
    pub fn spawn_shared(
        addr: &str,
        store: Arc<ObjectiveStore>,
        observer: Observer,
    ) -> std::io::Result<SlaveServer> {
        Self::spawn_inner(addr, store, no_plan(), observer)
    }

    /// [`SlaveServer::spawn`] with a scripted [`crate::fault::FaultPlan`]
    /// applied to every connection. Test-only.
    #[cfg(feature = "fault-inject")]
    pub fn spawn_with_faults<E>(
        addr: &str,
        objective: E,
        plan: crate::fault::FaultPlan,
    ) -> std::io::Result<SlaveServer>
    where
        E: Evaluator + 'static,
    {
        let store = Arc::new(ObjectiveStore::single(0, Arc::new(objective)));
        Self::spawn_inner(addr, store, wrap_plan(plan), Observer::disabled())
    }

    /// [`SlaveServer::spawn_shared`] with a scripted fault plan. Test-only.
    #[cfg(feature = "fault-inject")]
    pub fn spawn_shared_with_faults(
        addr: &str,
        store: Arc<ObjectiveStore>,
        observer: Observer,
        plan: crate::fault::FaultPlan,
    ) -> std::io::Result<SlaveServer> {
        Self::spawn_inner(addr, store, wrap_plan(plan), observer)
    }

    fn spawn_inner(
        addr: &str,
        store: Arc<ObjectiveStore>,
        plan: PlanHandle,
        observer: Observer,
    ) -> std::io::Result<SlaveServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Typed error to the caller (the daemon cannot poll without it),
        // not a panic inside the accept thread.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_served = Arc::clone(&served);
        let accept_thread = std::thread::Builder::new()
            .name(format!("ld-slave-accept-{local}"))
            .spawn(move || {
                // Polling accept loop so `stop` is honored promptly.
                let log_io = |context: &str, detail: String| {
                    observer.emit(Event::SlaveIoError {
                        context: context.to_string(),
                        detail,
                    });
                };
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, peer)) => {
                            // A connection that cannot be switched back to
                            // blocking mode is dropped, not served half-set-up
                            // — and the daemon lives on.
                            if let Err(e) = stream.set_nonblocking(false) {
                                log_io("accept", format!("set_nonblocking({peer}): {e}"));
                                continue;
                            }
                            let store = Arc::clone(&store);
                            let served = Arc::clone(&accept_served);
                            let conn_stop = Arc::clone(&accept_stop);
                            let plan = plan.clone();
                            let conn_observer = observer.clone();
                            // Connection threads are detached: they exit on
                            // the master's Shutdown, EOF (master socket
                            // dropped), or a protocol error. Joining them
                            // here would deadlock a server dropped while a
                            // quiet master connection is still open.
                            let spawned = std::thread::Builder::new()
                                .name("ld-slave-conn".into())
                                .spawn(move || {
                                    if let Err(e) =
                                        serve_connection(stream, &store, &served, &conn_stop, &plan)
                                    {
                                        // EOF when the master drops its socket is
                                        // routine; anything else is worth a trace.
                                        conn_observer.emit(Event::SlaveIoError {
                                            context: "connection".to_string(),
                                            detail: format!("{peer}: {e}"),
                                        });
                                    }
                                });
                            if let Err(e) = spawned {
                                log_io("accept", format!("spawn connection thread: {e}"));
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        Err(e) => {
                            log_io("accept", e.to_string());
                            break;
                        }
                    }
                }
            })?;
        Ok(SlaveServer {
            addr: local,
            stop,
            served,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Evaluations served so far, across all connections.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Ask the server to stop accepting; existing connections finish at
    /// most one in-flight request and close before serving another.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

#[cfg(feature = "fault-inject")]
fn wrap_plan(plan: crate::fault::FaultPlan) -> PlanHandle {
    if plan.is_none() {
        None
    } else {
        Some(Arc::new(plan))
    }
}

impl Drop for SlaveServer {
    fn drop(&mut self) {
        self.stop();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Serve one master connection: greet, then answer requests until
/// `Shutdown`, EOF, or server stop — with scripted faults applied when
/// the `fault-inject` feature is on.
fn serve_connection(
    stream: TcpStream,
    store: &ObjectiveStore,
    served: &AtomicU64,
    stop: &AtomicBool,
    #[cfg_attr(not(feature = "fault-inject"), allow(unused_variables))] plan: &PlanHandle,
) -> Result<(), ProtoError> {
    stream.set_nodelay(true)?;
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    #[cfg(feature = "fault-inject")]
    if let Some(plan) = plan {
        if plan.refuse_handshake {
            return Ok(()); // close without ever greeting
        }
        if plan.corrupt_handshake {
            use std::io::Write as _;
            // An absurd length prefix: the master must reject it as
            // malformed rather than trying to allocate.
            writer.get_mut().write_all(&[0xde, 0xad, 0xbe, 0xef])?;
            return Ok(());
        }
    }
    write_message(
        &mut writer,
        &Message::Hello {
            version: PROTOCOL_VERSION,
            n_snps: store.hello_n_snps(),
        },
    )?;
    let mut conn_served: u64 = 0;
    // Until the master announces a version with its own Hello, assume the
    // oldest (v1): plain `EvalResponse` replies, no v3 frames.
    let mut peer_version: u32 = 1;
    // Connection-local handle table: masters bind handles with
    // `RegisterDataset`; residency itself is process-level in the store.
    let mut bound: HashMap<u64, Arc<dyn Evaluator>> = HashMap::new();
    // One warmed evaluation workspace per connection, reused across every
    // request this master sends.
    let mut scratch = ld_core::EvalScratch::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(()); // server stopped: close before the next request
        }
        let message = read_message(&mut reader)?;
        // Split requests from control traffic so both request forms share
        // one evaluation path (fault hooks, scratch, timing, reply).
        let (id, snps, via_handle) = match message {
            Message::Hello { version, .. } => {
                // Masters identify themselves after reading our greeting;
                // the announced version gates reply format (v2) and the
                // multi-dataset frames (v3) for the rest of the connection.
                peer_version = version;
                continue;
            }
            Message::RegisterDataset {
                handle,
                fingerprint,
                n_snps,
                payload,
            } => {
                if peer_version < 3 {
                    return Err(ProtoError::Malformed(format!(
                        "RegisterDataset from a v{peer_version} master"
                    )));
                }
                let ack = match store.register(fingerprint, n_snps, &payload) {
                    Ok((evaluator, _resident)) => {
                        bound.insert(handle, evaluator);
                        Message::DatasetAck {
                            handle,
                            accepted: true,
                            reason: String::new(),
                        }
                    }
                    Err(reason) => Message::DatasetAck {
                        handle,
                        accepted: false,
                        reason,
                    },
                };
                write_message(&mut writer, &ack)?;
                continue;
            }
            Message::EvalRequest { id, snps } => (id, snps, None),
            Message::EvalRequestV3 {
                id, handle, snps, ..
            } => {
                if peer_version < 3 {
                    return Err(ProtoError::Malformed(format!(
                        "EvalRequestV3 from a v{peer_version} master"
                    )));
                }
                (id, snps, Some(handle))
            }
            Message::Shutdown => return Ok(()),
            other => {
                return Err(ProtoError::Malformed(format!(
                    "unexpected message from master: {other:?}"
                )))
            }
        };
        // Resolve the objective before any fault gate or accounting: an
        // unknown handle is the *master's* bookkeeping error and gets a
        // typed reply, never a made-up fitness.
        let objective: Arc<dyn Evaluator> = match via_handle {
            None => match &store.default {
                Some(d) => Arc::clone(d),
                None => {
                    write_message(
                        &mut writer,
                        &Message::EvalError {
                            id,
                            reason: "slave serves registered datasets only (no default objective)"
                                .to_string(),
                        },
                    )?;
                    continue;
                }
            },
            Some(handle) => match bound.get(&handle) {
                Some(e) => Arc::clone(e),
                None => {
                    write_message(
                        &mut writer,
                        &Message::EvalError {
                            id,
                            reason: format!("unknown dataset handle {handle}"),
                        },
                    )?;
                    continue;
                }
            },
        };
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = plan {
            if let Some(limit) = plan.drop_connection_after {
                if conn_served >= limit {
                    return Ok(()); // scripted drop, no response
                }
            }
            if let Some(delay) = plan.response_delay {
                std::thread::sleep(delay);
            }
        }
        // The scratch is warm iff this connection already served at
        // least one evaluation.
        let scratch_warm = conn_served > 0;
        let compute_start = std::time::Instant::now();
        let fitness = objective.evaluate_one_with(&mut scratch, &snps);
        let compute_us = u32::try_from(compute_start.elapsed().as_micros()).unwrap_or(u32::MAX);
        let _total_served = served.fetch_add(1, Ordering::Relaxed) + 1;
        conn_served += 1;
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = plan {
            if let Some(kill) = plan.kill_server_after {
                if _total_served >= kill {
                    // Scripted death: take the whole server down
                    // mid-request, response unsent.
                    stop.store(true, Ordering::Relaxed);
                    return Ok(());
                }
            }
        }
        let reply = if peer_version >= 2 {
            Message::EvalResult {
                id,
                fitness,
                compute_us,
                scratch_warm,
            }
        } else {
            Message::EvalResponse { id, fitness }
        };
        write_message(&mut writer, &reply)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_message, write_message, Message};
    use ld_core::evaluator::FnEvaluator;
    use ld_data::SnpId;
    use std::net::TcpStream;

    fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
        FnEvaluator::new(51, |s: &[SnpId]| s.iter().sum::<usize>() as f64)
    }

    /// Loader used by store tests: payload byte 0 scales the sum.
    fn scaling_loader() -> DatasetLoader {
        Arc::new(|_fp, n_snps, payload: &[u8]| {
            let scale = f64::from(payload.first().copied().unwrap_or(1));
            Ok(
                Arc::new(FnEvaluator::new(n_snps as usize, move |s: &[SnpId]| {
                    scale * s.iter().sum::<usize>() as f64
                })) as Arc<dyn Evaluator>,
            )
        })
    }

    #[test]
    fn slave_answers_requests() {
        let server = SlaveServer::spawn("127.0.0.1:0", toy()).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = stream.try_clone().unwrap();
        let mut writer = stream;
        // Handshake.
        match read_message(&mut reader).unwrap() {
            Message::Hello { version, n_snps } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert_eq!(n_snps, 51);
            }
            other => panic!("expected Hello, got {other:?}"),
        }
        // A couple of evaluations.
        for (id, snps, expect) in [(1u64, vec![1, 2], 3.0), (2, vec![10, 20, 30], 60.0)] {
            write_message(&mut writer, &Message::EvalRequest { id, snps }).unwrap();
            match read_message(&mut reader).unwrap() {
                Message::EvalResponse { id: rid, fitness } => {
                    assert_eq!(rid, id);
                    assert_eq!(fitness, expect);
                }
                other => panic!("expected EvalResponse, got {other:?}"),
            }
        }
        assert_eq!(server.served(), 2);
        write_message(&mut writer, &Message::Shutdown).unwrap();
    }

    #[test]
    fn slave_upgrades_to_eval_result_after_master_hello() {
        let server = SlaveServer::spawn("127.0.0.1:0", toy()).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = stream.try_clone().unwrap();
        let mut writer = stream;
        let _ = read_message(&mut reader).unwrap(); // slave Hello
        write_message(
            &mut writer,
            &Message::Hello {
                version: PROTOCOL_VERSION,
                n_snps: 0,
            },
        )
        .unwrap();
        for (i, expect_warm) in [(0u64, false), (1, true)] {
            write_message(
                &mut writer,
                &Message::EvalRequest {
                    id: i,
                    snps: vec![1, 2],
                },
            )
            .unwrap();
            match read_message(&mut reader).unwrap() {
                Message::EvalResult {
                    id,
                    fitness,
                    scratch_warm,
                    ..
                } => {
                    assert_eq!(id, i);
                    assert_eq!(fitness, 3.0);
                    assert_eq!(scratch_warm, expect_warm, "request {i}");
                }
                other => panic!("expected EvalResult, got {other:?}"),
            }
        }
        write_message(&mut writer, &Message::Shutdown).unwrap();
    }

    #[test]
    fn slave_serves_multiple_connections() {
        let server = SlaveServer::spawn("127.0.0.1:0", toy()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut reader = stream.try_clone().unwrap();
                    let mut writer = stream;
                    let _ = read_message(&mut reader).unwrap(); // Hello
                    write_message(
                        &mut writer,
                        &Message::EvalRequest {
                            id: i,
                            snps: vec![i as usize],
                        },
                    )
                    .unwrap();
                    match read_message(&mut reader).unwrap() {
                        Message::EvalResponse { fitness, .. } => fitness,
                        other => panic!("unexpected {other:?}"),
                    }
                })
            })
            .collect();
        let mut results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_by(f64::total_cmp);
        assert_eq!(results, vec![0.0, 1.0, 2.0]);
        assert_eq!(server.served(), 3);
    }

    #[test]
    fn stop_is_idempotent_and_drop_joins() {
        let server = SlaveServer::spawn("127.0.0.1:0", toy()).unwrap();
        server.stop();
        server.stop();
        drop(server); // must not hang or panic
    }

    /// v3 handshake helper: connect, read the slave Hello, announce v3.
    fn connect_v3(addr: SocketAddr) -> (TcpStream, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        let reader = stream.try_clone().unwrap();
        let mut r = reader.try_clone().unwrap();
        let mut w = stream.try_clone().unwrap();
        let _ = read_message(&mut r).unwrap(); // slave Hello
        write_message(
            &mut w,
            &Message::Hello {
                version: PROTOCOL_VERSION,
                n_snps: 0,
            },
        )
        .unwrap();
        (reader, stream)
    }

    #[test]
    fn store_slave_registers_and_serves_two_datasets() {
        let store = Arc::new(ObjectiveStore::new(4).with_loader(scaling_loader()));
        let server = SlaveServer::spawn_shared("127.0.0.1:0", store, Observer::disabled()).unwrap();
        let (mut reader, mut writer) = connect_v3(server.addr());
        // Register two datasets under different fingerprints.
        for (handle, fp, scale) in [(1u64, 0xAAu64, 1u8), (2, 0xBB, 3)] {
            write_message(
                &mut writer,
                &Message::RegisterDataset {
                    handle,
                    fingerprint: fp,
                    n_snps: 51,
                    payload: vec![scale],
                },
            )
            .unwrap();
            match read_message(&mut reader).unwrap() {
                Message::DatasetAck {
                    handle: h,
                    accepted,
                    reason,
                } => {
                    assert_eq!(h, handle);
                    assert!(accepted, "{reason}");
                }
                other => panic!("expected DatasetAck, got {other:?}"),
            }
        }
        // Evaluate the same haplotype against both: scales differ.
        for (handle, expect) in [(1u64, 3.0), (2, 9.0)] {
            write_message(
                &mut writer,
                &Message::EvalRequestV3 {
                    id: 7,
                    run_id: handle,
                    handle,
                    snps: vec![1, 2],
                },
            )
            .unwrap();
            match read_message(&mut reader).unwrap() {
                Message::EvalResult { id, fitness, .. } => {
                    assert_eq!(id, 7);
                    assert_eq!(fitness, expect);
                }
                other => panic!("expected EvalResult, got {other:?}"),
            }
        }
        assert_eq!(server.served(), 2);
        write_message(&mut writer, &Message::Shutdown).unwrap();
    }

    #[test]
    fn re_registration_acks_from_residency_without_columns() {
        let store = Arc::new(ObjectiveStore::new(4).with_loader(scaling_loader()));
        let server =
            SlaveServer::spawn_shared("127.0.0.1:0", Arc::clone(&store), Observer::disabled())
                .unwrap();
        // First connection ships the columns.
        let (mut r1, mut w1) = connect_v3(server.addr());
        write_message(
            &mut w1,
            &Message::RegisterDataset {
                handle: 1,
                fingerprint: 0xCC,
                n_snps: 51,
                payload: vec![2],
            },
        )
        .unwrap();
        assert!(matches!(
            read_message(&mut r1).unwrap(),
            Message::DatasetAck { accepted: true, .. }
        ));
        // Second connection (a reconnect) re-registers with an empty blob.
        let (mut r2, mut w2) = connect_v3(server.addr());
        write_message(
            &mut w2,
            &Message::RegisterDataset {
                handle: 9,
                fingerprint: 0xCC,
                n_snps: 51,
                payload: vec![],
            },
        )
        .unwrap();
        assert!(matches!(
            read_message(&mut r2).unwrap(),
            Message::DatasetAck { accepted: true, .. }
        ));
        write_message(
            &mut w2,
            &Message::EvalRequestV3 {
                id: 1,
                run_id: 1,
                handle: 9,
                snps: vec![5],
            },
        )
        .unwrap();
        match read_message(&mut r2).unwrap() {
            Message::EvalResult { fitness, .. } => assert_eq!(fitness, 10.0),
            other => panic!("expected EvalResult, got {other:?}"),
        }
        assert_eq!(store.len(), 1, "columns resident once, process-level");
    }

    #[test]
    fn registration_rejections_are_typed() {
        let store = Arc::new(ObjectiveStore::new(1).with_loader(scaling_loader()));
        let server = SlaveServer::spawn_shared("127.0.0.1:0", store, Observer::disabled()).unwrap();
        let (mut reader, mut writer) = connect_v3(server.addr());
        let register = |w: &mut TcpStream, handle, fp, n_snps, payload: Vec<u8>| {
            write_message(
                w,
                &Message::RegisterDataset {
                    handle,
                    fingerprint: fp,
                    n_snps,
                    payload,
                },
            )
            .unwrap();
        };
        // Unknown fingerprint with no columns → rejected.
        register(&mut writer, 1, 0x01, 51, vec![]);
        match read_message(&mut reader).unwrap() {
            Message::DatasetAck {
                accepted, reason, ..
            } => {
                assert!(!accepted);
                assert!(reason.contains("unknown fingerprint"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // First real registration fills the capacity-1 store.
        register(&mut writer, 1, 0x01, 51, vec![1]);
        assert!(matches!(
            read_message(&mut reader).unwrap(),
            Message::DatasetAck { accepted: true, .. }
        ));
        // Second dataset → capacity exhausted.
        register(&mut writer, 2, 0x02, 51, vec![1]);
        match read_message(&mut reader).unwrap() {
            Message::DatasetAck {
                accepted, reason, ..
            } => {
                assert!(!accepted);
                assert!(reason.contains("capacity exhausted"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Width mismatch against the resident dataset.
        register(&mut writer, 3, 0x01, 99, vec![]);
        match read_message(&mut reader).unwrap() {
            Message::DatasetAck {
                accepted, reason, ..
            } => {
                assert!(!accepted);
                assert!(reason.contains("width mismatch"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown handle in a request → EvalError, not a fitness.
        write_message(
            &mut writer,
            &Message::EvalRequestV3 {
                id: 42,
                run_id: 1,
                handle: 77,
                snps: vec![1],
            },
        )
        .unwrap();
        match read_message(&mut reader).unwrap() {
            Message::EvalError { id, reason } => {
                assert_eq!(id, 42);
                assert!(reason.contains("unknown dataset handle"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.served(), 0, "no request was ever evaluated");
    }

    #[test]
    fn v3_frames_from_a_non_v3_master_close_the_connection() {
        let server = SlaveServer::spawn("127.0.0.1:0", toy()).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = stream.try_clone().unwrap();
        let mut writer = stream;
        let _ = read_message(&mut reader).unwrap(); // slave Hello
                                                    // No master Hello: the slave must treat us as v1 and refuse v3
                                                    // frames (connection closes; the read then fails).
        write_message(
            &mut writer,
            &Message::EvalRequestV3 {
                id: 1,
                run_id: 1,
                handle: 0,
                snps: vec![1],
            },
        )
        .unwrap();
        assert!(read_message(&mut reader).is_err());
    }
}
