//! The slave daemon: owns the objective, answers evaluation requests.
//!
//! Mirrors the paper's PVM slaves: "the slaves are initiated at the
//! beginning and access only once to the data" — the dataset/objective is
//! loaded at construction; each master connection then only carries
//! `(solution → fitness)` traffic.

use crate::protocol::{read_message, write_message, Message, ProtoError, PROTOCOL_VERSION};
use ld_core::Evaluator;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// With `fault-inject`, every connection carries an optional scripted
/// fault plan; without it, the handle is a zero-sized no-op.
#[cfg(feature = "fault-inject")]
type PlanHandle = Option<Arc<crate::fault::FaultPlan>>;
#[cfg(not(feature = "fault-inject"))]
type PlanHandle = ();

#[cfg(feature = "fault-inject")]
fn no_plan() -> PlanHandle {
    None
}
#[cfg(not(feature = "fault-inject"))]
fn no_plan() -> PlanHandle {}

/// A running slave server.
pub struct SlaveServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl SlaveServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) and serve
    /// evaluations of `objective` until [`SlaveServer::stop`] or drop.
    ///
    /// Each accepted connection is served on its own thread; a connection
    /// ends on `Shutdown`, EOF, or a protocol error.
    pub fn spawn<E>(addr: &str, objective: E) -> std::io::Result<SlaveServer>
    where
        E: Evaluator + 'static,
    {
        Self::spawn_inner(addr, objective, no_plan())
    }

    /// [`SlaveServer::spawn`] with a scripted [`crate::fault::FaultPlan`]
    /// applied to every connection. Test-only.
    #[cfg(feature = "fault-inject")]
    pub fn spawn_with_faults<E>(
        addr: &str,
        objective: E,
        plan: crate::fault::FaultPlan,
    ) -> std::io::Result<SlaveServer>
    where
        E: Evaluator + 'static,
    {
        let plan = if plan.is_none() {
            None
        } else {
            Some(Arc::new(plan))
        };
        Self::spawn_inner(addr, objective, plan)
    }

    fn spawn_inner<E>(addr: &str, objective: E, plan: PlanHandle) -> std::io::Result<SlaveServer>
    where
        E: Evaluator + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let objective = Arc::new(objective);
        let accept_stop = Arc::clone(&stop);
        let accept_served = Arc::clone(&served);
        let accept_thread = std::thread::Builder::new()
            .name(format!("ld-slave-accept-{local}"))
            .spawn(move || {
                // Polling accept loop so `stop` is honored promptly.
                listener
                    .set_nonblocking(true)
                    .expect("set nonblocking listener");
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            stream
                                .set_nonblocking(false)
                                .expect("connection back to blocking");
                            let objective = Arc::clone(&objective);
                            let served = Arc::clone(&accept_served);
                            let conn_stop = Arc::clone(&accept_stop);
                            let plan = plan.clone();
                            // Connection threads are detached: they exit on
                            // the master's Shutdown, EOF (master socket
                            // dropped), or a protocol error. Joining them
                            // here would deadlock a server dropped while a
                            // quiet master connection is still open.
                            std::thread::Builder::new()
                                .name("ld-slave-conn".into())
                                .spawn(move || {
                                    let _ = serve_connection(
                                        stream,
                                        &*objective,
                                        &served,
                                        &conn_stop,
                                        &plan,
                                    );
                                })
                                .expect("spawn connection thread");
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(SlaveServer {
            addr: local,
            stop,
            served,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Evaluations served so far, across all connections.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Ask the server to stop accepting; existing connections finish at
    /// most one in-flight request and close before serving another.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl Drop for SlaveServer {
    fn drop(&mut self) {
        self.stop();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Serve one master connection: greet, then answer requests until
/// `Shutdown`, EOF, or server stop — with scripted faults applied when
/// the `fault-inject` feature is on.
fn serve_connection<E: Evaluator>(
    stream: TcpStream,
    objective: &E,
    served: &AtomicU64,
    stop: &AtomicBool,
    #[cfg_attr(not(feature = "fault-inject"), allow(unused_variables))] plan: &PlanHandle,
) -> Result<(), ProtoError> {
    stream.set_nodelay(true)?;
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    #[cfg(feature = "fault-inject")]
    if let Some(plan) = plan {
        if plan.refuse_handshake {
            return Ok(()); // close without ever greeting
        }
        if plan.corrupt_handshake {
            use std::io::Write as _;
            // An absurd length prefix: the master must reject it as
            // malformed rather than trying to allocate.
            writer.get_mut().write_all(&[0xde, 0xad, 0xbe, 0xef])?;
            return Ok(());
        }
    }
    write_message(
        &mut writer,
        &Message::Hello {
            version: PROTOCOL_VERSION,
            n_snps: objective.n_snps() as u32,
        },
    )?;
    let mut conn_served: u64 = 0;
    // Until the master announces v2 with its own Hello, answer with the
    // v1 `EvalResponse` frame — a v1 master never learns about timing.
    let mut peer_v2 = false;
    // One warmed evaluation workspace per connection, reused across every
    // request this master sends.
    let mut scratch = ld_core::EvalScratch::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(()); // server stopped: close before the next request
        }
        match read_message(&mut reader)? {
            Message::Hello { version, .. } => {
                // v2 masters identify themselves after reading our
                // greeting; switch reply format for the rest of the
                // connection.
                peer_v2 = version >= 2;
            }
            Message::EvalRequest { id, snps } => {
                #[cfg(feature = "fault-inject")]
                if let Some(plan) = plan {
                    if let Some(limit) = plan.drop_connection_after {
                        if conn_served >= limit {
                            return Ok(()); // scripted drop, no response
                        }
                    }
                    if let Some(delay) = plan.response_delay {
                        std::thread::sleep(delay);
                    }
                }
                // The scratch is warm iff this connection already served
                // at least one evaluation.
                let scratch_warm = conn_served > 0;
                let compute_start = std::time::Instant::now();
                let fitness = objective.evaluate_one_with(&mut scratch, &snps);
                let compute_us =
                    u32::try_from(compute_start.elapsed().as_micros()).unwrap_or(u32::MAX);
                let _total_served = served.fetch_add(1, Ordering::Relaxed) + 1;
                conn_served += 1;
                #[cfg(feature = "fault-inject")]
                if let Some(plan) = plan {
                    if let Some(kill) = plan.kill_server_after {
                        if _total_served >= kill {
                            // Scripted death: take the whole server
                            // down mid-request, response unsent.
                            stop.store(true, Ordering::Relaxed);
                            return Ok(());
                        }
                    }
                }
                let reply = if peer_v2 {
                    Message::EvalResult {
                        id,
                        fitness,
                        compute_us,
                        scratch_warm,
                    }
                } else {
                    Message::EvalResponse { id, fitness }
                };
                write_message(&mut writer, &reply)?;
            }
            Message::Shutdown => return Ok(()),
            other => {
                return Err(ProtoError::Malformed(format!(
                    "unexpected message from master: {other:?}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_message, write_message, Message};
    use ld_core::evaluator::FnEvaluator;
    use ld_data::SnpId;
    use std::net::TcpStream;

    fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
        FnEvaluator::new(51, |s: &[SnpId]| s.iter().sum::<usize>() as f64)
    }

    #[test]
    fn slave_answers_requests() {
        let server = SlaveServer::spawn("127.0.0.1:0", toy()).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = stream.try_clone().unwrap();
        let mut writer = stream;
        // Handshake.
        match read_message(&mut reader).unwrap() {
            Message::Hello { version, n_snps } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert_eq!(n_snps, 51);
            }
            other => panic!("expected Hello, got {other:?}"),
        }
        // A couple of evaluations.
        for (id, snps, expect) in [(1u64, vec![1, 2], 3.0), (2, vec![10, 20, 30], 60.0)] {
            write_message(&mut writer, &Message::EvalRequest { id, snps }).unwrap();
            match read_message(&mut reader).unwrap() {
                Message::EvalResponse { id: rid, fitness } => {
                    assert_eq!(rid, id);
                    assert_eq!(fitness, expect);
                }
                other => panic!("expected EvalResponse, got {other:?}"),
            }
        }
        assert_eq!(server.served(), 2);
        write_message(&mut writer, &Message::Shutdown).unwrap();
    }

    #[test]
    fn slave_upgrades_to_eval_result_after_master_hello() {
        let server = SlaveServer::spawn("127.0.0.1:0", toy()).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = stream.try_clone().unwrap();
        let mut writer = stream;
        let _ = read_message(&mut reader).unwrap(); // slave Hello
        write_message(
            &mut writer,
            &Message::Hello {
                version: PROTOCOL_VERSION,
                n_snps: 0,
            },
        )
        .unwrap();
        for (i, expect_warm) in [(0u64, false), (1, true)] {
            write_message(
                &mut writer,
                &Message::EvalRequest {
                    id: i,
                    snps: vec![1, 2],
                },
            )
            .unwrap();
            match read_message(&mut reader).unwrap() {
                Message::EvalResult {
                    id,
                    fitness,
                    scratch_warm,
                    ..
                } => {
                    assert_eq!(id, i);
                    assert_eq!(fitness, 3.0);
                    assert_eq!(scratch_warm, expect_warm, "request {i}");
                }
                other => panic!("expected EvalResult, got {other:?}"),
            }
        }
        write_message(&mut writer, &Message::Shutdown).unwrap();
    }

    #[test]
    fn slave_serves_multiple_connections() {
        let server = SlaveServer::spawn("127.0.0.1:0", toy()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                std::thread::spawn(move || {
                    let stream = TcpStream::connect(addr).unwrap();
                    let mut reader = stream.try_clone().unwrap();
                    let mut writer = stream;
                    let _ = read_message(&mut reader).unwrap(); // Hello
                    write_message(
                        &mut writer,
                        &Message::EvalRequest {
                            id: i,
                            snps: vec![i as usize],
                        },
                    )
                    .unwrap();
                    match read_message(&mut reader).unwrap() {
                        Message::EvalResponse { fitness, .. } => fitness,
                        other => panic!("unexpected {other:?}"),
                    }
                })
            })
            .collect();
        let mut results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_by(f64::total_cmp);
        assert_eq!(results, vec![0.0, 1.0, 2.0]);
        assert_eq!(server.served(), 3);
    }

    #[test]
    fn stop_is_idempotent_and_drop_joins() {
        let server = SlaveServer::spawn("127.0.0.1:0", toy()).unwrap();
        server.stop();
        server.stop();
        drop(server); // must not hang or panic
    }
}
