//! Wire protocol: length-prefixed binary frames.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [u32 payload_len] [u8 tag] [payload...]
//! ```
//!
//! | tag | message | payload |
//! |-----|---------|---------|
//! | 0 | `Hello` | u32 protocol version, u32 n_snps |
//! | 1 | `EvalRequest` | u64 id, u32 k, k × u32 snp ids |
//! | 2 | `EvalResponse` | u64 id, f64 fitness (bits) |
//! | 3 | `Shutdown` | — |
//! | 4 | `EvalResult` | u64 id, f64 fitness (bits), u32 compute µs, u8 scratch warm (v2) |
//! | 5 | `RegisterDataset` | u64 handle, u64 fingerprint, u32 n_snps, u32 len, len × u8 columns (v3) |
//! | 6 | `DatasetAck` | u64 handle, u8 accepted, u32 len, len × u8 utf-8 reason (v3) |
//! | 7 | `EvalRequestV3` | u64 id, u64 run_id, u64 handle, u32 k, k × u32 snp ids (v3) |
//! | 8 | `EvalError` | u64 id, u32 len, len × u8 utf-8 reason (v3) |
//!
//! The `Hello` is sent by the slave on accept; the master checks the
//! version and panel width before dealing work. Payloads are bounded
//! ([`MAX_PAYLOAD`]) so a corrupt peer cannot trigger huge allocations.
//!
//! # Version negotiation
//!
//! Version 2 adds the `EvalResult` reply frame, which carries the
//! slave's own compute time so the master can attribute latency to
//! network vs. compute. Negotiation stays compatible with v1 peers in
//! both directions:
//!
//! * the slave still greets first with `Hello { version, .. }`;
//! * a v≥2 **master** answers a v≥2 slave with its own `Hello` (a v1
//!   slave never sees an unexpected frame);
//! * a v≥2 **slave** keeps answering with plain `EvalResponse` until it
//!   has seen a master `Hello` announcing version ≥ 2, after which it
//!   switches to `EvalResult`.
//!
//! So timing fields exist exactly when both ends are v≥2, and are
//! *absent* (not zero) otherwise.
//!
//! Version 3 adds multi-dataset, multi-run service: a master registers a
//! dataset under a content fingerprint once per slave *process* with
//! `RegisterDataset` and then addresses it by handle in `EvalRequestV3`,
//! which also carries the tenant's `run_id`. The rules:
//!
//! * v3 frames (tags 5–8) are only ever sent after both ends have
//!   announced version ≥ 3 in their `Hello`s — a v1/v2 peer never sees
//!   one, and the single-run [`crate::TcpSlavePool`] master keeps
//!   speaking plain `EvalRequest` regardless of the slave's version;
//! * the columns blob in `RegisterDataset` is shipped **once per slave**:
//!   re-registrations of a resident fingerprint (e.g. after a reconnect)
//!   carry an empty blob, and the slave acks from residency;
//! * the slave answers every `RegisterDataset` with a `DatasetAck`; a
//!   rejection (`accepted = 0`) names the reason — capacity exhausted,
//!   unknown fingerprint with no columns attached, or panel-width
//!   mismatch — and the master surfaces it as a typed admission error;
//! * an `EvalRequestV3` naming an unknown handle is answered with
//!   `EvalError`, never with a made-up fitness; the master re-registers
//!   and retries.
//!
//! Replies to `EvalRequestV3` reuse the v2 `EvalResult` frame; requests
//! correlate by `id`, so the response format is version-orthogonal.

use bytes::{Buf, BufMut, BytesMut};
use ld_data::SnpId;
use std::io::{self, Read, Write};

/// Protocol version; bumped on any frame-format change.
pub const PROTOCOL_VERSION: u32 = 3;

/// Oldest peer version the master still accepts (v1 slaves reply with
/// `EvalResponse` and simply never report compute time).
pub const MIN_SUPPORTED_VERSION: u32 = 1;

/// Upper bound on a frame payload (a request for a 10k-SNP haplotype is
/// far beyond anything real; reject earlier).
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Slave → master greeting: protocol version and served panel width.
    Hello {
        /// Protocol version spoken by the peer.
        version: u32,
        /// Number of SNPs in the slave's dataset.
        n_snps: u32,
    },
    /// Master → slave: evaluate one haplotype.
    EvalRequest {
        /// Correlation id chosen by the master.
        id: u64,
        /// Ascending SNP ids.
        snps: Vec<SnpId>,
    },
    /// Slave → master: the fitness of request `id`.
    EvalResponse {
        /// Correlation id echoed back.
        id: u64,
        /// Fitness value.
        fitness: f64,
    },
    /// Either side: orderly termination.
    Shutdown,
    /// Slave → master (v2): the fitness of request `id` plus the
    /// slave's own timing. Only sent once the slave has seen a master
    /// `Hello` with version ≥ 2.
    EvalResult {
        /// Correlation id echoed back.
        id: u64,
        /// Fitness value.
        fitness: f64,
        /// Wall-clock microseconds the slave spent evaluating.
        compute_us: u32,
        /// Whether the connection's scratch workspace was already warm
        /// (this was not the connection's first evaluation).
        scratch_warm: bool,
    },
    /// Master → slave (v3): bind `handle` to the dataset identified by
    /// `fingerprint`, shipping the columns blob if the slave has not
    /// seen this fingerprint before (re-registrations send it empty).
    RegisterDataset {
        /// Handle the master will use in subsequent `EvalRequestV3`s.
        handle: u64,
        /// Content fingerprint of the dataset (stable across masters).
        fingerprint: u64,
        /// Panel width the master expects this dataset to serve.
        n_snps: u32,
        /// Opaque dataset columns; empty when the master believes the
        /// fingerprint is already resident on the slave.
        payload: Vec<u8>,
    },
    /// Slave → master (v3): outcome of a `RegisterDataset`.
    DatasetAck {
        /// Handle echoed back.
        handle: u64,
        /// Whether the handle is now bound and ready to serve.
        accepted: bool,
        /// Human-readable rejection reason (empty on accept).
        reason: String,
    },
    /// Master → slave (v3): evaluate one haplotype of run `run_id`
    /// against the dataset bound to `handle`.
    EvalRequestV3 {
        /// Correlation id chosen by the master.
        id: u64,
        /// Tenant run id (observability only; routing is by `handle`).
        run_id: u64,
        /// Dataset handle from a prior `RegisterDataset`.
        handle: u64,
        /// Ascending SNP ids.
        snps: Vec<SnpId>,
    },
    /// Slave → master (v3): request `id` could not be evaluated (e.g.
    /// unknown dataset handle). Never carries a made-up fitness.
    EvalError {
        /// Correlation id echoed back.
        id: u64,
        /// Human-readable failure reason.
        reason: String,
    },
}

/// Protocol-level errors.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying socket failure.
    Io(io::Error),
    /// Frame violated the format (bad tag, truncated payload, oversize).
    Malformed(String),
    /// Peer speaks an incompatible version.
    VersionMismatch {
        /// What we speak.
        ours: u32,
        /// What the peer announced.
        theirs: u32,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "io: {e}"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
            ProtoError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::EvalRequest { .. } => 1,
            Message::EvalResponse { .. } => 2,
            Message::Shutdown => 3,
            Message::EvalResult { .. } => 4,
            Message::RegisterDataset { .. } => 5,
            Message::DatasetAck { .. } => 6,
            Message::EvalRequestV3 { .. } => 7,
            Message::EvalError { .. } => 8,
        }
    }

    /// Encode into a frame.
    pub fn encode(&self) -> BytesMut {
        let mut payload = BytesMut::new();
        match self {
            Message::Hello { version, n_snps } => {
                payload.put_u32_le(*version);
                payload.put_u32_le(*n_snps);
            }
            Message::EvalRequest { id, snps } => {
                payload.put_u64_le(*id);
                payload.put_u32_le(snps.len() as u32);
                for &s in snps {
                    payload.put_u32_le(s as u32);
                }
            }
            Message::EvalResponse { id, fitness } => {
                payload.put_u64_le(*id);
                payload.put_u64_le(fitness.to_bits());
            }
            Message::Shutdown => {}
            Message::EvalResult {
                id,
                fitness,
                compute_us,
                scratch_warm,
            } => {
                payload.put_u64_le(*id);
                payload.put_u64_le(fitness.to_bits());
                payload.put_u32_le(*compute_us);
                payload.put_u8(u8::from(*scratch_warm));
            }
            Message::RegisterDataset {
                handle,
                fingerprint,
                n_snps,
                payload: blob,
            } => {
                payload.put_u64_le(*handle);
                payload.put_u64_le(*fingerprint);
                payload.put_u32_le(*n_snps);
                payload.put_u32_le(blob.len() as u32);
                payload.extend_from_slice(blob);
            }
            Message::DatasetAck {
                handle,
                accepted,
                reason,
            } => {
                payload.put_u64_le(*handle);
                payload.put_u8(u8::from(*accepted));
                payload.put_u32_le(reason.len() as u32);
                payload.extend_from_slice(reason.as_bytes());
            }
            Message::EvalRequestV3 {
                id,
                run_id,
                handle,
                snps,
            } => {
                payload.put_u64_le(*id);
                payload.put_u64_le(*run_id);
                payload.put_u64_le(*handle);
                payload.put_u32_le(snps.len() as u32);
                for &s in snps {
                    payload.put_u32_le(s as u32);
                }
            }
            Message::EvalError { id, reason } => {
                payload.put_u64_le(*id);
                payload.put_u32_le(reason.len() as u32);
                payload.extend_from_slice(reason.as_bytes());
            }
        }
        let mut frame = BytesMut::with_capacity(5 + payload.len());
        frame.put_u32_le(payload.len() as u32 + 1);
        frame.put_u8(self.tag());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decode from tag + payload bytes.
    fn decode(tag: u8, mut payload: BytesMut) -> Result<Message, ProtoError> {
        let need = |p: &BytesMut, n: usize, what: &str| -> Result<(), ProtoError> {
            if p.remaining() < n {
                Err(ProtoError::Malformed(format!(
                    "truncated {what}: need {n} bytes, have {}",
                    p.remaining()
                )))
            } else {
                Ok(())
            }
        };
        let get_string = |p: &mut BytesMut, what: &str| -> Result<String, ProtoError> {
            if p.remaining() < 4 {
                return Err(ProtoError::Malformed(format!("truncated {what} length")));
            }
            let len = p.get_u32_le() as usize;
            if p.remaining() < len {
                return Err(ProtoError::Malformed(format!(
                    "truncated {what}: need {len} bytes, have {}",
                    p.remaining()
                )));
            }
            let mut bytes = vec![0u8; len];
            p.copy_to_slice(&mut bytes);
            String::from_utf8(bytes)
                .map_err(|_| ProtoError::Malformed(format!("{what} is not utf-8")))
        };
        let msg = match tag {
            0 => {
                need(&payload, 8, "Hello")?;
                Message::Hello {
                    version: payload.get_u32_le(),
                    n_snps: payload.get_u32_le(),
                }
            }
            1 => {
                need(&payload, 12, "EvalRequest header")?;
                let id = payload.get_u64_le();
                let k = payload.get_u32_le() as usize;
                need(&payload, k * 4, "EvalRequest snps")?;
                let snps = (0..k).map(|_| payload.get_u32_le() as SnpId).collect();
                Message::EvalRequest { id, snps }
            }
            2 => {
                need(&payload, 16, "EvalResponse")?;
                Message::EvalResponse {
                    id: payload.get_u64_le(),
                    fitness: f64::from_bits(payload.get_u64_le()),
                }
            }
            3 => Message::Shutdown,
            4 => {
                need(&payload, 21, "EvalResult")?;
                Message::EvalResult {
                    id: payload.get_u64_le(),
                    fitness: f64::from_bits(payload.get_u64_le()),
                    compute_us: payload.get_u32_le(),
                    scratch_warm: payload.get_u8() != 0,
                }
            }
            5 => {
                need(&payload, 24, "RegisterDataset header")?;
                let handle = payload.get_u64_le();
                let fingerprint = payload.get_u64_le();
                let n_snps = payload.get_u32_le();
                let len = payload.get_u32_le() as usize;
                need(&payload, len, "RegisterDataset columns")?;
                let mut blob = vec![0u8; len];
                payload.copy_to_slice(&mut blob);
                Message::RegisterDataset {
                    handle,
                    fingerprint,
                    n_snps,
                    payload: blob,
                }
            }
            6 => {
                need(&payload, 13, "DatasetAck header")?;
                let handle = payload.get_u64_le();
                let accepted = payload.get_u8() != 0;
                let reason = get_string(&mut payload, "DatasetAck reason")?;
                Message::DatasetAck {
                    handle,
                    accepted,
                    reason,
                }
            }
            7 => {
                need(&payload, 28, "EvalRequestV3 header")?;
                let id = payload.get_u64_le();
                let run_id = payload.get_u64_le();
                let handle = payload.get_u64_le();
                let k = payload.get_u32_le() as usize;
                need(&payload, k * 4, "EvalRequestV3 snps")?;
                let snps = (0..k).map(|_| payload.get_u32_le() as SnpId).collect();
                Message::EvalRequestV3 {
                    id,
                    run_id,
                    handle,
                    snps,
                }
            }
            8 => {
                need(&payload, 12, "EvalError header")?;
                let id = payload.get_u64_le();
                let reason = get_string(&mut payload, "EvalError reason")?;
                Message::EvalError { id, reason }
            }
            other => return Err(ProtoError::Malformed(format!("unknown tag {other}"))),
        };
        if payload.has_remaining() {
            return Err(ProtoError::Malformed(format!(
                "{} trailing bytes after tag {tag}",
                payload.remaining()
            )));
        }
        Ok(msg)
    }
}

/// Write one message to a (buffered) stream and flush.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> Result<(), ProtoError> {
    w.write_all(&msg.encode())?;
    w.flush()?;
    Ok(())
}

/// Read one message from a stream (blocking).
pub fn read_message<R: Read>(r: &mut R) -> Result<Message, ProtoError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(ProtoError::Malformed("zero-length frame".into()));
    }
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Malformed(format!(
            "frame of {len} bytes exceeds cap {MAX_PAYLOAD}"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let tag = body[0];
    Message::decode(tag, BytesMut::from(&body[1..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let frame = msg.encode();
        let mut cursor = std::io::Cursor::new(frame.to_vec());
        let back = read_message(&mut cursor).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Message::Hello {
            version: PROTOCOL_VERSION,
            n_snps: 51,
        });
        roundtrip(Message::EvalRequest {
            id: 42,
            snps: vec![8, 12, 15],
        });
        roundtrip(Message::EvalRequest {
            id: 0,
            snps: vec![],
        });
        roundtrip(Message::EvalResponse {
            id: 42,
            fitness: 123.456,
        });
        // (NaN fitness is covered by `nan_fitness_survives_bit_encoding`;
        // it cannot go through `assert_eq!` since NaN != NaN.)
        roundtrip(Message::Shutdown);
        roundtrip(Message::EvalResult {
            id: 42,
            fitness: 123.456,
            compute_us: 1_500,
            scratch_warm: true,
        });
        roundtrip(Message::EvalResult {
            id: 0,
            fitness: 0.0,
            compute_us: 0,
            scratch_warm: false,
        });
    }

    #[test]
    fn v3_messages_roundtrip() {
        roundtrip(Message::RegisterDataset {
            handle: 7,
            fingerprint: 0xDEAD_BEEF_CAFE,
            n_snps: 51,
            payload: vec![1, 2, 3, 4, 5],
        });
        roundtrip(Message::RegisterDataset {
            handle: 8,
            fingerprint: 0xDEAD_BEEF_CAFE,
            n_snps: 51,
            payload: vec![], // re-registration of a resident fingerprint
        });
        roundtrip(Message::DatasetAck {
            handle: 7,
            accepted: true,
            reason: String::new(),
        });
        roundtrip(Message::DatasetAck {
            handle: 7,
            accepted: false,
            reason: "dataset capacity exhausted".into(),
        });
        roundtrip(Message::EvalRequestV3 {
            id: 42,
            run_id: 3,
            handle: 7,
            snps: vec![8, 12, 15],
        });
        roundtrip(Message::EvalRequestV3 {
            id: 0,
            run_id: 0,
            handle: 0,
            snps: vec![],
        });
        roundtrip(Message::EvalError {
            id: 42,
            reason: "unknown dataset handle 7".into(),
        });
    }

    #[test]
    fn malformed_v3_frames_rejected() {
        // RegisterDataset whose blob length claims more than is carried.
        let mut bad = BytesMut::new();
        bad.put_u32_le(1 + 24 + 2);
        bad.put_u8(5);
        bad.put_u64_le(1); // handle
        bad.put_u64_le(2); // fingerprint
        bad.put_u32_le(51); // n_snps
        bad.put_u32_le(100); // claims 100 bytes of columns...
        bad.put_u16_le(0); // ...carries 2
        let mut cursor = std::io::Cursor::new(bad.to_vec());
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));

        // DatasetAck with a non-utf8 reason.
        let mut bad = BytesMut::new();
        bad.put_u32_le(1 + 13 + 2);
        bad.put_u8(6);
        bad.put_u64_le(1);
        bad.put_u8(0);
        bad.put_u32_le(2);
        bad.put_u8(0xff);
        bad.put_u8(0xfe);
        let mut cursor = std::io::Cursor::new(bad.to_vec());
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));

        // Truncated EvalRequestV3 (claims 3 snps, carries none).
        let mut bad = BytesMut::new();
        bad.put_u32_le(1 + 28);
        bad.put_u8(7);
        bad.put_u64_le(1);
        bad.put_u64_le(2);
        bad.put_u64_le(3);
        bad.put_u32_le(3);
        let mut cursor = std::io::Cursor::new(bad.to_vec());
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn eval_result_payload_is_21_bytes() {
        let frame = Message::EvalResult {
            id: 1,
            fitness: 1.0,
            compute_us: 1,
            scratch_warm: true,
        }
        .encode();
        // 4-byte length prefix + 1-byte tag + 21-byte payload.
        assert_eq!(frame.len(), 4 + 1 + 21);

        // A truncated EvalResult is rejected.
        let mut bad = BytesMut::new();
        bad.put_u32_le(1 + 20);
        bad.put_u8(4);
        bad.extend_from_slice(&frame[5..25]);
        let mut cursor = std::io::Cursor::new(bad.to_vec());
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn nan_fitness_survives_bit_encoding() {
        let frame = Message::EvalResponse {
            id: 7,
            fitness: f64::NAN,
        }
        .encode();
        let mut cursor = std::io::Cursor::new(frame.to_vec());
        match read_message(&mut cursor).unwrap() {
            Message::EvalResponse { id: 7, fitness } => assert!(fitness.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_frames_rejected() {
        // Unknown tag.
        let mut bad = BytesMut::new();
        bad.put_u32_le(1);
        bad.put_u8(9);
        let mut cursor = std::io::Cursor::new(bad.to_vec());
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));

        // Truncated EvalRequest (claims 3 snps, carries none).
        let mut bad = BytesMut::new();
        bad.put_u32_le(13);
        bad.put_u8(1);
        bad.put_u64_le(1);
        bad.put_u32_le(3);
        let mut cursor = std::io::Cursor::new(bad.to_vec());
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));

        // Oversize declared length.
        let mut bad = BytesMut::new();
        bad.put_u32_le(MAX_PAYLOAD + 1);
        bad.put_u8(3);
        let mut cursor = std::io::Cursor::new(bad.to_vec());
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));

        // Trailing garbage after a Shutdown.
        let mut bad = BytesMut::new();
        bad.put_u32_le(3);
        bad.put_u8(3);
        bad.put_u16_le(99);
        let mut cursor = std::io::Cursor::new(bad.to_vec());
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn eof_is_io_error() {
        let mut cursor = std::io::Cursor::new(vec![1u8, 0]);
        assert!(matches!(read_message(&mut cursor), Err(ProtoError::Io(_))));
    }

    #[test]
    fn streamed_messages_parse_in_sequence() {
        let mut buf = Vec::new();
        let msgs = vec![
            Message::Hello {
                version: 1,
                n_snps: 51,
            },
            Message::EvalRequest {
                id: 1,
                snps: vec![2, 4],
            },
            Message::EvalResponse {
                id: 1,
                fitness: 5.0,
            },
            Message::Shutdown,
        ];
        for m in &msgs {
            buf.extend_from_slice(&m.encode());
        }
        let mut cursor = std::io::Cursor::new(buf);
        for expected in &msgs {
            assert_eq!(&read_message(&mut cursor).unwrap(), expected);
        }
    }
}
