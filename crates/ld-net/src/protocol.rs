//! Wire protocol: length-prefixed binary frames.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [u32 payload_len] [u8 tag] [payload...]
//! ```
//!
//! | tag | message | payload |
//! |-----|---------|---------|
//! | 0 | `Hello` | u32 protocol version, u32 n_snps |
//! | 1 | `EvalRequest` | u64 id, u32 k, k × u32 snp ids |
//! | 2 | `EvalResponse` | u64 id, f64 fitness (bits) |
//! | 3 | `Shutdown` | — |
//! | 4 | `EvalResult` | u64 id, f64 fitness (bits), u32 compute µs, u8 scratch warm (v2) |
//!
//! The `Hello` is sent by the slave on accept; the master checks the
//! version and panel width before dealing work. Payloads are bounded
//! ([`MAX_PAYLOAD`]) so a corrupt peer cannot trigger huge allocations.
//!
//! # Version negotiation
//!
//! Version 2 adds the `EvalResult` reply frame, which carries the
//! slave's own compute time so the master can attribute latency to
//! network vs. compute. Negotiation stays compatible with v1 peers in
//! both directions:
//!
//! * the slave still greets first with `Hello { version, .. }`;
//! * a v2 **master** answers a v≥2 slave with its own `Hello` (a v1
//!   slave never sees an unexpected frame);
//! * a v2 **slave** keeps answering with plain `EvalResponse` until it
//!   has seen a master `Hello` announcing version ≥ 2, after which it
//!   switches to `EvalResult`.
//!
//! So timing fields exist exactly when both ends are v2, and are
//! *absent* (not zero) otherwise.

use bytes::{Buf, BufMut, BytesMut};
use ld_data::SnpId;
use std::io::{self, Read, Write};

/// Protocol version; bumped on any frame-format change.
pub const PROTOCOL_VERSION: u32 = 2;

/// Oldest peer version the master still accepts (v1 slaves reply with
/// `EvalResponse` and simply never report compute time).
pub const MIN_SUPPORTED_VERSION: u32 = 1;

/// Upper bound on a frame payload (a request for a 10k-SNP haplotype is
/// far beyond anything real; reject earlier).
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Slave → master greeting: protocol version and served panel width.
    Hello {
        /// Protocol version spoken by the peer.
        version: u32,
        /// Number of SNPs in the slave's dataset.
        n_snps: u32,
    },
    /// Master → slave: evaluate one haplotype.
    EvalRequest {
        /// Correlation id chosen by the master.
        id: u64,
        /// Ascending SNP ids.
        snps: Vec<SnpId>,
    },
    /// Slave → master: the fitness of request `id`.
    EvalResponse {
        /// Correlation id echoed back.
        id: u64,
        /// Fitness value.
        fitness: f64,
    },
    /// Either side: orderly termination.
    Shutdown,
    /// Slave → master (v2): the fitness of request `id` plus the
    /// slave's own timing. Only sent once the slave has seen a master
    /// `Hello` with version ≥ 2.
    EvalResult {
        /// Correlation id echoed back.
        id: u64,
        /// Fitness value.
        fitness: f64,
        /// Wall-clock microseconds the slave spent evaluating.
        compute_us: u32,
        /// Whether the connection's scratch workspace was already warm
        /// (this was not the connection's first evaluation).
        scratch_warm: bool,
    },
}

/// Protocol-level errors.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying socket failure.
    Io(io::Error),
    /// Frame violated the format (bad tag, truncated payload, oversize).
    Malformed(String),
    /// Peer speaks an incompatible version.
    VersionMismatch {
        /// What we speak.
        ours: u32,
        /// What the peer announced.
        theirs: u32,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "io: {e}"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
            ProtoError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0,
            Message::EvalRequest { .. } => 1,
            Message::EvalResponse { .. } => 2,
            Message::Shutdown => 3,
            Message::EvalResult { .. } => 4,
        }
    }

    /// Encode into a frame.
    pub fn encode(&self) -> BytesMut {
        let mut payload = BytesMut::new();
        match self {
            Message::Hello { version, n_snps } => {
                payload.put_u32_le(*version);
                payload.put_u32_le(*n_snps);
            }
            Message::EvalRequest { id, snps } => {
                payload.put_u64_le(*id);
                payload.put_u32_le(snps.len() as u32);
                for &s in snps {
                    payload.put_u32_le(s as u32);
                }
            }
            Message::EvalResponse { id, fitness } => {
                payload.put_u64_le(*id);
                payload.put_u64_le(fitness.to_bits());
            }
            Message::Shutdown => {}
            Message::EvalResult {
                id,
                fitness,
                compute_us,
                scratch_warm,
            } => {
                payload.put_u64_le(*id);
                payload.put_u64_le(fitness.to_bits());
                payload.put_u32_le(*compute_us);
                payload.put_u8(u8::from(*scratch_warm));
            }
        }
        let mut frame = BytesMut::with_capacity(5 + payload.len());
        frame.put_u32_le(payload.len() as u32 + 1);
        frame.put_u8(self.tag());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decode from tag + payload bytes.
    fn decode(tag: u8, mut payload: BytesMut) -> Result<Message, ProtoError> {
        let need = |p: &BytesMut, n: usize, what: &str| -> Result<(), ProtoError> {
            if p.remaining() < n {
                Err(ProtoError::Malformed(format!(
                    "truncated {what}: need {n} bytes, have {}",
                    p.remaining()
                )))
            } else {
                Ok(())
            }
        };
        let msg = match tag {
            0 => {
                need(&payload, 8, "Hello")?;
                Message::Hello {
                    version: payload.get_u32_le(),
                    n_snps: payload.get_u32_le(),
                }
            }
            1 => {
                need(&payload, 12, "EvalRequest header")?;
                let id = payload.get_u64_le();
                let k = payload.get_u32_le() as usize;
                need(&payload, k * 4, "EvalRequest snps")?;
                let snps = (0..k).map(|_| payload.get_u32_le() as SnpId).collect();
                Message::EvalRequest { id, snps }
            }
            2 => {
                need(&payload, 16, "EvalResponse")?;
                Message::EvalResponse {
                    id: payload.get_u64_le(),
                    fitness: f64::from_bits(payload.get_u64_le()),
                }
            }
            3 => Message::Shutdown,
            4 => {
                need(&payload, 21, "EvalResult")?;
                Message::EvalResult {
                    id: payload.get_u64_le(),
                    fitness: f64::from_bits(payload.get_u64_le()),
                    compute_us: payload.get_u32_le(),
                    scratch_warm: payload.get_u8() != 0,
                }
            }
            other => return Err(ProtoError::Malformed(format!("unknown tag {other}"))),
        };
        if payload.has_remaining() {
            return Err(ProtoError::Malformed(format!(
                "{} trailing bytes after tag {tag}",
                payload.remaining()
            )));
        }
        Ok(msg)
    }
}

/// Write one message to a (buffered) stream and flush.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> Result<(), ProtoError> {
    w.write_all(&msg.encode())?;
    w.flush()?;
    Ok(())
}

/// Read one message from a stream (blocking).
pub fn read_message<R: Read>(r: &mut R) -> Result<Message, ProtoError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(ProtoError::Malformed("zero-length frame".into()));
    }
    if len > MAX_PAYLOAD {
        return Err(ProtoError::Malformed(format!(
            "frame of {len} bytes exceeds cap {MAX_PAYLOAD}"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let tag = body[0];
    Message::decode(tag, BytesMut::from(&body[1..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let frame = msg.encode();
        let mut cursor = std::io::Cursor::new(frame.to_vec());
        let back = read_message(&mut cursor).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Message::Hello {
            version: PROTOCOL_VERSION,
            n_snps: 51,
        });
        roundtrip(Message::EvalRequest {
            id: 42,
            snps: vec![8, 12, 15],
        });
        roundtrip(Message::EvalRequest {
            id: 0,
            snps: vec![],
        });
        roundtrip(Message::EvalResponse {
            id: 42,
            fitness: 123.456,
        });
        // (NaN fitness is covered by `nan_fitness_survives_bit_encoding`;
        // it cannot go through `assert_eq!` since NaN != NaN.)
        roundtrip(Message::Shutdown);
        roundtrip(Message::EvalResult {
            id: 42,
            fitness: 123.456,
            compute_us: 1_500,
            scratch_warm: true,
        });
        roundtrip(Message::EvalResult {
            id: 0,
            fitness: 0.0,
            compute_us: 0,
            scratch_warm: false,
        });
    }

    #[test]
    fn eval_result_payload_is_21_bytes() {
        let frame = Message::EvalResult {
            id: 1,
            fitness: 1.0,
            compute_us: 1,
            scratch_warm: true,
        }
        .encode();
        // 4-byte length prefix + 1-byte tag + 21-byte payload.
        assert_eq!(frame.len(), 4 + 1 + 21);

        // A truncated EvalResult is rejected.
        let mut bad = BytesMut::new();
        bad.put_u32_le(1 + 20);
        bad.put_u8(4);
        bad.extend_from_slice(&frame[5..25]);
        let mut cursor = std::io::Cursor::new(bad.to_vec());
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn nan_fitness_survives_bit_encoding() {
        let frame = Message::EvalResponse {
            id: 7,
            fitness: f64::NAN,
        }
        .encode();
        let mut cursor = std::io::Cursor::new(frame.to_vec());
        match read_message(&mut cursor).unwrap() {
            Message::EvalResponse { id: 7, fitness } => assert!(fitness.is_nan()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_frames_rejected() {
        // Unknown tag.
        let mut bad = BytesMut::new();
        bad.put_u32_le(1);
        bad.put_u8(9);
        let mut cursor = std::io::Cursor::new(bad.to_vec());
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));

        // Truncated EvalRequest (claims 3 snps, carries none).
        let mut bad = BytesMut::new();
        bad.put_u32_le(13);
        bad.put_u8(1);
        bad.put_u64_le(1);
        bad.put_u32_le(3);
        let mut cursor = std::io::Cursor::new(bad.to_vec());
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));

        // Oversize declared length.
        let mut bad = BytesMut::new();
        bad.put_u32_le(MAX_PAYLOAD + 1);
        bad.put_u8(3);
        let mut cursor = std::io::Cursor::new(bad.to_vec());
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));

        // Trailing garbage after a Shutdown.
        let mut bad = BytesMut::new();
        bad.put_u32_le(3);
        bad.put_u8(3);
        bad.put_u16_le(99);
        let mut cursor = std::io::Cursor::new(bad.to_vec());
        assert!(matches!(
            read_message(&mut cursor),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn eof_is_io_error() {
        let mut cursor = std::io::Cursor::new(vec![1u8, 0]);
        assert!(matches!(read_message(&mut cursor), Err(ProtoError::Io(_))));
    }

    #[test]
    fn streamed_messages_parse_in_sequence() {
        let mut buf = Vec::new();
        let msgs = vec![
            Message::Hello {
                version: 1,
                n_snps: 51,
            },
            Message::EvalRequest {
                id: 1,
                snps: vec![2, 4],
            },
            Message::EvalResponse {
                id: 1,
                fitness: 5.0,
            },
            Message::Shutdown,
        ];
        for m in &msgs {
            buf.extend_from_slice(&m.encode());
        }
        let mut cursor = std::io::Cursor::new(buf);
        for expected in &msgs {
            assert_eq!(&read_message(&mut cursor).unwrap(), expected);
        }
    }
}
