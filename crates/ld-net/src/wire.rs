//! Dataset wire codec: the columns blob shipped inside protocol v3
//! `RegisterDataset` frames.
//!
//! The paper's slaves "access only once to the data"; in the multi-run
//! eval server the same economy holds per *dataset*: a tenant's columns
//! cross the wire to each slave exactly once, identified ever after by a
//! content fingerprint ([`fingerprint`], FNV-1a over the encoded bytes).
//! The codec is deliberately boring — versioned magic, little-endian
//! fixed-width fields, length-prefixed strings — so a frame written by
//! any build decodes in any other.

use ld_data::{Dataset, DatasetFingerprint, Genotype, GenotypeMatrix, SnpInfo, Status};

/// Leading magic of an encoded dataset (`"LDDS"` + format version).
const MAGIC: &[u8; 4] = b"LDDS";
const FORMAT_VERSION: u8 = 1;

/// Encode a dataset into the self-describing columns blob registered on
/// slaves. Inverse of [`decode_dataset`].
pub fn encode_dataset(d: &Dataset) -> Vec<u8> {
    let n_ind = d.n_individuals();
    let n_snps = d.n_snps();
    let mut out = Vec::with_capacity(16 + n_ind * (1 + n_snps) + n_snps * 16);
    out.extend_from_slice(MAGIC);
    out.push(FORMAT_VERSION);
    out.extend_from_slice(&(n_ind as u32).to_le_bytes());
    out.extend_from_slice(&(n_snps as u32).to_le_bytes());
    for s in &d.statuses {
        out.push(match s {
            Status::Affected => 0,
            Status::Unaffected => 1,
            Status::Unknown => 2,
        });
    }
    for i in 0..n_ind {
        for s in 0..n_snps {
            out.push(match d.genotypes.get(i, s) {
                Genotype::HomA1 => 0,
                Genotype::Het => 1,
                Genotype::HomA2 => 2,
                Genotype::Missing => 3,
            });
        }
    }
    for info in &d.snps {
        out.push(info.chromosome);
        out.extend_from_slice(&info.position_kb.to_le_bytes());
        push_str(&mut out, &info.name);
    }
    push_str(&mut out, &d.label);
    out
}

/// Decode a blob produced by [`encode_dataset`].
pub fn decode_dataset(bytes: &[u8]) -> Result<Dataset, String> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err("not a dataset blob (bad magic)".to_string());
    }
    let version = r.u8()?;
    if version != FORMAT_VERSION {
        return Err(format!("unsupported dataset format version {version}"));
    }
    let n_ind = r.u32()? as usize;
    let n_snps = r.u32()? as usize;
    // Cheap sanity bound before allocating: the genotype block alone must
    // fit in what's left of the blob.
    if n_ind
        .checked_mul(n_snps)
        .is_none_or(|cells| cells > r.bytes.len())
    {
        return Err(format!(
            "dataset dimensions {n_ind}x{n_snps} exceed the blob"
        ));
    }
    let mut statuses = Vec::with_capacity(n_ind);
    for _ in 0..n_ind {
        statuses.push(match r.u8()? {
            0 => Status::Affected,
            1 => Status::Unaffected,
            2 => Status::Unknown,
            other => return Err(format!("bad status byte {other}")),
        });
    }
    let mut genotypes = Vec::with_capacity(n_ind * n_snps);
    for _ in 0..n_ind * n_snps {
        genotypes.push(match r.u8()? {
            0 => Genotype::HomA1,
            1 => Genotype::Het,
            2 => Genotype::HomA2,
            3 => Genotype::Missing,
            other => return Err(format!("bad genotype byte {other}")),
        });
    }
    let mut snps = Vec::with_capacity(n_snps);
    for id in 0..n_snps {
        let chromosome = r.u8()?;
        let position_kb =
            f64::from_le_bytes(r.take(8)?.try_into().expect("take(8) returned 8 bytes"));
        let name = r.string()?;
        snps.push(SnpInfo {
            id,
            name,
            chromosome,
            position_kb,
        });
    }
    let label = r.string()?;
    let matrix = GenotypeMatrix::from_rows(n_ind, n_snps, genotypes).map_err(|e| e.to_string())?;
    Dataset::new(matrix, statuses, snps, label).map_err(|e| e.to_string())
}

/// Content fingerprint of a columns blob (64-bit FNV-1a). Two tenants
/// registering byte-identical datasets share one resident copy per slave.
///
/// Delegates to [`ld_data::DatasetFingerprint`], the canonical home of
/// the digest since the fitness store began keying records with it; the
/// value (and therefore the v3 wire format) is unchanged.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    DatasetFingerprint::from_bytes(bytes).as_u64()
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = u16::try_from(bytes.len()).unwrap_or(u16::MAX) as usize;
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| "truncated dataset blob".to_string())?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("take(4) returned 4 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().expect("take(2) returned 2 bytes"))
            as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_data::synthetic::lille_51;

    #[test]
    fn dataset_roundtrips_through_the_codec() {
        let d = lille_51(42);
        let bytes = encode_dataset(&d);
        let back = decode_dataset(&bytes).unwrap();
        assert_eq!(back.n_individuals(), d.n_individuals());
        assert_eq!(back.n_snps(), d.n_snps());
        assert_eq!(back.statuses, d.statuses);
        assert_eq!(back.genotypes, d.genotypes);
        assert_eq!(back.label, d.label);
        assert_eq!(back.snps.len(), d.snps.len());
        assert_eq!(back.snps[7].name, d.snps[7].name);
    }

    #[test]
    fn fingerprint_is_content_addressed() {
        let a = encode_dataset(&lille_51(42));
        let b = encode_dataset(&lille_51(42));
        let c = encode_dataset(&lille_51(43));
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn fingerprint_relocation_keeps_v3_frames_byte_identical() {
        // The digest moved from an inline loop here to
        // `ld_data::DatasetFingerprint`. This test re-rolls the
        // historical pre-relocation computation by hand and proves a v3
        // `RegisterDataset` frame built from the relocated digest is
        // byte-for-byte what the old code produced.
        let blob = encode_dataset(&lille_51(42));
        let mut legacy: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &blob {
            legacy ^= u64::from(b);
            legacy = legacy.wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(fingerprint(&blob), legacy);

        let frame = crate::protocol::Message::RegisterDataset {
            handle: fingerprint(&blob),
            fingerprint: fingerprint(&blob),
            n_snps: 51,
            payload: blob.clone(),
        }
        .encode();
        // Hand-rolled frame: [len u32][tag=5][handle u64][fingerprint
        // u64][n_snps u32][blob len u32][blob] — the v3 layout.
        let mut expected = Vec::new();
        let payload_len = 8 + 8 + 4 + 4 + blob.len();
        expected.extend_from_slice(&(payload_len as u32 + 1).to_le_bytes());
        expected.push(5);
        expected.extend_from_slice(&legacy.to_le_bytes());
        expected.extend_from_slice(&legacy.to_le_bytes());
        expected.extend_from_slice(&51u32.to_le_bytes());
        expected.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        expected.extend_from_slice(&blob);
        assert_eq!(&frame[..], &expected[..]);
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        assert!(decode_dataset(b"nope").is_err());
        assert!(decode_dataset(&[]).is_err());
        // Valid magic, absurd dimensions.
        let mut evil = Vec::new();
        evil.extend_from_slice(b"LDDS");
        evil.push(1);
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        evil.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_dataset(&evil).is_err());
    }
}
