//! Recovery tests for the distributed evaluation path, driven by scripted
//! [`FaultPlan`]s (feature `fault-inject`).
//!
//! The load-bearing invariant: evaluation is pure and failed jobs are
//! requeued, never lost — so a GA run on a faulty cluster must produce
//! **bit-identical** best haplotypes to the fault-free reference, and
//! total slave loss must surface as a typed error (or a local fallback),
//! never a panic.
#![cfg(feature = "fault-inject")]

use ld_core::evaluator::FnEvaluator;
use ld_core::{
    EvalBackend, EvalBackendError, EvalService, Evaluator, EvaluatorBackend, FaultEvents, GaConfig,
    GaEngine, Haplotype,
};
use ld_data::SnpId;
use ld_net::{FaultPlan, LocalCluster, PoolConfig, PoolError};
use ld_parallel::RayonEvaluator;
use std::sync::Arc;
use std::time::Duration;

/// The shared objective: pure, so every evaluation path agrees exactly.
fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
    FnEvaluator::new(30, |s: &[SnpId]| {
        s.iter().map(|&x| x as f64).sum::<f64>() + 10.0 * s.len() as f64
    })
}

fn expected(snps: &[SnpId]) -> f64 {
    snps.iter().map(|&x| x as f64).sum::<f64>() + 10.0 * snps.len() as f64
}

/// Aggressive recovery knobs so tests converge in milliseconds.
fn fast_cfg() -> PoolConfig {
    PoolConfig {
        request_timeout: Duration::from_secs(2),
        max_retries: 1,
        retry_backoff: Duration::from_millis(5),
        rejoin_backoff: Duration::from_millis(10),
        max_rejoin_backoff: Duration::from_millis(200),
    }
}

fn ga_cfg() -> GaConfig {
    GaConfig {
        population_size: 40,
        min_size: 2,
        max_size: 3,
        matings_per_generation: 6,
        stagnation_limit: 8,
        max_generations: 30,
        ..GaConfig::default()
    }
}

fn batch(n: usize) -> Vec<Haplotype> {
    (0..n)
        .map(|i| Haplotype::new(vec![i % 30, (i * 7 + 1) % 30]))
        .collect()
}

#[test]
fn killed_slave_mid_run_yields_bit_identical_results() {
    let cfg = ga_cfg();
    let reference = GaEngine::new(&toy(), cfg.clone(), 5).unwrap().run();
    for seed in [1u64, 9] {
        let plans = FaultPlan::matrix("kill-one", 3, seed).unwrap();
        let cluster = LocalCluster::spawn_faulty(3, toy, &plans, fast_cfg()).unwrap();
        let result = GaEngine::new(cluster.pool(), cfg.clone(), 5).unwrap().run();
        assert_eq!(
            result.total_evaluations, reference.total_evaluations,
            "seed {seed}"
        );
        assert_eq!(result.generations, reference.generations, "seed {seed}");
        let (got, want) = (
            result.best_of_size(3).unwrap(),
            reference.best_of_size(3).unwrap(),
        );
        assert_eq!(got.snps(), want.snps(), "seed {seed}");
        assert_eq!(got.fitness(), want.fitness(), "seed {seed}");
        // The victim really died and could not rejoin.
        assert_eq!(cluster.pool().alive(), 2, "seed {seed}");
    }
}

#[test]
fn dead_pool_dispatch_reports_outstanding_and_keeps_partial_results() {
    let plans = vec![FaultPlan::none().kill_server_after(3)];
    let cluster = LocalCluster::spawn_faulty(1, toy, &plans, fast_cfg()).unwrap();
    let mut jobs = batch(10);
    let err = cluster.pool().try_evaluate_batch(&mut jobs).unwrap_err();
    let evaluated = jobs.iter().filter(|h| h.is_evaluated()).count();
    match err {
        EvalBackendError::AllWorkersFailed { outstanding, total } => {
            assert_eq!(total, 10);
            assert!(outstanding > 0);
            // Residue contract: completed jobs keep their results.
            assert_eq!(outstanding, 10 - evaluated);
        }
        other => panic!("expected AllWorkersFailed, got {other}"),
    }
    for h in jobs.iter().filter(|h| h.is_evaluated()) {
        assert_eq!(h.fitness(), expected(h.snps()));
    }
    let events = Evaluator::take_fault_events(cluster.pool());
    assert!(events.retirements >= 1, "{events:?}");
    assert!(events.requeued >= 1, "{events:?}");
    // A second dispatch on the all-dead pool fails fast, whole batch
    // outstanding.
    let mut jobs = batch(2);
    assert_eq!(
        cluster.pool().try_evaluate_batch(&mut jobs).unwrap_err(),
        EvalBackendError::AllWorkersFailed {
            outstanding: 2,
            total: 2
        }
    );
}

#[test]
fn total_slave_loss_without_fallback_is_a_typed_error() {
    let plans = vec![
        FaultPlan::none().kill_server_after(2),
        FaultPlan::none().kill_server_after(2),
    ];
    let cluster = LocalCluster::spawn_faulty(2, toy, &plans, fast_cfg()).unwrap();
    let err = GaEngine::new(cluster.pool(), ga_cfg(), 7)
        .unwrap()
        .try_run()
        .unwrap_err();
    // Both slaves die during the very first (initial-population) batch, so
    // the loss may surface either as the backend error itself or wrapped
    // in the start-up failure — but always typed, never a panic.
    match err {
        EvalBackendError::AllWorkersFailed { .. } => {}
        EvalBackendError::Backend(msg) => {
            assert!(msg.contains("evaluation failed"), "odd message: {msg}")
        }
        other => panic!("expected a worker-loss error, got {other}"),
    }
}

#[test]
fn service_falls_back_to_local_evaluation_when_all_slaves_die() {
    let plans = vec![
        FaultPlan::none().kill_server_after(2),
        FaultPlan::none().kill_server_after(2),
    ];
    let cluster = LocalCluster::spawn_faulty(2, toy, &plans, fast_cfg()).unwrap();
    let fallback: Arc<dyn EvalBackend> = Arc::new(RayonEvaluator::new(toy()));
    let pool = cluster.pool();
    let mut svc = EvalService::new(EvaluatorBackend::new(pool)).with_fallback(fallback);
    let mut jobs = batch(30);
    svc.submit(&mut jobs).unwrap();
    for h in &jobs {
        assert!(h.is_evaluated());
        assert_eq!(h.fitness(), expected(h.snps()));
    }
    let stats = svc.stats();
    assert!(
        stats.fallback_batches >= 1,
        "fallback not recorded: {stats:?}"
    );
    assert!(stats.retirements >= 1, "retirement not recorded: {stats:?}");
}

#[test]
fn engine_survives_total_slave_loss_via_fallback_backend() {
    let cfg = ga_cfg();
    let reference = GaEngine::new(&toy(), cfg.clone(), 7).unwrap().run();
    let plans = vec![
        FaultPlan::none().kill_server_after(5),
        FaultPlan::none().kill_server_after(6),
    ];
    let cluster = LocalCluster::spawn_faulty(2, toy, &plans, fast_cfg()).unwrap();
    let fallback: Arc<dyn EvalBackend> = Arc::new(RayonEvaluator::new(toy()));
    let result = GaEngine::new(cluster.pool(), cfg, 7)
        .unwrap()
        .with_fallback_backend(fallback)
        .try_run()
        .expect("fallback must keep the run alive");
    assert_eq!(result.total_evaluations, reference.total_evaluations);
    assert_eq!(result.generations, reference.generations);
    assert_eq!(
        result.best_of_size(3).unwrap().snps(),
        reference.best_of_size(3).unwrap().snps()
    );
    assert_eq!(cluster.pool().alive(), 0, "both slaves should be dead");
}

#[test]
fn flapping_slave_retires_and_rejoins() {
    let plans = vec![
        FaultPlan::none().drop_connection_after(1),
        FaultPlan::none(),
    ];
    let cfg = PoolConfig {
        max_retries: 0, // every drop retires immediately → rejoin next batch
        rejoin_backoff: Duration::from_millis(1),
        ..fast_cfg()
    };
    let cluster = LocalCluster::spawn_faulty(2, toy, &plans, cfg).unwrap();
    let mut total = FaultEvents::default();
    for _round in 0..5 {
        let mut jobs = batch(12);
        cluster.pool().try_evaluate_batch(&mut jobs).unwrap();
        for h in &jobs {
            assert_eq!(h.fitness(), expected(h.snps()));
        }
        total.merge(&Evaluator::take_fault_events(cluster.pool()));
        std::thread::sleep(Duration::from_millis(3)); // let rejoin backoff lapse
    }
    assert!(total.retirements >= 2, "{total:?}");
    assert!(total.rejoins >= 1, "{total:?}");
    assert!(total.requeued >= 2, "{total:?}");
}

#[test]
fn slow_slave_is_not_retired() {
    let plans = FaultPlan::matrix("slow-slave", 2, 3).unwrap();
    let cluster = LocalCluster::spawn_faulty(2, toy, &plans, fast_cfg()).unwrap();
    let mut jobs = batch(20);
    cluster.pool().try_evaluate_batch(&mut jobs).unwrap();
    for h in &jobs {
        assert_eq!(h.fitness(), expected(h.snps()));
    }
    let events = Evaluator::take_fault_events(cluster.pool());
    assert!(events.is_empty(), "slow ≠ faulty: {events:?}");
    assert_eq!(cluster.pool().alive(), 2);
}

#[test]
fn handshake_sabotage_is_rejected_at_connect() {
    for plan in [
        FaultPlan::none().refuse_handshake(),
        FaultPlan::none().corrupt_handshake(),
    ] {
        let err = LocalCluster::spawn_faulty(1, toy, std::slice::from_ref(&plan), fast_cfg())
            .err()
            .unwrap_or_else(|| panic!("connected through sabotage: {plan:?}"));
        assert!(matches!(err, PoolError::Connect { .. }), "{plan:?}");
    }
}

/// The CI fault-matrix entry point: `LD_FAULT_PLAN` selects one scenario
/// (locally, all four run). Every scenario must converge bit-identically
/// to the fault-free reference.
#[test]
fn fault_matrix_scenarios_converge_bit_identically() {
    let scenarios: Vec<String> = match std::env::var("LD_FAULT_PLAN") {
        Ok(s) if !s.is_empty() => vec![s],
        _ => [
            "kill-one",
            "kill-all-but-one",
            "slow-slave",
            "flapping-reconnect",
        ]
        .map(String::from)
        .to_vec(),
    };
    let cfg = GaConfig {
        population_size: 40,
        min_size: 2,
        max_size: 3,
        matings_per_generation: 4,
        stagnation_limit: 6,
        max_generations: 20,
        ..GaConfig::default()
    };
    let reference = GaEngine::new(&toy(), cfg.clone(), 11).unwrap().run();
    for name in &scenarios {
        let plans =
            FaultPlan::matrix(name, 3, 42).unwrap_or_else(|| panic!("unknown scenario {name:?}"));
        let cluster = LocalCluster::spawn_faulty(3, toy, &plans, fast_cfg()).unwrap();
        let fallback: Arc<dyn EvalBackend> = Arc::new(RayonEvaluator::new(toy()));
        let result = GaEngine::new(cluster.pool(), cfg.clone(), 11)
            .unwrap()
            .with_fallback_backend(fallback)
            .try_run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            result.total_evaluations, reference.total_evaluations,
            "{name}: evaluation counts diverged"
        );
        assert_eq!(result.generations, reference.generations, "{name}");
        let (got, want) = (
            result.best_of_size(3).unwrap(),
            reference.best_of_size(3).unwrap(),
        );
        assert_eq!(got.snps(), want.snps(), "{name}: best haplotype diverged");
        assert_eq!(got.fitness(), want.fitness(), "{name}");
    }
}
