//! The multi-tenancy acceptance test: N concurrent GA runs — distinct
//! datasets, seeds and priorities — multiplexed over ONE shared, faulted
//! slave fleet must each produce exactly the trajectory they would have
//! produced on a dedicated evaluator: same generations, same evaluation
//! counts, best haplotypes bit-identical. Faults (scripted via
//! `LD_FAULT_PLAN`, as in the CI fault matrix) and the other tenants'
//! load must be invisible to every run's GA arithmetic.
//!
//! Each tenant is observed under its own `run_id` into one shared event
//! stream; per-run latency attributions (`TraceSummary::for_run`) are
//! written to `LD_OBSERVE_DIR` when set, for upload as CI artifacts.
#![cfg(feature = "fault-inject")]

use ld_core::{EvalBackendError, GaConfig, GaEngine, StatsEvaluator};
use ld_data::SnpId;
use ld_net::wire;
use ld_net::{
    DatasetLoader, EvalServer, FaultPlan, PoolConfig, RunSpec, ServerConfig, SharedCluster,
    SubmitError,
};
use ld_observe::{
    Envelope, Event, FanoutSink, JsonlSink, Observer, Registry, RingSink, Sink, TraceSummary,
};
use ld_stats::FitnessKind;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn fast_cfg() -> ServerConfig {
    ServerConfig {
        pool: PoolConfig {
            request_timeout: Duration::from_secs(2),
            max_retries: 1,
            retry_backoff: Duration::from_millis(5),
            rejoin_backoff: Duration::from_millis(10),
            max_rejoin_backoff: Duration::from_millis(200),
        },
        ..ServerConfig::default()
    }
}

fn ga_cfg() -> GaConfig {
    GaConfig {
        population_size: 40,
        min_size: 2,
        max_size: 3,
        matings_per_generation: 6,
        stagnation_limit: 8,
        max_generations: 25,
        ..GaConfig::default()
    }
}

/// Loader installed on every slave: rebuild the tenant's objective from
/// the columns blob its eval server registered.
fn stats_loader() -> DatasetLoader {
    Arc::new(|_fp, _n_snps, payload: &[u8]| {
        let data = wire::decode_dataset(payload)?;
        StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1)
            .map(|e| Arc::new(e) as Arc<dyn ld_core::Evaluator>)
            .map_err(|e| e.to_string())
    })
}

/// Artifact directory: `LD_OBSERVE_DIR` in CI, a scratch dir otherwise.
fn artifact_dir() -> PathBuf {
    let dir = match std::env::var("LD_OBSERVE_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => std::env::temp_dir().join(format!("ld-multi-tenant-{}", std::process::id())),
    };
    std::fs::create_dir_all(&dir).expect("artifact dir");
    dir
}

/// One tenant's trajectory fingerprint: everything the GA's arithmetic
/// determines (no wall-clock, no fault counters).
#[derive(Debug, PartialEq)]
struct Trajectory {
    generations: usize,
    evaluations: u64,
    champions: Vec<Option<(Vec<SnpId>, u64)>>,
}

fn trajectory(result: &ld_core::RunResult) -> Trajectory {
    Trajectory {
        generations: result.generations,
        evaluations: result.total_evaluations,
        champions: (2..=3)
            .map(|k| {
                result
                    .best_of_size(k)
                    .map(|h| (h.snps().to_vec(), h.fitness().to_bits()))
            })
            .collect(),
    }
}

#[test]
fn three_tenants_on_a_faulted_shared_fleet_match_their_solo_references() {
    let scenario = std::env::var("LD_FAULT_PLAN").unwrap_or_else(|_| "kill-one".to_string());
    let plans = FaultPlan::matrix(&scenario, 4, 42)
        .unwrap_or_else(|| panic!("unknown scenario {scenario:?}"));

    // One shared event stream for the whole fleet; each tenant is stamped
    // with its own run_id so the attributions can be pulled apart again.
    let dir = artifact_dir();
    let events_path = dir.join(format!("multi-tenant-events-{scenario}.jsonl"));
    let ring = Arc::new(RingSink::new(1 << 16));
    let jsonl = Arc::new(JsonlSink::create(&events_path).unwrap());
    let sink = Arc::new(FanoutSink::new(vec![ring.clone() as Arc<dyn Sink>, jsonl]));
    let registry = Registry::new();
    let fleet_observer = Observer::new("fleet", sink.clone(), registry.clone());

    let cluster =
        SharedCluster::spawn_shared_faulty(4, stats_loader(), &plans, fast_cfg(), fleet_observer)
            .unwrap();

    // Three tenants: distinct datasets (different synthesis seeds),
    // distinct GA seeds, distinct priorities — all concurrent.
    let tenants: Vec<(String, u64, u64, u32)> = (0..3)
        .map(|i| {
            (
                format!("run-{i}"),
                100 + i as u64,
                7 + i as u64,
                1 + i as u32,
            )
        })
        .collect();

    let shared: Vec<Trajectory> = std::thread::scope(|scope| {
        let handles: Vec<_> = tenants
            .iter()
            .map(|(run_id, data_seed, ga_seed, weight)| {
                let server = Arc::clone(cluster.server());
                let sink = Arc::clone(&sink);
                let registry = registry.clone();
                scope.spawn(move || {
                    let data = ld_data::synthetic::lille_51(*data_seed);
                    let payload = wire::encode_dataset(&data);
                    let fingerprint = wire::fingerprint(&payload);
                    let observer = Observer::new(run_id.clone(), sink, registry);
                    let handle = server
                        .submit_run(
                            RunSpec::new(run_id.clone(), fingerprint, data.n_snps())
                                .with_payload(payload)
                                .with_weight(*weight)
                                .with_observer(observer.clone()),
                        )
                        .unwrap_or_else(|e| panic!("{run_id} not admitted: {e}"));
                    let result = GaEngine::new(&handle, ga_cfg(), *ga_seed)
                        .unwrap()
                        .with_observer(observer)
                        .try_run()
                        .unwrap_or_else(|e| panic!("{run_id} failed on the shared fleet: {e}"));
                    trajectory(&result)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Solo references: the same dataset + seed on a dedicated in-process
    // evaluator. The shared fleet's multiplexing, weighting and faults
    // must all be invisible to the GA's arithmetic.
    for ((run_id, data_seed, ga_seed, _), shared_traj) in tenants.iter().zip(&shared) {
        let data = ld_data::synthetic::lille_51(*data_seed);
        let solo = StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap();
        let reference = GaEngine::new(&solo, ga_cfg(), *ga_seed).unwrap().run();
        assert_eq!(
            shared_traj,
            &trajectory(&reference),
            "{run_id}: shared-fleet trajectory diverged from its solo reference"
        );
    }

    // Per-tenant isolation holds in the event stream too: each tenant's
    // spans reconstruct a standalone attribution, and tenants never leak
    // into each other's run_id.
    let envelopes = ring.take();
    for ((run_id, _, _, _), shared_traj) in tenants.iter().zip(&shared) {
        let summary = TraceSummary::for_run(&envelopes, run_id);
        assert!(
            !summary.generations.is_empty(),
            "{run_id}: no per-run spans in the shared stream"
        );
        assert_eq!(summary.run_id, *run_id);
        std::fs::write(
            dir.join(format!("trace-summary-{run_id}-{scenario}.json")),
            summary.to_json(),
        )
        .unwrap();
        std::fs::write(
            dir.join(format!("trace-summary-{run_id}-{scenario}.txt")),
            summary.render(),
        )
        .unwrap();
        // The same stream splits into per-tenant dynamics traces: one
        // snapshot per generation, nothing borrowed from the neighbours.
        let dynamics = ld_observe::DynamicsTrace::for_run(&envelopes, run_id);
        assert!(
            !dynamics.is_empty(),
            "{run_id}: no per-run dynamics in the shared stream"
        );
        assert_eq!(dynamics.run_id, *run_id);
        assert_eq!(
            dynamics.points.len(),
            shared_traj.generations,
            "{run_id}: expected one dynamics snapshot per generation"
        );
        std::fs::write(
            dir.join(format!("dynamics-summary-{run_id}-{scenario}.json")),
            dynamics.to_json(),
        )
        .unwrap();
        std::fs::write(
            dir.join(format!("dynamics-summary-{run_id}-{scenario}.txt")),
            dynamics.render(),
        )
        .unwrap();
    }
    // Admissions were observed per tenant and fleet-wide.
    let admitted = envelopes
        .iter()
        .filter(|e| matches!(e.event, Event::RunAdmitted { .. }))
        .count();
    assert!(
        admitted >= 3,
        "expected every tenant's admission on the stream"
    );
    if scenario == "kill-one" {
        assert!(
            envelopes
                .iter()
                .any(|e| matches!(e.event, Event::SlaveRetired { .. })),
            "kill-one must retire a slave"
        );
    }
}

/// Admission control isolates misbehaving or excess tenants: a saturated
/// server refuses the (N+1)th run with a typed error, and the refusal is
/// observable, while admitted tenants keep evaluating undisturbed.
#[test]
fn saturation_and_rejection_degrade_only_the_refused_tenant() {
    let plans = vec![FaultPlan::default(); 2];
    let ring = Arc::new(RingSink::new(1 << 12));
    let observer = Observer::new("fleet", ring.clone() as Arc<dyn Sink>, Registry::new());
    let cfg = ServerConfig {
        max_runs: 2,
        ..fast_cfg()
    };
    let cluster =
        SharedCluster::spawn_shared_faulty(2, stats_loader(), &plans, cfg, observer).unwrap();
    let server: &Arc<EvalServer> = cluster.server();

    let submit = |id: &str, seed: u64| {
        let data = ld_data::synthetic::lille_51(seed);
        let payload = wire::encode_dataset(&data);
        let fp = wire::fingerprint(&payload);
        server.submit_run(RunSpec::new(id, fp, data.n_snps()).with_payload(payload))
    };
    let a = submit("run-a", 100).unwrap();
    let _b = submit("run-b", 101).unwrap();
    match submit("run-c", 102) {
        Err(SubmitError::Saturated { active, limit }) => {
            assert_eq!((active, limit), (2, 2));
        }
        other => panic!("expected Saturated, got {other:?}"),
    }
    // The refusal was emitted for the operator to see...
    let envelopes: Vec<Envelope> = ring.take();
    assert!(
        envelopes.iter().any(|e| matches!(
            &e.event,
            Event::RunRejected { run_id, .. } if run_id == "run-c"
        )),
        "saturation refusal must be observable"
    );
    // ...and the admitted tenants are untouched by it.
    assert!(a.try_evaluate_one(&[1, 5, 9]).is_ok());

    // A closed tenant fails alone, with a typed error, while the fleet
    // keeps serving everyone else.
    assert!(server.close_run("run-b"));
    let c = submit("run-c", 102).expect("slot freed by the close");
    assert!(matches!(
        _b.try_evaluate_one(&[1, 2]),
        Err(EvalBackendError::Backend(_))
    ));
    assert!(c.try_evaluate_one(&[1, 2]).is_ok());
    assert!(a.try_evaluate_one(&[2, 3]).is_ok());
}
