//! Protocol v1 ↔ v2 interoperability.
//!
//! The v2 negotiation (see `protocol.rs`) must keep both mixed pairings
//! working: a v2 master driving a v1 slave, and a v1 master driving a v2
//! slave. In both mixed cases the batch completes over plain v1
//! `EvalResponse` frames and the compute-time fields stay *absent* — not
//! zero-as-data — on the master's health table.

use ld_core::{EvalBackend, Haplotype};
use ld_data::SnpId;
use ld_net::protocol::{read_message, write_message, Message, PROTOCOL_VERSION};
use ld_net::{SlaveServer, TcpSlavePool};
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn toy_fitness(snps: &[SnpId]) -> f64 {
    snps.iter().map(|&s| s as f64).sum::<f64>() + 1.0
}

/// A hand-rolled protocol-v1 slave: greets `Hello { version: 1 }`,
/// answers every `EvalRequest` with a plain `EvalResponse`, and treats
/// any other inbound frame — in particular a master `Hello`, which a
/// real v1 slave would reject as unexpected — as a protocol violation.
fn spawn_v1_slave(n_snps: u32) -> (SocketAddr, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let violated = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&violated);
    std::thread::spawn(move || {
        while let Ok((stream, _)) = listener.accept() {
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                let mut reader = stream.try_clone().unwrap();
                let mut writer = BufWriter::new(stream);
                write_message(&mut writer, &Message::Hello { version: 1, n_snps }).unwrap();
                loop {
                    match read_message(&mut reader) {
                        Ok(Message::EvalRequest { id, snps }) => {
                            let fitness = toy_fitness(&snps);
                            write_message(&mut writer, &Message::EvalResponse { id, fitness })
                                .unwrap();
                        }
                        Ok(Message::Shutdown) | Err(_) => return,
                        Ok(_) => {
                            // A v1 slave knows no other master frame.
                            flag.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });
    (addr, violated)
}

fn batch(n: usize) -> Vec<Haplotype> {
    (0..n).map(|i| Haplotype::new(vec![i, i + 1])).collect()
}

#[test]
fn v2_master_completes_a_batch_against_a_v1_slave() {
    let (addr, violated) = spawn_v1_slave(30);
    let pool = TcpSlavePool::connect(&[addr.to_string()]).unwrap();
    let mut jobs = batch(8);
    pool.dispatch(&mut jobs).unwrap();
    for h in &jobs {
        assert_eq!(h.fitness(), toy_fitness(h.snps()));
    }
    // The master must never have sent its Hello to the v1 peer.
    assert!(
        !violated.load(Ordering::Relaxed),
        "master sent a v2-only frame to a v1 slave"
    );
    // Compute time is absent for a v1 peer, never zero-as-data.
    let health = pool.health();
    assert_eq!(health.len(), 1);
    assert_eq!(health[0].served, 8);
    assert_eq!(health[0].mean_compute_ms, None);
}

#[test]
fn v1_master_completes_a_batch_against_a_v2_slave() {
    let server = SlaveServer::spawn(
        "127.0.0.1:0",
        ld_core::evaluator::FnEvaluator::new(30, |s: &[SnpId]| toy_fitness(s)),
    )
    .unwrap();
    // Hand-rolled v1 master: reads the greeting, never sends a Hello of
    // its own, and expects plain EvalResponse frames back.
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = stream.try_clone().unwrap();
    let mut writer = stream;
    match read_message(&mut reader).unwrap() {
        Message::Hello { version, n_snps } => {
            assert_eq!(version, PROTOCOL_VERSION);
            assert_eq!(n_snps, 30);
        }
        other => panic!("expected Hello, got {other:?}"),
    }
    for id in 0..5u64 {
        let snps = vec![id as SnpId, id as SnpId + 2];
        write_message(
            &mut writer,
            &Message::EvalRequest {
                id,
                snps: snps.clone(),
            },
        )
        .unwrap();
        match read_message(&mut reader).unwrap() {
            Message::EvalResponse { id: rid, fitness } => {
                assert_eq!(rid, id);
                assert_eq!(fitness, toy_fitness(&snps));
            }
            // In particular NOT an EvalResult: without a master Hello the
            // slave must stay in v1 reply mode.
            other => panic!("expected v1 EvalResponse, got {other:?}"),
        }
    }
    write_message(&mut writer, &Message::Shutdown).unwrap();
    assert_eq!(server.served(), 5);
}

#[test]
fn v2_pairing_reports_compute_time_in_health() {
    let server = SlaveServer::spawn(
        "127.0.0.1:0",
        ld_core::evaluator::FnEvaluator::new(30, |s: &[SnpId]| toy_fitness(s)),
    )
    .unwrap();
    let pool = TcpSlavePool::connect(&[server.addr().to_string()]).unwrap();
    let mut jobs = batch(6);
    pool.dispatch(&mut jobs).unwrap();
    for h in &jobs {
        assert_eq!(h.fitness(), toy_fitness(h.snps()));
    }
    let health = pool.health();
    assert_eq!(health[0].served, 6);
    let mean = health[0]
        .mean_compute_ms
        .expect("v2 pairing must report compute time");
    assert!(mean >= 0.0);
    assert!(
        mean <= health[0].mean_rtt_ms,
        "slave compute ({mean} ms) cannot exceed the round-trip ({} ms)",
        health[0].mean_rtt_ms
    );
}
