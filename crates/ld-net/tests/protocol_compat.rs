//! Protocol v1 ↔ v2 ↔ v3 interoperability.
//!
//! The negotiation (see `protocol.rs`) must keep every mixed pairing
//! working: a newer master driving a v1 slave, and a v1 master driving a
//! newer slave. In the mixed cases the batch completes over plain v1
//! `EvalResponse` frames and the compute-time fields stay *absent* — not
//! zero-as-data — on the master's health table. The v3 layer (dataset
//! registration + tenant-tagged requests) only ever activates when both
//! Hellos announce ≥ 3, and a v3-only master refuses older fleets with a
//! typed error instead of sending frames they cannot parse.

use ld_core::{EvalBackend, Haplotype};
use ld_data::SnpId;
use ld_net::protocol::{read_message, write_message, Message, PROTOCOL_VERSION};
use ld_net::{EvalServer, ObjectiveStore, ServerConfig, SlaveServer, TcpSlavePool};
use ld_observe::Observer;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn toy_fitness(snps: &[SnpId]) -> f64 {
    snps.iter().map(|&s| s as f64).sum::<f64>() + 1.0
}

/// A hand-rolled protocol-v1 slave: greets `Hello { version: 1 }`,
/// answers every `EvalRequest` with a plain `EvalResponse`, and treats
/// any other inbound frame — in particular a master `Hello`, which a
/// real v1 slave would reject as unexpected — as a protocol violation.
fn spawn_v1_slave(n_snps: u32) -> (SocketAddr, Arc<AtomicBool>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let violated = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&violated);
    std::thread::spawn(move || {
        while let Ok((stream, _)) = listener.accept() {
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                let mut reader = stream.try_clone().unwrap();
                let mut writer = BufWriter::new(stream);
                write_message(&mut writer, &Message::Hello { version: 1, n_snps }).unwrap();
                loop {
                    match read_message(&mut reader) {
                        Ok(Message::EvalRequest { id, snps }) => {
                            let fitness = toy_fitness(&snps);
                            write_message(&mut writer, &Message::EvalResponse { id, fitness })
                                .unwrap();
                        }
                        Ok(Message::Shutdown) | Err(_) => return,
                        Ok(_) => {
                            // A v1 slave knows no other master frame.
                            flag.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });
    (addr, violated)
}

fn batch(n: usize) -> Vec<Haplotype> {
    (0..n).map(|i| Haplotype::new(vec![i, i + 1])).collect()
}

#[test]
fn v2_master_completes_a_batch_against_a_v1_slave() {
    let (addr, violated) = spawn_v1_slave(30);
    let pool = TcpSlavePool::connect(&[addr.to_string()]).unwrap();
    let mut jobs = batch(8);
    pool.dispatch(&mut jobs).unwrap();
    for h in &jobs {
        assert_eq!(h.fitness(), toy_fitness(h.snps()));
    }
    // The master must never have sent its Hello to the v1 peer.
    assert!(
        !violated.load(Ordering::Relaxed),
        "master sent a v2-only frame to a v1 slave"
    );
    // Compute time is absent for a v1 peer, never zero-as-data.
    let health = pool.health();
    assert_eq!(health.len(), 1);
    assert_eq!(health[0].served, 8);
    assert_eq!(health[0].mean_compute_ms, None);
}

#[test]
fn v1_master_completes_a_batch_against_a_v2_slave() {
    let server = SlaveServer::spawn(
        "127.0.0.1:0",
        ld_core::evaluator::FnEvaluator::new(30, |s: &[SnpId]| toy_fitness(s)),
    )
    .unwrap();
    // Hand-rolled v1 master: reads the greeting, never sends a Hello of
    // its own, and expects plain EvalResponse frames back.
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = stream.try_clone().unwrap();
    let mut writer = stream;
    match read_message(&mut reader).unwrap() {
        Message::Hello { version, n_snps } => {
            assert_eq!(version, PROTOCOL_VERSION);
            assert_eq!(n_snps, 30);
        }
        other => panic!("expected Hello, got {other:?}"),
    }
    for id in 0..5u64 {
        let snps = vec![id as SnpId, id as SnpId + 2];
        write_message(
            &mut writer,
            &Message::EvalRequest {
                id,
                snps: snps.clone(),
            },
        )
        .unwrap();
        match read_message(&mut reader).unwrap() {
            Message::EvalResponse { id: rid, fitness } => {
                assert_eq!(rid, id);
                assert_eq!(fitness, toy_fitness(&snps));
            }
            // In particular NOT an EvalResult: without a master Hello the
            // slave must stay in v1 reply mode.
            other => panic!("expected v1 EvalResponse, got {other:?}"),
        }
    }
    write_message(&mut writer, &Message::Shutdown).unwrap();
    assert_eq!(server.served(), 5);
}

#[test]
fn v2_pairing_reports_compute_time_in_health() {
    let server = SlaveServer::spawn(
        "127.0.0.1:0",
        ld_core::evaluator::FnEvaluator::new(30, |s: &[SnpId]| toy_fitness(s)),
    )
    .unwrap();
    let pool = TcpSlavePool::connect(&[server.addr().to_string()]).unwrap();
    let mut jobs = batch(6);
    pool.dispatch(&mut jobs).unwrap();
    for h in &jobs {
        assert_eq!(h.fitness(), toy_fitness(h.snps()));
    }
    let health = pool.health();
    assert_eq!(health[0].served, 6);
    let mean = health[0]
        .mean_compute_ms
        .expect("v2 pairing must report compute time");
    assert!(mean >= 0.0);
    assert!(
        mean <= health[0].mean_rtt_ms,
        "slave compute ({mean} ms) cannot exceed the round-trip ({} ms)",
        health[0].mean_rtt_ms
    );
}

/// A store slave whose loader scales the SNP-id sum by payload byte 0.
fn spawn_store_slave() -> SlaveServer {
    let store = Arc::new(ObjectiveStore::new(4).with_loader(Arc::new(
        |_fp, n_snps, payload: &[u8]| {
            let scale = f64::from(payload.first().copied().unwrap_or(1));
            Ok(Arc::new(ld_core::evaluator::FnEvaluator::new(
                n_snps as usize,
                move |s: &[SnpId]| scale * s.iter().map(|&x| x as f64).sum::<f64>(),
            )) as Arc<dyn ld_core::Evaluator>)
        },
    )));
    SlaveServer::spawn_shared("127.0.0.1:0", store, Observer::disabled()).unwrap()
}

#[test]
fn v3_master_registers_and_evaluates_against_a_store_slave() {
    let server = spawn_store_slave();
    // Hand-rolled v3 master: full Hello exchange, then the registration
    // and tenant-tagged request flow.
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = stream.try_clone().unwrap();
    let mut writer = BufWriter::new(stream);
    match read_message(&mut reader).unwrap() {
        Message::Hello { version, .. } => assert_eq!(version, PROTOCOL_VERSION),
        other => panic!("expected Hello, got {other:?}"),
    }
    write_message(
        &mut writer,
        &Message::Hello {
            version: PROTOCOL_VERSION,
            n_snps: 30,
        },
    )
    .unwrap();
    // Register a dataset under fingerprint 0xBEEF (columns: scale 2).
    write_message(
        &mut writer,
        &Message::RegisterDataset {
            handle: 0xBEEF,
            fingerprint: 0xBEEF,
            n_snps: 30,
            payload: vec![2],
        },
    )
    .unwrap();
    match read_message(&mut reader).unwrap() {
        Message::DatasetAck {
            handle,
            accepted,
            reason,
        } => {
            assert_eq!(handle, 0xBEEF);
            assert!(accepted, "{reason}");
        }
        other => panic!("expected DatasetAck, got {other:?}"),
    }
    // A tenant-tagged request against the bound handle evaluates...
    write_message(
        &mut writer,
        &Message::EvalRequestV3 {
            id: 1,
            run_id: 7,
            handle: 0xBEEF,
            snps: vec![3, 4],
        },
    )
    .unwrap();
    match read_message(&mut reader).unwrap() {
        Message::EvalResult { id, fitness, .. } => {
            assert_eq!(id, 1);
            assert_eq!(fitness, 14.0);
        }
        other => panic!("expected EvalResult, got {other:?}"),
    }
    // ...an unknown handle is a per-request typed error, not a hangup.
    write_message(
        &mut writer,
        &Message::EvalRequestV3 {
            id: 2,
            run_id: 7,
            handle: 0xDEAD,
            snps: vec![3, 4],
        },
    )
    .unwrap();
    match read_message(&mut reader).unwrap() {
        Message::EvalError { id, reason } => {
            assert_eq!(id, 2);
            assert!(reason.contains("handle"), "{reason}");
        }
        other => panic!("expected EvalError, got {other:?}"),
    }
    // The connection survived the error and still serves.
    write_message(
        &mut writer,
        &Message::EvalRequestV3 {
            id: 3,
            run_id: 7,
            handle: 0xBEEF,
            snps: vec![1],
        },
    )
    .unwrap();
    match read_message(&mut reader).unwrap() {
        Message::EvalResult { id, fitness, .. } => {
            assert_eq!(id, 3);
            assert_eq!(fitness, 2.0);
        }
        other => panic!("expected EvalResult, got {other:?}"),
    }
    write_message(&mut writer, &Message::Shutdown).unwrap();
    assert_eq!(server.served(), 2);
}

#[test]
fn v2_style_master_still_drives_a_store_slave_with_a_default_objective() {
    // A store slave that also carries a resident default objective keeps
    // serving plain (v1/v2) masters that know nothing about datasets.
    let store = ObjectiveStore::single(
        0xF00D,
        Arc::new(ld_core::evaluator::FnEvaluator::new(30, |s: &[SnpId]| {
            toy_fitness(s)
        })),
    );
    let server =
        SlaveServer::spawn_shared("127.0.0.1:0", Arc::new(store), Observer::disabled()).unwrap();
    let pool = TcpSlavePool::connect(&[server.addr().to_string()]).unwrap();
    let mut jobs = batch(6);
    pool.dispatch(&mut jobs).unwrap();
    for h in &jobs {
        assert_eq!(h.fitness(), toy_fitness(h.snps()));
    }
    assert_eq!(server.served(), 6);
}

#[test]
fn v3_only_master_refuses_an_older_fleet_with_a_typed_error() {
    // The eval server needs RegisterDataset; against a v1 greeting it
    // must fail the connect with a typed error, not talk past the peer.
    let (addr, violated) = spawn_v1_slave(30);
    let err = EvalServer::connect(
        &[addr.to_string()],
        ServerConfig::default(),
        Observer::disabled(),
    )
    .expect_err("a v1 fleet cannot host multi-tenant runs");
    assert!(
        err.to_string().contains("version"),
        "error should name the version mismatch: {err}"
    );
    assert!(
        !violated.load(Ordering::Relaxed),
        "the v3 master sent the v1 slave a frame it cannot parse"
    );
}
