//! The observability acceptance test: a GA run on a faulty cluster with
//! an attached [`Observer`] must produce a JSONL event stream whose
//! fault events (slave retire/rejoin, request retries, job requeues,
//! fallback activations) carry the generation and batch id of the engine
//! step that caused them, and a unified JSON run report whose telemetry
//! section reconciles exactly with the event stream.
//!
//! When `LD_OBSERVE_DIR` is set (the CI fault-matrix does so), the
//! artifacts — events JSONL, history TSV, metrics snapshot, run report —
//! are left there for upload instead of the scratch directory.
#![cfg(feature = "fault-inject")]

use ld_core::evaluator::FnEvaluator;
use ld_core::{telemetry, EvalBackend, GaConfig, GaEngine};
use ld_data::SnpId;
use ld_net::{FaultPlan, LocalCluster, PoolConfig};
use ld_observe::{
    Envelope, Event, FanoutSink, JsonlSink, Observer, Registry, RingSink, RunReport, Sink,
};
use ld_parallel::RayonEvaluator;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
    FnEvaluator::new(30, |s: &[SnpId]| {
        s.iter().map(|&x| x as f64).sum::<f64>() + 10.0 * s.len() as f64
    })
}

fn fast_cfg() -> PoolConfig {
    PoolConfig {
        request_timeout: Duration::from_secs(2),
        max_retries: 1,
        retry_backoff: Duration::from_millis(5),
        rejoin_backoff: Duration::from_millis(10),
        max_rejoin_backoff: Duration::from_millis(200),
    }
}

fn ga_cfg() -> GaConfig {
    GaConfig {
        population_size: 40,
        min_size: 2,
        max_size: 3,
        matings_per_generation: 6,
        stagnation_limit: 8,
        max_generations: 25,
        ..GaConfig::default()
    }
}

/// Artifact directory: `LD_OBSERVE_DIR` in CI, a scratch dir otherwise.
fn artifact_dir() -> PathBuf {
    let dir = match std::env::var("LD_OBSERVE_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => std::env::temp_dir().join(format!("ld-observe-run-{}", std::process::id())),
    };
    std::fs::create_dir_all(&dir).expect("artifact dir");
    dir
}

#[test]
fn fault_events_carry_engine_spans_and_reconcile_with_the_run_report() {
    // The CI matrix pins one scenario; locally, flapping-reconnect is the
    // richest (it retires AND rejoins slaves throughout the run).
    let scenario =
        std::env::var("LD_FAULT_PLAN").unwrap_or_else(|_| "flapping-reconnect".to_string());
    let plans = FaultPlan::matrix(&scenario, 3, 42)
        .unwrap_or_else(|| panic!("unknown scenario {scenario:?}"));
    // For the flapping scenario, retire on the first failure (no retry
    // absorption) so slaves demonstrably leave and rejoin mid-run.
    let pool_cfg = if scenario == "flapping-reconnect" {
        PoolConfig {
            max_retries: 0,
            rejoin_backoff: Duration::from_millis(1),
            ..fast_cfg()
        }
    } else {
        fast_cfg()
    };
    let cluster = LocalCluster::spawn_faulty(3, toy, &plans, pool_cfg).unwrap();

    let dir = artifact_dir();
    let events_path = dir.join(format!("events-{scenario}.jsonl"));
    let ring = Arc::new(RingSink::new(1 << 16));
    let jsonl = Arc::new(JsonlSink::create(&events_path).unwrap());
    let sink = Arc::new(FanoutSink::new(vec![
        ring.clone() as Arc<dyn Sink>,
        jsonl.clone(),
    ]));
    let registry = Registry::new();
    let run_id = format!("fault-{scenario}-42");
    let observer = Observer::new(run_id.clone(), sink, registry.clone());

    let pool = cluster.pool();
    pool.set_observer(observer.clone());
    let cfg = ga_cfg();
    let fallback: Arc<dyn EvalBackend> = Arc::new(RayonEvaluator::new(toy()));
    let result = GaEngine::new(pool, cfg.clone(), 11)
        .unwrap()
        .with_observer(observer.clone())
        .with_fallback_backend(fallback)
        .try_run()
        .unwrap_or_else(|e| panic!("{scenario}: {e}"));
    observer.flush();

    // ---- The JSONL stream parses back, envelope for envelope. ----
    let text = std::fs::read_to_string(&events_path).unwrap();
    let events: Vec<Envelope> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("valid envelope JSON"))
        .collect();
    assert_eq!(events.len(), ring.len(), "file and ring sinks agree");
    assert!(events.iter().all(|e| e.run_id == run_id));

    // ---- Span correlation: every batch-scoped event maps back to the
    // dispatch that caused it, and that dispatch to its engine step. ----
    let mut batch_generation: HashMap<u64, u64> = HashMap::new();
    for e in &events {
        if let Event::BatchDispatched { .. } = e.event {
            let prev = batch_generation.insert(e.batch_id, e.generation);
            assert_eq!(prev, None, "batch id {} reused", e.batch_id);
        }
    }
    let fault_events: Vec<&Envelope> = events.iter().filter(|e| e.event.is_fault_event()).collect();
    for e in &fault_events {
        assert!(
            e.batch_id > 0,
            "fault event outside any dispatch: {:?}",
            e.event
        );
        assert_eq!(
            batch_generation.get(&e.batch_id),
            Some(&e.generation),
            "fault event {:?} disagrees with its dispatch about the generation",
            e.event
        );
    }
    // Per-generation monotonicity: events between GenerationStarted(g)
    // and GenerationFinished(g) all carry generation g.
    let mut current = 0u64;
    for e in &events {
        match e.event {
            Event::GenerationStarted => {
                assert_eq!(e.generation, current + 1, "generations advance by one");
                current = e.generation;
            }
            Event::RunStarted { .. } => assert_eq!(e.generation, 0),
            _ => assert!(
                e.generation == current || e.generation == 0,
                "event {:?} stamped with a foreign generation {} (current {})",
                e.event,
                e.generation,
                current
            ),
        }
    }

    // ---- Reconciliation: the telemetry fold over generation windows
    // equals the fault events stamped with generation >= 1 (init-phase
    // faults belong to no generation and are excluded from both). ----
    let report = telemetry::analyze(&result);
    let in_run_faults = fault_events.iter().filter(|e| e.generation >= 1).count() as u64;
    assert_eq!(
        report.sched.fault_events, in_run_faults,
        "telemetry fault fold and event stream diverged"
    );
    if scenario == "flapping-reconnect" {
        assert!(
            fault_events
                .iter()
                .any(|e| matches!(e.event, Event::SlaveRetired { .. }) && e.generation >= 1),
            "flapping run should retire slaves mid-run"
        );
        assert!(
            fault_events
                .iter()
                .any(|e| matches!(e.event, Event::SlaveRejoined { .. })),
            "flapping run should rejoin slaves"
        );
    }

    // ---- Per-slave health table is consistent with the run. ----
    let health = pool.health();
    assert_eq!(health.len(), 3);
    let served: u64 = health.iter().map(|h| h.served).sum();
    assert!(served > 0, "someone must have served requests");
    for h in &health {
        assert!(h.mean_rtt_ms >= 0.0);
        if h.served == 0 {
            assert_eq!(h.mean_rtt_ms, 0.0);
        }
    }
    // The registry mirrors the health table's served counts.
    let snap = registry.snapshot();
    let served_metric: u64 = snap
        .families
        .iter()
        .filter(|f| f.name == "ld_net_slave_served_total")
        .flat_map(|f| f.series.iter())
        .map(|s| s.value as u64)
        .sum();
    assert_eq!(served_metric, served, "registry and health table agree");

    // ---- The unified run report: one call, all sections. ----
    let history_path = dir.join(format!("history-{scenario}.tsv"));
    let mut tsv = Vec::new();
    telemetry::write_history_tsv(&result, &mut tsv).unwrap();
    std::fs::write(&history_path, &tsv).unwrap();
    let metrics_path = dir.join(format!("metrics-{scenario}.prom"));
    std::fs::write(&metrics_path, registry.prometheus()).unwrap();

    let report_path = dir.join(format!("report-{scenario}.json"));
    RunReport::new(&run_id)
        .section("config", &cfg)
        .section("seed", &11u64)
        .section("telemetry", &report)
        .section("metrics", &snap)
        .section("slaves", &health)
        .write(&report_path)
        .unwrap();
    let report_text = std::fs::read_to_string(&report_path).unwrap();
    assert!(report_text.starts_with(&format!("{{\"run_id\":{run_id:?}")));
    for key in ["environment", "config", "telemetry", "metrics", "slaves"] {
        assert!(report_text.contains(&format!("{key:?}:")), "missing {key}");
    }
    assert!(
        report_text.contains(&format!("\"fault_events\":{in_run_faults}")),
        "report's telemetry section must carry the reconciled fault count"
    );
}
