//! The observability acceptance test: a GA run on a faulty cluster with
//! an attached [`Observer`] must produce a JSONL event stream whose
//! fault events (slave retire/rejoin, request retries, job requeues,
//! fallback activations) carry the generation and batch id of the engine
//! step that caused them, and a unified JSON run report whose telemetry
//! section reconciles exactly with the event stream.
//!
//! When `LD_OBSERVE_DIR` is set (the CI fault-matrix does so), the
//! artifacts — events JSONL, history TSV, metrics snapshot, run report —
//! are left there for upload instead of the scratch directory.
#![cfg(feature = "fault-inject")]

use ld_core::evaluator::FnEvaluator;
use ld_core::{telemetry, EvalBackend, GaConfig, GaEngine};
use ld_data::SnpId;
use ld_net::{FaultPlan, LocalCluster, PoolConfig};
use ld_observe::{
    Envelope, Event, ExposeServer, FanoutSink, JsonlSink, Observer, Registry, RingSink, RunReport,
    Sink, TraceSummary,
};
use ld_parallel::RayonEvaluator;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
    FnEvaluator::new(30, |s: &[SnpId]| {
        s.iter().map(|&x| x as f64).sum::<f64>() + 10.0 * s.len() as f64
    })
}

fn fast_cfg() -> PoolConfig {
    PoolConfig {
        request_timeout: Duration::from_secs(2),
        max_retries: 1,
        retry_backoff: Duration::from_millis(5),
        rejoin_backoff: Duration::from_millis(10),
        max_rejoin_backoff: Duration::from_millis(200),
    }
}

fn ga_cfg() -> GaConfig {
    GaConfig {
        population_size: 40,
        min_size: 2,
        max_size: 3,
        matings_per_generation: 6,
        stagnation_limit: 8,
        max_generations: 25,
        ..GaConfig::default()
    }
}

/// Artifact directory: `LD_OBSERVE_DIR` in CI, a scratch dir otherwise.
fn artifact_dir() -> PathBuf {
    let dir = match std::env::var("LD_OBSERVE_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => std::env::temp_dir().join(format!("ld-observe-run-{}", std::process::id())),
    };
    std::fs::create_dir_all(&dir).expect("artifact dir");
    dir
}

#[test]
fn fault_events_carry_engine_spans_and_reconcile_with_the_run_report() {
    // The CI matrix pins one scenario; locally, flapping-reconnect is the
    // richest (it retires AND rejoins slaves throughout the run).
    let scenario =
        std::env::var("LD_FAULT_PLAN").unwrap_or_else(|_| "flapping-reconnect".to_string());
    let plans = FaultPlan::matrix(&scenario, 3, 42)
        .unwrap_or_else(|| panic!("unknown scenario {scenario:?}"));
    // For the flapping scenario, retire on the first failure (no retry
    // absorption) so slaves demonstrably leave and rejoin mid-run.
    let pool_cfg = if scenario == "flapping-reconnect" {
        PoolConfig {
            max_retries: 0,
            rejoin_backoff: Duration::from_millis(1),
            ..fast_cfg()
        }
    } else {
        fast_cfg()
    };
    let cluster = LocalCluster::spawn_faulty(3, toy, &plans, pool_cfg).unwrap();

    let dir = artifact_dir();
    let events_path = dir.join(format!("events-{scenario}.jsonl"));
    let ring = Arc::new(RingSink::new(1 << 16));
    let jsonl = Arc::new(JsonlSink::create(&events_path).unwrap());
    let sink = Arc::new(FanoutSink::new(vec![
        ring.clone() as Arc<dyn Sink>,
        jsonl.clone(),
    ]));
    let registry = Registry::new();
    let run_id = format!("fault-{scenario}-42");
    let observer = Observer::new(run_id.clone(), sink, registry.clone());

    let pool = cluster.pool();
    pool.set_observer(observer.clone());
    let cfg = ga_cfg();
    let fallback: Arc<dyn EvalBackend> = Arc::new(RayonEvaluator::new(toy()));
    let result = GaEngine::new(pool, cfg.clone(), 11)
        .unwrap()
        .with_observer(observer.clone())
        .with_fallback_backend(fallback)
        .try_run()
        .unwrap_or_else(|e| panic!("{scenario}: {e}"));
    observer.flush();

    // ---- The JSONL stream parses back, envelope for envelope. ----
    let text = std::fs::read_to_string(&events_path).unwrap();
    let events: Vec<Envelope> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("valid envelope JSON"))
        .collect();
    assert_eq!(events.len(), ring.len(), "file and ring sinks agree");
    assert!(events.iter().all(|e| e.run_id == run_id));

    // ---- Span correlation: every batch-scoped event maps back to the
    // dispatch that caused it, and that dispatch to its engine step. ----
    let mut batch_generation: HashMap<u64, u64> = HashMap::new();
    for e in &events {
        if let Event::BatchDispatched { .. } = e.event {
            let prev = batch_generation.insert(e.batch_id, e.generation);
            assert_eq!(prev, None, "batch id {} reused", e.batch_id);
        }
    }
    let fault_events: Vec<&Envelope> = events.iter().filter(|e| e.event.is_fault_event()).collect();
    for e in &fault_events {
        assert!(
            e.batch_id > 0,
            "fault event outside any dispatch: {:?}",
            e.event
        );
        assert_eq!(
            batch_generation.get(&e.batch_id),
            Some(&e.generation),
            "fault event {:?} disagrees with its dispatch about the generation",
            e.event
        );
    }
    // Per-generation monotonicity: events between GenerationStarted(g)
    // and GenerationFinished(g) all carry generation g.
    let mut current = 0u64;
    for e in &events {
        match e.event {
            Event::GenerationStarted => {
                assert_eq!(e.generation, current + 1, "generations advance by one");
                current = e.generation;
            }
            Event::RunStarted { .. } => assert_eq!(e.generation, 0),
            _ => assert!(
                e.generation == current || e.generation == 0,
                "event {:?} stamped with a foreign generation {} (current {})",
                e.event,
                e.generation,
                current
            ),
        }
    }

    // ---- Reconciliation: the telemetry fold over generation windows
    // equals the fault events stamped with generation >= 1 (init-phase
    // faults belong to no generation and are excluded from both). ----
    let report = telemetry::analyze(&result);
    let in_run_faults = fault_events.iter().filter(|e| e.generation >= 1).count() as u64;
    assert_eq!(
        report.sched.fault_events, in_run_faults,
        "telemetry fault fold and event stream diverged"
    );
    if scenario == "flapping-reconnect" {
        assert!(
            fault_events
                .iter()
                .any(|e| matches!(e.event, Event::SlaveRetired { .. }) && e.generation >= 1),
            "flapping run should retire slaves mid-run"
        );
        assert!(
            fault_events
                .iter()
                .any(|e| matches!(e.event, Event::SlaveRejoined { .. })),
            "flapping run should rejoin slaves"
        );
    }

    // ---- Per-slave health table is consistent with the run. ----
    let health = pool.health();
    assert_eq!(health.len(), 3);
    let served: u64 = health.iter().map(|h| h.served).sum();
    assert!(served > 0, "someone must have served requests");
    for h in &health {
        assert!(h.mean_rtt_ms >= 0.0);
        if h.served == 0 {
            assert_eq!(h.mean_rtt_ms, 0.0);
        }
    }
    // The registry mirrors the health table's served counts.
    let snap = registry.snapshot();
    let served_metric: u64 = snap
        .families
        .iter()
        .filter(|f| f.name == "ld_net_slave_served_total")
        .flat_map(|f| f.series.iter())
        .map(|s| s.value as u64)
        .sum();
    assert_eq!(served_metric, served, "registry and health table agree");

    // ---- The unified run report: one call, all sections. ----
    let history_path = dir.join(format!("history-{scenario}.tsv"));
    let mut tsv = Vec::new();
    telemetry::write_history_tsv(&result, &mut tsv).unwrap();
    std::fs::write(&history_path, &tsv).unwrap();
    let metrics_path = dir.join(format!("metrics-{scenario}.prom"));
    std::fs::write(&metrics_path, registry.prometheus()).unwrap();

    let report_path = dir.join(format!("report-{scenario}.json"));
    RunReport::new(&run_id)
        .section("config", &cfg)
        .section("seed", &11u64)
        .section("telemetry", &report)
        .section("metrics", &snap)
        .section("slaves", &health)
        .write(&report_path)
        .unwrap();
    let report_text = std::fs::read_to_string(&report_path).unwrap();
    assert!(report_text.starts_with(&format!("{{\"run_id\":{run_id:?}")));
    for key in ["environment", "config", "telemetry", "metrics", "slaves"] {
        assert!(report_text.contains(&format!("{key:?}:")), "missing {key}");
    }
    assert!(
        report_text.contains(&format!("\"fault_events\":{in_run_faults}")),
        "report's telemetry section must carry the reconciled fault count"
    );

    // ---- Dynamics events reconcile with the history TSV rows,
    // generation by generation, under every fault plan. ----
    let dynamics_events: Vec<&Envelope> = events
        .iter()
        .filter(|e| matches!(e.event, Event::Dynamics(_)))
        .collect();
    assert_eq!(
        dynamics_events.len(),
        result.generations,
        "one dynamics event per generation"
    );
    for e in &dynamics_events {
        let Event::Dynamics(snap) = &e.event else {
            unreachable!()
        };
        let row = &result.history[(e.generation - 1) as usize];
        assert_eq!(row.generation as u64, e.generation);
        let d = row.dynamics.as_ref().expect("observed row has dynamics");
        assert_eq!(&**snap, d, "event and history row diverged");
        assert_eq!(d.true_evals, row.sched.true_evals);
        assert_eq!(d.cache_hits, row.sched.cache_hits);
        assert_eq!(d.immigrants, row.immigrants);
        assert_eq!(d.mutation_rates, row.mutation_rates);
        assert_eq!(d.crossover_rates, row.crossover_rates);
        assert_eq!(d.unique_fraction, 1.0, "§4.6 duplicate rejection");
        assert!(d.fitness_q1 <= d.fitness_median && d.fitness_median <= d.fitness_q3);
        assert!(d.fitness_q3 <= d.best_fitness);
    }
    // The telemetry fold carries the run-level dynamics summary into the
    // report.
    let fold = report.dynamics.as_ref().expect("observed run has a fold");
    assert_eq!(fold.observed_generations, result.generations);
    assert!(report_text.contains("\"observed_generations\""));
}

/// Minimal HTTP GET against the exposition endpoint (no client dep).
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect scrape endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

/// The latency-attribution acceptance test: a faulted, fully observed run
/// must yield a span stream whose per-generation attributed hop times
/// (queue + network + compute + retry + master) sum to within 10% of the
/// generation's evaluation share — and the live scrape endpoint must
/// serve `/metrics`, `/health`, and `/spans` while that run is in flight.
#[test]
fn latency_attribution_sums_to_the_eval_share_under_faults() {
    let scenario = std::env::var("LD_FAULT_PLAN").unwrap_or_else(|_| "kill-one".to_string());
    let plans = FaultPlan::matrix(&scenario, 3, 42)
        .unwrap_or_else(|| panic!("unknown scenario {scenario:?}"));
    let cluster = LocalCluster::spawn_faulty(3, toy, &plans, fast_cfg()).unwrap();

    let dir = artifact_dir();
    let events_path = dir.join(format!("events-latency-{scenario}.jsonl"));
    let jsonl = Arc::new(JsonlSink::create(&events_path).unwrap());
    // The dynamics board rides the same fan-out as the JSONL file and
    // serves the live `/runs/<id>/dynamics` route below.
    let board = ld_observe::DynamicsBoard::new();
    let sink = Arc::new(FanoutSink::new(vec![
        jsonl as Arc<dyn Sink>,
        Arc::new(board.clone()),
    ]));
    let run_id = format!("latency-{scenario}-42");
    let observer = Observer::new(run_id.clone(), sink, Registry::new());

    // Live endpoint for the whole run: `LD_OBSERVE_HTTP` (CI) pins the
    // address so an external curl loop can scrape; otherwise ephemeral.
    let bind_addr = std::env::var("LD_OBSERVE_HTTP").unwrap_or_else(|_| "127.0.0.1:0".to_string());
    let server = ExposeServer::bind_with_api(&bind_addr, observer.clone(), Arc::new(board.clone()))
        .expect("bind scrape endpoint");

    let pool = cluster.pool();
    pool.set_observer(observer.clone());
    let fallback: Arc<dyn EvalBackend> = Arc::new(RayonEvaluator::new(toy()));
    let result = GaEngine::new(pool, ga_cfg(), 11)
        .unwrap()
        .with_observer(observer.clone())
        .with_fallback_backend(fallback)
        .try_run()
        .unwrap_or_else(|e| panic!("{scenario}: {e}"));
    observer.flush();
    assert!(result.generations > 0);

    // ---- The endpoint serves all three views of the run just traced. ----
    let health = http_get(server.addr(), "/health");
    assert!(
        health.contains("200 OK") && health.contains("\"status\":\"ok\""),
        "{health}"
    );
    let metrics = http_get(server.addr(), "/metrics");
    assert!(metrics.contains("ld_net_slave_served_total"), "{metrics}");
    let spans = http_get(server.addr(), "/spans");
    assert!(spans.contains("\"spans\":["), "{spans}");
    // The per-run dynamics route serves the full series, and `?since=`
    // returns only the generations after the cursor — the increment a
    // poller would fetch mid-run.
    let dynamics = http_get(server.addr(), &format!("/runs/{run_id}/dynamics"));
    assert!(dynamics.contains("200 OK"), "{dynamics}");
    assert!(
        dynamics.contains("\"mean_pairwise_hamming\"") && dynamics.contains("\"phase\""),
        "{dynamics}"
    );
    let latest = board.latest_generation(&run_id).expect("board saw the run");
    assert!(latest as usize == result.generations, "board is current");
    let tail = http_get(
        server.addr(),
        &format!("/runs/{run_id}/dynamics?since={}", latest - 1),
    );
    assert!(tail.contains("200 OK"), "{tail}");
    assert!(
        tail.contains(&format!("\"generation\":{latest}"))
            && !tail.contains(&format!("\"generation\":{}", latest - 1)),
        "incremental poll must return exactly the post-cursor generations: {tail}"
    );
    let missing = http_get(server.addr(), "/runs/no-such-run/dynamics");
    assert!(missing.contains("404"), "{missing}");
    // CI sets LD_OBSERVE_HTTP and curls from outside: linger briefly so
    // the scrape window outlives the (fast) GA run.
    if std::env::var("LD_OBSERVE_HTTP").is_ok() {
        std::thread::sleep(Duration::from_millis(1500));
    }
    drop(server);

    // ---- Attribution: parse the stream back, check the invariant. ----
    let text = std::fs::read_to_string(&events_path).unwrap();
    let summary = TraceSummary::from_jsonl(&text);
    assert!(
        !summary.generations.is_empty(),
        "an observed run must record spans"
    );
    // Sub-50µs generations are clock-resolution noise; everything real
    // must satisfy the 10% attribution bound.
    let mut checked = 0;
    for g in &summary.generations {
        assert!(
            g.eval_ms <= g.wall_ms + 1e-6,
            "gen {}: eval share {} exceeds generation wall {}",
            g.generation,
            g.eval_ms,
            g.wall_ms
        );
        if g.eval_ms < 0.05 {
            continue;
        }
        let rel = (g.hop_sum_ms() - g.eval_ms).abs() / g.eval_ms;
        assert!(
            rel <= 0.10,
            "gen {}: attributed hops {:.3} ms vs eval share {:.3} ms ({:.1}% off)",
            g.generation,
            g.hop_sum_ms(),
            g.eval_ms,
            100.0 * rel
        );
        checked += 1;
    }
    assert!(checked > 0, "no generation above the noise floor");
    // v2 slaves self-report compute, so the run-wide compute share is
    // real measured time, not a residual.
    let totals = summary.totals();
    assert!(totals.batches > 0);
    assert!(
        totals.compute_ms > 0.0,
        "v2 slaves must contribute compute time to the attribution"
    );

    // ---- Artifacts for the CI fault matrix (and humans). ----
    std::fs::write(
        dir.join(format!("trace-summary-{scenario}.txt")),
        summary.render(),
    )
    .unwrap();
    std::fs::write(
        dir.join(format!("trace-summary-{scenario}.json")),
        summary.to_json(),
    )
    .unwrap();
    // The dynamics companion, from the same JSONL stream the CI
    // `dynamics-summary` step reads.
    let trace = ld_observe::DynamicsTrace::for_run_jsonl(&text, &run_id);
    assert!(!trace.is_empty(), "run must leave a dynamics trace");
    std::fs::write(
        dir.join(format!("dynamics-summary-{scenario}.txt")),
        trace.render(),
    )
    .unwrap();
    std::fs::write(
        dir.join(format!("dynamics-summary-{scenario}.json")),
        trace.to_json(),
    )
    .unwrap();
}

/// Columns of the history TSV that measure wall time or fault-recovery
/// timing — real nondeterminism that exists with or without an observer.
/// Everything else (fitness trajectories, operator rates, batch/cache
/// accounting) must be byte-identical between observed and unobserved
/// runs.
const TIMING_COLUMNS: &[&str] = &[
    "sched_dispatch_ms",
    "sched_queue_depth",
    "sched_retries",
    "sched_retired",
    "sched_rejoins",
    "sched_requeued",
    "sched_fallbacks",
    "gen_wall_ms",
];

/// The search-dynamics columns: populated only on observed runs (empty
/// cells otherwise), so the on/off comparison must blank them. Their
/// *values* are pinned deterministic elsewhere (`ld-core`'s
/// `dynamics_run` suite and the reconciliation test above).
const DYNAMICS_COLUMNS: &[&str] = &[
    "dyn_hamming",
    "dyn_unique",
    "dyn_entropy",
    "dyn_fixed",
    "dyn_fit_q1",
    "dyn_fit_median",
    "dyn_fit_q3",
    "dyn_gain",
    "dyn_evals_per_gain",
    "dyn_profit_mut_snp",
    "dyn_profit_mut_reduction",
    "dyn_profit_mut_augmentation",
    "dyn_profit_cross_intra",
    "dyn_profit_cross_inter",
];

/// Blank out the timing columns of a history TSV, keeping everything else.
fn mask_timing_columns(tsv: &str) -> String {
    let mut lines = tsv.lines();
    let header = lines.next().expect("TSV header");
    let masked: Vec<usize> = header
        .split('\t')
        .enumerate()
        .filter(|(_, name)| TIMING_COLUMNS.contains(name) || DYNAMICS_COLUMNS.contains(name))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        masked.len(),
        TIMING_COLUMNS.len() + DYNAMICS_COLUMNS.len(),
        "history TSV header no longer carries all timing + dynamics columns"
    );
    let mut out = String::from(header);
    out.push('\n');
    for line in lines {
        let cells: Vec<&str> = line.split('\t').collect();
        let row: Vec<&str> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| if masked.contains(&i) { "*" } else { *c })
            .collect();
        out.push_str(&row.join("\t"));
        out.push('\n');
    }
    out
}

/// Observation must be a pure read: the same seeded run on the same fault
/// plan takes the identical GA trajectory whether or not an observer (and
/// its span instrumentation) is attached.
#[test]
fn ga_trajectory_is_bit_identical_with_observer_on_and_off() {
    let scenario = std::env::var("LD_FAULT_PLAN").unwrap_or_else(|_| "kill-one".to_string());
    let run_once = |observed: bool| {
        let plans = FaultPlan::matrix(&scenario, 3, 42)
            .unwrap_or_else(|| panic!("unknown scenario {scenario:?}"));
        let cluster = LocalCluster::spawn_faulty(3, toy, &plans, fast_cfg()).unwrap();
        let observer = if observed {
            Observer::new(
                "bit-identity",
                Arc::new(RingSink::new(1 << 14)),
                Registry::new(),
            )
        } else {
            Observer::disabled()
        };
        let pool = cluster.pool();
        pool.set_observer(observer.clone());
        let fallback: Arc<dyn EvalBackend> = Arc::new(RayonEvaluator::new(toy()));
        let result = GaEngine::new(pool, ga_cfg(), 11)
            .unwrap()
            .with_observer(observer)
            .with_fallback_backend(fallback)
            .try_run()
            .unwrap_or_else(|e| panic!("{scenario}: {e}"));
        let mut tsv = Vec::new();
        telemetry::write_history_tsv(&result, &mut tsv).unwrap();
        let champions: Vec<Option<(Vec<SnpId>, u64)>> = (2..=3)
            .map(|k| {
                result
                    .best_of_size(k)
                    .map(|h| (h.snps().to_vec(), h.fitness().to_bits()))
            })
            .collect();
        (
            result.generations,
            result.total_evaluations,
            champions,
            String::from_utf8(tsv).unwrap(),
        )
    };

    let (gens_on, evals_on, champs_on, tsv_on) = run_once(true);
    let (gens_off, evals_off, champs_off, tsv_off) = run_once(false);

    assert_eq!(gens_on, gens_off, "generation count diverged");
    assert_eq!(evals_on, evals_off, "evaluation count diverged");
    assert_eq!(
        champs_on, champs_off,
        "best haplotypes diverged between observed and unobserved runs"
    );
    assert_eq!(
        mask_timing_columns(&tsv_on),
        mask_timing_columns(&tsv_off),
        "history TSV diverged outside the timing columns"
    );
}
