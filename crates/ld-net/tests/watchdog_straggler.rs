//! Watchdog acceptance test for the `slow-slave` fault plan: the fleet
//! anomaly watchdog must flag *exactly* the delayed slave as a
//! `Straggler` (typed `SlaveAnomaly` in the JSONL stream, standing
//! verdict in the `GET /fleet` rollup), the server must de-weight it —
//! fewer claims, never retirement, never starvation — and none of it may
//! touch the GA's arithmetic: best haplotypes stay bit-identical to a
//! fault-free solo reference.
#![cfg(feature = "fault-inject")]

use ld_core::{GaConfig, GaEngine, StatsEvaluator};
use ld_data::SnpId;
use ld_net::wire;
use ld_net::{DatasetLoader, FaultPlan, PoolConfig, RunSpec, ServerConfig, SharedCluster};
use ld_observe::{
    AnomalyKind, ApiHandler, Event, FanoutSink, JsonlSink, Observer, Registry, RingSink, Sink,
};
use ld_stats::FitnessKind;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn fast_cfg() -> ServerConfig {
    ServerConfig {
        pool: PoolConfig {
            request_timeout: Duration::from_secs(2),
            max_retries: 1,
            retry_backoff: Duration::from_millis(5),
            rejoin_backoff: Duration::from_millis(10),
            max_rejoin_backoff: Duration::from_millis(200),
        },
        deweight_stragglers: true,
        ..ServerConfig::default()
    }
}

fn ga_cfg() -> GaConfig {
    GaConfig {
        population_size: 40,
        min_size: 2,
        max_size: 3,
        matings_per_generation: 6,
        stagnation_limit: 8,
        max_generations: 25,
        ..GaConfig::default()
    }
}

fn stats_loader() -> DatasetLoader {
    Arc::new(|_fp, _n_snps, payload: &[u8]| {
        let data = wire::decode_dataset(payload)?;
        StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1)
            .map(|e| Arc::new(e) as Arc<dyn ld_core::Evaluator>)
            .map_err(|e| e.to_string())
    })
}

/// Artifact directory: `LD_OBSERVE_DIR` in CI, a scratch dir otherwise.
fn artifact_dir() -> PathBuf {
    let dir = match std::env::var("LD_OBSERVE_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => std::env::temp_dir().join(format!("ld-watchdog-{}", std::process::id())),
    };
    std::fs::create_dir_all(&dir).expect("artifact dir");
    dir
}

fn champions(result: &ld_core::RunResult) -> Vec<Option<(Vec<SnpId>, u64)>> {
    (2..=3)
        .map(|k| {
            result
                .best_of_size(k)
                .map(|h| (h.snps().to_vec(), h.fitness().to_bits()))
        })
        .collect()
}

#[test]
fn slow_slave_is_flagged_straggler_deweighted_and_harmless() {
    let plans = FaultPlan::matrix("slow-slave", 3, 42).unwrap();
    let victim_idx = plans
        .iter()
        .position(|p| !p.is_none())
        .expect("slow-slave scripts one victim");

    let dir = artifact_dir();
    let events_path = dir.join("watchdog-straggler-events.jsonl");
    let ring = Arc::new(RingSink::new(1 << 16));
    let jsonl = Arc::new(JsonlSink::create(&events_path).unwrap());
    let sink = Arc::new(FanoutSink::new(vec![
        Arc::clone(&ring) as Arc<dyn Sink>,
        jsonl,
    ]));
    let registry = Registry::new();
    let fleet_observer = Observer::new("fleet", Arc::clone(&sink) as Arc<dyn Sink>, registry);

    let cluster =
        SharedCluster::spawn_shared_faulty(3, stats_loader(), &plans, fast_cfg(), fleet_observer)
            .unwrap();
    let victim_addr = cluster.slaves()[victim_idx].addr().to_string();

    let data = ld_data::synthetic::lille_51(100);
    let payload = wire::encode_dataset(&data);
    let fingerprint = wire::fingerprint(&payload);
    let handle = cluster
        .server()
        .submit_run(RunSpec::new("straggler-run", fingerprint, data.n_snps()).with_payload(payload))
        .unwrap();
    let result = GaEngine::new(&handle, ga_cfg(), 7)
        .unwrap()
        .try_run()
        .expect("run must survive a merely slow slave");

    // The GA's arithmetic is untouched: bit-identical to the same seed on
    // a dedicated in-process evaluator.
    let solo = StatsEvaluator::from_dataset(&data, FitnessKind::ClumpT1).unwrap();
    let reference = GaEngine::new(&solo, ga_cfg(), 7).unwrap().run();
    assert_eq!(result.generations, reference.generations);
    assert_eq!(result.total_evaluations, reference.total_evaluations);
    assert_eq!(champions(&result), champions(&reference));

    // The watchdog confirmed exactly the delayed slave, exactly once, as
    // a straggler (slow network, normal compute — not drift).
    let envelopes = ring.take();
    let anomalies: Vec<(String, AnomalyKind)> = envelopes
        .iter()
        .filter_map(|env| match &env.event {
            Event::SlaveAnomaly { slave, kind, .. } => Some((slave.clone(), *kind)),
            _ => None,
        })
        .collect();
    assert_eq!(
        anomalies,
        vec![(victim_addr.clone(), AnomalyKind::Straggler)],
        "watchdog must flag the victim once and nobody else"
    );
    // The standing verdict survives to the end of the run and is what
    // `GET /fleet` serves.
    let watch = cluster.server().watch();
    assert_eq!(watch.flagged(&victim_addr), Some(AnomalyKind::Straggler));
    let rollup = watch
        .handle("GET", "/fleet", "", b"")
        .expect("watch serves /fleet");
    assert_eq!(rollup.status, 200);
    let v: serde_json::Value = serde_json::from_str(&rollup.body).unwrap();
    let flagged: Vec<&str> = v
        .get("slaves")
        .and_then(|s| s.as_array())
        .unwrap()
        .iter()
        .filter(|s| s.get("flagged").is_some_and(|f| !f.is_null()))
        .map(|s| s.get("addr").and_then(|a| a.as_str()).unwrap())
        .collect();
    assert_eq!(flagged, vec![victim_addr.as_str()], "{}", rollup.body);

    // De-weighted, NOT retired: the slave kept serving (never starved),
    // no retirement was ever recorded, and the fleet count stayed whole.
    assert_eq!(cluster.server().alive(), 3);
    assert!(
        !envelopes
            .iter()
            .any(|env| matches!(env.event, Event::SlaveRetired { .. })),
        "a slow slave must never be retired"
    );
    for (i, slave) in cluster.slaves().iter().enumerate() {
        assert!(
            slave.served() > 0,
            "slave {i} was starved ({} served)",
            slave.served()
        );
    }

    // The typed anomaly is in the JSONL artifact too (what CI uploads).
    sink.flush();
    let text = std::fs::read_to_string(&events_path).unwrap();
    assert!(
        text.contains("SlaveAnomaly") && text.contains("Straggler"),
        "JSONL stream at {} lacks the typed anomaly",
        events_path.display()
    );
}
