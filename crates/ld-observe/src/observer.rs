//! The [`Observer`]: the single handle the engine, scheduler, and
//! network layers share.
//!
//! An observer is either *disabled* — the default, a `None` inside — or
//! *enabled*, holding a [`Sink`], a [`Registry`], and the correlation
//! span (`run_id`, current `generation`, current `batch_id`). Disabled
//! observers make every call a branch on an `Option`: no locks, no
//! allocations, no atomics. Call sites that would need to build an
//! [`Event`] (which may allocate strings) use [`Observer::emit_with`] so
//! construction is skipped entirely when disabled.
//!
//! Span maintenance is by convention, enforced at the three choke points
//! of the stack: the engine calls [`Observer::set_generation`] at the top
//! of every step, the scheduler calls [`Observer::begin_batch`] before
//! each dispatch, and everything emitted below (pool retries, slave
//! retirements) inherits whatever span is current — which is exactly the
//! engine step that caused it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::event::{Envelope, Event};
use crate::metrics::Registry;
use crate::sink::Sink;
use crate::span::{self, ClosedSpan, SpanGuard, SpanId, SpanTree};

/// Closed spans retained in memory for the `/spans` endpoint; older
/// spans survive only in the JSONL event stream.
const SPAN_RING_CAPACITY: usize = 8192;

struct ObserverInner {
    sink: Arc<dyn Sink>,
    registry: Registry,
    run_id: String,
    generation: AtomicU64,
    batch_seq: AtomicU64,
    current_batch: AtomicU64,
    /// Zero point for span timestamps (`start_ns` offsets).
    epoch: Instant,
    span_seq: AtomicU64,
    spans: SpanTree,
    /// Span id of the backend dispatch currently on the scheduler's
    /// stack (0 = none): pool worker threads parent their per-request
    /// spans under it, since the thread-local stack doesn't cross
    /// threads.
    dispatch_span: AtomicU64,
}

/// Cheap-to-clone observability handle; see the module docs.
#[derive(Clone, Default)]
pub struct Observer {
    inner: Option<Arc<ObserverInner>>,
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl Observer {
    /// The no-op observer. All emission and span calls are branches on a
    /// `None`; nothing is allocated or locked.
    pub fn disabled() -> Self {
        Observer { inner: None }
    }

    /// An enabled observer writing events to `sink` and metrics to
    /// `registry`, stamping every envelope with `run_id`.
    pub fn new(run_id: impl Into<String>, sink: Arc<dyn Sink>, registry: Registry) -> Self {
        let spans = SpanTree::new(SPAN_RING_CAPACITY);
        spans.attach_drop_metric(&registry);
        Observer {
            inner: Some(Arc::new(ObserverInner {
                sink,
                registry,
                run_id: run_id.into(),
                generation: AtomicU64::new(0),
                batch_seq: AtomicU64::new(0),
                current_batch: AtomicU64::new(0),
                epoch: Instant::now(),
                span_seq: AtomicU64::new(0),
                spans,
                dispatch_span: AtomicU64::new(0),
            })),
        }
    }

    /// Whether events are being collected. Use to guard event
    /// construction that allocates.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit one event under the current span.
    pub fn emit(&self, event: Event) {
        if let Some(inner) = &self.inner {
            let env = Envelope {
                ts_ms: now_ms(),
                run_id: inner.run_id.clone(),
                generation: inner.generation.load(Ordering::Relaxed),
                batch_id: inner.current_batch.load(Ordering::Relaxed),
                event,
            };
            inner.sink.accept(&env);
        }
    }

    /// Emit the event produced by `make`, building it only when enabled.
    pub fn emit_with<F: FnOnce() -> Event>(&self, make: F) {
        if self.enabled() {
            self.emit(make());
        }
    }

    /// Stamp the current engine generation (the engine calls this at the
    /// top of every step; 0 means "before the first generation").
    pub fn set_generation(&self, generation: u64) {
        if let Some(inner) = &self.inner {
            inner.generation.store(generation, Ordering::Relaxed);
        }
    }

    /// Current engine generation in the span.
    pub fn generation(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.generation.load(Ordering::Relaxed))
    }

    /// Allocate the next batch id (monotonic from 1) and make it the
    /// current span batch. The scheduler calls this immediately before a
    /// dispatch so pool events raised inside inherit it.
    pub fn begin_batch(&self) -> u64 {
        match &self.inner {
            Some(inner) => {
                let id = inner.batch_seq.fetch_add(1, Ordering::Relaxed) + 1;
                inner.current_batch.store(id, Ordering::Relaxed);
                id
            }
            None => 0,
        }
    }

    /// Clear the span's batch (back to 0 = "outside any dispatch").
    pub fn end_batch(&self) {
        if let Some(inner) = &self.inner {
            inner.current_batch.store(0, Ordering::Relaxed);
        }
    }

    /// Open a timed span named `name`, nested under the innermost span
    /// open on *this thread* (or a root if none). Returns an inert guard
    /// when disabled — no clock read, no thread-local touch.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::noop(),
            Some(inner) => {
                let id = inner.span_seq.fetch_add(1, Ordering::Relaxed) + 1;
                SpanGuard::begin(self.clone(), name, id, span::current_parent())
            }
        }
    }

    /// Open a timed span under an explicit `parent` id — for work that
    /// crosses threads, where the implicit thread-local nesting of
    /// [`Observer::span`] can't see the caller's span. `parent` 0 makes
    /// a root.
    pub fn span_under(&self, name: &'static str, parent: SpanId) -> SpanGuard {
        match &self.inner {
            None => SpanGuard::noop(),
            Some(inner) => {
                let id = inner.span_seq.fetch_add(1, Ordering::Relaxed) + 1;
                SpanGuard::begin(self.clone(), name, id, parent)
            }
        }
    }

    /// Record an already-measured interval as a closed span ending now
    /// (start = now − `duration`), under an explicit `parent`. This is
    /// how externally timed work enters the tree: a v2 slave's
    /// self-reported compute microseconds, a local backend's summed
    /// per-job wall time, a worker's queue wait.
    pub fn record_span(&self, name: &'static str, parent: SpanId, duration: Duration) {
        if let Some(inner) = &self.inner {
            let id = inner.span_seq.fetch_add(1, Ordering::Relaxed) + 1;
            let end_ns = inner.epoch.elapsed().as_nanos() as u64;
            let duration_ns = duration.as_nanos() as u64;
            self.push_closed(
                name,
                id,
                parent,
                end_ns.saturating_sub(duration_ns),
                duration_ns,
            );
        }
    }

    /// Close a guard-held span (called from [`SpanGuard::drop`]).
    pub(crate) fn finish_span(
        &self,
        name: &'static str,
        id: SpanId,
        parent: SpanId,
        started: Instant,
        duration: Duration,
    ) {
        if let Some(inner) = &self.inner {
            // Saturating: `started` is never before the observer's epoch.
            let start_ns = started.duration_since(inner.epoch).as_nanos() as u64;
            self.push_closed(name, id, parent, start_ns, duration.as_nanos() as u64);
        }
    }

    fn push_closed(
        &self,
        name: &'static str,
        id: SpanId,
        parent: SpanId,
        start_ns: u64,
        duration_ns: u64,
    ) {
        let inner = self
            .inner
            .as_ref()
            .expect("push_closed on disabled observer");
        inner.spans.push(ClosedSpan {
            id,
            parent,
            name,
            generation: inner.generation.load(Ordering::Relaxed),
            batch_id: inner.current_batch.load(Ordering::Relaxed),
            start_ns,
            duration_ns,
        });
        self.emit(Event::SpanClosed {
            name: name.to_string(),
            id,
            parent,
            start_ns,
            duration_ns,
        });
    }

    /// Publish the dispatch span pool workers should parent their
    /// per-request spans under; the scheduler calls this around every
    /// backend dispatch. Pass the guard's [`SpanGuard::id`].
    pub fn begin_dispatch_span(&self, id: SpanId) {
        if let Some(inner) = &self.inner {
            inner.dispatch_span.store(id, Ordering::Relaxed);
        }
    }

    /// Clear the published dispatch span (back to 0 = none).
    pub fn end_dispatch_span(&self) {
        if let Some(inner) = &self.inner {
            inner.dispatch_span.store(0, Ordering::Relaxed);
        }
    }

    /// The dispatch span currently published by the scheduler (0 when
    /// none, or when disabled).
    pub fn dispatch_span(&self) -> SpanId {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dispatch_span.load(Ordering::Relaxed))
    }

    /// The in-memory ring of recently closed spans, when enabled.
    pub fn spans(&self) -> Option<&SpanTree> {
        self.inner.as_ref().map(|i| &i.spans)
    }

    /// The recent span forest as JSON (what `/spans` serves); an empty
    /// forest when disabled.
    pub fn spans_json(&self) -> String {
        match self.spans() {
            Some(tree) => tree.to_json(),
            None => "{\"count\":0,\"spans\":[]}".to_string(),
        }
    }

    /// The metrics registry, when enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_ref().map(|i| &i.registry)
    }

    /// The run id, when enabled.
    pub fn run_id(&self) -> Option<&str> {
        self.inner.as_ref().map(|i| i.run_id.as_str())
    }

    /// Flush the sink (file sinks push buffered lines to disk).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    #[test]
    fn disabled_observer_is_inert() {
        let obs = Observer::disabled();
        assert!(!obs.enabled());
        obs.emit(Event::GenerationStarted);
        obs.set_generation(5);
        assert_eq!(obs.begin_batch(), 0);
        assert_eq!(obs.generation(), 0);
        assert!(obs.registry().is_none());
        let mut built = false;
        obs.emit_with(|| {
            built = true;
            Event::GenerationStarted
        });
        assert!(!built, "emit_with must not build events when disabled");
    }

    #[test]
    fn span_is_stamped_onto_envelopes() {
        let ring = Arc::new(RingSink::new(16));
        let obs = Observer::new("run-1", ring.clone(), Registry::new());
        obs.set_generation(2);
        let b1 = obs.begin_batch();
        obs.emit(Event::SlaveRetired { slave: "s".into() });
        obs.end_batch();
        obs.emit(Event::GenerationStarted);

        let events = ring.take();
        assert_eq!(b1, 1);
        assert_eq!(events[0].run_id, "run-1");
        assert_eq!(events[0].generation, 2);
        assert_eq!(events[0].batch_id, 1);
        assert_eq!(events[1].batch_id, 0, "span cleared after end_batch");
        assert_eq!(obs.begin_batch(), 2, "batch ids are monotonic");
    }
}
