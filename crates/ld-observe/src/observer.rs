//! The [`Observer`]: the single handle the engine, scheduler, and
//! network layers share.
//!
//! An observer is either *disabled* — the default, a `None` inside — or
//! *enabled*, holding a [`Sink`], a [`Registry`], and the correlation
//! span (`run_id`, current `generation`, current `batch_id`). Disabled
//! observers make every call a branch on an `Option`: no locks, no
//! allocations, no atomics. Call sites that would need to build an
//! [`Event`] (which may allocate strings) use [`Observer::emit_with`] so
//! construction is skipped entirely when disabled.
//!
//! Span maintenance is by convention, enforced at the three choke points
//! of the stack: the engine calls [`Observer::set_generation`] at the top
//! of every step, the scheduler calls [`Observer::begin_batch`] before
//! each dispatch, and everything emitted below (pool retries, slave
//! retirements) inherits whatever span is current — which is exactly the
//! engine step that caused it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::event::{Envelope, Event};
use crate::metrics::Registry;
use crate::sink::Sink;

struct ObserverInner {
    sink: Arc<dyn Sink>,
    registry: Registry,
    run_id: String,
    generation: AtomicU64,
    batch_seq: AtomicU64,
    current_batch: AtomicU64,
}

/// Cheap-to-clone observability handle; see the module docs.
#[derive(Clone, Default)]
pub struct Observer {
    inner: Option<Arc<ObserverInner>>,
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl Observer {
    /// The no-op observer. All emission and span calls are branches on a
    /// `None`; nothing is allocated or locked.
    pub fn disabled() -> Self {
        Observer { inner: None }
    }

    /// An enabled observer writing events to `sink` and metrics to
    /// `registry`, stamping every envelope with `run_id`.
    pub fn new(run_id: impl Into<String>, sink: Arc<dyn Sink>, registry: Registry) -> Self {
        Observer {
            inner: Some(Arc::new(ObserverInner {
                sink,
                registry,
                run_id: run_id.into(),
                generation: AtomicU64::new(0),
                batch_seq: AtomicU64::new(0),
                current_batch: AtomicU64::new(0),
            })),
        }
    }

    /// Whether events are being collected. Use to guard event
    /// construction that allocates.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit one event under the current span.
    pub fn emit(&self, event: Event) {
        if let Some(inner) = &self.inner {
            let env = Envelope {
                ts_ms: now_ms(),
                run_id: inner.run_id.clone(),
                generation: inner.generation.load(Ordering::Relaxed),
                batch_id: inner.current_batch.load(Ordering::Relaxed),
                event,
            };
            inner.sink.accept(&env);
        }
    }

    /// Emit the event produced by `make`, building it only when enabled.
    pub fn emit_with<F: FnOnce() -> Event>(&self, make: F) {
        if self.enabled() {
            self.emit(make());
        }
    }

    /// Stamp the current engine generation (the engine calls this at the
    /// top of every step; 0 means "before the first generation").
    pub fn set_generation(&self, generation: u64) {
        if let Some(inner) = &self.inner {
            inner.generation.store(generation, Ordering::Relaxed);
        }
    }

    /// Current engine generation in the span.
    pub fn generation(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.generation.load(Ordering::Relaxed))
    }

    /// Allocate the next batch id (monotonic from 1) and make it the
    /// current span batch. The scheduler calls this immediately before a
    /// dispatch so pool events raised inside inherit it.
    pub fn begin_batch(&self) -> u64 {
        match &self.inner {
            Some(inner) => {
                let id = inner.batch_seq.fetch_add(1, Ordering::Relaxed) + 1;
                inner.current_batch.store(id, Ordering::Relaxed);
                id
            }
            None => 0,
        }
    }

    /// Clear the span's batch (back to 0 = "outside any dispatch").
    pub fn end_batch(&self) {
        if let Some(inner) = &self.inner {
            inner.current_batch.store(0, Ordering::Relaxed);
        }
    }

    /// The metrics registry, when enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_ref().map(|i| &i.registry)
    }

    /// The run id, when enabled.
    pub fn run_id(&self) -> Option<&str> {
        self.inner.as_ref().map(|i| i.run_id.as_str())
    }

    /// Flush the sink (file sinks push buffered lines to disk).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    #[test]
    fn disabled_observer_is_inert() {
        let obs = Observer::disabled();
        assert!(!obs.enabled());
        obs.emit(Event::GenerationStarted);
        obs.set_generation(5);
        assert_eq!(obs.begin_batch(), 0);
        assert_eq!(obs.generation(), 0);
        assert!(obs.registry().is_none());
        let mut built = false;
        obs.emit_with(|| {
            built = true;
            Event::GenerationStarted
        });
        assert!(!built, "emit_with must not build events when disabled");
    }

    #[test]
    fn span_is_stamped_onto_envelopes() {
        let ring = Arc::new(RingSink::new(16));
        let obs = Observer::new("run-1", ring.clone(), Registry::new());
        obs.set_generation(2);
        let b1 = obs.begin_batch();
        obs.emit(Event::SlaveRetired { slave: "s".into() });
        obs.end_batch();
        obs.emit(Event::GenerationStarted);

        let events = ring.take();
        assert_eq!(b1, 1);
        assert_eq!(events[0].run_id, "run-1");
        assert_eq!(events[0].generation, 2);
        assert_eq!(events[0].batch_id, 1);
        assert_eq!(events[1].batch_id, 0, "span cleared after end_batch");
        assert_eq!(obs.begin_batch(), 2, "batch ids are monotonic");
    }
}
