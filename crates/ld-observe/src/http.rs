//! Live scrape endpoint: a minimal std-`TcpListener` HTTP/1.1 server.
//!
//! [`ExposeServer`] serves three read-only routes off an [`Observer`]:
//!
//! * `/metrics` — Prometheus text exposition of the registry;
//! * `/health`  — a small JSON liveness document (run id, generation,
//!   span count);
//! * `/spans`   — the recent span forest as nested JSON (the in-memory
//!   [`crate::span::SpanTree`] ring).
//!
//! Deliberately tiny: one accept thread, one connection at a time,
//! `Connection: close` on every response — enough for `curl` and a
//! Prometheus scraper, with no dependencies beyond std. Binding port 0
//! picks an ephemeral port (see [`ExposeServer::addr`]).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::observer::Observer;

/// A running exposition server; stops (and joins) on drop.
pub struct ExposeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ExposeServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral) and
    /// serve the observer's metrics, health, and spans until
    /// [`ExposeServer::stop`] or drop. A disabled observer still serves
    /// `/health` (and empty `/metrics` + `/spans`), so the endpoint's
    /// presence never depends on tracing being on.
    pub fn bind(addr: &str, observer: Observer) -> std::io::Result<ExposeServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name(format!("ld-observe-http-{local}"))
            .spawn(move || {
                // Polling accept loop so `stop` is honored promptly.
                listener
                    .set_nonblocking(true)
                    .expect("set nonblocking listener");
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // Serve inline: responses are small and
                            // generated in-memory, so one connection at a
                            // time keeps the server trivial.
                            let _ = serve_one(stream, &observer);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(ExposeServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to stop accepting. Idempotent.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl Drop for ExposeServer {
    fn drop(&mut self) {
        self.stop();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Read one request, route it, write one response, close.
fn serve_one(mut stream: TcpStream, observer: &Observer) -> std::io::Result<()> {
    // A stuck client must not wedge the accept loop.
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    // Read until the end of the request head (we ignore bodies).
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                observer
                    .registry()
                    .map(|r| r.prometheus())
                    .unwrap_or_default(),
            ),
            "/health" => ("200 OK", "application/json", health_json(observer)),
            "/spans" => ("200 OK", "application/json", observer.spans_json()),
            _ => (
                "404 Not Found",
                "text/plain",
                "routes: /metrics /health /spans\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[derive(serde::Serialize)]
struct Health {
    status: &'static str,
    enabled: bool,
    run_id: String,
    generation: u64,
    spans: usize,
}

fn health_json(observer: &Observer) -> String {
    serde_json::to_string(&Health {
        status: "ok",
        enabled: observer.enabled(),
        run_id: observer.run_id().unwrap_or("").to_string(),
        generation: observer.generation(),
        spans: observer.spans().map_or(0, |t| t.len()),
    })
    .unwrap_or_else(|_| "{\"status\":\"ok\"}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::sink::RingSink;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_health_and_spans() {
        let registry = Registry::new();
        registry.counter("up_total", "help").add(3);
        let obs = Observer::new("run-http", Arc::new(RingSink::new(64)), registry);
        {
            let _g = obs.span("generation");
        }
        let server = ExposeServer::bind("127.0.0.1:0", obs).unwrap();

        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("up_total 3"), "{body}");

        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"run_id\":\"run-http\""), "{body}");
        assert!(body.contains("\"spans\":1"), "{body}");

        let (head, body) = get(server.addr(), "/spans");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.starts_with("{\"count\":1"), "{body}");
        assert!(body.contains("\"name\":\"generation\""), "{body}");
    }

    #[test]
    fn unknown_route_is_404_and_disabled_observer_serves() {
        let server = ExposeServer::bind("127.0.0.1:0", Observer::disabled()).unwrap();
        let (head, _) = get(server.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"enabled\":false"), "{body}");
        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.is_empty(), "{body}");
        server.stop();
    }
}
