//! Live scrape endpoint: a minimal std-`TcpListener` HTTP/1.1 server.
//!
//! [`ExposeServer`] serves three read-only routes off an [`Observer`]:
//!
//! * `/metrics` — Prometheus text exposition of the registry;
//! * `/health`  — a small JSON liveness document (run id, generation,
//!   span count, and — when an [`ApiHandler`] is attached — a per-run
//!   status section);
//! * `/spans`   — the recent span forest as nested JSON (the in-memory
//!   [`crate::span::SpanTree`] ring).
//!
//! An optional [`ApiHandler`] extends the route table without coupling
//! this crate to the layers above it: `ld-net`'s multi-run eval server
//! mounts its submit/status/result JSON API here (`POST /runs`,
//! `GET /runs/...`). Handler routes are consulted first; anything they
//! decline falls through to the built-in routes, then to a 404 with a
//! body. Non-GET methods on built-in routes get a 405; every response
//! carries `Content-Length` and `Connection: close`.
//!
//! Deliberately tiny: one accept thread, one connection at a time —
//! enough for `curl` and a Prometheus scraper, with no dependencies
//! beyond std. Binding port 0 picks an ephemeral port (see
//! [`ExposeServer::addr`]).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::observer::Observer;

/// A response produced by an [`ApiHandler`] route.
#[derive(Debug, Clone)]
pub struct ApiResponse {
    /// HTTP status code (200, 202, 404, 409, 503, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl ApiResponse {
    /// A 200 response with a JSON body.
    pub fn json(body: String) -> ApiResponse {
        ApiResponse {
            status: 200,
            content_type: "application/json",
            body,
        }
    }

    /// An arbitrary-status response with a JSON body.
    pub fn json_status(status: u16, body: String) -> ApiResponse {
        ApiResponse {
            status,
            content_type: "application/json",
            body,
        }
    }
}

/// Extension seam for layers above the observer: extra HTTP routes plus
/// per-run health sections, mounted via [`ExposeServer::bind_with_api`].
pub trait ApiHandler: Send + Sync {
    /// Handle `method path` with `body` (empty for GETs). `query` is the
    /// raw query string without the leading `?` (empty when absent) —
    /// handlers that poll incrementally (`GET /runs/<id>/dynamics?since=N`)
    /// parse it with [`crate::dynamics::query_param`]. Return `None` to
    /// decline the route (it then falls through to the built-ins).
    fn handle(&self, method: &str, path: &str, query: &str, body: &[u8]) -> Option<ApiResponse>;

    /// Per-run status sections merged into `/health` as
    /// `"runs": { "<run_id>": <fragment>, ... }`. Each fragment must be a
    /// valid JSON value (the handler is trusted on this).
    fn health_runs(&self) -> Vec<(String, String)> {
        Vec::new()
    }
}

/// A running exposition server; stops (and joins) on drop.
pub struct ExposeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ExposeServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral) and
    /// serve the observer's metrics, health, and spans until
    /// [`ExposeServer::stop`] or drop. A disabled observer still serves
    /// `/health` (and empty `/metrics` + `/spans`), so the endpoint's
    /// presence never depends on tracing being on.
    pub fn bind(addr: &str, observer: Observer) -> std::io::Result<ExposeServer> {
        Self::bind_inner(addr, observer, None)
    }

    /// [`ExposeServer::bind`] with an [`ApiHandler`] mounted in front of
    /// the built-in routes (and feeding `/health`'s per-run sections).
    pub fn bind_with_api(
        addr: &str,
        observer: Observer,
        api: Arc<dyn ApiHandler>,
    ) -> std::io::Result<ExposeServer> {
        Self::bind_inner(addr, observer, Some(api))
    }

    fn bind_inner(
        addr: &str,
        observer: Observer,
        api: Option<Arc<dyn ApiHandler>>,
    ) -> std::io::Result<ExposeServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Typed error to the caller, not a panic in the accept thread.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name(format!("ld-observe-http-{local}"))
            .spawn(move || {
                // Polling accept loop so `stop` is honored promptly.
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // Serve inline: responses are small and
                            // generated in-memory, so one connection at a
                            // time keeps the server trivial.
                            let _ = serve_one(stream, &observer, api.as_deref());
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })?;
        Ok(ExposeServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to stop accepting. Idempotent.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

impl Drop for ExposeServer {
    fn drop(&mut self) {
        self.stop();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Read one request (head + body), route it, write one response, close.
fn serve_one(
    mut stream: TcpStream,
    observer: &Observer,
    api: Option<&dyn ApiHandler>,
) -> std::io::Result<()> {
    // A stuck client must not wedge the accept loop.
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    // Read until the end of the request head.
    let mut raw = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    let head_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if raw.len() > 8192 {
            break raw.len();
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break raw.len();
        }
        raw.extend_from_slice(&buf[..n]);
    };
    let head = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("");
    // Split the query off but keep it: API handlers see it (incremental
    // polling), built-in routes ignore it.
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    // Read the body when the client declared one (POST submissions).
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    let mut body = raw[head_end..].to_vec();
    while body.len() < content_length.min(1 << 20) {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        body.extend_from_slice(&buf[..n]);
    }

    // API routes first (they may accept POST); built-ins after.
    let api_response = api.and_then(|a| a.handle(&method, &path, &query, &body));
    let (status, content_type, body) = match api_response {
        Some(r) => (status_line(r.status), r.content_type, r.body),
        None if method != "GET" => (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed: built-in routes are GET only\n".to_string(),
        ),
        None => match path.as_str() {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                observer
                    .registry()
                    .map(|r| r.prometheus())
                    .unwrap_or_default(),
            ),
            "/health" => (
                "200 OK",
                "application/json",
                health_json(observer, api.map(|a| a.health_runs()).unwrap_or_default()),
            ),
            "/spans" => ("200 OK", "application/json", observer.spans_json()),
            _ => (
                "404 Not Found",
                "text/plain",
                "no such route; built-ins: /metrics /health /spans\n".to_string(),
            ),
        },
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn status_line(code: u16) -> &'static str {
    match code {
        200 => "200 OK",
        201 => "201 Created",
        202 => "202 Accepted",
        400 => "400 Bad Request",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        409 => "409 Conflict",
        503 => "503 Service Unavailable",
        _ => "500 Internal Server Error",
    }
}

#[derive(serde::Serialize)]
struct Health {
    status: &'static str,
    enabled: bool,
    run_id: String,
    generation: u64,
    spans: usize,
}

fn health_json(observer: &Observer, runs: Vec<(String, String)>) -> String {
    let base = serde_json::to_string(&Health {
        status: "ok",
        enabled: observer.enabled(),
        run_id: observer.run_id().unwrap_or("").to_string(),
        generation: observer.generation(),
        spans: observer.spans().map_or(0, |t| t.len()),
    })
    .unwrap_or_else(|_| "{\"status\":\"ok\"}".to_string());
    if runs.is_empty() {
        return base;
    }
    // Splice a "runs" object into the health document. Run ids are
    // escaped; fragments are handler-provided JSON values.
    let sections: Vec<String> = runs
        .iter()
        .map(|(id, fragment)| format!("{:?}:{fragment}", id))
        .collect();
    let mut out = base;
    out.truncate(out.len() - 1); // drop the closing brace
    out.push_str(",\"runs\":{");
    out.push_str(&sections.join(","));
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::sink::RingSink;

    fn request(addr: SocketAddr, raw: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        request(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n"))
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (String, String) {
        request(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn serves_metrics_health_and_spans() {
        let registry = Registry::new();
        registry.counter("up_total", "help").add(3);
        let obs = Observer::new("run-http", Arc::new(RingSink::new(64)), registry);
        {
            let _g = obs.span("generation");
        }
        let server = ExposeServer::bind("127.0.0.1:0", obs).unwrap();

        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("up_total 3"), "{body}");

        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"run_id\":\"run-http\""), "{body}");
        assert!(body.contains("\"spans\":1"), "{body}");

        let (head, body) = get(server.addr(), "/spans");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.starts_with("{\"count\":1"), "{body}");
        assert!(body.contains("\"name\":\"generation\""), "{body}");
    }

    #[test]
    fn unknown_route_is_404_and_disabled_observer_serves() {
        let server = ExposeServer::bind("127.0.0.1:0", Observer::disabled()).unwrap();
        let (head, body) = get(server.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert!(!body.is_empty(), "404 must carry a body");
        assert!(
            head.contains(&format!("Content-Length: {}", body.len())),
            "{head}"
        );
        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"enabled\":false"), "{body}");
        let (head, body) = get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.is_empty(), "{body}");
        assert!(head.contains("Content-Length: 0"), "{head}");
        server.stop();
    }

    #[test]
    fn non_get_without_api_route_is_405_with_content_length() {
        let server = ExposeServer::bind("127.0.0.1:0", Observer::disabled()).unwrap();
        for raw in [
            "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n".to_string(),
            "DELETE /health HTTP/1.1\r\nHost: x\r\n\r\n".to_string(),
            "PUT /spans HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}".to_string(),
        ] {
            let (head, body) = request(server.addr(), &raw);
            assert!(head.starts_with("HTTP/1.1 405"), "{raw}: {head}");
            assert!(!body.is_empty());
            assert!(
                head.contains(&format!("Content-Length: {}", body.len())),
                "{head}"
            );
        }
    }

    /// Echo handler: accepts POST /echo, reports one fake run section.
    struct EchoApi;
    impl ApiHandler for EchoApi {
        fn handle(
            &self,
            method: &str,
            path: &str,
            query: &str,
            body: &[u8],
        ) -> Option<ApiResponse> {
            match (method, path) {
                ("POST", "/echo") => Some(ApiResponse::json_status(
                    201,
                    format!(
                        "{{\"echo\":{:?}}}",
                        String::from_utf8_lossy(body).into_owned()
                    ),
                )),
                ("GET", "/echo") => Some(ApiResponse::json(format!("{{\"query\":{query:?}}}"))),
                _ => None,
            }
        }

        fn health_runs(&self) -> Vec<(String, String)> {
            vec![("tenant-1".into(), "{\"state\":\"running\"}".into())]
        }
    }

    #[test]
    fn api_handler_routes_and_health_sections() {
        let server =
            ExposeServer::bind_with_api("127.0.0.1:0", Observer::disabled(), Arc::new(EchoApi))
                .unwrap();
        // POST body reaches the handler (Content-Length framing).
        let (head, body) = post(server.addr(), "/echo", "{\"k\":1}");
        assert!(head.starts_with("HTTP/1.1 201"), "{head}");
        assert!(body.contains("{\\\"k\\\":1}"), "{body}");
        // GET on an api route works too, and the query string reaches
        // the handler (incremental polling depends on this).
        let (head, body) = get(server.addr(), "/echo");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"query\":\"\""), "{body}");
        let (head, body) = get(server.addr(), "/echo?since=4&full=1");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"query\":\"since=4&full=1\""), "{body}");
        // Built-ins still match when a query string is present.
        let (head, _) = get(server.addr(), "/health?verbose=1");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        // Non-GET on a route the handler declines is still a 405.
        let (head, _) = post(server.addr(), "/metrics", "");
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");
        // Built-ins still serve, and /health gains the per-run section.
        let (head, body) = get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(
            body.contains("\"runs\":{\"tenant-1\":{\"state\":\"running\"}}"),
            "{body}"
        );
        // Unknown routes keep 404-with-body semantics.
        let (head, body) = get(server.addr(), "/definitely-not");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert!(!body.is_empty());
    }
}
