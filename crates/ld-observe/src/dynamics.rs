//! Search-dynamics observability: what the *algorithm* is doing.
//!
//! PR 3/5 made the system observable (events, metrics, latency spans);
//! this module makes the search itself observable. The engine computes a
//! [`DynamicsSnapshot`] per generation — population diversity, per-SNP
//! fixation, fitness distribution, and the Hong–Wang–Chen operator
//! economics — but only when an observer is attached; the disabled path
//! costs nothing (no clock reads, no allocations — pinned by the
//! alloc-count guard next to the observer's own).
//!
//! Layers on top of the snapshot:
//!
//! * [`ConvergenceDetector`] — a sliding-window stagnation/convergence
//!   judge emitting typed [`crate::Event::Stagnation`] /
//!   [`crate::Event::Converged`] verdicts;
//! * [`DynamicsMetrics`] — pre-registered registry handles (one lock at
//!   attach time, none per generation) exposing diversity and
//!   per-operator rate/profit gauges over Prometheus;
//! * [`DynamicsBoard`] — a [`crate::Sink`] folding the event stream into
//!   per-run series served as `GET /runs/<id>/dynamics` (incremental
//!   polling via `?since=<gen>`) by its [`crate::ApiHandler`] impl;
//! * [`DynamicsTrace`] — the offline fold behind the `dynamics-summary`
//!   bin: per-generation tables plus sparklines from a JSONL stream.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::event::{Envelope, Event};
use crate::http::{ApiHandler, ApiResponse};
use crate::metrics::{Counter, Gauge, Histogram, Registry};
use crate::observer::Observer;
use crate::sink::Sink;

/// Canonical mutation-operator names, index-aligned with the engine's
/// rate vectors (SNP substitution, reduction, augmentation).
pub const MUTATION_OPS: [&str; 3] = ["snp", "reduction", "augmentation"];

/// Canonical crossover-operator names, index-aligned with the engine's
/// rate vectors (intra-population, inter-population).
pub const CROSSOVER_OPS: [&str; 2] = ["intra", "inter"];

/// Histogram buckets for per-generation fitness gain (gains span orders
/// of magnitude between early search and the convergence tail).
pub const GAIN_BUCKETS: [f64; 8] = [0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0];

/// One generation's search-dynamics measurements. All fields are finite
/// by construction (undefined ratios are reported as `0.0`, never
/// NaN/inf), so every snapshot survives a JSON round trip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicsSnapshot {
    /// Individuals across all subpopulations.
    pub population: usize,
    /// Distinct SNP sets / population (§4.6 rejects duplicates within a
    /// subpopulation, so anything below 1.0 means cross-size aliasing —
    /// impossible today — or a replacement-rule regression).
    pub unique_fraction: f64,
    /// Mean pairwise Hamming distance over SNP sets (symmetric-difference
    /// size, averaged over all unordered pairs; 0 for <2 individuals).
    pub mean_pairwise_hamming: f64,
    /// Normalized Shannon entropy of the SNP-occupancy distribution
    /// (1 = usage spread evenly over used SNPs, → 0 = a few genocliques
    /// own the population).
    pub occupancy_entropy: f64,
    /// SNPs present in at least one individual.
    pub snps_used: usize,
    /// SNPs present in ≥ 90% of individuals — the fixation count of
    /// Burjorjee's genoclique picture.
    pub fixed_snps: usize,
    /// SNP counts by occupancy band: `(0, .25]`, `(.25, .5]`, `(.5, .75]`,
    /// `(.75, 1]` of the population.
    pub fixation_spectrum: [usize; 4],
    /// Lower-quartile fitness across all individuals.
    pub fitness_q1: f64,
    /// Median fitness across all individuals.
    pub fitness_median: f64,
    /// Upper-quartile fitness across all individuals.
    pub fitness_q3: f64,
    /// Best fitness in the live population.
    pub best_fitness: f64,
    /// Sum of per-size champion improvements this generation (≥ 0).
    pub fitness_gain: f64,
    /// Evaluations that actually ran on a backend this generation.
    pub true_evals: u64,
    /// Unique requests served by the fitness cache this generation.
    pub cache_hits: u64,
    /// True evaluations spent per unit of fitness gained this generation
    /// (`0.0` when nothing was gained — spend with no return shows up as
    /// `true_evals` against a zero gain, not as a fake ratio).
    pub evals_per_gain: f64,
    /// Random immigrants introduced this generation.
    pub immigrants: usize,
    /// Mutation-operator rates after this generation's reallocation
    /// (index-aligned with [`MUTATION_OPS`]).
    pub mutation_rates: Vec<f64>,
    /// Mutation-operator profits (mean positive normalized progress per
    /// application) that drove the reallocation.
    pub mutation_profits: Vec<f64>,
    /// Crossover-operator rates after this generation's reallocation
    /// (index-aligned with [`CROSSOVER_OPS`]).
    pub crossover_rates: Vec<f64>,
    /// Crossover-operator profits that drove the reallocation.
    pub crossover_profits: Vec<f64>,
}

impl DynamicsSnapshot {
    /// Interquartile range of the population fitness distribution.
    pub fn fitness_iqr(&self) -> f64 {
        self.fitness_q3 - self.fitness_q1
    }
}

/// Thresholds for the sliding-window convergence/stagnation detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Generations ignored entirely before any verdict (initial
    /// populations legitimately plateau while operators warm up).
    pub warmup: usize,
    /// Sliding-window length: a verdict needs `window + 1` observations,
    /// and compares the newest best against the one `window` generations
    /// earlier.
    pub window: usize,
    /// Relative best-fitness gain over the window at or below which the
    /// run counts as stagnant.
    pub min_relative_gain: f64,
    /// Occupancy entropy below which a stagnant run is judged *converged*
    /// (diversity collapsed) rather than merely stalled.
    pub entropy_floor: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            warmup: 10,
            window: 20,
            min_relative_gain: 1e-9,
            entropy_floor: 0.35,
        }
    }
}

impl DetectorConfig {
    /// Detector tuned to a run's §4.6 stagnation limit: the window is one
    /// generation *longer* than the termination criterion, so a normally
    /// driven run (which stops at `limit` stagnant generations) never
    /// trips it — verdicts fire only on runs stepped past their own
    /// criterion (island models, flat objectives, migration revivals).
    pub fn for_stagnation_limit(limit: usize) -> Self {
        DetectorConfig {
            warmup: (limit / 2).max(3),
            window: limit + 1,
            ..DetectorConfig::default()
        }
    }
}

/// What the detector concluded about the current window.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectorVerdict {
    /// Best fitness has not improved over the window, but diversity
    /// remains — the search is stalled, not finished.
    Stagnation {
        /// Window length the verdict was computed over.
        window: usize,
        /// Best fitness at the verdict.
        best: f64,
    },
    /// Best fitness has not improved over the window *and* occupancy
    /// entropy collapsed below the floor — the population has fixed.
    Converged {
        /// Window length the verdict was computed over.
        window: usize,
        /// Best fitness at the verdict.
        best: f64,
        /// Occupancy entropy at the verdict.
        occupancy_entropy: f64,
    },
}

impl DetectorVerdict {
    /// Build the typed event announcing this verdict.
    pub fn to_event(&self) -> Event {
        match *self {
            DetectorVerdict::Stagnation { window, best } => Event::Stagnation { window, best },
            DetectorVerdict::Converged {
                window,
                best,
                occupancy_entropy,
            } => Event::Converged {
                window,
                best,
                occupancy_entropy,
            },
        }
    }
}

/// Sliding-window stagnation/convergence judge. Feed it the best fitness
/// (and current occupancy entropy) once per generation; it fires at most
/// once per plateau and re-arms as soon as the run improves again.
#[derive(Debug, Clone)]
pub struct ConvergenceDetector {
    cfg: DetectorConfig,
    seen: usize,
    ring: VecDeque<f64>,
    fired: bool,
}

impl ConvergenceDetector {
    /// A detector with the given thresholds.
    pub fn new(cfg: DetectorConfig) -> Self {
        ConvergenceDetector {
            cfg,
            seen: 0,
            ring: VecDeque::with_capacity(cfg.window + 2),
            fired: false,
        }
    }

    /// The thresholds this detector judges with.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Export the detector's complete internal state for checkpointing.
    ///
    /// A resumed run rebuilt with [`ConvergenceDetector::from_state`]
    /// continues the plateau analysis exactly where this detector stood:
    /// same warm-up progress, same sliding window, same fired latch — so
    /// `Stagnation`/`Converged` verdicts land on the same generations as
    /// in an uninterrupted run.
    pub fn state(&self) -> DetectorState {
        DetectorState {
            cfg: self.cfg,
            seen: self.seen,
            ring: self.ring.iter().copied().collect(),
            fired: self.fired,
        }
    }

    /// Rebuild a detector from a checkpointed [`DetectorState`].
    pub fn from_state(state: DetectorState) -> Self {
        ConvergenceDetector {
            cfg: state.cfg,
            seen: state.seen,
            ring: state.ring.into_iter().collect(),
            fired: state.fired,
        }
    }

    /// Observe one generation. Returns a verdict when the window first
    /// turns stagnant (never during warm-up, never before the window is
    /// full, and never twice for the same plateau).
    pub fn observe(&mut self, best: f64, occupancy_entropy: f64) -> Option<DetectorVerdict> {
        self.seen += 1;
        self.ring.push_back(best);
        if self.ring.len() > self.cfg.window + 1 {
            self.ring.pop_front();
        }
        if self.seen <= self.cfg.warmup || self.ring.len() < self.cfg.window + 1 {
            return None;
        }
        let oldest = *self.ring.front().expect("window is full");
        let newest = *self.ring.back().expect("window is full");
        let relative_gain = (newest - oldest) / oldest.abs().max(1.0);
        if relative_gain > self.cfg.min_relative_gain {
            self.fired = false;
            return None;
        }
        if self.fired {
            return None;
        }
        self.fired = true;
        Some(if occupancy_entropy < self.cfg.entropy_floor {
            DetectorVerdict::Converged {
                window: self.cfg.window,
                best: newest,
                occupancy_entropy,
            }
        } else {
            DetectorVerdict::Stagnation {
                window: self.cfg.window,
                best: newest,
            }
        })
    }
}

/// Serializable snapshot of a [`ConvergenceDetector`]'s internal state
/// (the window ring is flattened to a `Vec`, oldest first). Checkpoints
/// embed one so a resumed observed run emits verdicts on the same
/// generations as the uninterrupted reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorState {
    /// Thresholds the detector was judging with.
    pub cfg: DetectorConfig,
    /// Generations observed so far (warm-up progress).
    pub seen: usize,
    /// Sliding best-fitness window, oldest first.
    pub ring: Vec<f64>,
    /// Whether the current plateau already fired a verdict.
    pub fired: bool,
}

/// Pre-registered registry handles for the dynamics series. Mirrors the
/// scheduler's `SchedMetrics` pattern: all registry locking happens once
/// at attach time; the per-generation path only touches atomics.
pub struct DynamicsMetrics {
    hamming: Gauge,
    unique: Gauge,
    entropy: Gauge,
    fixed: Gauge,
    best: Gauge,
    median: Gauge,
    evals_per_gain: Gauge,
    gain: Histogram,
    mutation_rates: Vec<Gauge>,
    mutation_profits: Vec<Gauge>,
    crossover_rates: Vec<Gauge>,
    crossover_profits: Vec<Gauge>,
    stagnations: Counter,
    convergences: Counter,
}

impl DynamicsMetrics {
    /// Register the dynamics series on the observer's registry. `None`
    /// when the observer is disabled or has no registry — the caller
    /// stores the `Option` and the disabled path never registers (or
    /// allocates) anything.
    pub fn register(observer: &Observer) -> Option<Self> {
        observer.registry().map(Self::register_on)
    }

    /// [`DynamicsMetrics::register`] against an explicit registry.
    pub fn register_on(registry: &Registry) -> Self {
        let op_gauges = |family: &str, ops: &[&str], what: &str, help: &str| -> Vec<Gauge> {
            ops.iter()
                .map(|op| registry.gauge_with(what, help, &[("family", family), ("op", op)]))
                .collect()
        };
        let rate_help = "Adaptive per-operator application rate after reallocation.";
        let profit_help =
            "Per-operator profit (mean positive normalized progress per application) last generation.";
        DynamicsMetrics {
            hamming: registry.gauge(
                "ld_ga_diversity_hamming",
                "Mean pairwise Hamming distance over population SNP sets.",
            ),
            unique: registry.gauge(
                "ld_ga_diversity_unique_fraction",
                "Distinct individuals as a fraction of the population.",
            ),
            entropy: registry.gauge(
                "ld_ga_occupancy_entropy",
                "Normalized Shannon entropy of SNP occupancy.",
            ),
            fixed: registry.gauge(
                "ld_ga_fixed_snps",
                "SNPs present in at least 90% of individuals.",
            ),
            best: registry.gauge("ld_ga_best_fitness", "Best fitness in the live population."),
            median: registry.gauge(
                "ld_ga_fitness_median",
                "Median fitness across the population.",
            ),
            evals_per_gain: registry.gauge(
                "ld_ga_evals_per_gain",
                "True evaluations per unit of fitness gained last generation.",
            ),
            gain: registry.histogram(
                "ld_ga_fitness_gain",
                "Per-generation champion fitness gain.",
                &GAIN_BUCKETS,
            ),
            mutation_rates: op_gauges("mutation", &MUTATION_OPS, "ld_ga_operator_rate", rate_help),
            mutation_profits: op_gauges(
                "mutation",
                &MUTATION_OPS,
                "ld_ga_operator_profit",
                profit_help,
            ),
            crossover_rates: op_gauges(
                "crossover",
                &CROSSOVER_OPS,
                "ld_ga_operator_rate",
                rate_help,
            ),
            crossover_profits: op_gauges(
                "crossover",
                &CROSSOVER_OPS,
                "ld_ga_operator_profit",
                profit_help,
            ),
            stagnations: registry.counter(
                "ld_ga_stagnation_events_total",
                "Sliding-window stagnation verdicts fired.",
            ),
            convergences: registry.counter(
                "ld_ga_converged_events_total",
                "Sliding-window convergence verdicts fired.",
            ),
        }
    }

    /// Publish one generation's snapshot to the gauges/histograms.
    pub fn record(&self, snap: &DynamicsSnapshot) {
        self.hamming.set(snap.mean_pairwise_hamming);
        self.unique.set(snap.unique_fraction);
        self.entropy.set(snap.occupancy_entropy);
        self.fixed.set(snap.fixed_snps as f64);
        self.best.set(snap.best_fitness);
        self.median.set(snap.fitness_median);
        self.evals_per_gain.set(snap.evals_per_gain);
        self.gain.observe(snap.fitness_gain);
        let publish = |gauges: &[Gauge], values: &[f64]| {
            for (g, v) in gauges.iter().zip(values) {
                g.set(*v);
            }
        };
        publish(&self.mutation_rates, &snap.mutation_rates);
        publish(&self.mutation_profits, &snap.mutation_profits);
        publish(&self.crossover_rates, &snap.crossover_rates);
        publish(&self.crossover_profits, &snap.crossover_profits);
    }

    /// Count one detector verdict.
    pub fn record_verdict(&self, verdict: &DetectorVerdict) {
        match verdict {
            DetectorVerdict::Stagnation { .. } => self.stagnations.inc(),
            DetectorVerdict::Converged { .. } => self.convergences.inc(),
        }
    }
}

/// A detector mark in a run's dynamics series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicsMark {
    /// Generation the verdict fired in.
    pub generation: u64,
    /// `"stagnation"` or `"converged"`.
    pub kind: String,
    /// Best fitness at the verdict.
    pub best: f64,
}

#[derive(Default)]
struct RunDynamics {
    snapshots: Vec<(u64, DynamicsSnapshot)>,
    marks: Vec<DynamicsMark>,
}

impl RunDynamics {
    fn phase(&self) -> &'static str {
        match self.marks.last().map(|m| m.kind.as_str()) {
            Some("converged") => "converged",
            Some(_) => "stagnated",
            None => "searching",
        }
    }
}

/// Per-run dynamics series folded live from the event stream. Clone
/// handles share state, so one board can be both a [`Sink`] in a fanout
/// and the [`ApiHandler`] behind `GET /runs/<id>/dynamics`.
#[derive(Clone, Default)]
pub struct DynamicsBoard {
    inner: Arc<Mutex<HashMap<String, RunDynamics>>>,
}

// Owned (non-generic) view: the vendored serde_derive stub cannot derive
// on lifetime-parameterized types, and this is a cold path.
#[derive(Serialize)]
struct DynamicsView {
    run_id: String,
    phase: String,
    latest_generation: u64,
    since: u64,
    snapshots: Vec<DynamicsPoint>,
    events: Vec<DynamicsMark>,
}

impl DynamicsBoard {
    /// An empty board.
    pub fn new() -> Self {
        DynamicsBoard::default()
    }

    /// Run ids the board has seen dynamics (or a run start) for.
    pub fn runs(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .inner
            .lock()
            .expect("poisoned")
            .keys()
            .cloned()
            .collect();
        ids.sort();
        ids
    }

    /// Latest generation with a snapshot for `run_id`.
    pub fn latest_generation(&self, run_id: &str) -> Option<u64> {
        self.inner
            .lock()
            .expect("poisoned")
            .get(run_id)
            .and_then(|r| r.snapshots.last().map(|(g, _)| *g))
    }

    /// A compact JSON fragment (`{"phase":...,"generation":...}`) for
    /// splicing into a per-run status document; `None` for unknown runs.
    pub fn status_fragment(&self, run_id: &str) -> Option<String> {
        let map = self.inner.lock().expect("poisoned");
        let run = map.get(run_id)?;
        let generation = run.snapshots.last().map(|(g, _)| *g).unwrap_or(0);
        Some(format!(
            "{{\"phase\":{:?},\"generation\":{generation},\"snapshots\":{}}}",
            run.phase(),
            run.snapshots.len()
        ))
    }

    /// Render the series for `run_id` as one JSON document, keeping only
    /// generations strictly after `since` (0 = everything). `None` for
    /// unknown runs.
    pub fn render(&self, run_id: &str, since: u64) -> Option<String> {
        let map = self.inner.lock().expect("poisoned");
        let run = map.get(run_id)?;
        let view = DynamicsView {
            run_id: run_id.to_string(),
            phase: run.phase().to_string(),
            latest_generation: run.snapshots.last().map(|(g, _)| *g).unwrap_or(0),
            since,
            snapshots: run
                .snapshots
                .iter()
                .filter(|(g, _)| *g > since)
                .map(|(g, s)| DynamicsPoint {
                    generation: *g,
                    snapshot: s.clone(),
                })
                .collect(),
            events: run
                .marks
                .iter()
                .filter(|m| m.generation > since)
                .cloned()
                .collect(),
        };
        Some(serde_json::to_string(&view).unwrap_or_else(|_| "{}".to_string()))
    }
}

impl Sink for DynamicsBoard {
    fn accept(&self, envelope: &Envelope) {
        let mut map = self.inner.lock().expect("poisoned");
        match &envelope.event {
            Event::RunStarted { .. } => {
                map.entry(envelope.run_id.clone()).or_default();
            }
            Event::Dynamics(snapshot) => {
                map.entry(envelope.run_id.clone())
                    .or_default()
                    .snapshots
                    .push((envelope.generation, (**snapshot).clone()));
            }
            Event::Stagnation { best, .. } => {
                map.entry(envelope.run_id.clone())
                    .or_default()
                    .marks
                    .push(DynamicsMark {
                        generation: envelope.generation,
                        kind: "stagnation".to_string(),
                        best: *best,
                    });
            }
            Event::Converged { best, .. } => {
                map.entry(envelope.run_id.clone())
                    .or_default()
                    .marks
                    .push(DynamicsMark {
                        generation: envelope.generation,
                        kind: "converged".to_string(),
                        best: *best,
                    });
            }
            _ => {}
        }
    }
}

/// Extract a query parameter's value from a raw query string
/// (`"since=12&x=y"` → `query_param(q, "since") == Some("12")`).
pub fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

impl ApiHandler for DynamicsBoard {
    /// `GET /runs/<id>/dynamics[?since=<gen>]`; declines everything else.
    fn handle(&self, method: &str, path: &str, query: &str, _body: &[u8]) -> Option<ApiResponse> {
        if method != "GET" {
            return None;
        }
        let run_id = path.strip_prefix("/runs/")?.strip_suffix("/dynamics")?;
        let since = query_param(query, "since").and_then(|v| v.parse::<u64>().ok());
        if query_param(query, "since").is_some() && since.is_none() {
            return Some(ApiResponse::json_status(
                400,
                "{\"error\":\"since must be a generation number\"}".to_string(),
            ));
        }
        Some(match self.render(run_id, since.unwrap_or(0)) {
            Some(json) => ApiResponse::json(json),
            None => ApiResponse::json_status(
                404,
                format!("{{\"error\":\"unknown run\",\"run_id\":{run_id:?}}}"),
            ),
        })
    }
}

/// One generation's point in an offline dynamics fold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicsPoint {
    /// Generation number.
    pub generation: u64,
    /// The snapshot emitted in that generation.
    pub snapshot: DynamicsSnapshot,
}

/// Offline fold of a run's dynamics stream — the `dynamics-summary`
/// bin's engine, shaped like [`crate::TraceSummary`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicsTrace {
    /// Run the fold covers (the first run seen, unless filtered).
    pub run_id: String,
    /// Per-generation snapshots, ascending by generation.
    pub points: Vec<DynamicsPoint>,
    /// Detector verdicts, ascending by generation.
    pub marks: Vec<DynamicsMark>,
}

impl DynamicsTrace {
    /// Fold the dynamics events of `run_id` out of a mixed stream.
    pub fn for_run(envelopes: &[Envelope], run_id: &str) -> Self {
        let mut points = Vec::new();
        let mut marks = Vec::new();
        for env in envelopes.iter().filter(|e| e.run_id == run_id) {
            match &env.event {
                Event::Dynamics(snapshot) => points.push(DynamicsPoint {
                    generation: env.generation,
                    snapshot: (**snapshot).clone(),
                }),
                Event::Stagnation { best, .. } => marks.push(DynamicsMark {
                    generation: env.generation,
                    kind: "stagnation".to_string(),
                    best: *best,
                }),
                Event::Converged { best, .. } => marks.push(DynamicsMark {
                    generation: env.generation,
                    kind: "converged".to_string(),
                    best: *best,
                }),
                _ => {}
            }
        }
        points.sort_by_key(|p| p.generation);
        marks.sort_by_key(|m| m.generation);
        DynamicsTrace {
            run_id: run_id.to_string(),
            points,
            marks,
        }
    }

    /// Fold a single-run stream (the run id is taken from the first
    /// envelope).
    pub fn from_envelopes(envelopes: &[Envelope]) -> Self {
        let run_id = envelopes
            .first()
            .map(|e| e.run_id.clone())
            .unwrap_or_default();
        Self::for_run(envelopes, &run_id)
    }

    /// [`DynamicsTrace::from_envelopes`] over JSONL text; unparseable
    /// lines are skipped.
    pub fn from_jsonl(text: &str) -> Self {
        Self::from_envelopes(&parse_jsonl(text))
    }

    /// [`DynamicsTrace::for_run`] over JSONL text.
    pub fn for_run_jsonl(text: &str, run_id: &str) -> Self {
        Self::for_run(&parse_jsonl(text), run_id)
    }

    /// Whether the fold holds any snapshots.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The fold as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Render a per-generation table plus sparklines, à la
    /// `trace-summary`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "run {}: {} generation(s) with dynamics, {} detector verdict(s)\n",
            self.run_id,
            self.points.len(),
            self.marks.len()
        );
        if self.points.is_empty() {
            out.push_str("(no Dynamics events in the stream)\n");
            return out;
        }
        out.push_str(
            "gen   unique hamming entropy fixed    best     gain evals/gain  top operator\n",
        );
        for p in &self.points {
            let s = &p.snapshot;
            out.push_str(&format!(
                "{:<5} {:>6.3} {:>7.2} {:>7.3} {:>5} {:>7.3} {:>8.3} {:>10.1}  {}\n",
                p.generation,
                s.unique_fraction,
                s.mean_pairwise_hamming,
                s.occupancy_entropy,
                s.fixed_snps,
                s.best_fitness,
                s.fitness_gain,
                s.evals_per_gain,
                top_operator(s),
            ));
        }
        let series = |f: fn(&DynamicsSnapshot) -> f64| -> Vec<f64> {
            self.points.iter().map(|p| f(&p.snapshot)).collect()
        };
        out.push_str(&format!(
            "\nhamming  {}\nentropy  {}\nbest     {}\ngain     {}\n",
            sparkline(&series(|s| s.mean_pairwise_hamming)),
            sparkline(&series(|s| s.occupancy_entropy)),
            sparkline(&series(|s| s.best_fitness)),
            sparkline(&series(|s| s.fitness_gain)),
        ));
        for m in &self.marks {
            out.push_str(&format!(
                "gen {:<4} {} (best {:.3})\n",
                m.generation, m.kind, m.best
            ));
        }
        out
    }
}

fn parse_jsonl(text: &str) -> Vec<Envelope> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str::<Envelope>(l).ok())
        .collect()
}

/// The highest-rate operator across both families, with its rate.
fn top_operator(s: &DynamicsSnapshot) -> String {
    let named = |family: &[&str], rates: &[f64]| -> Option<(String, f64)> {
        rates
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &r)| {
                let name = family.get(i).copied().unwrap_or("?");
                (name.to_string(), r)
            })
    };
    let m = named(&MUTATION_OPS, &s.mutation_rates);
    let c = named(&CROSSOVER_OPS, &s.crossover_rates);
    match (m, c) {
        (Some((mn, mr)), Some((cn, cr))) => {
            if mr >= cr {
                format!("{mn}({mr:.3})")
            } else {
                format!("{cn}({cr:.3})")
            }
        }
        (Some((n, r)), None) | (None, Some((n, r))) => format!("{n}({r:.3})"),
        (None, None) => "-".to_string(),
    }
}

/// A Unicode block-character sparkline over `values` (min–max scaled;
/// flat series render as a mid-height bar).
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            if !span.is_finite() || span <= 0.0 {
                BARS[3]
            } else {
                let idx = (((v - min) / span) * 7.0).round() as usize;
                BARS[idx.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(gen_best: f64, entropy: f64) -> DynamicsSnapshot {
        DynamicsSnapshot {
            population: 40,
            unique_fraction: 1.0,
            mean_pairwise_hamming: 3.0,
            occupancy_entropy: entropy,
            snps_used: 20,
            fixed_snps: 1,
            fixation_spectrum: [10, 6, 3, 1],
            fitness_q1: gen_best - 2.0,
            fitness_median: gen_best - 1.0,
            fitness_q3: gen_best - 0.5,
            best_fitness: gen_best,
            fitness_gain: 0.5,
            true_evals: 12,
            cache_hits: 3,
            evals_per_gain: 24.0,
            immigrants: 0,
            mutation_rates: vec![0.4, 0.3, 0.3],
            mutation_profits: vec![0.1, 0.0, 0.05],
            crossover_rates: vec![0.6, 0.4],
            crossover_profits: vec![0.2, 0.1],
        }
    }

    fn env(run: &str, generation: u64, event: Event) -> Envelope {
        Envelope {
            ts_ms: 1,
            run_id: run.to_string(),
            generation,
            batch_id: 0,
            event,
        }
    }

    #[test]
    fn detector_never_fires_before_warmup_or_a_full_window() {
        let mut d = ConvergenceDetector::new(DetectorConfig {
            warmup: 6,
            window: 2,
            min_relative_gain: 1e-9,
            entropy_floor: 0.0,
        });
        // Flat series: the window is full at observation 3, but warm-up
        // holds any verdict until observation 7.
        for obs in 1..=6 {
            assert!(d.observe(5.0, 0.9).is_none(), "fired at observation {obs}");
        }
        let verdict = d.observe(5.0, 0.9);
        assert!(
            matches!(verdict, Some(DetectorVerdict::Stagnation { window: 2, .. })),
            "{verdict:?}"
        );
    }

    #[test]
    fn detector_fires_once_per_plateau_and_rearms_on_improvement() {
        let mut d = ConvergenceDetector::new(DetectorConfig {
            warmup: 0,
            window: 3,
            min_relative_gain: 1e-9,
            entropy_floor: 0.0,
        });
        let mut verdicts = 0;
        for _ in 0..10 {
            if d.observe(1.0, 0.9).is_some() {
                verdicts += 1;
            }
        }
        assert_eq!(verdicts, 1, "one verdict per plateau");
        // An improvement re-arms; window must flatten again to re-fire.
        assert!(d.observe(2.0, 0.9).is_none());
        for _ in 0..2 {
            assert!(d.observe(2.0, 0.9).is_none(), "window still sees the gain");
        }
        for _ in 0..2 {
            if let Some(v) = d.observe(2.0, 0.9) {
                assert!(matches!(v, DetectorVerdict::Stagnation { .. }));
                verdicts += 1;
            }
        }
        assert_eq!(verdicts, 2, "re-fired after the gain left the window");
    }

    #[test]
    fn detector_judges_converged_below_the_entropy_floor() {
        let mut d = ConvergenceDetector::new(DetectorConfig {
            warmup: 0,
            window: 1,
            min_relative_gain: 1e-9,
            entropy_floor: 0.5,
        });
        assert!(d.observe(3.0, 0.1).is_none(), "window not full yet");
        let v = d.observe(3.0, 0.1);
        assert!(
            matches!(v, Some(DetectorVerdict::Converged { occupancy_entropy, .. }) if occupancy_entropy == 0.1),
            "{v:?}"
        );
    }

    #[test]
    fn detector_stays_silent_on_a_steadily_improving_series() {
        let mut d = ConvergenceDetector::new(DetectorConfig {
            warmup: 0,
            window: 3,
            min_relative_gain: 1e-9,
            entropy_floor: 0.0,
        });
        for g in 0..50 {
            assert!(d.observe(g as f64, 0.9).is_none(), "fired at {g}");
        }
    }

    #[test]
    fn board_folds_serves_and_filters_since() {
        let board = DynamicsBoard::new();
        board.accept(&env(
            "r1",
            0,
            Event::RunStarted {
                seed: 1,
                n_snps: 20,
            },
        ));
        for g in 1..=3u64 {
            board.accept(&env(
                "r1",
                g,
                Event::Dynamics(Box::new(snap(10.0 + g as f64, 0.8))),
            ));
        }
        board.accept(&env(
            "r1",
            3,
            Event::Stagnation {
                window: 5,
                best: 13.0,
            },
        ));
        assert_eq!(board.latest_generation("r1"), Some(3));
        assert_eq!(board.runs(), vec!["r1".to_string()]);

        let full = board.render("r1", 0).unwrap();
        assert!(full.contains("\"latest_generation\":3"), "{full}");
        assert!(full.contains("\"phase\":\"stagnated\""), "{full}");
        assert_eq!(full.matches("\"snapshot\":").count(), 3, "{full}");

        let tail = board.render("r1", 2).unwrap();
        assert_eq!(tail.matches("\"snapshot\":").count(), 1, "{tail}");
        assert!(tail.contains("\"since\":2"), "{tail}");
        assert!(tail.contains("\"kind\":\"stagnation\""), "{tail}");

        assert!(board.render("nope", 0).is_none());
        let frag = board.status_fragment("r1").unwrap();
        assert!(frag.contains("\"phase\":\"stagnated\""), "{frag}");
        assert!(frag.contains("\"generation\":3"), "{frag}");
    }

    #[test]
    fn board_api_handler_routes_dynamics_only() {
        let board = DynamicsBoard::new();
        board.accept(&env("r9", 1, Event::Dynamics(Box::new(snap(1.0, 0.9)))));
        let ok = board.handle("GET", "/runs/r9/dynamics", "", &[]).unwrap();
        assert_eq!(ok.status, 200);
        assert!(ok.body.contains("\"run_id\":\"r9\""), "{}", ok.body);
        let tail = board
            .handle("GET", "/runs/r9/dynamics", "since=1", &[])
            .unwrap();
        assert_eq!(tail.status, 200);
        assert_eq!(tail.body.matches("\"snapshot\":").count(), 0);
        let bad = board
            .handle("GET", "/runs/r9/dynamics", "since=banana", &[])
            .unwrap();
        assert_eq!(bad.status, 400);
        let missing = board.handle("GET", "/runs/zz/dynamics", "", &[]).unwrap();
        assert_eq!(missing.status, 404);
        assert!(board.handle("GET", "/runs/r9/status", "", &[]).is_none());
        assert!(board.handle("POST", "/runs/r9/dynamics", "", &[]).is_none());
        assert!(board.handle("GET", "/metrics", "", &[]).is_none());
    }

    #[test]
    fn trace_folds_renders_and_roundtrips() {
        let mut envs = vec![env(
            "run-a",
            0,
            Event::RunStarted {
                seed: 7,
                n_snps: 30,
            },
        )];
        for g in 1..=4u64 {
            envs.push(env(
                "run-a",
                g,
                Event::Dynamics(Box::new(snap(g as f64, 0.9 - 0.1 * g as f64))),
            ));
        }
        envs.push(env(
            "run-a",
            4,
            Event::Converged {
                window: 3,
                best: 4.0,
                occupancy_entropy: 0.2,
            },
        ));
        // A second run's events must not leak into run-a's fold.
        envs.push(env("run-b", 1, Event::Dynamics(Box::new(snap(99.0, 0.5)))));

        let trace = DynamicsTrace::from_envelopes(&envs);
        assert_eq!(trace.run_id, "run-a");
        assert_eq!(trace.points.len(), 4);
        assert_eq!(trace.marks.len(), 1);

        let rendered = trace.render();
        assert!(rendered.contains("4 generation(s)"), "{rendered}");
        assert!(rendered.contains("converged"), "{rendered}");
        assert!(rendered.contains("hamming"), "{rendered}");

        let jsonl: String = envs
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let reparsed = DynamicsTrace::for_run_jsonl(&jsonl, "run-b");
        assert_eq!(reparsed.points.len(), 1);
        assert_eq!(reparsed.points[0].snapshot.best_fitness, 99.0);

        let back: DynamicsTrace = serde_json::from_str(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn sparkline_scales_and_handles_flat_series() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[1.0, 1.0, 1.0]), "▄▄▄");
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'), "{s}");
    }

    #[test]
    fn metrics_register_and_record_without_panicking() {
        let registry = Registry::new();
        let m = DynamicsMetrics::register_on(&registry);
        m.record(&snap(5.0, 0.7));
        m.record_verdict(&DetectorVerdict::Stagnation {
            window: 5,
            best: 5.0,
        });
        m.record_verdict(&DetectorVerdict::Converged {
            window: 5,
            best: 5.0,
            occupancy_entropy: 0.1,
        });
        let text = registry.prometheus();
        assert!(text.contains("ld_ga_diversity_hamming 3.0"), "{text}");
        assert!(
            text.contains("ld_ga_operator_rate{family=\"mutation\",op=\"snp\"} 0.4"),
            "{text}"
        );
        assert!(
            text.contains("ld_ga_operator_profit{family=\"crossover\",op=\"intra\"} 0.2"),
            "{text}"
        );
        assert!(text.contains("ld_ga_stagnation_events_total 1"), "{text}");
        assert!(text.contains("ld_ga_converged_events_total 1"), "{text}");
        assert!(
            DynamicsMetrics::register(&Observer::disabled()).is_none(),
            "disabled observers must not register dynamics series"
        );
    }

    #[test]
    fn query_param_parses_pairs() {
        assert_eq!(query_param("since=12&x=y", "since"), Some("12"));
        assert_eq!(query_param("x=y", "since"), None);
        assert_eq!(query_param("", "since"), None);
        assert_eq!(query_param("since=", "since"), Some(""));
    }
}
