//! The structured event taxonomy of the observability plane.
//!
//! An [`Event`] is one discrete thing that happened somewhere in the
//! stack — an engine generation boundary, a scheduler batch dispatch, a
//! slave retirement inside the TCP pool. Events are wrapped in an
//! [`Envelope`] carrying the correlation span (`run_id`, `generation`,
//! `batch_id`) maintained by the [`crate::Observer`], so a network-layer
//! event can be traced back to the exact engine step that caused it: the
//! engine stamps the generation at the top of every step, the scheduler
//! stamps the batch id before dispatch, and anything emitted while that
//! dispatch is on the stack (retries, retirements, rejoins) inherits both.

use serde::{Deserialize, Serialize};

/// Evaluation phase a scheduler batch belongs to.
///
/// Free-form rather than an enum so layers above `ld-core` can introduce
/// phases (island migration rounds, warm-start probes) without touching
/// this crate; the engine uses `"init"`, `"crossover"`, `"mutation"`,
/// `"immigrants"` and `"inject"`.
pub type Phase = &'static str;

/// One observable occurrence. See the module docs for span semantics.
///
/// Serialized externally tagged (`{"SlaveRetired":{"slave":".."}}`, unit
/// variants as bare strings); [`Event::kind`] provides the stable
/// snake_case label used by pretty printers and filters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A GA run started (emitted once, before the initial population).
    RunStarted {
        /// RNG seed of the run.
        seed: u64,
        /// SNP panel width.
        n_snps: usize,
    },
    /// A GA run finished.
    RunFinished {
        /// Generations executed.
        generations: usize,
        /// Total scheduled evaluations.
        total_evaluations: u64,
    },
    /// A generation began (the envelope's `generation` is already stamped
    /// with the new number).
    GenerationStarted,
    /// A generation completed.
    GenerationFinished {
        /// Whether any subpopulation's best improved.
        improved: bool,
        /// Best fitness per managed size (`NaN` serialized as `null`).
        best_per_size: Vec<f64>,
        /// Engine-side wall clock of the whole generation, milliseconds.
        wall_ms: f64,
    },
    /// Adaptive operator rates after this generation's reallocation,
    /// stamped with the profit vectors that triggered it.
    RatesAdapted {
        /// Mutation-operator rates (SNP, reduction, augmentation).
        mutation: Vec<f64>,
        /// Crossover-operator rates (intra, inter).
        crossover: Vec<f64>,
        /// Mutation-operator profits (mean positive normalized progress
        /// per application) the reallocation was computed from. Empty in
        /// streams written before profits were stamped.
        #[serde(default)]
        mutation_profits: Vec<f64>,
        /// Crossover-operator profits the reallocation was computed from.
        #[serde(default)]
        crossover_profits: Vec<f64>,
    },
    /// A per-generation search-dynamics snapshot (diversity, fixation,
    /// fitness distribution, operator economics). Boxed: the payload is
    /// an order of magnitude larger than any other variant.
    Dynamics(Box<crate::dynamics::DynamicsSnapshot>),
    /// The sliding-window detector judged the run stagnant: best fitness
    /// flat over the window while diversity remains.
    Stagnation {
        /// Window length (generations) the verdict was computed over.
        window: usize,
        /// Best fitness at the verdict.
        best: f64,
    },
    /// The sliding-window detector judged the run converged: best fitness
    /// flat over the window *and* occupancy entropy collapsed.
    Converged {
        /// Window length (generations) the verdict was computed over.
        window: usize,
        /// Best fitness at the verdict.
        best: f64,
        /// Occupancy entropy at the verdict.
        occupancy_entropy: f64,
    },
    /// A random-immigrant episode fired.
    ImmigrantEpisode {
        /// Individuals replaced across all subpopulations.
        replaced: usize,
    },
    /// A batch was handed to the scheduler (post-coalesce, pre-cache).
    BatchDispatched {
        /// Evaluation phase the batch belongs to.
        phase: String,
        /// Unevaluated individuals received.
        requested: u64,
        /// Duplicates folded by intra-batch coalescing.
        coalesced: u64,
        /// Unique requests served by the fitness cache.
        cache_hits: u64,
        /// Jobs sent to the backend (cache misses).
        dispatched: u64,
    },
    /// The scheduler finished a batch (backend + fallback included).
    BatchCompleted {
        /// Evaluation phase the batch belongs to.
        phase: String,
        /// Evaluations that actually ran on a backend.
        true_evals: u64,
        /// Wall-clock time inside backend dispatch, milliseconds.
        dispatch_ms: f64,
        /// Whether the batch failed even after any fallback.
        failed: bool,
    },
    /// The primary backend failed and the fallback backend was invoked
    /// for the unevaluated residue.
    FallbackActivated {
        /// Jobs re-dispatched to the fallback.
        residue: u64,
    },
    /// A remote request was re-sent after a failure or deadline expiry.
    RequestRetried {
        /// Address of the slave being retried.
        slave: String,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// A slave joined the pool at connect time.
    SlaveJoined {
        /// Slave address.
        slave: String,
    },
    /// A slave exhausted its retries and was retired from the pool.
    SlaveRetired {
        /// Slave address.
        slave: String,
    },
    /// A previously retired slave reconnected and rejoined the pool.
    SlaveRejoined {
        /// Slave address.
        slave: String,
    },
    /// A job was pushed back onto the work queue after a slave failure.
    JobRequeued {
        /// Address of the slave that failed the job.
        slave: String,
    },
    /// A tenant run was admitted to a shared eval server.
    RunAdmitted {
        /// Tenant run id.
        run_id: String,
        /// Fair-share weight the run was admitted with.
        weight: u32,
    },
    /// A tenant run submission was refused by admission control.
    RunRejected {
        /// Tenant run id.
        run_id: String,
        /// Why admission refused it (saturated, dataset rejected, ...).
        reason: String,
    },
    /// A tenant run was closed and its pending work discarded.
    RunClosed {
        /// Tenant run id.
        run_id: String,
        /// Queued jobs dropped at close.
        dropped: u64,
    },
    /// A dataset fingerprint was registered on (or confirmed resident at)
    /// a slave.
    DatasetRegistered {
        /// Slave address.
        slave: String,
        /// Content fingerprint of the dataset.
        fingerprint: u64,
        /// Whether the slave already held the dataset (no columns were
        /// shipped).
        resident: bool,
    },
    /// A run was restored from a checkpoint and will continue from
    /// `generation` with its scheduler cache, fault counters, and
    /// dynamics-detector state re-established.
    RunResumed {
        /// Generation the checkpoint was taken at (the next step emits
        /// `generation + 1`).
        generation: u64,
    },
    /// The on-disk fitness store recovered from a corrupt or torn log
    /// tail on open: the damaged suffix was truncated, every record
    /// before it was kept, and the run proceeds.
    StoreRecovered {
        /// Records successfully re-indexed from the log.
        kept_records: u64,
        /// Bytes of damaged tail dropped by truncation.
        dropped_bytes: u64,
    },
    /// A socket-level failure in a server accept/connection loop that was
    /// absorbed (logged and survived) rather than crashing the daemon.
    SlaveIoError {
        /// Where the failure happened (`"accept"`, `"connection"`, ...).
        context: String,
        /// The underlying error, stringified.
        detail: String,
    },
    /// A timed span closed (see `crate::span` for the taxonomy). The
    /// envelope's `generation`/`batch_id` are the span's correlation ids;
    /// `start_ns` offsets are relative to the observer's creation, so
    /// spans from one run order and nest against each other.
    SpanClosed {
        /// Span taxonomy name (e.g. `"dispatch"`, `"net.roundtrip"`).
        name: String,
        /// Unique span id (monotonic per observer).
        id: u64,
        /// Parent span id; 0 for roots.
        parent: u64,
        /// Start offset from the observer's epoch, nanoseconds.
        start_ns: u64,
        /// Duration, nanoseconds.
        duration_ns: u64,
    },
    /// The fleet watchdog confirmed an anomaly on one slave (see
    /// `crate::watch`). Informational — the recovery ladder is *not*
    /// invoked for anomalies, so this is deliberately not a fault event.
    SlaveAnomaly {
        /// Address of the flagged slave.
        slave: String,
        /// What class of misbehaviour was confirmed.
        kind: AnomalyKind,
        /// Baseline metric the verdict was computed over (`"rtt_ms"`,
        /// `"compute_ms"`, `"retry_rate"`, `"membership"`).
        metric: String,
        /// The slave's smoothed value of that metric at confirmation.
        value: f64,
        /// The fleet baseline (median of per-slave EWMAs) it was judged
        /// against.
        baseline: f64,
        /// Robust z-score (MAD-normalized distance from the baseline).
        zscore: f64,
    },
    /// A previously flagged slave returned to baseline and its anomaly
    /// was cleared.
    AnomalyCleared {
        /// Address of the recovered slave.
        slave: String,
        /// The anomaly class that was cleared.
        kind: AnomalyKind,
    },
    /// The flight recorder persisted its ring to disk. Appended as the
    /// final line of every dump, so a dump is self-describing: `events`
    /// and `dropped` say how much of the stream the file holds.
    FlightDumped {
        /// Path the dump was written to.
        path: String,
        /// Why the dump fired (`"on-demand"`, `"panic: ..."`,
        /// `"fatal: ..."`, `"periodic"`).
        reason: String,
        /// Envelopes in the dump (excluding this trailer).
        events: u64,
        /// Envelopes the bounded ring had discarded before the dump.
        dropped: u64,
    },
    /// A typed fatal error the run cannot recover from (all workers
    /// failed with no fallback, store recovery failure). Emitting this is
    /// the flight recorder's dump trigger: it persists its ring the
    /// moment the event passes through.
    EvalFatal {
        /// The underlying error, stringified.
        detail: String,
    },
    /// Anything a layer above wants to trace without a dedicated variant.
    Custom {
        /// Free-form event label.
        label: String,
        /// Free-form payload.
        detail: String,
    },
}

/// Class of confirmed per-slave misbehaviour (see `crate::watch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// Consistently slower round trips than the rest of the fleet; the
    /// node is correct but stretches every synchronous generation.
    Straggler,
    /// Oscillating membership or retry rate: the node keeps dropping
    /// requests or bouncing through retire/rejoin.
    Flapping,
    /// Slave-reported compute time drifting away from the fleet —
    /// the node itself got slower (thermal, contention), not the path
    /// to it.
    Drift,
}

impl AnomalyKind {
    /// Stable snake_case label (`"straggler"`, `"flapping"`, `"drift"`).
    pub fn as_str(self) -> &'static str {
        match self {
            AnomalyKind::Straggler => "straggler",
            AnomalyKind::Flapping => "flapping",
            AnomalyKind::Drift => "drift",
        }
    }
}

impl Event {
    /// Whether this event is one of the evaluation-layer fault-recovery
    /// kinds that the scheduler's `SchedStats` counters track (retry,
    /// retirement, rejoin, requeue, fallback). Used to reconcile the
    /// event stream against scheduler telemetry.
    pub fn is_fault_event(&self) -> bool {
        matches!(
            self,
            Event::RequestRetried { .. }
                | Event::SlaveRetired { .. }
                | Event::SlaveRejoined { .. }
                | Event::JobRequeued { .. }
                | Event::FallbackActivated { .. }
        )
    }

    /// Short machine label of the variant (the serialized `kind` tag).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStarted { .. } => "run_started",
            Event::RunFinished { .. } => "run_finished",
            Event::GenerationStarted => "generation_started",
            Event::GenerationFinished { .. } => "generation_finished",
            Event::RatesAdapted { .. } => "rates_adapted",
            Event::Dynamics(_) => "dynamics",
            Event::Stagnation { .. } => "stagnation",
            Event::Converged { .. } => "converged",
            Event::ImmigrantEpisode { .. } => "immigrant_episode",
            Event::BatchDispatched { .. } => "batch_dispatched",
            Event::BatchCompleted { .. } => "batch_completed",
            Event::FallbackActivated { .. } => "fallback_activated",
            Event::RequestRetried { .. } => "request_retried",
            Event::SlaveJoined { .. } => "slave_joined",
            Event::SlaveRetired { .. } => "slave_retired",
            Event::SlaveRejoined { .. } => "slave_rejoined",
            Event::JobRequeued { .. } => "job_requeued",
            Event::RunAdmitted { .. } => "run_admitted",
            Event::RunRejected { .. } => "run_rejected",
            Event::RunClosed { .. } => "run_closed",
            Event::DatasetRegistered { .. } => "dataset_registered",
            Event::RunResumed { .. } => "run_resumed",
            Event::StoreRecovered { .. } => "store_recovered",
            Event::SlaveIoError { .. } => "slave_io_error",
            Event::SpanClosed { .. } => "span_closed",
            Event::SlaveAnomaly { .. } => "slave_anomaly",
            Event::AnomalyCleared { .. } => "anomaly_cleared",
            Event::FlightDumped { .. } => "flight_dumped",
            Event::EvalFatal { .. } => "eval_fatal",
            Event::Custom { .. } => "custom",
        }
    }
}

/// An [`Event`] plus the correlation span it occurred in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Milliseconds since the Unix epoch at emission.
    pub ts_ms: u64,
    /// Identifier of the run this event belongs to.
    pub run_id: String,
    /// Engine generation the event occurred in (0 = before the first
    /// generation, e.g. initial-population evaluation).
    pub generation: u64,
    /// Scheduler batch on the stack when the event fired (0 = outside any
    /// batch dispatch). Monotonically increasing across the run.
    pub batch_id: u64,
    /// The event itself.
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrips_with_span_fields() {
        let env = Envelope {
            ts_ms: 12,
            run_id: "r1".into(),
            generation: 3,
            batch_id: 7,
            event: Event::SlaveRetired {
                slave: "10.0.0.1:7171".into(),
            },
        };
        let json = serde_json::to_string(&env).unwrap();
        assert!(json.contains("\"SlaveRetired\""), "{json}");
        assert!(json.contains("\"generation\":3"), "{json}");
        assert!(json.contains("\"batch_id\":7"), "{json}");
        let back: Envelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn fault_event_classification() {
        assert!(Event::SlaveRetired { slave: "a".into() }.is_fault_event());
        assert!(Event::FallbackActivated { residue: 3 }.is_fault_event());
        assert!(!Event::GenerationStarted.is_fault_event());
        assert_eq!(Event::GenerationStarted.kind(), "generation_started");
    }

    #[test]
    fn dynamics_events_are_not_fault_events_and_rates_carry_profits() {
        // The detector verdicts and snapshots describe the search, not
        // the evaluation layer; the SchedStats reconciliation must not
        // count them.
        let stagnation = Event::Stagnation {
            window: 9,
            best: 4.5,
        };
        let converged = Event::Converged {
            window: 9,
            best: 4.5,
            occupancy_entropy: 0.2,
        };
        assert!(!stagnation.is_fault_event());
        assert!(!converged.is_fault_event());
        assert_eq!(stagnation.kind(), "stagnation");
        assert_eq!(converged.kind(), "converged");

        // A PR-3-era RatesAdapted (no profit fields) still parses: the
        // profit vectors default to empty, absent-not-zero.
        let legacy: Event =
            serde_json::from_str("{\"RatesAdapted\":{\"mutation\":[0.5],\"crossover\":[0.5]}}")
                .unwrap();
        match legacy {
            Event::RatesAdapted {
                mutation_profits,
                crossover_profits,
                ..
            } => {
                assert!(mutation_profits.is_empty());
                assert!(crossover_profits.is_empty());
            }
            other => panic!("parsed as {:?}", other.kind()),
        }
    }

    #[test]
    fn tenancy_events_are_not_fault_events() {
        // The SchedStats reconciliation counts only the recovery ladder;
        // multi-tenant lifecycle and absorbed io errors stay outside it.
        let events = [
            Event::RunAdmitted {
                run_id: "r".into(),
                weight: 4,
            },
            Event::RunRejected {
                run_id: "r".into(),
                reason: "saturated".into(),
            },
            Event::RunClosed {
                run_id: "r".into(),
                dropped: 2,
            },
            Event::DatasetRegistered {
                slave: "a".into(),
                fingerprint: 9,
                resident: true,
            },
            Event::SlaveIoError {
                context: "accept".into(),
                detail: "broken pipe".into(),
            },
        ];
        for e in &events {
            assert!(!e.is_fault_event(), "{:?}", e.kind());
        }
        assert_eq!(events[0].kind(), "run_admitted");
        assert_eq!(events[4].kind(), "slave_io_error");
    }

    #[test]
    fn watchdog_and_forensic_events_are_not_fault_events() {
        // Anomaly verdicts describe fleet health, not the recovery
        // ladder; the SchedStats reconciliation must not count them. A
        // straggler is explicitly NOT retired, so counting its anomaly as
        // a fault event would break hits+faults bookkeeping.
        let events = [
            Event::SlaveAnomaly {
                slave: "10.0.0.1:7171".into(),
                kind: AnomalyKind::Straggler,
                metric: "rtt_ms".into(),
                value: 18.0,
                baseline: 0.6,
                zscore: 11.2,
            },
            Event::AnomalyCleared {
                slave: "10.0.0.1:7171".into(),
                kind: AnomalyKind::Straggler,
            },
            Event::FlightDumped {
                path: "dump.jsonl".into(),
                reason: "on-demand".into(),
                events: 812,
                dropped: 4,
            },
            Event::EvalFatal {
                detail: "all 3 workers failed".into(),
            },
        ];
        for e in &events {
            assert!(!e.is_fault_event(), "{:?}", e.kind());
        }
        assert_eq!(events[0].kind(), "slave_anomaly");
        assert_eq!(events[1].kind(), "anomaly_cleared");
        assert_eq!(events[2].kind(), "flight_dumped");
        assert_eq!(events[3].kind(), "eval_fatal");
        assert_eq!(AnomalyKind::Drift.as_str(), "drift");

        // Round-trip: the anomaly kind serializes as its variant name.
        let json = serde_json::to_string(&events[0]).unwrap();
        assert!(json.contains("\"Straggler\""), "{json}");
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events[0]);
    }
}
