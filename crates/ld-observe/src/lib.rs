//! Live observability plane for the LD-GA stack.
//!
//! The paper's results are observability artifacts — convergence curves,
//! operator-rate trajectories, per-size timings, speedup — but a
//! production run also needs to be *watchable while in flight*: which
//! slave retired, during which generation, while which batch was on the
//! wire. This crate is the shared, dependency-free (within the
//! workspace) plane the other layers report into:
//!
//! * [`Event`] / [`Envelope`] — the structured event taxonomy plus the
//!   correlation span (`run_id`, `generation`, `batch_id`) linking a
//!   network-layer event to the engine step that caused it.
//! * [`Sink`] — pluggable event receivers: [`JsonlSink`] (one JSON
//!   object per line), [`RingSink`] (bounded in-memory buffer for tests),
//!   [`StderrSink`] (human-readable), [`FanoutSink`] (composite).
//! * [`Registry`] — lock-light counters, gauges, and fixed-bucket
//!   latency histograms with Prometheus text exposition
//!   ([`Registry::prometheus`]) and a periodic [`FlushHandle`].
//! * [`Observer`] — the handle threaded through `GaEngine`,
//!   `EvalService`, and the TCP pool; no-op by default, zero cost when
//!   disabled.
//! * [`RunReport`] — one machine-readable JSON artifact per experiment:
//!   config + seed + telemetry + metrics snapshot + per-slave health +
//!   environment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod observer;
pub mod report;
pub mod sink;

pub use event::{Envelope, Event, Phase};
pub use metrics::{
    BucketCount, Counter, FamilySnapshot, FlushHandle, Gauge, Histogram, MetricsSnapshot, Registry,
    SeriesSnapshot, LATENCY_MS_BUCKETS,
};
pub use observer::Observer;
pub use report::{Environment, RunReport, SlaveHealth};
pub use sink::{FanoutSink, JsonlSink, RingSink, Sink, StderrSink};
