//! Live observability plane for the LD-GA stack.
//!
//! The paper's results are observability artifacts — convergence curves,
//! operator-rate trajectories, per-size timings, speedup — but a
//! production run also needs to be *watchable while in flight*: which
//! slave retired, during which generation, while which batch was on the
//! wire. This crate is the shared, dependency-free (within the
//! workspace) plane the other layers report into:
//!
//! * [`Event`] / [`Envelope`] — the structured event taxonomy plus the
//!   correlation span (`run_id`, `generation`, `batch_id`) linking a
//!   network-layer event to the engine step that caused it.
//! * [`Sink`] — pluggable event receivers: [`JsonlSink`] (one JSON
//!   object per line), [`RingSink`] (bounded in-memory buffer for tests),
//!   [`StderrSink`] (human-readable), [`FanoutSink`] (composite).
//! * [`Registry`] — lock-light counters, gauges, and fixed-bucket
//!   latency histograms with Prometheus text exposition
//!   ([`Registry::prometheus`]) and a periodic [`FlushHandle`].
//! * [`Observer`] — the handle threaded through `GaEngine`,
//!   `EvalService`, and the TCP pool; no-op by default, zero cost when
//!   disabled.
//! * [`RunReport`] — one machine-readable JSON artifact per experiment:
//!   config + seed + telemetry + metrics snapshot + per-slave health +
//!   environment.
//! * [`SpanGuard`] / [`SpanTree`] — hierarchical timed spans attributing
//!   wall time across the evaluation path (engine phase → scheduler
//!   stage → network hop → slave compute), no-ops when disabled.
//! * [`ExposeServer`] — a std-only HTTP endpoint serving `/metrics`
//!   (Prometheus text), `/health`, and `/spans` (recent span forest)
//!   live during a run.
//! * [`TraceSummary`] — per-generation critical-path attribution from a
//!   run's JSONL span stream (the `trace-summary` bin's engine).
//! * [`SizeTimingBank`] — the shared per-size evaluation timing fold
//!   behind `ld-parallel`'s `TimingEvaluator`.
//! * [`flight`] — the abnormal-path black box: a bounded, drop-counting
//!   [`FlightRecorder`] over the full event stream with atomic JSONL
//!   dumps (on demand, panic hook, typed fatal, periodic), and the
//!   [`Postmortem`] fold behind the `postmortem` bin.
//! * [`watch`] — the fleet anomaly watchdog: robust per-slave EWMA/MAD
//!   baselines over RTT, slave compute, and retry rate, typed
//!   [`Event::SlaveAnomaly`] verdicts (straggler / flapping / drift),
//!   and the `GET /fleet` rollup.
//! * [`dynamics`] — search-dynamics observability: per-generation
//!   [`DynamicsSnapshot`]s (diversity, fixation, operator economics),
//!   the sliding-window [`ConvergenceDetector`], the live per-run
//!   [`DynamicsBoard`] behind `GET /runs/<id>/dynamics`, and the
//!   [`DynamicsTrace`] fold behind the `dynamics-summary` bin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamics;
pub mod event;
pub mod flight;
pub mod http;
pub mod metrics;
pub mod observer;
pub mod report;
pub mod sink;
pub mod span;
pub mod timing;
pub mod trace;
pub mod watch;

pub use dynamics::{
    ConvergenceDetector, DetectorConfig, DetectorState, DetectorVerdict, DynamicsBoard,
    DynamicsMark, DynamicsMetrics, DynamicsPoint, DynamicsSnapshot, DynamicsTrace,
};
pub use event::{AnomalyKind, Envelope, Event, Phase};
pub use flight::{
    FlightPersistHandle, FlightRecorder, Postmortem, DEFAULT_FLIGHT_CAPACITY,
    DEFAULT_LAST_GENERATIONS,
};
pub use http::{ApiHandler, ApiResponse, ExposeServer};
pub use metrics::{
    BucketCount, Counter, FamilySnapshot, FlushHandle, Gauge, Histogram, MetricsSnapshot, Registry,
    SeriesSnapshot, LATENCY_MS_BUCKETS,
};
pub use observer::Observer;
pub use report::{Environment, RunReport, SlaveHealth};
pub use sink::{FanoutSink, JsonlSink, RingSink, Sink, StderrSink};
pub use span::{ClosedSpan, SpanGuard, SpanId, SpanTree};
pub use timing::{SizeTiming, SizeTimingBank, MAX_TRACKED_SIZE};
pub use trace::{GenerationBreakdown, TraceSummary};
pub use watch::{FleetWatch, WatchConfig};
