//! Hierarchical timed spans: where each millisecond of a generation goes.
//!
//! A *span* is a named, timed interval with a parent link — together they
//! form a tree per generation: `generation` → phase spans (`crossover`,
//! `mutation`, …) → scheduler stages (`batch` → `coalesce`/`cache`/
//! `dispatch`/`apply`) → per-request network hops (`request` →
//! `net.send`/`net.roundtrip`, plus the synthetic `compute` span a v2
//! slave reports about itself). Spans are recorded only at *close* time
//! (an open span costs one `Instant::now()`), land in two places:
//!
//! * the event stream, as [`crate::Event::SpanClosed`] — durable JSONL
//!   for post-hoc analysis ([`crate::trace`] / the `trace-summary` bin);
//! * the in-memory [`SpanTree`] ring — recent history for the live
//!   `/spans` endpoint ([`crate::http::ExposeServer`]).
//!
//! The RAII [`SpanGuard`] is a no-op when the observer is disabled: no
//! allocation, no thread-local touch, no clock read. Same-thread nesting
//! is implicit (a thread-local stack of open span ids); crossing threads
//! — a dispatch on the engine thread fanning out to pool workers — is
//! explicit via [`crate::Observer::span_under`] and the current-dispatch
//! id published by the scheduler ([`crate::Observer::dispatch_span`]).

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use serde::Serialize;

use crate::observer::Observer;

/// Unique id of a span within one observer (monotonic from 1; 0 means
/// "no span" and is the parent of root spans).
pub type SpanId = u64;

/// Span names used by the instrumented stack. Free-form `&'static str`
/// like [`crate::Phase`], but every in-repo call site goes through these
/// constants so `trace-summary` and the tests agree on the taxonomy.
pub mod names {
    /// One whole engine generation (root of the per-generation tree).
    pub const GENERATION: &str = "generation";
    /// Crossover phase: parent selection + crossover operators + the
    /// children evaluation batch.
    pub const CROSSOVER: &str = "crossover";
    /// Mutation phase: operator application + the candidate batch.
    pub const MUTATION: &str = "mutation";
    /// Parent selection and crossover operator application (the
    /// master-side breeding loop, excluding evaluation).
    pub const SELECTION: &str = "selection";
    /// Mutation operator application (master-side, excluding evaluation).
    pub const MUTATION_OPS: &str = "mutation_ops";
    /// Replacement: inserting evaluated children into subpopulations.
    pub const REPLACEMENT: &str = "replacement";
    /// Adaptive-rate reallocation + improvement tracking.
    pub const ADAPTATION: &str = "adaptation";
    /// Random-immigrant episode (generation + evaluation batch).
    pub const IMMIGRANTS: &str = "immigrants";
    /// One `EvalService` batch, coalesce through apply.
    pub const BATCH: &str = "batch";
    /// Intra-batch duplicate coalescing.
    pub const COALESCE: &str = "coalesce";
    /// Fitness-cache probe (including cache-hit fan-out).
    pub const CACHE: &str = "cache";
    /// Backend dispatch (network or local pool; includes fallback).
    pub const DISPATCH: &str = "dispatch";
    /// Writing backend results back onto the batch (+ cache insert).
    pub const APPLY: &str = "apply";
    /// One remote evaluation attempt on a pool worker thread.
    pub const REQUEST: &str = "request";
    /// Worker wait for the next job (lock + condvar).
    pub const QUEUE: &str = "queue";
    /// Serializing + writing one request to the socket.
    pub const NET_SEND: &str = "net.send";
    /// Waiting for and reading the slave's response.
    pub const NET_ROUNDTRIP: &str = "net.roundtrip";
    /// Retry backoff sleep after a failed attempt.
    pub const NET_RETRY: &str = "net.retry";
    /// Evaluation compute proper, as measured by the worker itself (a v2
    /// slave's self-reported microseconds, or a local backend's summed
    /// per-job wall time). Synthetic: recorded via
    /// [`crate::Observer::record_span`], nested under the request or
    /// dispatch span.
    pub const COMPUTE: &str = "compute";
}

/// A finished span: the only representation that exists — open spans are
/// just a guard holding an `Instant`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ClosedSpan {
    /// Unique span id (monotonic per observer).
    pub id: SpanId,
    /// Parent span id; 0 for roots.
    pub parent: SpanId,
    /// Taxonomy name (see [`names`]).
    pub name: &'static str,
    /// Engine generation current when the span closed.
    pub generation: u64,
    /// Scheduler batch current when the span closed (0 = outside).
    pub batch_id: u64,
    /// Start offset from the observer's epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub duration_ns: u64,
}

impl ClosedSpan {
    /// End offset from the observer's epoch, nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.duration_ns
    }
}

/// Bounded ring of recently closed spans, oldest evicted first —
/// the in-memory twin of the JSONL `SpanClosed` stream, served live by
/// the `/spans` endpoint.
pub struct SpanTree {
    buf: Mutex<VecDeque<ClosedSpan>>,
    capacity: usize,
    dropped: AtomicU64,
    drop_metric: OnceLock<crate::metrics::Counter>,
}

impl SpanTree {
    /// A ring keeping the most recent `capacity` closed spans.
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> SpanTree {
        assert!(capacity > 0, "span ring capacity must be positive");
        SpanTree {
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity,
            dropped: AtomicU64::new(0),
            drop_metric: OnceLock::new(),
        }
    }

    /// Mirror overflow drops into `registry` as
    /// `ld_observe_events_dropped_total{ring="spans"}`. First call wins;
    /// the observer attaches this at construction.
    pub fn attach_drop_metric(&self, registry: &crate::metrics::Registry) {
        let _ = self
            .drop_metric
            .set(crate::sink::dropped_counter(registry, "spans"));
    }

    /// Spans discarded at capacity over the ring's lifetime.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub(crate) fn push(&self, span: ClosedSpan) {
        let mut buf = self.buf.lock().expect("span ring poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(metric) = self.drop_metric.get() {
                metric.inc();
            }
        }
        buf.push_back(span);
    }

    /// Snapshot of retained spans, in close order (oldest first).
    pub fn recent(&self) -> Vec<ClosedSpan> {
        self.buf
            .lock()
            .expect("span ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Retained span count.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("span ring poisoned").len()
    }

    /// Whether no span has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum spans retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained spans as a nested JSON forest:
    /// `{"count":N,"spans":[{..span fields.., "children":[...]}, ...]}`.
    ///
    /// Children close before their parents, so a single pass groups each
    /// finished subtree under its parent the moment the parent closes;
    /// spans whose parent is still open (or evicted) surface as roots.
    pub fn to_json(&self) -> String {
        let spans = self.recent();
        // parent id -> finished child nodes, in close order.
        let mut pending: HashMap<SpanId, Vec<SpanNode>> = HashMap::new();
        for s in &spans {
            let children = pending.remove(&s.id).unwrap_or_default();
            pending.entry(s.parent).or_default().push(SpanNode {
                id: s.id,
                parent: s.parent,
                name: s.name,
                generation: s.generation,
                batch_id: s.batch_id,
                start_ns: s.start_ns,
                duration_ns: s.duration_ns,
                children,
            });
        }
        // Whatever never found a closed parent is a root (parent == 0) or
        // an orphan (parent evicted / still open). Sort for stable output.
        let mut leftovers: Vec<(SpanId, Vec<SpanNode>)> = pending.into_iter().collect();
        leftovers.sort_by_key(|(parent, _)| *parent);
        let forest = SpanForest {
            count: spans.len(),
            spans: leftovers.into_iter().flat_map(|(_, v)| v).collect(),
        };
        serde_json::to_string(&forest).unwrap_or_else(|_| "{\"count\":0,\"spans\":[]}".into())
    }
}

/// One node of the `/spans` forest (a [`ClosedSpan`] plus its finished
/// children).
#[derive(Serialize)]
struct SpanNode {
    id: SpanId,
    parent: SpanId,
    name: &'static str,
    generation: u64,
    batch_id: u64,
    start_ns: u64,
    duration_ns: u64,
    children: Vec<SpanNode>,
}

#[derive(Serialize)]
struct SpanForest {
    count: usize,
    spans: Vec<SpanNode>,
}

thread_local! {
    /// Open span ids on this thread, innermost last. Only touched by
    /// enabled observers — the disabled fast path never reaches it.
    static SPAN_STACK: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
}

/// Innermost open span on this thread (0 if none) — the implicit parent
/// for [`crate::Observer::span`].
pub(crate) fn current_parent() -> SpanId {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// RAII guard for an open span: created by [`crate::Observer::span`] /
/// [`crate::Observer::span_under`], records the span on drop. For a
/// disabled observer the guard is inert (`id() == 0`, drop does nothing).
#[must_use = "a span measures the scope it is held for; dropping it immediately records ~0ns"]
pub struct SpanGuard {
    inner: Option<GuardInner>,
}

struct GuardInner {
    observer: Observer,
    name: &'static str,
    id: SpanId,
    parent: SpanId,
    started: Instant,
}

impl SpanGuard {
    pub(crate) fn noop() -> SpanGuard {
        SpanGuard { inner: None }
    }

    pub(crate) fn begin(
        observer: Observer,
        name: &'static str,
        id: SpanId,
        parent: SpanId,
    ) -> SpanGuard {
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        SpanGuard {
            inner: Some(GuardInner {
                observer,
                name,
                id,
                parent,
                started: Instant::now(),
            }),
        }
    }

    /// This span's id (0 when the observer is disabled) — pass to
    /// [`crate::Observer::span_under`] / [`crate::Observer::record_span`]
    /// to parent work on other threads under it.
    pub fn id(&self) -> SpanId {
        self.inner.as_ref().map_or(0, |g| g.id)
    }

    /// Whether this guard is actually recording.
    pub fn active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            let duration = g.started.elapsed();
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Innermost-first search: guards drop in reverse creation
                // order, so this is almost always the last element.
                if let Some(pos) = stack.iter().rposition(|&id| id == g.id) {
                    stack.remove(pos);
                }
            });
            g.observer
                .finish_span(g.name, g.id, g.parent, g.started, duration);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: SpanId, parent: SpanId, start_ns: u64, duration_ns: u64) -> ClosedSpan {
        ClosedSpan {
            id,
            parent,
            name: "t",
            generation: 0,
            batch_id: 0,
            start_ns,
            duration_ns,
        }
    }

    #[test]
    fn ring_is_bounded_and_fifo() {
        let tree = SpanTree::new(3);
        assert_eq!(tree.dropped(), 0);
        for i in 1..=5 {
            tree.push(span(i, 0, i * 10, 1));
        }
        let recent = tree.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent.iter().map(|s| s.id).collect::<Vec<_>>(),
            vec![3, 4, 5],
            "oldest spans evicted first"
        );
        assert_eq!(tree.capacity(), 3);
        assert_eq!(tree.dropped(), 2, "evictions are counted");
    }

    #[test]
    fn span_drops_are_mirrored_into_the_registry() {
        let registry = crate::metrics::Registry::new();
        let tree = SpanTree::new(2);
        tree.attach_drop_metric(&registry);
        for i in 1..=5 {
            tree.push(span(i, 0, i * 10, 1));
        }
        assert_eq!(tree.dropped(), 3);
        let text = registry.prometheus();
        assert!(
            text.contains("ld_observe_events_dropped_total{ring=\"spans\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn to_json_nests_children_under_parents() {
        let tree = SpanTree::new(16);
        // Close order: child (2) before parent (1); sibling root (3) last.
        tree.push(span(2, 1, 5, 10));
        tree.push(span(1, 0, 0, 100));
        tree.push(span(3, 0, 120, 10));
        let json = tree.to_json();
        assert!(json.starts_with("{\"count\":3"), "{json}");
        // Span 2 appears nested inside span 1's children array...
        assert!(
            json.contains("\"children\":[{\"id\":2,\"parent\":1"),
            "{json}"
        );
        // ...and the sibling root 3 has no children.
        assert!(
            json.contains("\"id\":3,\"parent\":0") && json.ends_with("\"children\":[]}]}"),
            "{json}"
        );
    }

    #[test]
    fn orphans_surface_as_roots() {
        let tree = SpanTree::new(16);
        tree.push(span(7, 99, 0, 1)); // parent 99 never closes
        let json = tree.to_json();
        assert!(
            json.contains("\"spans\":[{\"id\":7,\"parent\":99"),
            "{json}"
        );
    }
}
