//! Shared per-size evaluation timing bank.
//!
//! The paper's Figure 4 plots mean evaluation time against haplotype
//! size. [`SizeTimingBank`] is the single mechanism behind that: a
//! lock-free array of per-size counters + cumulative nanoseconds that
//! any layer (the `ld-parallel` `TimingEvaluator` wrapper, a backend, a
//! test harness) records into, and that publishes into the same
//! [`Registry`] the rest of the observability plane uses. Sizes above
//! [`MAX_TRACKED_SIZE`] pool into one overflow bucket, surfaced
//! distinctly (`pooled` flag, `"33+"` label) so it can never be
//! mistaken for exact size-32 samples.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::metrics::Registry;

/// Widest haplotype size tracked individually; larger sizes pool into a
/// dedicated overflow bucket (surfaced with [`SizeTiming::pooled`]).
pub const MAX_TRACKED_SIZE: usize = 32;

/// Index of the overflow bucket in the internal arrays.
const POOLED: usize = MAX_TRACKED_SIZE + 1;

/// Per-size timing statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeTiming {
    /// Haplotype size. For the pooled bucket this is `MAX_TRACKED_SIZE`
    /// (the bucket's lower bound), with [`SizeTiming::pooled`] set.
    pub size: usize,
    /// Evaluations performed at this size.
    pub count: u64,
    /// Mean evaluation time in nanoseconds.
    pub mean_ns: f64,
    /// Whether this entry aggregates every size above `MAX_TRACKED_SIZE`
    /// rather than one exact size.
    pub pooled: bool,
}

/// Lock-free per-size timing accumulator (two relaxed atomic adds per
/// recorded evaluation).
#[derive(Debug)]
pub struct SizeTimingBank {
    counts: Vec<AtomicU64>,
    total_ns: Vec<AtomicU64>,
}

impl Default for SizeTimingBank {
    fn default() -> Self {
        Self::new()
    }
}

impl SizeTimingBank {
    /// A zeroed bank.
    pub fn new() -> SizeTimingBank {
        SizeTimingBank {
            counts: (0..=POOLED).map(|_| AtomicU64::new(0)).collect(),
            total_ns: (0..=POOLED).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn bucket(size: usize) -> usize {
        if size <= MAX_TRACKED_SIZE {
            size
        } else {
            POOLED
        }
    }

    /// Record one evaluation of a `size`-SNP haplotype taking `ns`
    /// nanoseconds.
    pub fn record(&self, size: usize, ns: u64) {
        let bucket = Self::bucket(size);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total_ns[bucket].fetch_add(ns, Ordering::Relaxed);
    }

    /// Timing summary for every size that was recorded at least once.
    /// The overflow bucket (sizes above `MAX_TRACKED_SIZE`), if hit, is
    /// the final entry with [`SizeTiming::pooled`] set.
    pub fn timings(&self) -> Vec<SizeTiming> {
        (0..=POOLED)
            .filter_map(|bucket| {
                let count = self.counts[bucket].load(Ordering::Relaxed);
                if count == 0 {
                    return None;
                }
                let total = self.total_ns[bucket].load(Ordering::Relaxed);
                Some(SizeTiming {
                    size: bucket.min(MAX_TRACKED_SIZE),
                    count,
                    mean_ns: total as f64 / count as f64,
                    pooled: bucket == POOLED,
                })
            })
            .collect()
    }

    /// Mean evaluation time for one size, if measured. Sizes above
    /// `MAX_TRACKED_SIZE` read the pooled bucket.
    pub fn mean_ns_for_size(&self, size: usize) -> Option<f64> {
        let bucket = Self::bucket(size);
        let count = self.counts[bucket].load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        Some(self.total_ns[bucket].load(Ordering::Relaxed) as f64 / count as f64)
    }

    /// Publish the current timings into `registry` as one labelled
    /// counter of evaluations (`counter_name`) and one gauge of the mean
    /// (`gauge_name`) per size, with `size="33+"` for the pooled bucket.
    /// Safe to call repeatedly (e.g. from a periodic flusher): series
    /// register idempotently, counters add only the delta since the last
    /// publish, gauges overwrite.
    pub fn publish_into(
        &self,
        registry: &Registry,
        counter_name: &'static str,
        counter_help: &'static str,
        gauge_name: &'static str,
        gauge_help: &'static str,
    ) {
        for t in self.timings() {
            let label = if t.pooled {
                format!("{}+", MAX_TRACKED_SIZE + 1)
            } else {
                t.size.to_string()
            };
            let labels = [("size", label.as_str())];
            let counter = registry.counter_with(counter_name, counter_help, &labels);
            // Counters are monotonic: add only the delta since the last
            // publish (the registry handle remembers the running value).
            counter.add(t.count.saturating_sub(counter.get()));
            registry
                .gauge_with(gauge_name, gauge_help, &labels)
                .set(t.mean_ns);
        }
    }

    /// Reset all timers.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        for t in &self.total_ns {
            t.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_bucket_stays_distinct() {
        let bank = SizeTimingBank::new();
        bank.record(MAX_TRACKED_SIZE, 10);
        bank.record(MAX_TRACKED_SIZE + 1, 30);
        bank.record(MAX_TRACKED_SIZE + 500, 50);
        let timings = bank.timings();
        assert_eq!(timings.len(), 2, "{timings:?}");
        assert!(!timings[0].pooled);
        assert_eq!(timings[0].count, 1);
        assert!(timings[1].pooled);
        assert_eq!(timings[1].count, 2);
        assert_eq!(timings[1].mean_ns, 40.0);
        assert_eq!(
            bank.mean_ns_for_size(MAX_TRACKED_SIZE + 1),
            bank.mean_ns_for_size(MAX_TRACKED_SIZE + 500)
        );
    }

    #[test]
    fn publish_is_idempotent() {
        let bank = SizeTimingBank::new();
        bank.record(3, 100);
        bank.record(3, 200);
        let registry = Registry::new();
        for _ in 0..2 {
            bank.publish_into(&registry, "evals_total", "h", "eval_mean_ns", "h");
        }
        let text = registry.prometheus();
        assert!(text.contains("evals_total{size=\"3\"} 2"), "{text}");
        assert!(text.contains("eval_mean_ns{size=\"3\"} 150"), "{text}");
    }

    #[test]
    fn reset_clears_everything() {
        let bank = SizeTimingBank::new();
        bank.record(1, 5);
        assert!(!bank.timings().is_empty());
        bank.reset();
        assert!(bank.timings().is_empty());
        assert!(bank.mean_ns_for_size(1).is_none());
    }
}
