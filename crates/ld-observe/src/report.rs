//! Unified JSON run report.
//!
//! A [`RunReport`] is an ordered set of named JSON sections — config,
//! seed, telemetry, metrics snapshot, per-slave health, environment —
//! assembled by whichever layer has each piece and written as one JSON
//! object by a single call. Sections are serialized eagerly when added
//! (via [`RunReport::section`]) and stored as raw JSON text, so the
//! report type does not need to name — or even know about — the types
//! layered above this crate.

use std::io::Write as _;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// Health summary of one remote evaluation slave, assembled by the
/// network layer from existing protocol traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaveHealth {
    /// Slave address (`host:port`).
    pub addr: String,
    /// Requests served successfully.
    pub served: u64,
    /// Mean round-trip time over served requests, milliseconds.
    pub mean_rtt_ms: f64,
    /// Mean slave-reported compute time, milliseconds. `None` when the
    /// slave never reported timing (a protocol-v1 peer) — absent, not
    /// zero-as-data.
    #[serde(default)]
    pub mean_compute_ms: Option<f64>,
    /// Whether the slave is currently retired from the pool.
    pub retired: bool,
    /// Most recent transport/protocol error, populated only while the
    /// slave is actually failing: the next successful request clears it
    /// (`errors` / `last_error_ts_ms` keep the history).
    #[serde(default)]
    pub last_error: Option<String>,
    /// Failures over the slave's lifetime (not reset by recovery).
    #[serde(default)]
    pub errors: u64,
    /// Wall-clock timestamp (ms since epoch) of the most recent failure,
    /// surviving the `last_error` clear — distinguishes "failing now"
    /// from "failed once at gen 3". `None` = never failed.
    #[serde(default)]
    pub last_error_ts_ms: Option<u64>,
    /// Standing watchdog verdict (`"straggler"`, `"flapping"`,
    /// `"drift"`), if the fleet watchdog has one confirmed against this
    /// slave.
    #[serde(default)]
    pub flagged: Option<String>,
}

/// Build/host facts worth pinning to an experiment artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// Crate version of the binary that produced the report.
    pub version: String,
    /// Target OS (`linux`, `macos`, ...).
    pub os: String,
    /// Target CPU architecture.
    pub arch: String,
    /// Logical CPUs available to the process.
    pub cpus: usize,
    /// Hostname: the `HOSTNAME` environment variable when set, otherwise
    /// `/etc/hostname` (non-login shells — CI runners, containers — often
    /// don't export `HOSTNAME`, which used to leave this `null`).
    #[serde(default)]
    pub hostname: Option<String>,
}

impl Environment {
    /// Capture the current process environment.
    pub fn capture() -> Self {
        Environment {
            version: env!("CARGO_PKG_VERSION").to_string(),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
            hostname: hostname(),
        }
    }
}

/// Best-effort hostname: env var first, `/etc/hostname` as the fallback.
fn hostname() -> Option<String> {
    std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.trim().is_empty())
        .or_else(|| {
            std::fs::read_to_string("/etc/hostname")
                .ok()
                .map(|h| h.trim().to_string())
                .filter(|h| !h.is_empty())
        })
}

/// The unified report. See the module docs.
pub struct RunReport {
    sections: Vec<(String, String)>,
}

impl RunReport {
    /// Start a report. `run_id` becomes the first section; the
    /// environment is captured immediately as the second.
    pub fn new(run_id: &str) -> Self {
        let mut report = RunReport {
            sections: Vec::new(),
        };
        report.push_raw("run_id", format!("{:?}", run_id));
        report.push("environment", &Environment::capture());
        report
    }

    fn push_raw(&mut self, key: &str, raw_json: String) {
        if let Some(slot) = self.sections.iter_mut().find(|(k, _)| k == key) {
            slot.1 = raw_json;
        } else {
            self.sections.push((key.to_string(), raw_json));
        }
    }

    fn push<T: Serialize + ?Sized>(&mut self, key: &str, value: &T) {
        let raw = serde_json::to_string(value).unwrap_or_else(|_| "null".to_string());
        self.push_raw(key, raw);
    }

    /// Add (or replace) a section serialized from `value`.
    pub fn section<T: Serialize + ?Sized>(mut self, key: &str, value: &T) -> Self {
        self.push(key, value);
        self
    }

    /// Add (or replace) a section from pre-rendered JSON text. The
    /// caller is responsible for `raw_json` being valid JSON.
    pub fn raw_section(mut self, key: &str, raw_json: String) -> Self {
        self.push_raw(key, raw_json);
        self
    }

    /// Render the report as one JSON object, sections in insertion order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, raw)) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{:?}:", key));
            out.push_str(raw);
        }
        out.push('}');
        out
    }

    /// Write the report to `path` — the "single call" every experiment
    /// binary makes.
    pub fn write<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())?;
        f.write_all(b"\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Cfg {
        pop: usize,
    }

    #[test]
    fn report_assembles_sections_in_order() {
        let json = RunReport::new("r-7")
            .section("config", &Cfg { pop: 40 })
            .section("seed", &42u64)
            .raw_section("telemetry", "{\"generations\":3}".to_string())
            .to_json();
        assert!(json.starts_with("{\"run_id\":\"r-7\""), "{json}");
        assert!(json.contains("\"config\":{\"pop\":40}"), "{json}");
        assert!(json.contains("\"seed\":42"), "{json}");
        assert!(json.contains("\"telemetry\":{\"generations\":3}"), "{json}");
        assert!(json.contains("\"environment\":{"), "{json}");
        // The whole thing must parse as a JSON object; spot-check by
        // deserializing a typed mirror of one section.
        #[derive(Deserialize)]
        struct Probe {
            #[serde(default)]
            seed: u64,
        }
        let probe: Probe = serde_json::from_str(&json).unwrap();
        assert_eq!(probe.seed, 42);
    }

    #[test]
    fn duplicate_section_replaces() {
        let json = RunReport::new("r")
            .section("seed", &1u64)
            .section("seed", &2u64)
            .to_json();
        assert!(json.contains("\"seed\":2"));
        assert!(!json.contains("\"seed\":1"));
    }

    #[test]
    fn environment_probe_is_populated() {
        let env = Environment::capture();
        // available_parallelism, not a hardcoded probe: at least one CPU,
        // and on any Linux host with /etc/hostname the name resolves even
        // when $HOSTNAME is unset (the common CI-runner case).
        assert!(env.cpus >= 1);
        if std::env::var("HOSTNAME").is_err() {
            let etc = std::fs::read_to_string("/etc/hostname")
                .ok()
                .map(|h| h.trim().to_string())
                .filter(|h| !h.is_empty());
            assert_eq!(env.hostname, etc);
        } else {
            assert!(env.hostname.is_some());
        }
    }

    #[test]
    fn slave_health_roundtrips() {
        let h = SlaveHealth {
            addr: "127.0.0.1:7000".into(),
            served: 12,
            mean_rtt_ms: 1.5,
            mean_compute_ms: Some(0.9),
            retired: false,
            last_error: Some("deadline".into()),
            errors: 3,
            last_error_ts_ms: Some(1_700_000_000_000),
            flagged: Some("straggler".into()),
        };
        let back: SlaveHealth = serde_json::from_str(&serde_json::to_string(&h).unwrap()).unwrap();
        assert_eq!(back, h);

        // A v1-era report (no compute field) still parses: absent, not zero.
        let legacy: SlaveHealth = serde_json::from_str(
            "{\"addr\":\"s\",\"served\":1,\"mean_rtt_ms\":2.0,\"retired\":false}",
        )
        .unwrap();
        assert_eq!(legacy.mean_compute_ms, None);
        // Pre-watchdog reports parse too: no error history, no verdict.
        assert_eq!(legacy.errors, 0);
        assert_eq!(legacy.last_error_ts_ms, None);
        assert_eq!(legacy.flagged, None);
    }
}
