//! Lock-light metrics registry with Prometheus text exposition.
//!
//! Registration (naming a counter, gauge, or histogram series) takes a
//! mutex, but it happens once per series; the returned handles are
//! `Arc`-backed atomics, so the hot path — `Counter::inc`,
//! `Histogram::observe` — never touches a lock. Snapshots walk the
//! registry under the same mutex and read each atomic once, producing
//! either a structured [`MetricsSnapshot`] (JSON-serializable, embedded
//! in run reports) or Prometheus text exposition format via
//! [`Registry::prometheus`].

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Default latency bucket bounds, in milliseconds: 0.25 ms .. ~8 s,
/// doubling. Suitable for both local dispatch and TCP round trips.
pub const LATENCY_MS_BUCKETS: &[f64] = &[
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
    8192.0,
];

/// Monotonically increasing counter. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Instantaneous value (stored as `f64` bits). Cheap to clone.
#[derive(Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

struct HistogramCore {
    /// Upper bounds of the finite buckets, strictly increasing. The
    /// `+Inf` bucket is implicit (`count` minus the finite buckets).
    bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts, one per bound plus one overflow.
    buckets: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// Fixed-bucket latency histogram. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let c = &self.core;
        let idx = c
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(c.bounds.len());
        c.buckets[idx].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        // Lock-free f64 add: CAS on the bit pattern.
        let mut cur = c.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match c
                .sum_bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    help: String,
    kind: Kind,
    /// Keyed by the rendered label set (`` or `slave="addr"`), which keeps
    /// exposition output deterministic.
    series: BTreeMap<String, Series>,
}

/// The registry. Cheap to clone; clones share state.
#[derive(Clone, Default)]
pub struct Registry {
    families: Arc<Mutex<BTreeMap<String, Family>>>,
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    parts.sort();
    parts.join(",")
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn series<F: FnOnce() -> Series>(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: F,
    ) -> Series {
        let mut fams = self.families.lock().unwrap();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            fam.kind == kind,
            "metric {name} registered as {} and re-requested as {}",
            fam.kind.as_str(),
            kind.as_str()
        );
        fam.series
            .entry(render_labels(labels))
            .or_insert_with(make)
            .clone()
    }

    /// Register (or look up) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or look up) a counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, Kind::Counter, labels, || {
            Series::Counter(Counter {
                cell: Arc::new(AtomicU64::new(0)),
            })
        }) {
            Series::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Register (or look up) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or look up) a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, Kind::Gauge, labels, || {
            Series::Gauge(Gauge {
                bits: Arc::new(AtomicU64::new(0f64.to_bits())),
            })
        }) {
            Series::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Register (or look up) an unlabelled histogram with the given finite
    /// bucket upper bounds (strictly increasing).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Register (or look up) a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.series(name, help, Kind::Histogram, labels, || {
            Series::Histogram(Histogram {
                core: Arc::new(HistogramCore {
                    bounds: bounds.to_vec(),
                    buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    sum_bits: AtomicU64::new(0f64.to_bits()),
                    count: AtomicU64::new(0),
                }),
            })
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Structured point-in-time snapshot of every registered series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let fams = self.families.lock().unwrap();
        let families = fams
            .iter()
            .map(|(name, fam)| FamilySnapshot {
                name: name.clone(),
                help: fam.help.clone(),
                kind: fam.kind.as_str().to_string(),
                series: fam
                    .series
                    .iter()
                    .map(|(labels, s)| match s {
                        Series::Counter(c) => SeriesSnapshot {
                            labels: labels.clone(),
                            value: c.get() as f64,
                            sum: 0.0,
                            count: 0,
                            buckets: Vec::new(),
                        },
                        Series::Gauge(g) => SeriesSnapshot {
                            labels: labels.clone(),
                            value: g.get(),
                            sum: 0.0,
                            count: 0,
                            buckets: Vec::new(),
                        },
                        Series::Histogram(h) => {
                            let mut cumulative = 0u64;
                            let mut buckets = Vec::with_capacity(h.core.bounds.len() + 1);
                            for (i, bound) in h.core.bounds.iter().enumerate() {
                                cumulative += h.core.buckets[i].load(Ordering::Relaxed);
                                buckets.push(BucketCount {
                                    le: format!("{bound}"),
                                    count: cumulative,
                                });
                            }
                            buckets.push(BucketCount {
                                le: "+Inf".to_string(),
                                count: h.count(),
                            });
                            SeriesSnapshot {
                                labels: labels.clone(),
                                value: 0.0,
                                sum: h.sum(),
                                count: h.count(),
                                buckets,
                            }
                        }
                    })
                    .collect(),
            })
            .collect();
        MetricsSnapshot { families }
    }

    /// Render the current state in Prometheus text exposition format.
    pub fn prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }

    /// Spawn a thread that rewrites `path` with the Prometheus exposition
    /// every `interval` until the returned handle is dropped or
    /// [`FlushHandle::stop`] is called. A final flush happens on stop.
    pub fn flush_every(&self, path: PathBuf, interval: Duration) -> FlushHandle {
        let registry = self.clone();
        let (tx, rx) = mpsc::channel::<()>();
        let thread = std::thread::spawn(move || loop {
            let stop = matches!(
                rx.recv_timeout(interval),
                Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected)
            );
            let _ = std::fs::File::create(&path)
                .and_then(|mut f| f.write_all(registry.prometheus().as_bytes()));
            if stop {
                break;
            }
        });
        FlushHandle {
            stop_tx: Some(tx),
            thread: Some(thread),
        }
    }
}

impl Clone for Series {
    fn clone(&self) -> Self {
        match self {
            Series::Counter(c) => Series::Counter(c.clone()),
            Series::Gauge(g) => Series::Gauge(g.clone()),
            Series::Histogram(h) => Series::Histogram(h.clone()),
        }
    }
}

/// Stops and joins the periodic flush thread on drop.
pub struct FlushHandle {
    stop_tx: Option<mpsc::Sender<()>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl FlushHandle {
    /// Stop the flusher after one final write, blocking until it exits.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(tx) = self.stop_tx.take() {
            let _ = tx.send(());
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FlushHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Point-in-time copy of a [`Registry`], serializable into run reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// One entry per metric family, sorted by name.
    pub families: Vec<FamilySnapshot>,
}

/// Snapshot of one metric family (all series sharing a name).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilySnapshot {
    /// Metric name, e.g. `ld_sched_cache_hits_total`.
    pub name: String,
    /// Help text (the `# HELP` line).
    pub help: String,
    /// `counter`, `gauge`, or `histogram`.
    pub kind: String,
    /// Series sorted by rendered label set.
    pub series: Vec<SeriesSnapshot>,
}

/// Snapshot of one series within a family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    /// Rendered label set (`slave="10.0.0.1:7171"`), empty when unlabelled.
    #[serde(default)]
    pub labels: String,
    /// Counter/gauge value (zero for histograms).
    #[serde(default)]
    pub value: f64,
    /// Histogram observation sum.
    #[serde(default)]
    pub sum: f64,
    /// Histogram observation count.
    #[serde(default)]
    pub count: u64,
    /// Cumulative histogram buckets ending in `+Inf`.
    #[serde(default)]
    pub buckets: Vec<BucketCount>,
}

/// One cumulative histogram bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BucketCount {
    /// Upper bound rendered as in exposition output (`0.25`, `+Inf`).
    pub le: String,
    /// Observations with value ≤ `le`.
    pub count: u64,
}

impl MetricsSnapshot {
    /// Render this snapshot in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            out.push_str(&format!("# HELP {} {}\n", fam.name, fam.help));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind));
            for s in &fam.series {
                if fam.kind == "histogram" {
                    for b in &s.buckets {
                        let labels = if s.labels.is_empty() {
                            format!("le=\"{}\"", b.le)
                        } else {
                            format!("{},le=\"{}\"", s.labels, b.le)
                        };
                        out.push_str(&format!("{}_bucket{{{}}} {}\n", fam.name, labels, b.count));
                    }
                    let braces = if s.labels.is_empty() {
                        String::new()
                    } else {
                        format!("{{{}}}", s.labels)
                    };
                    out.push_str(&format!("{}_sum{} {:?}\n", fam.name, braces, s.sum));
                    out.push_str(&format!("{}_count{} {}\n", fam.name, braces, s.count));
                } else {
                    let braces = if s.labels.is_empty() {
                        String::new()
                    } else {
                        format!("{{{}}}", s.labels)
                    };
                    if fam.kind == "counter" {
                        out.push_str(&format!("{}{} {}\n", fam.name, braces, s.value as u64));
                    } else {
                        out.push_str(&format!("{}{} {:?}\n", fam.name, braces, s.value));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basic() {
        let reg = Registry::new();
        let c = reg.counter("requests_total", "Requests.");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same underlying cell.
        assert_eq!(reg.counter("requests_total", "Requests.").get(), 5);

        let g = reg.gauge("depth", "Queue depth.");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let reg = Registry::new();
        let h = reg.histogram("lat_ms", "Latency.", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 55.5).abs() < 1e-9);
        let snap = reg.snapshot();
        let s = &snap.families[0].series[0];
        let counts: Vec<u64> = s.buckets.iter().map(|b| b.count).collect();
        assert_eq!(counts, vec![1, 2, 3]);
        assert_eq!(s.buckets.last().unwrap().le, "+Inf");
    }

    #[test]
    fn labelled_series_are_distinct_and_sorted() {
        let reg = Registry::new();
        reg.counter_with("served", "Per slave.", &[("slave", "b")])
            .inc();
        reg.counter_with("served", "Per slave.", &[("slave", "a")])
            .add(2);
        let snap = reg.snapshot();
        let labels: Vec<&str> = snap.families[0]
            .series
            .iter()
            .map(|s| s.labels.as_str())
            .collect();
        assert_eq!(labels, vec!["slave=\"a\"", "slave=\"b\""]);
        assert_eq!(snap.families[0].series[0].value, 2.0);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("m", "x");
        reg.gauge("m", "x");
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = Registry::new();
        reg.counter("a_total", "A.").inc();
        reg.histogram("h_ms", "H.", &[1.0]).observe(0.5);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.families.len(), 2);
        assert_eq!(back.to_prometheus(), snap.to_prometheus());
    }
}
