//! Fleet anomaly watchdog: robust per-slave baselines over the
//! per-request timing the network layer already measures.
//!
//! The paper's master–slave GA is synchronous per generation, so one
//! misbehaving slave stretches *every* generation — the GenHap
//! experience on heterogeneous clusters. The watchdog's job is to name
//! the sick node while the run is still going, without ever touching
//! the search itself:
//!
//! * [`FleetWatch::observe_request`] feeds one sample per completed
//!   request — round-trip time, the slave's self-reported compute time
//!   (protocol v2), and whether the request needed a retry. Each slave
//!   keeps EWMA baselines of all three.
//! * Verdicts are *fleet-relative and robust*: a slave is compared to
//!   the median of all per-slave EWMAs, normalized by the MAD across
//!   the fleet — so a uniformly slow network flags nobody, and one
//!   outlier cannot drag the baseline toward itself.
//! * A breach must persist for [`WatchConfig::confirm`] consecutive
//!   samples before a typed [`Event::SlaveAnomaly`] fires (debounce),
//!   and an equally long clean streak emits [`Event::AnomalyCleared`].
//!
//! Three anomaly classes ([`AnomalyKind`]):
//!
//! * **Straggler** — round trips consistently above the fleet (slow
//!   link or overloaded host; the node is *correct*, so the right
//!   response is de-weighting its claim share, not retirement).
//! * **Drift** — slave-reported compute time drifting from the fleet:
//!   the node itself got slower (thermal, co-tenant contention), as
//!   opposed to the path to it.
//! * **Flapping** — oscillating membership (retire→rejoin round trips)
//!   or a sustained retry rate: the node keeps dropping requests.
//!
//! The watchdog is also an [`ApiHandler`]: `GET /fleet` serves a JSON
//! rollup of every baseline and verdict, mountable standalone or via
//! `MultiRunApi::with_fleet` in `ld-net`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::Serialize;

use crate::event::{AnomalyKind, Event};
use crate::http::{ApiHandler, ApiResponse};
use crate::observer::Observer;

/// Tunables for the watchdog. The defaults are deliberately
/// conservative: flagging a healthy slave de-weights it for nothing,
/// while missing a straggler merely keeps today's behaviour.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// EWMA smoothing factor for all per-slave baselines (0..1; higher
    /// forgets faster).
    pub alpha: f64,
    /// Robust z-score (MAD-normalized distance from the fleet median)
    /// a slave's RTT/compute EWMA must exceed to breach.
    pub z_threshold: f64,
    /// Absolute floor: an RTT breach also requires the slave's EWMA to
    /// exceed the fleet median by this many milliseconds, so
    /// microsecond-scale jitter on a loopback fleet can never flag.
    pub min_excess_ms: f64,
    /// Consecutive breaching samples before an anomaly is confirmed,
    /// and consecutive clean samples before it is cleared.
    pub confirm: u32,
    /// Samples a slave must contribute before it can breach (and before
    /// its baseline joins the fleet median).
    pub min_samples: u64,
    /// EWMA retry rate (fraction of requests needing a retry) above
    /// which a slave breaches as flapping.
    pub retry_rate_threshold: f64,
    /// Membership transitions (retire or rejoin) after which a slave
    /// breaches as flapping regardless of retry rate.
    pub flap_transitions: u32,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            alpha: 0.2,
            z_threshold: 4.0,
            min_excess_ms: 2.0,
            confirm: 3,
            min_samples: 6,
            retry_rate_threshold: 0.25,
            flap_transitions: 3,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct Baseline {
    samples: u64,
    rtt_ewma_ms: f64,
    /// EWMA of |sample − mean|: a robust spread proxy kept per slave
    /// (reported in the rollup; verdicts use the cross-fleet MAD).
    rtt_dev_ms: f64,
    compute_ewma_ms: Option<f64>,
    retry_rate: f64,
    /// Retire/rejoin transitions seen.
    transitions: u32,
    /// Last computed robust z of the RTT EWMA against the fleet.
    last_rtt_z: f64,
    last_compute_z: f64,
    /// Current confirmed anomaly, if any.
    flagged: Option<AnomalyKind>,
    /// Candidate anomaly being debounced and its streak length.
    breach: Option<(AnomalyKind, u32)>,
    /// Clean samples since the last breach while flagged.
    clean_streak: u32,
    anomalies_emitted: u64,
}

struct WatchInner {
    cfg: WatchConfig,
    slaves: Mutex<BTreeMap<String, Baseline>>,
    observer: Mutex<Observer>,
    emitted_total: AtomicU64,
}

/// The fleet watchdog. Cheap to clone; clones share state, so one
/// handle can be fed by pool workers while another serves `GET /fleet`.
#[derive(Clone)]
pub struct FleetWatch {
    inner: Arc<WatchInner>,
}

impl Default for FleetWatch {
    fn default() -> Self {
        FleetWatch::new(WatchConfig::default())
    }
}

/// Robust location/scale of a set of per-slave EWMAs: (median,
/// MAD-derived sigma with a floor so homogeneous fleets divide sanely).
fn fleet_baseline(values: &mut [f64]) -> Option<(f64, f64)> {
    if values.len() < 2 {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN baselines"));
    let median = values[values.len() / 2];
    let mut devs: Vec<f64> = values.iter().map(|v| (v - median).abs()).collect();
    devs.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN deviations"));
    let mad = devs[devs.len() / 2];
    // 1.4826 · MAD ≈ σ for a normal distribution; floor the scale at
    // 10% of the median (relative noise) and an absolute 0.25 ms so a
    // sub-millisecond loopback fleet cannot produce infinite z-scores.
    let sigma = (1.4826 * mad).max(0.1 * median).max(0.25);
    Some((median, sigma))
}

impl FleetWatch {
    /// A watchdog with the given tunables.
    pub fn new(cfg: WatchConfig) -> Self {
        FleetWatch {
            inner: Arc::new(WatchInner {
                cfg,
                slaves: Mutex::new(BTreeMap::new()),
                observer: Mutex::new(Observer::disabled()),
                emitted_total: AtomicU64::new(0),
            }),
        }
    }

    /// Route confirmed verdicts into `observer` as typed
    /// [`Event::SlaveAnomaly`] / [`Event::AnomalyCleared`] events.
    pub fn set_observer(&self, observer: Observer) {
        *self.inner.observer.lock().expect("watch observer poisoned") = observer;
    }

    /// Feed one completed request: the measured round trip, the slave's
    /// self-reported compute time (protocol v2; `None` for v1 peers),
    /// and whether any retry was needed to get the answer.
    pub fn observe_request(
        &self,
        slave: &str,
        rtt: Duration,
        compute_ms: Option<f64>,
        retried: bool,
    ) {
        let cfg = self.inner.cfg.clone();
        let rtt_ms = rtt.as_secs_f64() * 1e3;
        let mut verdicts: Vec<(String, Event)> = Vec::new();
        {
            let mut slaves = self.inner.slaves.lock().expect("watch state poisoned");
            // Update this slave's baselines first.
            let b = slaves.entry(slave.to_string()).or_default();
            b.samples += 1;
            if b.samples == 1 {
                b.rtt_ewma_ms = rtt_ms;
                b.rtt_dev_ms = 0.0;
            } else {
                b.rtt_dev_ms =
                    (1.0 - cfg.alpha) * b.rtt_dev_ms + cfg.alpha * (rtt_ms - b.rtt_ewma_ms).abs();
                b.rtt_ewma_ms = (1.0 - cfg.alpha) * b.rtt_ewma_ms + cfg.alpha * rtt_ms;
            }
            if let Some(c) = compute_ms {
                b.compute_ewma_ms = Some(match b.compute_ewma_ms {
                    Some(prev) => (1.0 - cfg.alpha) * prev + cfg.alpha * c,
                    None => c,
                });
            }
            b.retry_rate =
                (1.0 - cfg.alpha) * b.retry_rate + cfg.alpha * if retried { 1.0 } else { 0.0 };

            // Fleet-relative location/scale over warmed-up peers.
            let mut rtts: Vec<f64> = slaves
                .values()
                .filter(|s| s.samples >= cfg.min_samples)
                .map(|s| s.rtt_ewma_ms)
                .collect();
            let rtt_fleet = fleet_baseline(&mut rtts);
            let mut computes: Vec<f64> = slaves
                .values()
                .filter(|s| s.samples >= cfg.min_samples)
                .filter_map(|s| s.compute_ewma_ms)
                .collect();
            let compute_fleet = fleet_baseline(&mut computes);

            let b = slaves.get_mut(slave).expect("just inserted");
            let warmed = b.samples >= cfg.min_samples;

            let mut breach: Option<(AnomalyKind, &'static str, f64, f64, f64)> = None;
            if warmed {
                if let Some((median, sigma)) = rtt_fleet {
                    b.last_rtt_z = (b.rtt_ewma_ms - median) / sigma;
                    if b.last_rtt_z > cfg.z_threshold && b.rtt_ewma_ms > median + cfg.min_excess_ms
                    {
                        breach = Some((
                            AnomalyKind::Straggler,
                            "rtt_ms",
                            b.rtt_ewma_ms,
                            median,
                            b.last_rtt_z,
                        ));
                    }
                }
                if breach.is_none() {
                    if let (Some(compute), Some((median, sigma))) =
                        (b.compute_ewma_ms, compute_fleet)
                    {
                        b.last_compute_z = (compute - median) / sigma;
                        if b.last_compute_z > cfg.z_threshold {
                            breach = Some((
                                AnomalyKind::Drift,
                                "compute_ms",
                                compute,
                                median,
                                b.last_compute_z,
                            ));
                        }
                    }
                }
                if breach.is_none()
                    && (b.retry_rate > cfg.retry_rate_threshold
                        || b.transitions >= cfg.flap_transitions)
                {
                    breach = Some((
                        AnomalyKind::Flapping,
                        if b.transitions >= cfg.flap_transitions {
                            "membership"
                        } else {
                            "retry_rate"
                        },
                        if b.transitions >= cfg.flap_transitions {
                            f64::from(b.transitions)
                        } else {
                            b.retry_rate
                        },
                        if b.transitions >= cfg.flap_transitions {
                            f64::from(cfg.flap_transitions)
                        } else {
                            cfg.retry_rate_threshold
                        },
                        0.0,
                    ));
                }
            }

            match breach {
                Some((kind, metric, value, baseline, zscore)) => {
                    b.clean_streak = 0;
                    let streak = match b.breach {
                        Some((k, n)) if k == kind => n + 1,
                        _ => 1,
                    };
                    b.breach = Some((kind, streak));
                    if streak >= cfg.confirm && b.flagged != Some(kind) {
                        b.flagged = Some(kind);
                        b.anomalies_emitted += 1;
                        self.inner.emitted_total.fetch_add(1, Ordering::Relaxed);
                        verdicts.push((
                            slave.to_string(),
                            Event::SlaveAnomaly {
                                slave: slave.to_string(),
                                kind,
                                metric: metric.to_string(),
                                value,
                                baseline,
                                zscore,
                            },
                        ));
                    }
                }
                None => {
                    b.breach = None;
                    if let Some(kind) = b.flagged {
                        b.clean_streak += 1;
                        if b.clean_streak >= cfg.confirm {
                            b.flagged = None;
                            b.clean_streak = 0;
                            verdicts.push((
                                slave.to_string(),
                                Event::AnomalyCleared {
                                    slave: slave.to_string(),
                                    kind,
                                },
                            ));
                        }
                    }
                }
            }
        }
        // Emit outside the state lock: the sink fanout may do IO.
        if !verdicts.is_empty() {
            let obs = self
                .inner
                .observer
                .lock()
                .expect("watch observer poisoned")
                .clone();
            for (_, event) in verdicts {
                obs.emit(event);
            }
        }
    }

    /// Record a membership transition: the pool retired this slave.
    pub fn note_retired(&self, slave: &str) {
        let mut slaves = self.inner.slaves.lock().expect("watch state poisoned");
        slaves.entry(slave.to_string()).or_default().transitions += 1;
    }

    /// Record a membership transition: a retired slave rejoined.
    pub fn note_rejoined(&self, slave: &str) {
        let mut slaves = self.inner.slaves.lock().expect("watch state poisoned");
        slaves.entry(slave.to_string()).or_default().transitions += 1;
    }

    /// The confirmed anomaly currently standing against `slave`, if any.
    pub fn flagged(&self, slave: &str) -> Option<AnomalyKind> {
        self.inner
            .slaves
            .lock()
            .expect("watch state poisoned")
            .get(slave)
            .and_then(|b| b.flagged)
    }

    /// Whether `slave` is currently flagged as a straggler (the claim
    /// de-weighting predicate).
    pub fn is_straggler(&self, slave: &str) -> bool {
        self.flagged(slave) == Some(AnomalyKind::Straggler)
    }

    /// Every currently flagged slave with its anomaly kind, sorted by
    /// address.
    pub fn flagged_slaves(&self) -> Vec<(String, AnomalyKind)> {
        self.inner
            .slaves
            .lock()
            .expect("watch state poisoned")
            .iter()
            .filter_map(|(addr, b)| b.flagged.map(|k| (addr.clone(), k)))
            .collect()
    }

    /// Total anomalies confirmed over the watchdog's lifetime.
    pub fn anomalies_emitted(&self) -> u64 {
        self.inner.emitted_total.load(Ordering::Relaxed)
    }

    /// The `GET /fleet` JSON rollup: every slave's baselines, robust
    /// z-scores, and standing verdicts.
    pub fn rollup_json(&self) -> String {
        let slaves = self.inner.slaves.lock().expect("watch state poisoned");
        let view = FleetRollup {
            slaves: slaves
                .iter()
                .map(|(addr, b)| SlaveRollup {
                    addr: addr.clone(),
                    samples: b.samples,
                    rtt_ewma_ms: b.rtt_ewma_ms,
                    rtt_dev_ms: b.rtt_dev_ms,
                    rtt_z: b.last_rtt_z,
                    compute_ewma_ms: b.compute_ewma_ms,
                    compute_z: b.last_compute_z,
                    retry_rate: b.retry_rate,
                    transitions: b.transitions,
                    flagged: b.flagged.map(|k| k.as_str().to_string()),
                    anomalies_emitted: b.anomalies_emitted,
                })
                .collect(),
            anomalies_emitted: self.inner.emitted_total.load(Ordering::Relaxed),
        };
        serde_json::to_string(&view).unwrap_or_else(|_| "{}".to_string())
    }
}

/// The `GET /fleet` document.
#[derive(Serialize)]
struct FleetRollup {
    slaves: Vec<SlaveRollup>,
    anomalies_emitted: u64,
}

/// One slave's row in the `/fleet` rollup.
#[derive(Serialize)]
struct SlaveRollup {
    addr: String,
    samples: u64,
    rtt_ewma_ms: f64,
    rtt_dev_ms: f64,
    rtt_z: f64,
    compute_ewma_ms: Option<f64>,
    compute_z: f64,
    retry_rate: f64,
    transitions: u32,
    flagged: Option<String>,
    anomalies_emitted: u64,
}

impl ApiHandler for FleetWatch {
    /// `GET /fleet`; declines everything else.
    fn handle(&self, method: &str, path: &str, _query: &str, _body: &[u8]) -> Option<ApiResponse> {
        if method == "GET" && path == "/fleet" {
            Some(ApiResponse::json(self.rollup_json()))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::sink::RingSink;

    fn ms(v: f64) -> Duration {
        Duration::from_secs_f64(v / 1e3)
    }

    fn watch_with_ring() -> (FleetWatch, Arc<RingSink>) {
        let watch = FleetWatch::new(WatchConfig::default());
        let ring = Arc::new(RingSink::new(256));
        watch.set_observer(Observer::new("wtest", ring.clone(), Registry::new()));
        (watch, ring)
    }

    /// Feed `n` healthy samples for two peers plus one sample stream for
    /// the slave under test.
    fn warm_peers(watch: &FleetWatch, n: usize) {
        for _ in 0..n {
            watch.observe_request("peer-a:1", ms(0.5), Some(0.4), false);
            watch.observe_request("peer-b:1", ms(0.6), Some(0.5), false);
        }
    }

    #[test]
    fn sustained_slow_rtt_confirms_a_straggler_once() {
        let (watch, ring) = watch_with_ring();
        warm_peers(&watch, 10);
        for _ in 0..12 {
            watch.observe_request("victim:1", ms(15.0), Some(0.4), false);
        }
        assert_eq!(watch.flagged("victim:1"), Some(AnomalyKind::Straggler));
        assert!(watch.is_straggler("victim:1"));
        assert!(!watch.is_straggler("peer-a:1"));

        let anomalies: Vec<_> = ring
            .events()
            .into_iter()
            .filter(|e| matches!(e.event, Event::SlaveAnomaly { .. }))
            .collect();
        assert_eq!(anomalies.len(), 1, "debounce emits exactly one verdict");
        match &anomalies[0].event {
            Event::SlaveAnomaly {
                slave,
                kind,
                metric,
                zscore,
                ..
            } => {
                assert_eq!(slave, "victim:1");
                assert_eq!(*kind, AnomalyKind::Straggler);
                assert_eq!(metric, "rtt_ms");
                assert!(*zscore > 4.0, "z={zscore}");
            }
            other => panic!("{:?}", other.kind()),
        }
        assert_eq!(watch.anomalies_emitted(), 1);
    }

    #[test]
    fn healthy_homogeneous_fleet_never_flags() {
        let (watch, ring) = watch_with_ring();
        for _ in 0..50 {
            watch.observe_request("a:1", ms(0.50), Some(0.4), false);
            watch.observe_request("b:1", ms(0.55), Some(0.45), false);
            watch.observe_request("c:1", ms(0.60), Some(0.5), false);
        }
        assert!(watch.flagged_slaves().is_empty());
        assert!(ring
            .events()
            .iter()
            .all(|e| !matches!(e.event, Event::SlaveAnomaly { .. })));
    }

    #[test]
    fn recovery_clears_the_flag_after_a_clean_streak() {
        let (watch, ring) = watch_with_ring();
        warm_peers(&watch, 10);
        for _ in 0..12 {
            watch.observe_request("victim:1", ms(15.0), None, false);
        }
        assert!(watch.is_straggler("victim:1"));
        // Back to fleet-normal round trips: EWMA decays, then the clean
        // streak clears the verdict.
        for _ in 0..60 {
            watch.observe_request("victim:1", ms(0.5), None, false);
        }
        assert_eq!(watch.flagged("victim:1"), None);
        assert!(ring
            .events()
            .iter()
            .any(|e| matches!(e.event, Event::AnomalyCleared { .. })));
    }

    #[test]
    fn compute_drift_flags_drift_not_straggler() {
        let (watch, _ring) = watch_with_ring();
        warm_peers(&watch, 10);
        // Same round trips as the fleet, but self-reported compute is an
        // order of magnitude above: the *node* is sick, not the path.
        for _ in 0..12 {
            watch.observe_request("hot:1", ms(0.55), Some(8.0), false);
        }
        assert_eq!(watch.flagged("hot:1"), Some(AnomalyKind::Drift));
    }

    #[test]
    fn membership_oscillation_flags_flapping() {
        let (watch, _ring) = watch_with_ring();
        warm_peers(&watch, 10);
        watch.note_retired("flappy:1");
        watch.note_rejoined("flappy:1");
        watch.note_retired("flappy:1");
        for _ in 0..12 {
            watch.observe_request("flappy:1", ms(0.55), None, false);
        }
        assert_eq!(watch.flagged("flappy:1"), Some(AnomalyKind::Flapping));
    }

    #[test]
    fn rollup_serves_fleet_state_over_get_fleet() {
        let (watch, _ring) = watch_with_ring();
        warm_peers(&watch, 10);
        for _ in 0..12 {
            watch.observe_request("victim:1", ms(15.0), None, false);
        }
        let resp = watch.handle("GET", "/fleet", "", &[]).expect("handled");
        assert_eq!(resp.status, 200);
        let body = resp.body;
        assert!(body.contains("\"addr\":\"victim:1\""), "{body}");
        assert!(body.contains("\"flagged\":\"straggler\""), "{body}");
        assert!(body.contains("\"anomalies_emitted\":1"), "{body}");
        // Other routes fall through.
        assert!(watch.handle("GET", "/metrics", "", &[]).is_none());
        assert!(watch.handle("POST", "/fleet", "", &[]).is_none());
    }
}
