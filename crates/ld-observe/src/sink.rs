//! Pluggable event sinks.
//!
//! A [`Sink`] receives every [`Envelope`] the [`crate::Observer`] emits.
//! Sinks must be cheap and non-blocking in spirit: the observer calls
//! them synchronously on whatever thread produced the event (engine loop,
//! scheduler, pool worker), so anything slow should buffer internally.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::event::Envelope;
use crate::metrics::{Counter, Registry};

/// Name of the shared ring-overflow counter family. Labelled by `ring`
/// (`"events"` for a [`RingSink`], `"spans"` for the observer's
/// `SpanTree`, `"flight"` for the flight recorder).
pub const EVENTS_DROPPED_METRIC: &str = "ld_observe_events_dropped_total";

pub(crate) const EVENTS_DROPPED_HELP: &str =
    "Entries discarded by a bounded observability ring at capacity.";

/// Register the `ld_observe_events_dropped_total` series for one named
/// ring. Shared by every bounded ring in the crate so the label scheme
/// stays consistent.
pub(crate) fn dropped_counter(registry: &Registry, ring: &str) -> Counter {
    registry.counter_with(
        EVENTS_DROPPED_METRIC,
        EVENTS_DROPPED_HELP,
        &[("ring", ring)],
    )
}

/// Receiver of the structured event stream.
pub trait Sink: Send + Sync {
    /// Accept one event. Called synchronously from the emitting thread.
    fn accept(&self, envelope: &Envelope);

    /// Flush any buffered output (file sinks override this; the default
    /// is a no-op).
    fn flush(&self) {}
}

/// Appends one JSON object per line to a file (JSONL / ndjson).
///
/// Lines are buffered through a [`BufWriter`]; call [`Sink::flush`] (the
/// observer does so on run finish) or drop the sink to ensure everything
/// reaches disk.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncating) the JSONL file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn accept(&self, envelope: &Envelope) {
        if let Ok(line) = serde_json::to_string(envelope) {
            let mut w = self.writer.lock().unwrap();
            let _ = w.write_all(line.as_bytes());
            let _ = w.write_all(b"\n");
        }
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

/// Bounded in-memory ring buffer, for tests and post-mortem capture.
///
/// Keeps the most recent `capacity` envelopes; older ones are dropped
/// and counted, so a truncated capture is self-describing
/// ([`RingSink::dropped`]).
pub struct RingSink {
    buf: Mutex<VecDeque<Envelope>>,
    capacity: usize,
    dropped: AtomicU64,
    drop_metric: OnceLock<Counter>,
}

impl RingSink {
    /// A ring holding at most `capacity` events (`capacity` ≥ 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            drop_metric: OnceLock::new(),
        }
    }

    /// Mirror overflow drops into `registry` as
    /// `ld_observe_events_dropped_total{ring="events"}`. First call wins.
    pub fn attach_drop_metric(&self, registry: &Registry) {
        let _ = self.drop_metric.set(dropped_counter(registry, "events"));
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<Envelope> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// Drain and return the retained events, oldest first.
    pub fn take(&self) -> Vec<Envelope> {
        self.buf.lock().unwrap().drain(..).collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Envelopes discarded at capacity over the ring's lifetime (not
    /// reset by [`RingSink::take`]).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Sink for RingSink {
    fn accept(&self, envelope: &Envelope) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(metric) = self.drop_metric.get() {
                metric.inc();
            }
        }
        buf.push_back(envelope.clone());
    }
}

/// Human-oriented single-line printer to stderr.
///
/// Format: `[<run_id> g<generation> b<batch_id>] <kind> <payload json>`.
#[derive(Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn accept(&self, envelope: &Envelope) {
        let payload = serde_json::to_string(&envelope.event).unwrap_or_default();
        eprintln!(
            "[{} g{} b{}] {} {}",
            envelope.run_id,
            envelope.generation,
            envelope.batch_id,
            envelope.event.kind(),
            payload,
        );
    }
}

/// Forwards every event to each wrapped sink, in order.
pub struct FanoutSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl FanoutSink {
    /// Compose `sinks` into one.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl Sink for FanoutSink {
    fn accept(&self, envelope: &Envelope) {
        for sink in &self.sinks {
            sink.accept(envelope);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn env(n: u64) -> Envelope {
        Envelope {
            ts_ms: n,
            run_id: "t".into(),
            generation: 0,
            batch_id: n,
            event: Event::GenerationStarted,
        }
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let ring = RingSink::new(3);
        assert_eq!(ring.dropped(), 0);
        for n in 0..5 {
            ring.accept(&env(n));
        }
        let kept: Vec<u64> = ring.events().iter().map(|e| e.batch_id).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.take().len(), 3);
        assert!(ring.is_empty());
        // take() does not reset the lifetime drop count.
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn ring_drops_are_mirrored_into_the_registry() {
        let registry = Registry::new();
        let ring = RingSink::new(2);
        ring.attach_drop_metric(&registry);
        for n in 0..5 {
            ring.accept(&env(n));
        }
        assert_eq!(ring.dropped(), 3);
        let text = registry.prometheus();
        assert!(
            text.contains("ld_observe_events_dropped_total{ring=\"events\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("ld-observe-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("events-{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.accept(&env(1));
            sink.accept(&env(2));
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let back: Envelope = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(back.ts_ms, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fanout_forwards_to_all() {
        let a = Arc::new(RingSink::new(8));
        let b = Arc::new(RingSink::new(8));
        let fan = FanoutSink::new(vec![a.clone() as Arc<dyn Sink>, b.clone()]);
        fan.accept(&env(9));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
