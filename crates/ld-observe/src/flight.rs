//! Flight recorder: black-box capture of the event stream for crash
//! forensics.
//!
//! A [`FlightRecorder`] is a [`Sink`] — attach it to an observer's
//! fanout and it keeps the most recent `capacity` envelopes in a bounded
//! ring, counting what it discards. Unlike [`crate::RingSink`] (a test
//! helper), the recorder knows how to *persist* itself: an atomic
//! tmp+rename JSONL dump fires
//!
//! * on demand ([`FlightRecorder::dump`]),
//! * from an installed panic hook ([`FlightRecorder::install_panic_hook`]),
//! * the moment a typed fatal [`Event::EvalFatal`] passes through the
//!   sink (all workers failed with no fallback, store recovery failure),
//! * and optionally on a cadence ([`FlightRecorder::persist_every`]) so
//!   a dump survives even deaths no hook can observe (SIGKILL/SIGABRT).
//!
//! Every dump ends with a synthetic [`Event::FlightDumped`] trailer
//! carrying the reason, the event count, and the ring's lifetime drop
//! count — so a truncated dump is self-describing, and the file stays
//! pure JSONL-of-envelopes (readable by `trace-summary`,
//! `dynamics-summary`, and the `postmortem` bin alike).
//!
//! [`Postmortem`] is the offline half: it folds a dump back into a
//! human-readable timeline — the last N generations, the span tail, and
//! per-slave state right before the end — without re-running anything.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

use crate::event::{Envelope, Event};
use crate::metrics::{Counter, Registry};
use crate::sink::{dropped_counter, Sink};

/// Default ring capacity: enough for the full event stream of the last
/// few dozen generations of a mid-size run (spans included) while
/// staying a few MB in memory.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 16_384;

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

struct FlightInner {
    buf: Mutex<VecDeque<Envelope>>,
    capacity: usize,
    dropped: AtomicU64,
    drop_metric: OnceLock<Counter>,
    /// Default dump destination for the panic hook, fatal-event trigger,
    /// and periodic persister.
    path: Mutex<Option<PathBuf>>,
}

/// Bounded, drop-counting black box over the full event stream. Cheap to
/// clone; clones share state (so one handle can sit in a sink fanout
/// while another lives in a panic hook).
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` envelopes
    /// (`capacity` ≥ 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(FlightInner {
                buf: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
                capacity: capacity.max(1),
                dropped: AtomicU64::new(0),
                drop_metric: OnceLock::new(),
                path: Mutex::new(None),
            }),
        }
    }

    /// Builder: set the default dump path (see [`FlightRecorder::set_path`]).
    pub fn with_path<P: Into<PathBuf>>(self, path: P) -> Self {
        self.set_path(path);
        self
    }

    /// Set the default dump destination used by the panic hook, the
    /// fatal-event trigger, and [`FlightRecorder::dump`].
    pub fn set_path<P: Into<PathBuf>>(&self, path: P) {
        *self.inner.path.lock().expect("flight path poisoned") = Some(path.into());
    }

    /// The configured default dump destination, if any.
    pub fn path(&self) -> Option<PathBuf> {
        self.inner
            .path
            .lock()
            .expect("flight path poisoned")
            .clone()
    }

    /// Mirror ring overflow into `registry` as
    /// `ld_observe_events_dropped_total{ring="flight"}`. First call wins.
    pub fn attach_drop_metric(&self, registry: &Registry) {
        let _ = self
            .inner
            .drop_metric
            .set(dropped_counter(registry, "flight"));
    }

    /// Envelopes currently retained.
    pub fn len(&self) -> usize {
        self.inner.buf.lock().expect("flight ring poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Envelopes discarded at capacity over the recorder's lifetime.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of the retained envelopes, oldest first.
    pub fn events(&self) -> Vec<Envelope> {
        self.inner
            .buf
            .lock()
            .expect("flight ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Persist the ring to the configured default path. Returns the path
    /// written. Errors if no path was configured.
    pub fn dump(&self, reason: &str) -> std::io::Result<PathBuf> {
        let path = self.path().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "flight recorder has no dump path configured",
            )
        })?;
        self.dump_to(&path, reason)?;
        Ok(path)
    }

    /// Persist the ring to `path` as JSONL, atomically: the dump is
    /// written to `<path>.tmp`, fsynced, and renamed into place, so a
    /// reader never observes a half-written file and a crash mid-dump
    /// leaves any previous dump intact.
    pub fn dump_to(&self, path: &Path, reason: &str) -> std::io::Result<()> {
        // Snapshot under the lock, serialize outside it: a dump must not
        // stall the emitting threads for the duration of the disk write.
        let events = self.events();
        let dropped = self.dropped();
        let last = events.last();
        let trailer = Envelope {
            ts_ms: now_ms(),
            run_id: last.map(|e| e.run_id.clone()).unwrap_or_default(),
            generation: last.map(|e| e.generation).unwrap_or(0),
            batch_id: 0,
            event: Event::FlightDumped {
                path: path.display().to_string(),
                reason: reason.to_string(),
                events: events.len() as u64,
                dropped,
            },
        };

        let tmp = path.with_extension("jsonl.tmp");
        {
            let file = std::fs::File::create(&tmp)?;
            let mut w = std::io::BufWriter::new(file);
            for env in &events {
                let line = serde_json::to_string(env)
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
                w.write_all(line.as_bytes())?;
                w.write_all(b"\n")?;
            }
            let line = serde_json::to_string(&trailer)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Install a panic hook that dumps the ring to the configured path
    /// before delegating to the previously installed hook. The hook holds
    /// a clone of this recorder, so the ring stays alive for as long as
    /// the hook does. Call at most once per process.
    pub fn install_panic_hook(&self) {
        let recorder = self.clone();
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            let _ = recorder.dump(&format!("panic: {msg}"));
            previous(info);
        }));
    }

    /// Spawn a thread rewriting the dump at the configured path every
    /// `interval` until the returned handle is dropped or stopped. A
    /// final dump happens on stop. Because each rewrite is atomic, the
    /// on-disk dump is always consistent — this is what survives a
    /// SIGKILL/SIGABRT no panic hook can observe.
    pub fn persist_every(&self, interval: Duration) -> FlightPersistHandle {
        let recorder = self.clone();
        let (tx, rx) = mpsc::channel::<()>();
        let thread = std::thread::spawn(move || loop {
            let stop = matches!(
                rx.recv_timeout(interval),
                Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected)
            );
            let reason = if stop { "final" } else { "periodic" };
            let _ = recorder.dump(reason);
            if stop {
                break;
            }
        });
        FlightPersistHandle {
            stop_tx: Some(tx),
            thread: Some(thread),
        }
    }
}

impl Sink for FlightRecorder {
    fn accept(&self, envelope: &Envelope) {
        {
            let mut buf = self.inner.buf.lock().expect("flight ring poisoned");
            if buf.len() == self.inner.capacity {
                buf.pop_front();
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
                if let Some(metric) = self.inner.drop_metric.get() {
                    metric.inc();
                }
            }
            buf.push_back(envelope.clone());
        }
        // A typed fatal is the black box's trigger: persist immediately,
        // while the process is still standing. Best-effort — a dump
        // failure must not turn a fatal into a panic.
        if let Event::EvalFatal { detail } = &envelope.event {
            let _ = self.dump(&format!("fatal: {detail}"));
        }
    }

    fn flush(&self) {
        if self.path().is_some() {
            let _ = self.dump("flush");
        }
    }
}

/// Stops and joins the periodic persist thread on drop, after one final
/// dump.
pub struct FlightPersistHandle {
    stop_tx: Option<mpsc::Sender<()>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl FlightPersistHandle {
    /// Stop the persister after one final dump, blocking until it exits.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(tx) = self.stop_tx.take() {
            let _ = tx.send(());
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FlightPersistHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------
// Postmortem: folding a dump back into a timeline.
// ---------------------------------------------------------------------

/// One generation's forensic summary inside a [`Postmortem`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GenerationForensics {
    /// Generation number.
    pub generation: u64,
    /// Whether a `GenerationFinished` was seen (false = the run died
    /// inside this generation).
    pub finished: bool,
    /// `improved` flag from `GenerationFinished`, when seen.
    #[serde(default)]
    pub improved: Option<bool>,
    /// Engine wall clock of the generation, ms, when seen.
    #[serde(default)]
    pub wall_ms: Option<f64>,
    /// Scheduler batches dispatched during the generation.
    pub batches: u64,
    /// Fault-recovery events (retries, retirements, rejoins, requeues,
    /// fallbacks) during the generation.
    pub fault_events: u64,
    /// Non-span, non-dynamics event kinds worth reading, in order
    /// (`"slave_anomaly(straggler) 10.0.0.1:7171"`, `"store_recovered"`,
    /// ...).
    pub notable: Vec<String>,
}

/// Per-slave state right before the end of the stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlaveForensics {
    /// Slave address.
    pub addr: String,
    /// Request retries charged to the slave.
    pub retries: u64,
    /// Jobs requeued after its failures.
    pub requeued: u64,
    /// Whether the slave's last membership transition was a retirement.
    pub retired: bool,
    /// Retire→rejoin round trips observed.
    pub rejoins: u64,
    /// Anomaly verdicts, as `"<kind>@g<generation>"`, cleared ones
    /// suffixed `"(cleared)"`.
    pub anomalies: Vec<String>,
}

/// One span in the tail of a dump.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpanTailEntry {
    /// Span taxonomy name.
    pub name: String,
    /// Generation the span belonged to.
    pub generation: u64,
    /// Duration, milliseconds.
    pub duration_ms: f64,
}

/// Offline fold of a flight-recorder dump — the `postmortem` bin's
/// engine, shaped like [`crate::TraceSummary`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Postmortem {
    /// Run the dump belongs to (first non-empty `run_id` seen).
    pub run_id: String,
    /// Why the dump fired, from the `FlightDumped` trailer if present.
    #[serde(default)]
    pub reason: Option<String>,
    /// Envelopes parsed (excluding the trailer).
    pub events: u64,
    /// Ring drops reported by the trailer (the stream prefix lost before
    /// the dump).
    pub dropped: u64,
    /// Lines that failed to parse as envelopes (a torn dump tail).
    pub unparseable: u64,
    /// First event timestamp, ms since epoch.
    pub first_ts_ms: u64,
    /// Last event timestamp, ms since epoch.
    pub last_ts_ms: u64,
    /// Highest generation with any event in the dump.
    pub last_generation: u64,
    /// The last N generations, ascending.
    pub generations: Vec<GenerationForensics>,
    /// Per-slave state, sorted by address.
    pub slaves: Vec<SlaveForensics>,
    /// The last spans closed before the end, oldest first.
    pub span_tail: Vec<SpanTailEntry>,
    /// `EvalFatal` details, in order.
    pub fatals: Vec<String>,
}

/// Generations retained in a rendered postmortem by default.
pub const DEFAULT_LAST_GENERATIONS: usize = 8;

/// Spans retained in the postmortem tail.
const SPAN_TAIL_LEN: usize = 12;

impl Postmortem {
    /// Fold a dump's JSONL text, keeping the last `last_n` generations.
    /// Unparseable lines are counted, not fatal — a dump from a dying
    /// process may have a torn tail.
    pub fn from_jsonl(text: &str, last_n: usize) -> Postmortem {
        let mut envelopes: Vec<Envelope> = Vec::new();
        let mut unparseable = 0u64;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<Envelope>(line) {
                Ok(env) => envelopes.push(env),
                Err(_) => unparseable += 1,
            }
        }

        let mut run_id = String::new();
        let mut reason = None;
        let mut dropped = 0u64;
        let mut fatals = Vec::new();
        let mut gens: BTreeMap<u64, GenerationForensics> = BTreeMap::new();
        let mut slaves: BTreeMap<String, SlaveForensics> = BTreeMap::new();
        let mut span_tail: VecDeque<SpanTailEntry> = VecDeque::new();
        let mut events = 0u64;

        for env in &envelopes {
            if run_id.is_empty() && !env.run_id.is_empty() {
                run_id = env.run_id.clone();
            }
            if let Event::FlightDumped {
                reason: r,
                dropped: d,
                ..
            } = &env.event
            {
                reason = Some(r.clone());
                dropped = dropped.max(*d);
                continue; // the trailer describes the dump, not the run
            }
            events += 1;
            let gen = gens
                .entry(env.generation)
                .or_insert_with(|| GenerationForensics {
                    generation: env.generation,
                    finished: false,
                    improved: None,
                    wall_ms: None,
                    batches: 0,
                    fault_events: 0,
                    notable: Vec::new(),
                });
            if env.event.is_fault_event() {
                gen.fault_events += 1;
            }
            match &env.event {
                Event::GenerationFinished {
                    improved, wall_ms, ..
                } => {
                    gen.finished = true;
                    gen.improved = Some(*improved);
                    gen.wall_ms = Some(*wall_ms);
                }
                Event::BatchDispatched { .. } => gen.batches += 1,
                Event::SpanClosed {
                    name, duration_ns, ..
                } => {
                    if span_tail.len() == SPAN_TAIL_LEN {
                        span_tail.pop_front();
                    }
                    span_tail.push_back(SpanTailEntry {
                        name: name.clone(),
                        generation: env.generation,
                        duration_ms: *duration_ns as f64 / 1e6,
                    });
                }
                Event::EvalFatal { detail } => {
                    fatals.push(detail.clone());
                    gen.notable.push(format!("eval_fatal: {detail}"));
                }
                Event::RequestRetried { slave, .. } => {
                    let s = slaves
                        .entry(slave.clone())
                        .or_insert_with(|| empty_slave(slave));
                    s.retries += 1;
                }
                Event::JobRequeued { slave } => {
                    let s = slaves
                        .entry(slave.clone())
                        .or_insert_with(|| empty_slave(slave));
                    s.requeued += 1;
                }
                Event::SlaveRetired { slave } => {
                    let s = slaves
                        .entry(slave.clone())
                        .or_insert_with(|| empty_slave(slave));
                    s.retired = true;
                    gen.notable.push(format!("slave_retired {slave}"));
                }
                Event::SlaveRejoined { slave } => {
                    let s = slaves
                        .entry(slave.clone())
                        .or_insert_with(|| empty_slave(slave));
                    s.retired = false;
                    s.rejoins += 1;
                    gen.notable.push(format!("slave_rejoined {slave}"));
                }
                Event::SlaveJoined { slave } => {
                    slaves
                        .entry(slave.clone())
                        .or_insert_with(|| empty_slave(slave));
                }
                Event::SlaveAnomaly { slave, kind, .. } => {
                    let s = slaves
                        .entry(slave.clone())
                        .or_insert_with(|| empty_slave(slave));
                    s.anomalies
                        .push(format!("{}@g{}", kind.as_str(), env.generation));
                    gen.notable
                        .push(format!("slave_anomaly({}) {slave}", kind.as_str()));
                }
                Event::AnomalyCleared { slave, kind } => {
                    let s = slaves
                        .entry(slave.clone())
                        .or_insert_with(|| empty_slave(slave));
                    s.anomalies
                        .push(format!("{}@g{}(cleared)", kind.as_str(), env.generation));
                }
                Event::StoreRecovered { .. }
                | Event::FallbackActivated { .. }
                | Event::Stagnation { .. }
                | Event::Converged { .. }
                | Event::RunResumed { .. } => {
                    gen.notable.push(env.event.kind().to_string());
                }
                _ => {}
            }
        }

        let last_generation = gens.keys().next_back().copied().unwrap_or(0);
        let keep = last_n.max(1);
        let generations: Vec<GenerationForensics> = gens
            .into_values()
            .rev()
            .take(keep)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();

        Postmortem {
            run_id,
            reason,
            events,
            dropped,
            unparseable,
            first_ts_ms: envelopes.first().map(|e| e.ts_ms).unwrap_or(0),
            last_ts_ms: envelopes.last().map(|e| e.ts_ms).unwrap_or(0),
            last_generation,
            generations,
            slaves: slaves.into_values().collect(),
            span_tail: span_tail.into_iter().collect(),
            fatals,
        }
    }

    /// Render the postmortem as a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "flight dump: run {:?} — {} events ({} dropped before capture, {} unparseable lines)\n",
            self.run_id, self.events, self.dropped, self.unparseable
        ));
        if let Some(reason) = &self.reason {
            out.push_str(&format!("dump reason: {reason}\n"));
        }
        out.push_str(&format!(
            "time range: {} ms .. {} ms ({} ms covered), last generation {}\n",
            self.first_ts_ms,
            self.last_ts_ms,
            self.last_ts_ms.saturating_sub(self.first_ts_ms),
            self.last_generation
        ));

        out.push_str(&format!("\nlast {} generations:\n", self.generations.len()));
        for g in &self.generations {
            let status = if g.finished {
                format!(
                    "finished improved={} wall={:.1}ms",
                    g.improved.unwrap_or(false),
                    g.wall_ms.unwrap_or(0.0)
                )
            } else {
                "UNFINISHED (stream ends inside this generation)".to_string()
            };
            out.push_str(&format!(
                "  gen {:>4}  {status}  batches={} faults={}\n",
                g.generation, g.batches, g.fault_events
            ));
            for note in &g.notable {
                out.push_str(&format!("            • {note}\n"));
            }
        }

        if !self.slaves.is_empty() {
            out.push_str("\nper-slave state:\n");
            for s in &self.slaves {
                out.push_str(&format!(
                    "  {}  retries={} requeued={} rejoins={} retired={}{}\n",
                    s.addr,
                    s.retries,
                    s.requeued,
                    s.rejoins,
                    if s.retired { "yes" } else { "no" },
                    if s.anomalies.is_empty() {
                        String::new()
                    } else {
                        format!(" anomalies=[{}]", s.anomalies.join(", "))
                    }
                ));
            }
        }

        if !self.span_tail.is_empty() {
            out.push_str("\nspan tail (most recent last):\n");
            for sp in &self.span_tail {
                out.push_str(&format!(
                    "  g{:<4} {:<14} {:>9.3} ms\n",
                    sp.generation, sp.name, sp.duration_ms
                ));
            }
        }

        if !self.fatals.is_empty() {
            out.push_str("\nfatal errors:\n");
            for f in &self.fatals {
                out.push_str(&format!("  ✗ {f}\n"));
            }
        }
        out
    }

    /// Pretty-printed JSON of the fold (what CI uploads as artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

fn empty_slave(addr: &str) -> SlaveForensics {
    SlaveForensics {
        addr: addr.to_string(),
        retries: 0,
        requeued: 0,
        retired: false,
        rejoins: 0,
        anomalies: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AnomalyKind;

    fn env(gen: u64, event: Event) -> Envelope {
        Envelope {
            ts_ms: 1000 + gen,
            run_id: "r1".into(),
            generation: gen,
            batch_id: 0,
            event,
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ld-flight-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn ring_counts_drops_and_dump_roundtrips() {
        let rec = FlightRecorder::new(3);
        for g in 0..5 {
            rec.accept(&env(g, Event::GenerationStarted));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);

        let path = temp_path("roundtrip");
        rec.dump_to(&path, "on-demand").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "3 events + trailer");
        let trailer: Envelope = serde_json::from_str(lines[3]).unwrap();
        match trailer.event {
            Event::FlightDumped {
                events,
                dropped,
                reason,
                ..
            } => {
                assert_eq!(events, 3);
                assert_eq!(dropped, 2);
                assert_eq!(reason, "on-demand");
            }
            other => panic!("trailer was {:?}", other.kind()),
        }
        // No half-written tmp left behind.
        assert!(!path.with_extension("jsonl.tmp").exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fatal_event_triggers_a_dump() {
        let path = temp_path("fatal");
        std::fs::remove_file(&path).ok();
        let rec = FlightRecorder::new(8).with_path(&path);
        rec.accept(&env(4, Event::GenerationStarted));
        assert!(!path.exists(), "no dump before the fatal");
        rec.accept(&env(
            4,
            Event::EvalFatal {
                detail: "all 2 workers failed".into(),
            },
        ));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"EvalFatal\""), "{text}");
        assert!(text.contains("fatal: all 2 workers failed"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn panic_hook_dumps_before_unwinding_continues() {
        let path = temp_path("panic");
        std::fs::remove_file(&path).ok();
        let rec = FlightRecorder::new(8).with_path(&path);
        rec.accept(&env(7, Event::GenerationStarted));
        rec.install_panic_hook();
        let result = std::panic::catch_unwind(|| panic!("injected test panic"));
        assert!(result.is_err());
        // Restore the default hook so later test panics print normally.
        let _ = std::panic::take_hook();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("panic: injected test panic"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn periodic_persister_leaves_a_consistent_dump() {
        let path = temp_path("periodic");
        std::fs::remove_file(&path).ok();
        let rec = FlightRecorder::new(64).with_path(&path);
        rec.accept(&env(1, Event::GenerationStarted));
        let handle = rec.persist_every(Duration::from_millis(5));
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while !path.exists() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(path.exists(), "periodic persister never wrote a dump");
        handle.stop();
        let text = std::fs::read_to_string(&path).unwrap();
        let last = text.lines().last().unwrap();
        let trailer: Envelope = serde_json::from_str(last).unwrap();
        assert!(matches!(trailer.event, Event::FlightDumped { .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn postmortem_folds_a_dump_into_a_timeline() {
        let mut stream = Vec::new();
        for g in 1..=3u64 {
            stream.push(env(g, Event::GenerationStarted));
            stream.push(env(
                g,
                Event::BatchDispatched {
                    phase: "crossover".into(),
                    requested: 10,
                    coalesced: 0,
                    cache_hits: 2,
                    dispatched: 8,
                },
            ));
            stream.push(env(
                g,
                Event::SpanClosed {
                    name: "generation".into(),
                    id: g,
                    parent: 0,
                    start_ns: g * 1000,
                    duration_ns: 2_500_000,
                },
            ));
            if g < 3 {
                stream.push(env(
                    g,
                    Event::GenerationFinished {
                        improved: g == 1,
                        best_per_size: vec![1.0],
                        wall_ms: 3.5,
                    },
                ));
            }
        }
        stream.push(env(
            2,
            Event::SlaveAnomaly {
                slave: "10.0.0.9:7171".into(),
                kind: AnomalyKind::Straggler,
                metric: "rtt_ms".into(),
                value: 18.0,
                baseline: 0.5,
                zscore: 9.0,
            },
        ));
        stream.push(env(
            3,
            Event::EvalFatal {
                detail: "all workers failed".into(),
            },
        ));

        let rec = FlightRecorder::new(64);
        for e in &stream {
            rec.accept(e);
        }
        let path = temp_path("postmortem");
        rec.dump_to(&path, "fatal: all workers failed").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let pm = Postmortem::from_jsonl(&text, 8);
        assert_eq!(pm.run_id, "r1");
        assert_eq!(pm.reason.as_deref(), Some("fatal: all workers failed"));
        assert_eq!(pm.last_generation, 3);
        assert_eq!(pm.unparseable, 0);
        // The last generation never finished: the stream died inside it.
        let last = pm.generations.last().unwrap();
        assert_eq!(last.generation, 3);
        assert!(!last.finished);
        assert_eq!(pm.fatals, vec!["all workers failed".to_string()]);
        let sick = pm
            .slaves
            .iter()
            .find(|s| s.addr == "10.0.0.9:7171")
            .unwrap();
        assert_eq!(sick.anomalies, vec!["straggler@g2".to_string()]);
        assert!(!sick.retired);

        let rendered = pm.render();
        assert!(rendered.contains("UNFINISHED"), "{rendered}");
        assert!(rendered.contains("slave_anomaly(straggler)"), "{rendered}");
        assert!(rendered.contains("eval_fatal"), "{rendered}");

        // Torn tail: truncating mid-line costs exactly one unparseable
        // line, never the whole dump.
        let torn = &text[..text.len() - 20];
        let pm2 = Postmortem::from_jsonl(torn, 8);
        assert_eq!(pm2.unparseable, 1);
        assert!(pm2.events > 0);
    }
}
