//! Post-hoc latency attribution: turn a run's `SpanClosed` stream into
//! a per-generation critical path.
//!
//! The span tree records overlapping intervals (N pool workers × M
//! requests inside one dispatch), so raw hop sums exceed wall time on
//! any parallel run. [`TraceSummary`] therefore attributes
//! *proportionally*: for each batch, the per-request hop sums (queue
//! wait, send, round-trip, retry backoff) are scaled by
//! `dispatch_wall / (queue + send + roundtrip + retry)` so the
//! attributed hops sum exactly to the measured dispatch wall — each hop
//! gets the share of real time it was responsible for. Slave compute is
//! carved out of the round-trip (a v2 slave reports its own
//! microseconds; what remains is network + serialization); the
//! scheduler's own share (`coalesce`/`cache`/`apply`/bookkeeping) is
//! the batch wall minus dispatch. By construction
//! `queue + network + compute + retry + master == eval share`, which is
//! what the acceptance check in `ld-net/tests/observed_fault_run.rs`
//! verifies end-to-end.

use std::collections::BTreeMap;

use serde::Serialize;

use crate::event::{Envelope, Event};
use crate::span::names;

/// Where one generation's evaluation time went, attributed (see module
/// docs); all values in milliseconds.
#[derive(Debug, Clone, Serialize)]
pub struct GenerationBreakdown {
    /// Engine generation (0 = initial-population evaluation).
    pub generation: u64,
    /// Wall time of the whole generation (the `generation` span; for
    /// generation 0 there is none and this equals `eval_ms`).
    pub wall_ms: f64,
    /// `wall_ms` as the engine itself recorded it in
    /// `GenerationFinished` (0 when absent) — a cross-check, not an
    /// input.
    pub reported_wall_ms: f64,
    /// Time inside `EvalService` batches (the evaluation share of the
    /// generation).
    pub eval_ms: f64,
    /// Attributed worker wait for jobs (lock + condvar).
    pub queue_ms: f64,
    /// Attributed network + serialization (send + round-trip minus the
    /// slave's own compute).
    pub network_ms: f64,
    /// Attributed evaluation compute (slave-reported for v2 remotes,
    /// worker-measured for local backends, whole-dispatch for
    /// uninstrumented backends).
    pub compute_ms: f64,
    /// Attributed retry backoff overhead.
    pub retry_ms: f64,
    /// Master-side share of the eval path: coalesce + cache probe +
    /// apply + scheduler bookkeeping (batch wall minus dispatch wall).
    pub master_ms: f64,
    /// Engine work outside the eval path (selection, breeding operators,
    /// replacement, adaptation): `wall_ms - eval_ms`.
    pub engine_ms: f64,
    /// Scheduler batches in this generation.
    pub batches: u64,
}

impl GenerationBreakdown {
    /// Sum of attributed hop times — equals `eval_ms` by construction
    /// (up to float rounding); the acceptance criterion checks it stays
    /// within 10%.
    pub fn hop_sum_ms(&self) -> f64 {
        self.queue_ms + self.network_ms + self.compute_ms + self.retry_ms + self.master_ms
    }

    /// One human line, e.g.
    /// `gen 42: eval 11.1 ms — 78% compute, 9% network, 6% queue, 0% retry, 7% master`.
    pub fn critical_path_line(&self) -> String {
        if self.eval_ms <= 0.0 {
            return format!("gen {}: no evaluation time recorded", self.generation);
        }
        let pct = |v: f64| (100.0 * v / self.eval_ms).round();
        format!(
            "gen {}: wall {:.2} ms, eval {:.2} ms — {:.0}% compute, {:.0}% network, \
             {:.0}% queue, {:.0}% retry, {:.0}% master",
            self.generation,
            self.wall_ms,
            self.eval_ms,
            pct(self.compute_ms),
            pct(self.network_ms),
            pct(self.queue_ms),
            pct(self.retry_ms),
            pct(self.master_ms),
        )
    }
}

/// Per-batch raw hop sums, accumulated from `SpanClosed` events.
#[derive(Default, Clone, Copy)]
struct BatchHops {
    dispatch_ns: f64,
    queue_ns: f64,
    send_ns: f64,
    roundtrip_ns: f64,
    retry_ns: f64,
    compute_ns: f64,
}

/// Per-generation accumulator.
#[derive(Default)]
struct GenAcc {
    wall_ns: f64,
    reported_wall_ms: f64,
    eval_ns: f64,
    batches: BTreeMap<u64, BatchHops>,
}

/// A whole run's latency attribution, one row per generation.
#[derive(Debug, Clone, Serialize)]
pub struct TraceSummary {
    /// Run id from the first envelope (empty for an empty stream).
    pub run_id: String,
    /// Per-generation breakdowns, ascending.
    pub generations: Vec<GenerationBreakdown>,
}

impl TraceSummary {
    /// Build the attribution from a run's envelopes (order-insensitive;
    /// only `SpanClosed` and `GenerationFinished` events are read).
    pub fn from_envelopes(envelopes: &[Envelope]) -> TraceSummary {
        let mut gens: BTreeMap<u64, GenAcc> = BTreeMap::new();
        let mut run_id = String::new();
        for env in envelopes {
            if run_id.is_empty() {
                run_id = env.run_id.clone();
            }
            match &env.event {
                Event::SpanClosed {
                    name, duration_ns, ..
                } => {
                    let acc = gens.entry(env.generation).or_default();
                    let d = *duration_ns as f64;
                    match name.as_str() {
                        names::GENERATION => acc.wall_ns += d,
                        names::BATCH => acc.eval_ns += d,
                        names::DISPATCH => acc.hops(env.batch_id).dispatch_ns += d,
                        names::QUEUE => acc.hops(env.batch_id).queue_ns += d,
                        names::NET_SEND => acc.hops(env.batch_id).send_ns += d,
                        names::NET_ROUNDTRIP => acc.hops(env.batch_id).roundtrip_ns += d,
                        names::NET_RETRY => acc.hops(env.batch_id).retry_ns += d,
                        names::COMPUTE => acc.hops(env.batch_id).compute_ns += d,
                        _ => {}
                    }
                }
                Event::GenerationFinished { wall_ms, .. } => {
                    gens.entry(env.generation).or_default().reported_wall_ms = *wall_ms;
                }
                _ => {}
            }
        }

        let generations = gens
            .into_iter()
            .filter(|(_, acc)| acc.eval_ns > 0.0 || acc.wall_ns > 0.0)
            .map(|(generation, acc)| {
                let ms = 1.0 / 1e6;
                let mut queue = 0.0;
                let mut network = 0.0;
                let mut compute = 0.0;
                let mut retry = 0.0;
                let mut dispatch_total = 0.0;
                for hops in acc.batches.values() {
                    dispatch_total += hops.dispatch_ns;
                    let denom = hops.queue_ns + hops.send_ns + hops.roundtrip_ns + hops.retry_ns;
                    if denom > 0.0 {
                        // Proportional attribution: scale raw (overlapping)
                        // hop sums so they cover exactly the dispatch wall.
                        let scale = hops.dispatch_ns / denom;
                        // Slave compute lives inside the round-trip.
                        let c = hops.compute_ns.min(hops.roundtrip_ns);
                        queue += scale * hops.queue_ns;
                        network += scale * (hops.send_ns + hops.roundtrip_ns - c);
                        compute += scale * c;
                        retry += scale * hops.retry_ns;
                    } else {
                        // No per-request hops: a local (or uninstrumented)
                        // backend — the whole dispatch is compute.
                        compute += hops.dispatch_ns;
                    }
                }
                let eval_ns = if acc.eval_ns > 0.0 {
                    acc.eval_ns
                } else {
                    dispatch_total
                };
                let wall_ns = if acc.wall_ns > 0.0 {
                    acc.wall_ns
                } else {
                    eval_ns
                };
                GenerationBreakdown {
                    generation,
                    wall_ms: wall_ns * ms,
                    reported_wall_ms: acc.reported_wall_ms,
                    eval_ms: eval_ns * ms,
                    queue_ms: queue * ms,
                    network_ms: network * ms,
                    compute_ms: compute * ms,
                    retry_ms: retry * ms,
                    master_ms: (eval_ns - dispatch_total).max(0.0) * ms,
                    engine_ms: (wall_ns - eval_ns).max(0.0) * ms,
                    batches: acc.batches.len() as u64,
                }
            })
            .collect();
        TraceSummary {
            run_id,
            generations,
        }
    }

    /// Attribution restricted to one tenant's envelopes. A shared eval
    /// server interleaves many runs in one sink; each run's spans carry
    /// its own `run_id`, so filtering first recovers the same breakdown
    /// that run would have produced on a dedicated fleet.
    pub fn for_run(envelopes: &[Envelope], run_id: &str) -> TraceSummary {
        let filtered: Vec<Envelope> = envelopes
            .iter()
            .filter(|e| e.run_id == run_id)
            .cloned()
            .collect();
        Self::from_envelopes(&filtered)
    }

    /// [`TraceSummary::for_run`] over a JSONL stream.
    pub fn for_run_jsonl(text: &str, run_id: &str) -> TraceSummary {
        let envelopes: Vec<Envelope> = text
            .lines()
            .filter_map(|l| serde_json::from_str::<Envelope>(l).ok())
            .filter(|e| e.run_id == run_id)
            .collect();
        Self::from_envelopes(&envelopes)
    }

    /// Parse a JSONL event stream (one [`Envelope`] per line; lines that
    /// fail to parse are skipped) and build the attribution.
    pub fn from_jsonl(text: &str) -> TraceSummary {
        let envelopes: Vec<Envelope> = text
            .lines()
            .filter_map(|l| serde_json::from_str(l).ok())
            .collect();
        Self::from_envelopes(&envelopes)
    }

    /// Aggregate over all generations (weights by time, not by
    /// generation count).
    pub fn totals(&self) -> GenerationBreakdown {
        let mut t = GenerationBreakdown {
            generation: 0,
            wall_ms: 0.0,
            reported_wall_ms: 0.0,
            eval_ms: 0.0,
            queue_ms: 0.0,
            network_ms: 0.0,
            compute_ms: 0.0,
            retry_ms: 0.0,
            master_ms: 0.0,
            engine_ms: 0.0,
            batches: 0,
        };
        for g in &self.generations {
            t.wall_ms += g.wall_ms;
            t.reported_wall_ms += g.reported_wall_ms;
            t.eval_ms += g.eval_ms;
            t.queue_ms += g.queue_ms;
            t.network_ms += g.network_ms;
            t.compute_ms += g.compute_ms;
            t.retry_ms += g.retry_ms;
            t.master_ms += g.master_ms;
            t.engine_ms += g.engine_ms;
            t.batches += g.batches;
        }
        t
    }

    /// Human-readable report: one critical-path line per generation plus
    /// a totals footer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "run {}: {} generation(s) with recorded spans\n",
            if self.run_id.is_empty() {
                "?"
            } else {
                &self.run_id
            },
            self.generations.len()
        ));
        for g in &self.generations {
            out.push_str(&g.critical_path_line());
            out.push('\n');
        }
        if !self.generations.is_empty() {
            let t = self.totals();
            out.push_str("--\n");
            out.push_str(&format!(
                "total: wall {:.2} ms, eval {:.2} ms ({} batches) — \
                 compute {:.2} ms, network {:.2} ms, queue {:.2} ms, retry {:.2} ms, \
                 master {:.2} ms, engine {:.2} ms\n",
                t.wall_ms,
                t.eval_ms,
                t.batches,
                t.compute_ms,
                t.network_ms,
                t.queue_ms,
                t.retry_ms,
                t.master_ms,
                t.engine_ms,
            ));
        }
        out
    }

    /// Pretty-printed JSON export.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

impl GenAcc {
    fn hops(&mut self, batch_id: u64) -> &mut BatchHops {
        self.batches.entry(batch_id).or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(generation: u64, batch_id: u64, event: Event) -> Envelope {
        Envelope {
            ts_ms: 0,
            run_id: "r".into(),
            generation,
            batch_id,
            event,
        }
    }

    fn span(name: &str, duration_ns: u64) -> Event {
        Event::SpanClosed {
            name: name.into(),
            id: 0,
            parent: 0,
            start_ns: 0,
            duration_ns,
        }
    }

    #[test]
    fn attributed_hops_sum_to_the_eval_share() {
        // One generation, one batch: 10 ms batch, 8 ms dispatch; raw hop
        // sums are 2x the dispatch (two overlapping workers).
        let events = vec![
            env(1, 0, span(names::GENERATION, 12_000_000)),
            env(1, 1, span(names::BATCH, 10_000_000)),
            env(1, 1, span(names::DISPATCH, 8_000_000)),
            env(1, 1, span(names::QUEUE, 2_000_000)),
            env(1, 1, span(names::NET_SEND, 1_000_000)),
            env(1, 1, span(names::NET_ROUNDTRIP, 12_000_000)),
            env(1, 1, span(names::NET_RETRY, 1_000_000)),
            env(1, 1, span(names::COMPUTE, 9_000_000)),
        ];
        let summary = TraceSummary::from_envelopes(&events);
        assert_eq!(summary.generations.len(), 1);
        let g = &summary.generations[0];
        assert_eq!(g.batches, 1);
        assert!((g.eval_ms - 10.0).abs() < 1e-9);
        assert!((g.master_ms - 2.0).abs() < 1e-9, "batch - dispatch");
        assert!((g.engine_ms - 2.0).abs() < 1e-9, "wall - eval");
        // The invariant the acceptance test leans on:
        assert!(
            (g.hop_sum_ms() - g.eval_ms).abs() / g.eval_ms < 1e-9,
            "hops {} != eval {}",
            g.hop_sum_ms(),
            g.eval_ms
        );
        // Compute is clamped into the round-trip and dominates it.
        assert!(g.compute_ms > g.network_ms);
        assert!(g.queue_ms > 0.0 && g.retry_ms > 0.0);
    }

    #[test]
    fn local_backend_dispatch_counts_as_compute() {
        let events = vec![
            env(1, 1, span(names::BATCH, 5_000_000)),
            env(1, 1, span(names::DISPATCH, 4_000_000)),
            env(1, 1, span(names::COMPUTE, 16_000_000)), // 4 threads
        ];
        let g = &TraceSummary::from_envelopes(&events).generations[0];
        assert!((g.compute_ms - 4.0).abs() < 1e-9);
        assert_eq!(g.network_ms, 0.0);
        assert!((g.hop_sum_ms() - g.eval_ms).abs() < 1e-9);
    }

    #[test]
    fn jsonl_roundtrip_and_render() {
        let events = [
            env(0, 1, span(names::BATCH, 2_000_000)),
            env(0, 1, span(names::DISPATCH, 2_000_000)),
            env(
                1,
                0,
                Event::GenerationFinished {
                    improved: true,
                    best_per_size: vec![1.0],
                    wall_ms: 3.5,
                },
            ),
            env(1, 0, span(names::GENERATION, 3_000_000)),
            env(1, 2, span(names::BATCH, 1_000_000)),
        ];
        let jsonl: String = events
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let summary = TraceSummary::from_jsonl(&jsonl);
        assert_eq!(summary.run_id, "r");
        assert_eq!(summary.generations.len(), 2);
        assert_eq!(summary.generations[0].generation, 0);
        assert!((summary.generations[1].reported_wall_ms - 3.5).abs() < 1e-9);
        let text = summary.render();
        assert!(text.contains("gen 0"), "{text}");
        assert!(text.contains("total:"), "{text}");
        let json = summary.to_json();
        assert!(json.contains("\"generations\""), "{json}");
    }

    #[test]
    fn empty_stream_is_empty_summary() {
        let summary = TraceSummary::from_jsonl("not json\n");
        assert!(summary.generations.is_empty());
        assert!(summary.render().contains("0 generation(s)"));
    }

    #[test]
    fn for_run_separates_interleaved_tenants() {
        // Two tenants share a fleet: their spans interleave in one sink
        // but carry distinct run ids.
        let tenant = |run_id: &str, dispatch_ns: u64| {
            [
                Envelope {
                    ts_ms: 0,
                    run_id: run_id.into(),
                    generation: 1,
                    batch_id: 1,
                    event: span(names::BATCH, dispatch_ns + 1_000_000),
                },
                Envelope {
                    ts_ms: 0,
                    run_id: run_id.into(),
                    generation: 1,
                    batch_id: 1,
                    event: span(names::DISPATCH, dispatch_ns),
                },
            ]
        };
        let mut stream = Vec::new();
        for (a, b) in tenant("run-a", 4_000_000)
            .into_iter()
            .zip(tenant("run-b", 9_000_000))
        {
            stream.push(a);
            stream.push(b);
        }
        let a = TraceSummary::for_run(&stream, "run-a");
        let b = TraceSummary::for_run(&stream, "run-b");
        assert_eq!(a.run_id, "run-a");
        assert_eq!(b.run_id, "run-b");
        assert!((a.generations[0].eval_ms - 5.0).abs() < 1e-9);
        assert!((b.generations[0].eval_ms - 10.0).abs() < 1e-9);
        // Neither tenant sees the other's batches.
        assert_eq!(a.generations[0].batches, 1);
        let jsonl: String = stream
            .iter()
            .map(|e| serde_json::to_string(e).unwrap() + "\n")
            .collect();
        let a2 = TraceSummary::for_run_jsonl(&jsonl, "run-a");
        assert!((a2.generations[0].eval_ms - a.generations[0].eval_ms).abs() < 1e-9);
    }
}
