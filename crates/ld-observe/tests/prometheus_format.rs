//! Exposition-format contract tests: a golden file pinning the exact
//! Prometheus text output, structural checks (HELP/TYPE lines, bucket
//! monotonicity), and a concurrency smoke test on the registry.

use std::sync::Arc;

use ld_observe::{Registry, LATENCY_MS_BUCKETS};

const GOLDEN: &str = include_str!("golden/snapshot.prom");

/// Build a registry with one of everything, with deterministic values.
fn golden_registry() -> Registry {
    let reg = Registry::new();
    reg.counter(
        "ld_sched_cache_hits_total",
        "Unique requests served by the fitness cache.",
    )
    .add(17);
    reg.counter_with(
        "ld_net_slave_served_total",
        "Requests served per slave.",
        &[("slave", "127.0.0.1:7001")],
    )
    .add(5);
    reg.counter_with(
        "ld_net_slave_served_total",
        "Requests served per slave.",
        &[("slave", "127.0.0.1:7002")],
    )
    .add(3);
    reg.gauge("ld_net_pool_active_slaves", "Slaves currently in the pool.")
        .set(2.0);
    let h = reg.histogram(
        "ld_sched_dispatch_ms",
        "Wall-clock time of one backend dispatch.",
        &[1.0, 10.0, 100.0],
    );
    h.observe(0.5);
    h.observe(0.7);
    h.observe(42.0);
    h.observe(5000.0);
    // The search-dynamics series, fed one deterministic snapshot and one
    // detector verdict so every family carries a value.
    let dynamics = ld_observe::DynamicsMetrics::register_on(&reg);
    dynamics.record(&ld_observe::DynamicsSnapshot {
        population: 120,
        unique_fraction: 1.0,
        mean_pairwise_hamming: 3.25,
        occupancy_entropy: 0.75,
        snps_used: 18,
        fixed_snps: 2,
        fixation_spectrum: [12, 3, 1, 2],
        fitness_q1: 10.0,
        fitness_median: 12.5,
        fitness_q3: 14.0,
        best_fitness: 16.0,
        fitness_gain: 0.5,
        true_evals: 64,
        cache_hits: 16,
        evals_per_gain: 128.0,
        immigrants: 0,
        mutation_rates: vec![0.5, 0.25, 0.15],
        mutation_profits: vec![0.02, 0.0, 0.01],
        crossover_rates: vec![0.4, 0.3],
        crossover_profits: vec![0.05, 0.0],
    });
    dynamics.record_verdict(&ld_observe::DetectorVerdict::Stagnation {
        window: 21,
        best: 16.0,
    });
    reg
}

#[test]
fn exposition_matches_golden_file() {
    let got = golden_registry().prometheus();
    assert_eq!(
        got.trim(),
        GOLDEN.trim(),
        "Prometheus exposition drifted from tests/golden/snapshot.prom;\n\
         if the change is intentional, update the golden file.\n--- got ---\n{got}"
    );
}

#[test]
fn every_family_has_help_and_type_before_samples() {
    let text = golden_registry().prometheus();
    let mut current_family: Option<String> = None;
    let mut saw_type = false;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            current_family = rest.split_whitespace().next().map(str::to_string);
            saw_type = false;
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split_whitespace().next().unwrap();
            assert_eq!(Some(name.to_string()), current_family, "TYPE without HELP");
            let kind = rest.split_whitespace().nth(1).unwrap();
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "bad kind {kind}"
            );
            saw_type = true;
        } else if !line.is_empty() {
            let fam = current_family.as_deref().expect("sample before any family");
            assert!(saw_type, "sample before TYPE line: {line}");
            let metric = line.split(['{', ' ']).next().unwrap();
            assert!(
                metric == fam
                    || metric == format!("{fam}_bucket")
                    || metric == format!("{fam}_sum")
                    || metric == format!("{fam}_count"),
                "sample {metric} under family {fam}"
            );
        }
    }
}

#[test]
fn histogram_buckets_are_cumulative_and_end_at_inf() {
    let snap = golden_registry().snapshot();
    let hist = snap
        .families
        .iter()
        .find(|f| f.kind == "histogram")
        .expect("histogram family");
    for series in &hist.series {
        let counts: Vec<u64> = series.buckets.iter().map(|b| b.count).collect();
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "buckets not monotone: {counts:?}"
        );
        let last = series.buckets.last().unwrap();
        assert_eq!(last.le, "+Inf");
        assert_eq!(last.count, series.count, "+Inf bucket must equal _count");
    }
}

#[test]
fn registry_survives_concurrent_mutation() {
    let reg = Registry::new();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 2_000;
    let reg = Arc::new(reg);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                // Every thread registers the same families (exercising the
                // registration lock) and hammers the shared atomics.
                let c = reg.counter("smoke_total", "Concurrency smoke counter.");
                let h = reg.histogram(
                    "smoke_ms",
                    "Concurrency smoke histogram.",
                    LATENCY_MS_BUCKETS,
                );
                let g =
                    reg.gauge_with("smoke_depth", "Per-thread gauge.", &[("t", &t.to_string())]);
                for i in 0..PER_THREAD {
                    c.inc();
                    h.observe((i % 100) as f64);
                    g.set(i as f64);
                    if i % 500 == 0 {
                        // Snapshots interleaved with writes must not deadlock
                        // or tear.
                        let _ = reg.snapshot();
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(reg.counter("smoke_total", "").get(), total);
    let h = reg.histogram("smoke_ms", "", LATENCY_MS_BUCKETS);
    assert_eq!(h.count(), total);
    // Sum of (i % 100) over 0..2000 per thread: 20 full cycles of 0..100.
    let per_thread_sum: f64 = 20.0 * (99.0 * 100.0 / 2.0);
    assert!((h.sum() - per_thread_sum * THREADS as f64).abs() < 1e-6);
    let snap = reg.snapshot();
    let gauges = snap
        .families
        .iter()
        .find(|f| f.name == "smoke_depth")
        .unwrap();
    assert_eq!(gauges.series.len(), THREADS);
}
