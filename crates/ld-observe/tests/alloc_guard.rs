//! Allocation-regression guard for the disabled observer fast path.
//!
//! The whole design bet of `ld-observe` is that instrumentation left in
//! production code costs nothing when no observer is attached: every
//! `span()` / `emit_with()` / `record_span()` on a disabled observer is a
//! branch on a `None` — no clock read, no thread-local touch, and (what
//! this test pins) **zero heap allocations**. Any change that makes the
//! inert guard allocate — a boxed callback, an eager event build, a
//! `format!` — fails here with the exact allocation delta.
//!
//! Gated behind the `alloc-count` feature because a global allocator is
//! process-wide state other test binaries should not inherit:
//!
//! `cargo test -p ld-observe --features alloc-count --test alloc_guard`

#![cfg(feature = "alloc-count")]

use ld_observe::span::names;
use ld_observe::{Event, Observer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// System allocator with a global allocation counter (frees not counted:
/// the guard is about acquiring memory in the hot path).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn disabled_observer_fast_path_performs_zero_allocations() {
    let obs = Observer::disabled();
    // One untimed pass first, in case anything lazy-initializes.
    let _warm = obs.span(names::GENERATION);
    drop(_warm);

    let before = allocs();
    for _ in 0..1_000 {
        let gen = obs.span(names::GENERATION);
        let dispatch = obs.span_under(names::DISPATCH, gen.id());
        obs.begin_dispatch_span(dispatch.id());
        obs.record_span(
            names::COMPUTE,
            obs.dispatch_span(),
            Duration::from_micros(10),
        );
        obs.end_dispatch_span();
        obs.emit_with(|| Event::SlaveRetired {
            slave: "never-built".to_string(),
        });
        // The search-dynamics layer rides the same primitives: a disabled
        // observer must refuse metric registration without allocating, and
        // the snapshot-building closure must never run.
        assert!(ld_observe::DynamicsMetrics::register(&obs).is_none());
        obs.emit_with(|| Event::Stagnation {
            window: 21,
            best: 1.0,
        });
        // Watchdog/forensics events ride the same guard: the closure
        // (and its String/format! builds) must never run when disabled.
        obs.emit_with(|| Event::SlaveAnomaly {
            slave: "never-built".to_string(),
            kind: ld_observe::AnomalyKind::Straggler,
            metric: "rtt_ms".to_string(),
            value: 15.0,
            baseline: 0.5,
            zscore: 40.0,
        });
        obs.emit_with(|| Event::EvalFatal {
            detail: format!("never built {}", 7),
        });
        obs.set_generation(1);
        let _ = obs.begin_batch();
        obs.end_batch();
        drop(dispatch);
        drop(gen);
    }
    let delta = allocs() - before;
    assert_eq!(
        delta, 0,
        "{delta} heap allocations on the disabled observer fast path"
    );
}

#[test]
fn enabled_observer_allocates_as_a_sanity_check() {
    // Prove the counter observes this thread: an enabled observer builds
    // envelopes and pushes ring entries, which must allocate.
    use ld_observe::{Registry, RingSink};
    use std::sync::Arc;
    let ring = Arc::new(RingSink::new(64));
    let obs = Observer::new("alloc-check", ring, Registry::new());
    let before = allocs();
    let _span = obs.span(names::GENERATION);
    drop(_span);
    assert!(
        allocs() > before,
        "counting allocator saw no allocations on the allocating path"
    );
}
