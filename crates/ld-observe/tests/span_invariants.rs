//! Structural invariants of the timed span tree.
//!
//! The latency attribution in `trace-summary` is only as trustworthy as
//! the span stream it reads, so these tests pin the contract: guards nest
//! (a child's interval lies within its parent's), ids are unique, the
//! JSONL `SpanClosed` events and the in-memory ring describe the same
//! spans, and a disabled observer emits nothing at all.

use ld_observe::span::names;
use ld_observe::{Event, Observer, Registry, RingSink};
use std::sync::Arc;
use std::time::Duration;

fn observed() -> (Observer, Arc<RingSink>) {
    let ring = Arc::new(RingSink::new(1 << 12));
    let obs = Observer::new("span-test", ring.clone(), Registry::new());
    (obs, ring)
}

/// The `SpanClosed` events captured by the ring, as
/// `(name, id, parent, start_ns, duration_ns)`.
fn closed_events(ring: &RingSink) -> Vec<(String, u64, u64, u64, u64)> {
    ring.take()
        .into_iter()
        .filter_map(|env| match env.event {
            Event::SpanClosed {
                name,
                id,
                parent,
                start_ns,
                duration_ns,
            } => Some((name, id, parent, start_ns, duration_ns)),
            _ => None,
        })
        .collect()
}

#[test]
fn children_nest_within_their_parent_interval() {
    let (obs, _ring) = observed();
    {
        let gen = obs.span(names::GENERATION);
        std::thread::sleep(Duration::from_millis(2));
        {
            let _phase = obs.span(names::CROSSOVER);
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(2));
        drop(gen);
    }
    let spans = obs.spans().expect("enabled").recent();
    assert_eq!(spans.len(), 2);
    // Children close before parents, so the child is first.
    let child = &spans[0];
    let parent = &spans[1];
    assert_eq!(child.name, names::CROSSOVER);
    assert_eq!(parent.name, names::GENERATION);
    assert_eq!(child.parent, parent.id, "implicit thread-local nesting");
    assert_eq!(parent.parent, 0, "outermost span is a root");
    assert!(
        child.start_ns >= parent.start_ns && child.end_ns() <= parent.end_ns(),
        "child [{}, {}] must lie within parent [{}, {}]",
        child.start_ns,
        child.end_ns(),
        parent.start_ns,
        parent.end_ns()
    );
    assert!(child.duration_ns > 0, "slept spans have positive duration");
}

#[test]
fn sibling_spans_do_not_inherit_each_other() {
    let (obs, _ring) = observed();
    {
        let _gen = obs.span(names::GENERATION);
        let a = obs.span(names::CROSSOVER);
        drop(a);
        let b = obs.span(names::MUTATION);
        drop(b);
    }
    let spans = obs.spans().expect("enabled").recent();
    let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
    let gen = by_name(names::GENERATION);
    assert_eq!(by_name(names::CROSSOVER).parent, gen.id);
    assert_eq!(
        by_name(names::MUTATION).parent,
        gen.id,
        "a closed sibling must not become the next span's parent"
    );
}

#[test]
fn span_ids_are_unique_and_starts_monotonic_per_thread() {
    let (obs, _ring) = observed();
    for _ in 0..50 {
        let _s = obs.span(names::BATCH);
    }
    let spans = obs.spans().expect("enabled").recent();
    assert_eq!(spans.len(), 50);
    let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 50, "span ids must be unique");
    for w in spans.windows(2) {
        assert!(
            w[1].start_ns >= w[0].start_ns,
            "same-thread spans opened in order must not start out of order"
        );
    }
}

#[test]
fn cross_thread_spans_parent_under_the_published_dispatch() {
    let (obs, _ring) = observed();
    let dispatch = obs.span(names::DISPATCH);
    obs.begin_dispatch_span(dispatch.id());
    let worker_obs = obs.clone();
    let worker = std::thread::spawn(move || {
        let req = worker_obs.span_under(names::REQUEST, worker_obs.dispatch_span());
        let req_id = req.id();
        worker_obs.record_span(names::COMPUTE, req_id, Duration::from_micros(150));
        drop(req);
        req_id
    });
    let req_id = worker.join().unwrap();
    obs.end_dispatch_span();
    drop(dispatch);

    let spans = obs.spans().expect("enabled").recent();
    let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
    assert_eq!(
        by_name(names::REQUEST).parent,
        by_name(names::DISPATCH).id,
        "explicit span_under must cross threads"
    );
    let compute = by_name(names::COMPUTE);
    assert_eq!(
        compute.parent, req_id,
        "synthetic compute hangs off its request"
    );
    assert_eq!(
        compute.duration_ns, 150_000,
        "record_span keeps the given duration"
    );
}

#[test]
fn jsonl_events_and_ring_describe_the_same_spans() {
    let (obs, ring) = observed();
    {
        let _gen = obs.span(names::GENERATION);
        let _batch = obs.span(names::BATCH);
    }
    obs.record_span(names::COMPUTE, 0, Duration::from_millis(1));

    let tree: Vec<_> = obs.spans().expect("enabled").recent();
    let events = closed_events(&ring);
    assert_eq!(
        tree.len(),
        events.len(),
        "one SpanClosed event per ring entry"
    );
    for (span, (name, id, parent, start_ns, duration_ns)) in tree.iter().zip(&events) {
        assert_eq!(span.name, name, "same close order in both views");
        assert_eq!(span.id, *id);
        assert_eq!(span.parent, *parent);
        assert_eq!(span.start_ns, *start_ns);
        assert_eq!(span.duration_ns, *duration_ns);
    }
}

#[test]
fn record_span_backdates_start_by_its_duration() {
    let (obs, _ring) = observed();
    // Age the observer past the duration so the backdated start does not
    // saturate at the epoch.
    std::thread::sleep(Duration::from_millis(6));
    obs.record_span(names::COMPUTE, 0, Duration::from_millis(5));
    let spans = obs.spans().expect("enabled").recent();
    assert_eq!(spans.len(), 1);
    let s = &spans[0];
    assert_eq!(s.duration_ns, 5_000_000);
    // end = start + duration lands "now": a span recorded immediately
    // after must not end before it.
    obs.record_span(names::COMPUTE, 0, Duration::ZERO);
    let later = obs.spans().expect("enabled").recent()[1].clone();
    assert!(later.end_ns() >= s.end_ns());
}

#[test]
fn disabled_observer_emits_no_spans_and_inert_guards() {
    let obs = Observer::disabled();
    let guard = obs.span(names::GENERATION);
    assert!(!guard.active());
    assert_eq!(guard.id(), 0);
    let under = obs.span_under(names::REQUEST, 7);
    assert!(!under.active());
    obs.record_span(names::COMPUTE, 0, Duration::from_secs(1));
    obs.begin_dispatch_span(9);
    assert_eq!(
        obs.dispatch_span(),
        0,
        "disabled observer publishes nothing"
    );
    drop(guard);
    drop(under);
    assert!(obs.spans().is_none());
    assert_eq!(obs.spans_json(), "{\"count\":0,\"spans\":[]}");
}

#[test]
fn disabled_guard_does_not_pollute_an_enabled_observers_nesting() {
    // A disabled guard must not leave anything on the thread-local stack
    // that a later enabled observer would mistake for a parent.
    {
        let off = Observer::disabled();
        let _g = off.span(names::GENERATION);
        // still open while the enabled span below starts
        let (obs, _ring) = observed();
        let s = obs.span(names::BATCH);
        let id = s.id();
        drop(s);
        let spans = obs.spans().expect("enabled").recent();
        assert_eq!(spans[0].id, id);
        assert_eq!(spans[0].parent, 0, "no phantom parent from the inert guard");
    }
}

#[test]
fn spans_carry_the_current_generation_and_batch() {
    let (obs, _ring) = observed();
    obs.set_generation(3);
    let batch = obs.begin_batch();
    {
        let _d = obs.span(names::DISPATCH);
    }
    obs.end_batch();
    {
        let _g = obs.span(names::GENERATION);
    }
    let spans = obs.spans().expect("enabled").recent();
    assert_eq!(spans[0].generation, 3);
    assert_eq!(spans[0].batch_id, batch);
    assert_eq!(
        spans[1].batch_id, 0,
        "closing after end_batch stamps batch 0"
    );
}
