//! Pairwise linkage-disequilibrium measures and the pairwise LD table.
//!
//! This is the second auxiliary input table of §5.1: "the last table gives
//! the disequilibrium between every couples of SNPs".
//!
//! Two estimation routes are provided:
//!
//! * [`PairwiseLd::from_haplotype_freqs`] — the textbook `D`, `D'`, `r²`
//!   given known two-locus haplotype frequencies (used on simulated truth
//!   and on EM-estimated frequencies);
//! * [`PairwiseLd::composite_from_genotypes`] — Burrows' *composite* LD from
//!   unphased genotype data, which needs no phase information: the
//!   composite coefficient is `cov(X, Y) / 2` where `X, Y ∈ {0,1,2}` are
//!   mutant-allele counts at the two loci.

use crate::matrix::GenotypeMatrix;
use crate::snp::SnpId;

/// Linkage-disequilibrium summary for one pair of SNPs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairwiseLd {
    /// Raw disequilibrium coefficient `D` (or composite `Δ`).
    pub d: f64,
    /// Lewontin's normalized `D' ∈ [-1, 1]` (0 when undefined).
    pub d_prime: f64,
    /// Squared correlation `r² ∈ [0, 1]` (0 when undefined).
    pub r2: f64,
}

impl PairwiseLd {
    /// No detectable disequilibrium.
    pub const NULL: PairwiseLd = PairwiseLd {
        d: 0.0,
        d_prime: 0.0,
        r2: 0.0,
    };

    /// Compute `D`, `D'`, `r²` from the four two-locus haplotype frequencies
    /// `(p11, p12, p21, p22)` where `p_ab` is the frequency of the haplotype
    /// carrying allele `a` at the first SNP and `b` at the second.
    pub fn from_haplotype_freqs(p11: f64, p12: f64, p21: f64, p22: f64) -> PairwiseLd {
        let total = p11 + p12 + p21 + p22;
        if total <= 0.0 {
            return PairwiseLd::NULL;
        }
        let (p11, p12, p21) = (p11 / total, p12 / total, p21 / total);
        let p1 = p11 + p12; // allele 1 at locus A
        let q1 = p11 + p21; // allele 1 at locus B
        let d = p11 - p1 * q1;
        Self::normalize(d, p1, q1)
    }

    /// Normalize a raw coefficient `d` given marginal allele-1 frequencies
    /// `p1` (locus A) and `q1` (locus B).
    fn normalize(d: f64, p1: f64, q1: f64) -> PairwiseLd {
        let p2 = 1.0 - p1;
        let q2 = 1.0 - q1;
        let denom_r = p1 * p2 * q1 * q2;
        let r2 = if denom_r > 0.0 {
            (d * d / denom_r).min(1.0)
        } else {
            0.0
        };
        let d_max = if d >= 0.0 {
            (p1 * q2).min(p2 * q1)
        } else {
            (p1 * q1).min(p2 * q2)
        };
        let d_prime = if d_max > 0.0 {
            (d / d_max).clamp(-1.0, 1.0)
        } else {
            0.0
        };
        PairwiseLd { d, d_prime, r2 }
    }

    /// Burrows' composite LD from unphased genotypes over a row subset.
    ///
    /// Pairs with a missing call at either locus are skipped. Returns
    /// [`PairwiseLd::NULL`] when fewer than two complete observations exist
    /// or either locus is monomorphic in the subset.
    pub fn composite_from_genotypes(
        m: &GenotypeMatrix,
        rows: &[usize],
        a: SnpId,
        b: SnpId,
    ) -> PairwiseLd {
        let mut n = 0.0f64;
        let mut sx = 0.0f64;
        let mut sy = 0.0f64;
        let mut sxx = 0.0f64;
        let mut syy = 0.0f64;
        let mut sxy = 0.0f64;
        for &r in rows {
            let (Some(x), Some(y)) = (m.get(r, a).a2_count(), m.get(r, b).a2_count()) else {
                continue;
            };
            let (x, y) = (x as f64, y as f64);
            n += 1.0;
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
        if n < 2.0 {
            return PairwiseLd::NULL;
        }
        let cov = (sxy - sx * sy / n) / n;
        let var_x = (sxx - sx * sx / n) / n;
        let var_y = (syy - sy * sy / n) / n;
        if var_x <= 0.0 || var_y <= 0.0 {
            return PairwiseLd::NULL;
        }
        // Composite Δ is cov/2; marginal allele-2 freqs are mean/2, so the
        // normalization reuses the haplotype-frequency formulas with the
        // allele-1 frequencies 1 - mean/2.
        let d = cov / 2.0;
        let p1 = 1.0 - sx / n / 2.0;
        let q1 = 1.0 - sy / n / 2.0;
        // For composite data the sign convention follows allele 2; flip so
        // `d` refers to the 1-1 haplotype excess as in the phased case.
        let mut out = Self::normalize(d, p1, q1);
        // r² from the genotypic correlation is more robust than the
        // allele-frequency denominator under Hardy-Weinberg deviation.
        let r = cov / (var_x * var_y).sqrt();
        out.r2 = (r * r).min(1.0);
        out
    }
}

/// Symmetric pairwise LD table over all SNPs of a matrix.
#[derive(Debug, Clone)]
pub struct LdTable {
    n_snps: usize,
    /// Upper-triangular storage, row-major: entry for `(i, j)` with `i < j`
    /// lives at `index(i, j)`.
    entries: Vec<PairwiseLd>,
}

impl LdTable {
    /// Compute the composite-LD table over all individuals.
    pub fn from_matrix(m: &GenotypeMatrix) -> Self {
        let rows: Vec<usize> = (0..m.n_individuals()).collect();
        Self::from_matrix_rows(m, &rows)
    }

    /// Compute the composite-LD table over a row subset.
    pub fn from_matrix_rows(m: &GenotypeMatrix, rows: &[usize]) -> Self {
        let n = m.n_snps();
        let mut entries = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                entries.push(PairwiseLd::composite_from_genotypes(m, rows, i, j));
            }
        }
        LdTable { n_snps: n, entries }
    }

    #[inline]
    fn index(&self, i: SnpId, j: SnpId) -> usize {
        debug_assert!(i < j && j < self.n_snps);
        // Offset of row i in the packed upper triangle.
        i * (2 * self.n_snps - i - 1) / 2 + (j - i - 1)
    }

    /// LD between two distinct SNPs (symmetric).
    ///
    /// # Panics
    /// Panics if `i == j` or either index is out of range.
    pub fn get(&self, i: SnpId, j: SnpId) -> PairwiseLd {
        assert!(i != j, "LD of a SNP with itself is undefined");
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        assert!(j < self.n_snps, "SNP index out of range");
        self.entries[self.index(i, j)]
    }

    /// Number of SNPs covered.
    pub fn n_snps(&self) -> usize {
        self.n_snps
    }

    /// Iterate all `(i, j, ld)` with `i < j`.
    pub fn iter(&self) -> impl Iterator<Item = (SnpId, SnpId, &PairwiseLd)> {
        let n = self.n_snps;
        (0..n)
            .flat_map(move |i| ((i + 1)..n).map(move |j| (i, j)))
            .zip(self.entries.iter())
            .map(|((i, j), ld)| (i, j, ld))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genotype::Genotype as G;

    #[test]
    fn perfect_ld_from_haplotype_freqs() {
        // Only 11 and 22 haplotypes: complete positive LD.
        let ld = PairwiseLd::from_haplotype_freqs(0.6, 0.0, 0.0, 0.4);
        assert!((ld.d_prime - 1.0).abs() < 1e-12);
        assert!((ld.r2 - 1.0).abs() < 1e-12);
        assert!(ld.d > 0.0);
    }

    #[test]
    fn equilibrium_from_haplotype_freqs() {
        // Independent loci: p11 = p1*q1 etc.
        let (p1, q1) = (0.3, 0.7);
        let ld = PairwiseLd::from_haplotype_freqs(
            p1 * q1,
            p1 * (1.0 - q1),
            (1.0 - p1) * q1,
            (1.0 - p1) * (1.0 - q1),
        );
        assert!(ld.d.abs() < 1e-12);
        assert!(ld.r2 < 1e-12);
    }

    #[test]
    fn negative_ld_sign() {
        // Repulsion: 12 and 21 haplotypes only.
        let ld = PairwiseLd::from_haplotype_freqs(0.0, 0.5, 0.5, 0.0);
        assert!(ld.d < 0.0);
        assert!((ld.d_prime + 1.0).abs() < 1e-12);
        assert!((ld.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unnormalized_freqs_are_rescaled() {
        let a = PairwiseLd::from_haplotype_freqs(6.0, 0.0, 0.0, 4.0);
        let b = PairwiseLd::from_haplotype_freqs(0.6, 0.0, 0.0, 0.4);
        assert!((a.d - b.d).abs() < 1e-12);
    }

    #[test]
    fn composite_detects_correlated_columns() {
        // Two identical columns: maximal composite LD.
        let m = GenotypeMatrix::from_rows(
            6,
            2,
            vec![
                G::HomA1,
                G::HomA1, //
                G::HomA1,
                G::HomA1, //
                G::Het,
                G::Het, //
                G::Het,
                G::Het, //
                G::HomA2,
                G::HomA2, //
                G::HomA2,
                G::HomA2,
            ],
        )
        .unwrap();
        let rows: Vec<usize> = (0..6).collect();
        let ld = PairwiseLd::composite_from_genotypes(&m, &rows, 0, 1);
        assert!((ld.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn composite_null_on_independent_columns() {
        // Column 1 constant Het varies orthogonally to column 0.
        let m = GenotypeMatrix::from_rows(
            4,
            2,
            vec![
                G::HomA1,
                G::HomA1, //
                G::HomA1,
                G::HomA2, //
                G::HomA2,
                G::HomA1, //
                G::HomA2,
                G::HomA2,
            ],
        )
        .unwrap();
        let rows: Vec<usize> = (0..4).collect();
        let ld = PairwiseLd::composite_from_genotypes(&m, &rows, 0, 1);
        assert!(ld.r2 < 1e-12, "r2 = {}", ld.r2);
    }

    #[test]
    fn composite_handles_monomorphic_and_missing() {
        let m = GenotypeMatrix::from_rows(
            3,
            2,
            vec![
                G::HomA1,
                G::Het, //
                G::HomA1,
                G::HomA2, //
                G::HomA1,
                G::Missing,
            ],
        )
        .unwrap();
        let rows: Vec<usize> = (0..3).collect();
        assert_eq!(
            PairwiseLd::composite_from_genotypes(&m, &rows, 0, 1),
            PairwiseLd::NULL
        );
        // Fewer than 2 complete pairs.
        assert_eq!(
            PairwiseLd::composite_from_genotypes(&m, &[2], 0, 1),
            PairwiseLd::NULL
        );
    }

    #[test]
    fn table_symmetric_access_and_indexing() {
        let m = GenotypeMatrix::from_rows(
            4,
            3,
            vec![
                G::HomA1,
                G::HomA1,
                G::Het, //
                G::Het,
                G::Het,
                G::HomA2, //
                G::HomA2,
                G::HomA2,
                G::HomA1, //
                G::Het,
                G::HomA1,
                G::Het,
            ],
        )
        .unwrap();
        let t = LdTable::from_matrix(&m);
        assert_eq!(t.n_snps(), 3);
        assert_eq!(t.get(0, 2), t.get(2, 0));
        assert_eq!(t.iter().count(), 3);
        // Entry (0,1) should show strong correlation (columns nearly equal).
        assert!(t.get(0, 1).r2 > 0.5);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn table_rejects_self_pair() {
        let m = GenotypeMatrix::filled(2, 2, G::Het);
        let t = LdTable::from_matrix(&m);
        let _ = t.get(1, 1);
    }

    #[test]
    fn packed_index_is_bijective() {
        let m = GenotypeMatrix::filled(2, 7, G::Het);
        let t = LdTable::from_matrix(&m);
        let mut seen = std::collections::HashSet::new();
        for i in 0..7 {
            for j in (i + 1)..7 {
                assert!(seen.insert(t.index(i, j)));
            }
        }
        assert_eq!(seen.len(), 21);
        assert_eq!(*seen.iter().max().unwrap(), 20);
    }
}
