//! TSV (de)serialization of datasets — the paper's input tables (§5.1).
//!
//! The format is one header line, then one line per individual:
//!
//! ```text
//! id<TAB>status<TAB>snp000<TAB>snp001<TAB>...
//! ind000<TAB>A<TAB>11<TAB>12<TAB>...
//! ```
//!
//! Genotypes use the paper's `11 / 12 / 22` coding with `00` for missing;
//! statuses use `A / U / ?`. Auxiliary tables (allele frequencies, pairwise
//! LD) have writers too, since the paper distributes them alongside the
//! genotype table.

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::freq::AlleleFreqTable;
use crate::genotype::Genotype;
use crate::ld::LdTable;
use crate::matrix::GenotypeMatrix;
use crate::snp::SnpInfo;
use crate::status::Status;
use std::io::{BufRead, BufReader, Read, Write};

/// Write a dataset as TSV.
pub fn write_dataset_tsv<W: Write>(d: &Dataset, mut w: W) -> Result<(), DataError> {
    write!(w, "id\tstatus")?;
    for s in &d.snps {
        write!(w, "\t{}", s.name)?;
    }
    writeln!(w)?;
    for i in 0..d.n_individuals() {
        write!(w, "ind{i:03}\t{}", d.statuses[i].code())?;
        for g in d.genotypes.row(i) {
            write!(w, "\t{}", g.code())?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Read a dataset from TSV written by [`write_dataset_tsv`].
pub fn read_dataset_tsv<R: Read>(r: R, label: impl Into<String>) -> Result<Dataset, DataError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines().enumerate();

    let header = lines.next().ok_or(DataError::Empty("TSV input"))?.1?;
    let cols: Vec<&str> = header.split('\t').collect();
    if cols.len() < 3 || cols[0] != "id" || cols[1] != "status" {
        return Err(DataError::Parse {
            line: 1,
            message: format!("bad header {header:?}: expected id\\tstatus\\t<snps...>"),
        });
    }
    let snps: Vec<SnpInfo> = cols[2..]
        .iter()
        .enumerate()
        .map(|(i, name)| SnpInfo {
            id: i,
            name: (*name).to_string(),
            chromosome: 1,
            position_kb: 0.0,
        })
        .collect();
    let n_snps = snps.len();

    let mut data: Vec<Genotype> = Vec::new();
    let mut statuses: Vec<Status> = Vec::new();
    for (idx, line) in lines {
        let line = line?;
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != n_snps + 2 {
            return Err(DataError::Parse {
                line: line_no,
                message: format!("expected {} fields, got {}", n_snps + 2, fields.len()),
            });
        }
        let status_field = fields[1];
        let status = status_field
            .chars()
            .next()
            .and_then(Status::from_code)
            .filter(|_| status_field.chars().count() == 1)
            .ok_or_else(|| DataError::InvalidStatusCode(status_field.to_string()))?;
        statuses.push(status);
        for f in &fields[2..] {
            data.push(
                Genotype::from_code(f)
                    .ok_or_else(|| DataError::InvalidGenotypeCode(f.to_string()))?,
            );
        }
    }
    let n_individuals = statuses.len();
    let matrix = GenotypeMatrix::from_rows(n_individuals, n_snps, data)?;
    Dataset::new(matrix, statuses, snps, label)
}

/// Write the per-SNP allele frequency table as TSV.
pub fn write_freq_tsv<W: Write>(t: &AlleleFreqTable, mut w: W) -> Result<(), DataError> {
    writeln!(w, "snp\tfreq1\tfreq2\tmaf\tn_called")?;
    for (id, f) in t.iter() {
        writeln!(
            w,
            "{id}\t{:.6}\t{:.6}\t{:.6}\t{}",
            f.a1,
            f.a2,
            f.maf(),
            f.n_called
        )?;
    }
    Ok(())
}

/// Write the pairwise LD table as TSV (upper triangle).
pub fn write_ld_tsv<W: Write>(t: &LdTable, mut w: W) -> Result<(), DataError> {
    writeln!(w, "snp_a\tsnp_b\td\td_prime\tr2")?;
    for (i, j, ld) in t.iter() {
        writeln!(w, "{i}\t{j}\t{:.6}\t{:.6}\t{:.6}", ld.d, ld.d_prime, ld.r2)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::lille_51;

    #[test]
    fn dataset_roundtrip() {
        let d = lille_51(5);
        let mut buf = Vec::new();
        write_dataset_tsv(&d, &mut buf).unwrap();
        let d2 = read_dataset_tsv(&buf[..], "roundtrip").unwrap();
        assert_eq!(d.genotypes, d2.genotypes);
        assert_eq!(d.statuses, d2.statuses);
        assert_eq!(d.n_snps(), d2.n_snps());
        assert_eq!(d.snps[10].name, d2.snps[10].name);
    }

    #[test]
    fn rejects_bad_header() {
        let input = b"noid\tstatus\tsnp0\n";
        assert!(matches!(
            read_dataset_tsv(&input[..], "x"),
            Err(DataError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_short_row() {
        let input = b"id\tstatus\tsnp0\tsnp1\nind\tA\t11\n";
        assert!(matches!(
            read_dataset_tsv(&input[..], "x"),
            Err(DataError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_bad_codes() {
        let bad_geno = b"id\tstatus\tsnp0\nind\tA\t13\n";
        assert!(matches!(
            read_dataset_tsv(&bad_geno[..], "x"),
            Err(DataError::InvalidGenotypeCode(_))
        ));
        let bad_status = b"id\tstatus\tsnp0\nind\tZ\t11\n";
        assert!(matches!(
            read_dataset_tsv(&bad_status[..], "x"),
            Err(DataError::InvalidStatusCode(_))
        ));
        let long_status = b"id\tstatus\tsnp0\nind\tAA\t11\n";
        assert!(matches!(
            read_dataset_tsv(&long_status[..], "x"),
            Err(DataError::InvalidStatusCode(_))
        ));
    }

    #[test]
    fn skips_blank_lines() {
        let input = b"id\tstatus\tsnp0\nind0\tA\t11\n\nind1\tU\t22\n";
        let d = read_dataset_tsv(&input[..], "x").unwrap();
        assert_eq!(d.n_individuals(), 2);
    }

    #[test]
    fn empty_input_is_error() {
        let input: &[u8] = b"";
        assert!(matches!(
            read_dataset_tsv(input, "x"),
            Err(DataError::Empty(_))
        ));
    }

    #[test]
    fn aux_tables_write_headers() {
        let d = lille_51(5);
        let f = AlleleFreqTable::from_matrix(&d.genotypes);
        let mut buf = Vec::new();
        write_freq_tsv(&f, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("snp\tfreq1"));
        assert_eq!(text.lines().count(), 52);

        let ld = LdTable::from_matrix(&d.genotypes);
        let mut buf = Vec::new();
        write_ld_tsv(&ld, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1 + 51 * 50 / 2);
    }
}
