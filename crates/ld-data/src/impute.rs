//! Missing-genotype handling.
//!
//! EH drops individuals with any missing call among the selected SNPs
//! (exactly what `ld-stats::em` does), which wastes samples when
//! missingness is high. Real pipelines pre-process instead; two standard
//! options are provided:
//!
//! * [`impute_mode`] — replace each missing call with its SNP's most
//!   frequent genotype (per status group, so imputation cannot leak
//!   case/control signal across groups);
//! * [`complete_case_filter`] — drop individuals whose overall call rate
//!   is below a threshold (bad samples, not bad markers).

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::genotype::Genotype;
use crate::status::Status;

/// Per-group modal genotype of one SNP (falls back to `HomA1` when a group
/// has no called genotype at all).
fn group_mode(d: &Dataset, rows: &[usize], snp: usize) -> Genotype {
    let mut counts = [0usize; 3];
    for &r in rows {
        match d.genotypes.get(r, snp) {
            Genotype::HomA1 => counts[0] += 1,
            Genotype::Het => counts[1] += 1,
            Genotype::HomA2 => counts[2] += 1,
            Genotype::Missing => {}
        }
    }
    let best = (0..3).max_by_key(|&i| counts[i]).expect("3 candidates");
    match best {
        0 => Genotype::HomA1,
        1 => Genotype::Het,
        _ => Genotype::HomA2,
    }
}

/// Mode-impute every missing genotype, using the individual's own status
/// group to compute the mode. Returns the imputed dataset and the number
/// of calls filled in.
pub fn impute_mode(d: &Dataset) -> Result<(Dataset, usize), DataError> {
    let groups: Vec<(Status, Vec<usize>)> = [Status::Affected, Status::Unaffected, Status::Unknown]
        .into_iter()
        .map(|s| (s, d.rows_with_status(s)))
        .collect();
    let mut genotypes = d.genotypes.clone();
    let mut filled = 0usize;
    for snp in 0..d.n_snps() {
        // Modes computed once per SNP per group, from the *original* data.
        let modes: Vec<(Status, Genotype)> = groups
            .iter()
            .map(|(s, rows)| (*s, group_mode(d, rows, snp)))
            .collect();
        for (status, rows) in &groups {
            let mode = modes
                .iter()
                .find(|(s, _)| s == status)
                .map(|(_, g)| *g)
                .expect("every status has a mode");
            for &r in rows {
                if !d.genotypes.get(r, snp).is_called() {
                    genotypes.set(r, snp, mode);
                    filled += 1;
                }
            }
        }
    }
    let out = Dataset::new(
        genotypes,
        d.statuses.clone(),
        d.snps.clone(),
        format!("{} (mode-imputed)", d.label),
    )?;
    Ok((out, filled))
}

/// Drop individuals whose fraction of called genotypes is below
/// `min_call_rate`. Returns the filtered dataset and the dropped row
/// indices (in the original dataset's numbering).
pub fn complete_case_filter(
    d: &Dataset,
    min_call_rate: f64,
) -> Result<(Dataset, Vec<usize>), DataError> {
    if !(0.0..=1.0).contains(&min_call_rate) {
        return Err(DataError::InvalidConfig(format!(
            "min_call_rate must be in [0, 1], got {min_call_rate}"
        )));
    }
    let n_snps = d.n_snps() as f64;
    let mut keep = Vec::new();
    let mut dropped = Vec::new();
    for i in 0..d.n_individuals() {
        let called = d.genotypes.row(i).iter().filter(|g| g.is_called()).count();
        if called as f64 / n_snps >= min_call_rate {
            keep.push(i);
        } else {
            dropped.push(i);
        }
    }
    if keep.is_empty() {
        return Err(DataError::Empty("dataset after complete-case filter"));
    }
    let genotypes = d.genotypes.select_rows(&keep)?;
    let statuses = keep.iter().map(|&r| d.statuses[r]).collect();
    let out = Dataset::new(
        genotypes,
        statuses,
        d.snps.clone(),
        format!("{} (call rate >= {min_call_rate})", d.label),
    )?;
    Ok((out, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::lille_51_config;

    fn with_missing(rate: f64, seed: u64) -> Dataset {
        let mut cfg = lille_51_config();
        cfg.missing_rate = rate;
        cfg.generate(seed).unwrap()
    }

    #[test]
    fn impute_fills_every_missing_call() {
        let d = with_missing(0.1, 5);
        let before = d
            .genotypes
            .as_slice()
            .iter()
            .filter(|g| !g.is_called())
            .count();
        assert!(before > 0);
        let (imputed, filled) = impute_mode(&d).unwrap();
        assert_eq!(filled, before);
        assert!(imputed.genotypes.as_slice().iter().all(|g| g.is_called()));
        // Non-missing calls untouched.
        for i in 0..d.n_individuals() {
            for s in 0..d.n_snps() {
                let orig = d.genotypes.get(i, s);
                if orig.is_called() {
                    assert_eq!(imputed.genotypes.get(i, s), orig);
                }
            }
        }
    }

    #[test]
    fn impute_noop_on_complete_data() {
        let d = with_missing(0.0, 5);
        let (imputed, filled) = impute_mode(&d).unwrap();
        assert_eq!(filled, 0);
        assert_eq!(imputed.genotypes, d.genotypes);
    }

    #[test]
    fn imputation_is_group_aware() {
        // Build a tiny dataset where the modal genotype differs by group.
        use crate::genotype::Genotype as G;
        use crate::matrix::GenotypeMatrix;
        use crate::snp::SnpInfo;
        let m = GenotypeMatrix::from_rows(4, 1, vec![G::HomA2, G::Missing, G::HomA1, G::Missing])
            .unwrap();
        let d = Dataset::new(
            m,
            vec![
                Status::Affected,
                Status::Affected,
                Status::Unaffected,
                Status::Unaffected,
            ],
            vec![SnpInfo::synthetic(0, 1, 0.0)],
            "tiny",
        )
        .unwrap();
        let (imputed, filled) = impute_mode(&d).unwrap();
        assert_eq!(filled, 2);
        // Affected missing -> affected mode (HomA2); unaffected -> HomA1.
        assert_eq!(imputed.genotypes.get(1, 0), G::HomA2);
        assert_eq!(imputed.genotypes.get(3, 0), G::HomA1);
    }

    #[test]
    fn complete_case_filter_drops_bad_samples() {
        let d = with_missing(0.15, 9);
        let (filtered, dropped) = complete_case_filter(&d, 0.9).unwrap();
        assert_eq!(filtered.n_individuals() + dropped.len(), d.n_individuals());
        // Every kept row satisfies the threshold.
        for i in 0..filtered.n_individuals() {
            let called = filtered
                .genotypes
                .row(i)
                .iter()
                .filter(|g| g.is_called())
                .count();
            assert!(called as f64 / filtered.n_snps() as f64 >= 0.9);
        }
        assert!(!dropped.is_empty(), "15% missingness should drop someone");
    }

    #[test]
    fn filter_validation_and_degenerate_cases() {
        let d = with_missing(0.0, 5);
        assert!(complete_case_filter(&d, 1.5).is_err());
        // Impossible threshold on fully missing rows only: keep everyone
        // with complete data.
        let (filtered, dropped) = complete_case_filter(&d, 1.0).unwrap();
        assert!(dropped.is_empty());
        assert_eq!(filtered.n_individuals(), d.n_individuals());
    }
}
