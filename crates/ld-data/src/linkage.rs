//! LINKAGE (pre-makeped) pedigree format.
//!
//! EH and CLUMP — the two programs the paper's evaluation wraps — consume
//! genotypes in the LINKAGE pedigree format of Terwilliger & Ott's
//! *Handbook of Human Genetic Linkage* (the paper's reference [13]). One
//! whitespace-separated line per individual:
//!
//! ```text
//! fam  id  father  mother  sex  status  a1 a2  a1 a2 ...
//! ```
//!
//! with `status` coded `2` = affected, `1` = unaffected, `0` = unknown,
//! and each marker as an unordered allele pair coded `1`/`2` (`0 0` for a
//! missing call). The paper's design is case/control (unrelated
//! individuals), so the writer emits singleton families (`father` =
//! `mother` = `0`) and the reader accepts any pedigree columns but ignores
//! the relationships.

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::genotype::Genotype;
use crate::matrix::GenotypeMatrix;
use crate::snp::{Allele, SnpInfo};
use crate::status::Status;
use std::io::{BufRead, BufReader, Read, Write};

fn status_code(s: Status) -> u8 {
    match s {
        Status::Affected => 2,
        Status::Unaffected => 1,
        Status::Unknown => 0,
    }
}

fn status_from_code(c: &str) -> Option<Status> {
    match c {
        "2" => Some(Status::Affected),
        "1" => Some(Status::Unaffected),
        "0" => Some(Status::Unknown),
        _ => None,
    }
}

fn allele_pair(g: Genotype) -> (u8, u8) {
    match g.alleles() {
        Some((a, b)) => (a.code(), b.code()),
        None => (0, 0),
    }
}

/// Write a dataset as a LINKAGE pedigree file (singleton families).
pub fn write_linkage_ped<W: Write>(d: &Dataset, mut w: W) -> Result<(), DataError> {
    for i in 0..d.n_individuals() {
        // fam = id = row+1 (LINKAGE ids are 1-based), founders.
        write!(w, "{0} {0} 0 0 0 {1}", i + 1, status_code(d.statuses[i]))?;
        for g in d.genotypes.row(i) {
            let (a, b) = allele_pair(*g);
            write!(w, " {a} {b}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Read a LINKAGE pedigree file. Pedigree structure (father/mother/sex) is
/// parsed but ignored — the paper's analysis treats individuals as
/// unrelated cases and controls.
pub fn read_linkage_ped<R: Read>(r: R, label: impl Into<String>) -> Result<Dataset, DataError> {
    let reader = BufReader::new(r);
    let mut statuses: Vec<Status> = Vec::new();
    let mut data: Vec<Genotype> = Vec::new();
    let mut n_snps: Option<usize> = None;

    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() < 6 {
            return Err(DataError::Parse {
                line: line_no,
                message: format!("expected at least 6 pedigree columns, got {}", fields.len()),
            });
        }
        let allele_fields = &fields[6..];
        if !allele_fields.len().is_multiple_of(2) {
            return Err(DataError::Parse {
                line: line_no,
                message: format!("odd number of allele columns ({})", allele_fields.len()),
            });
        }
        let k = allele_fields.len() / 2;
        match n_snps {
            None => n_snps = Some(k),
            Some(k0) if k0 != k => {
                return Err(DataError::Parse {
                    line: line_no,
                    message: format!("marker count changed: {k} vs {k0}"),
                });
            }
            _ => {}
        }
        let status = status_from_code(fields[5]).ok_or_else(|| DataError::Parse {
            line: line_no,
            message: format!("bad status code {:?} (expected 0/1/2)", fields[5]),
        })?;
        statuses.push(status);
        for pair in allele_fields.chunks_exact(2) {
            let parse = |s: &str| -> Result<u8, DataError> {
                s.parse().map_err(|_| DataError::Parse {
                    line: line_no,
                    message: format!("bad allele code {s:?}"),
                })
            };
            let (a, b) = (parse(pair[0])?, parse(pair[1])?);
            let g = match (a, b) {
                (0, _) | (_, 0) => Genotype::Missing,
                _ => {
                    let aa = Allele::from_code(a).ok_or_else(|| DataError::Parse {
                        line: line_no,
                        message: format!("allele code {a} out of range (0/1/2)"),
                    })?;
                    let bb = Allele::from_code(b).ok_or_else(|| DataError::Parse {
                        line: line_no,
                        message: format!("allele code {b} out of range (0/1/2)"),
                    })?;
                    Genotype::from_alleles(aa, bb)
                }
            };
            data.push(g);
        }
    }
    let n_snps = n_snps.ok_or(DataError::Empty("LINKAGE pedigree input"))?;
    let n_individuals = statuses.len();
    let matrix = GenotypeMatrix::from_rows(n_individuals, n_snps, data)?;
    let snps = (0..n_snps).map(|i| SnpInfo::synthetic(i, 1, 0.0)).collect();
    Dataset::new(matrix, statuses, snps, label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::lille_51;

    #[test]
    fn roundtrip_preserves_genotypes_and_status() {
        let d = lille_51(3);
        let mut buf = Vec::new();
        write_linkage_ped(&d, &mut buf).unwrap();
        let d2 = read_linkage_ped(&buf[..], "roundtrip").unwrap();
        assert_eq!(d.genotypes, d2.genotypes);
        assert_eq!(d.statuses, d2.statuses);
    }

    #[test]
    fn writer_emits_singleton_founders() {
        let d = lille_51(3);
        let mut buf = Vec::new();
        write_linkage_ped(&d, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let first = text.lines().next().unwrap();
        let cols: Vec<&str> = first.split_whitespace().collect();
        assert_eq!(cols[0], "1"); // fam
        assert_eq!(cols[1], "1"); // id
        assert_eq!(cols[2], "0"); // father
        assert_eq!(cols[3], "0"); // mother
        assert_eq!(cols.len(), 6 + 2 * 51);
    }

    #[test]
    fn reads_hand_written_pedigree() {
        let input = b"\
# two markers, three unrelated individuals
1 1 0 0 1 2  1 1  1 2
2 2 0 0 2 1  2 2  0 0
3 3 0 0 0 0  1 2  2 1
";
        let d = read_linkage_ped(&input[..], "hand").unwrap();
        assert_eq!(d.n_individuals(), 3);
        assert_eq!(d.n_snps(), 2);
        assert_eq!(d.statuses[0], Status::Affected);
        assert_eq!(d.statuses[1], Status::Unaffected);
        assert_eq!(d.statuses[2], Status::Unknown);
        assert_eq!(d.genotypes.get(0, 0), Genotype::HomA1);
        assert_eq!(d.genotypes.get(0, 1), Genotype::Het);
        assert_eq!(d.genotypes.get(1, 0), Genotype::HomA2);
        assert_eq!(d.genotypes.get(1, 1), Genotype::Missing);
        // Unordered pair: "2 1" is the same het as "1 2".
        assert_eq!(d.genotypes.get(2, 1), Genotype::Het);
    }

    #[test]
    fn parse_errors_are_located() {
        // Too few columns.
        let input = b"1 1 0 0 1\n";
        assert!(matches!(
            read_linkage_ped(&input[..], "x"),
            Err(DataError::Parse { line: 1, .. })
        ));
        // Odd allele columns.
        let input = b"1 1 0 0 1 2 1\n";
        assert!(matches!(
            read_linkage_ped(&input[..], "x"),
            Err(DataError::Parse { line: 1, .. })
        ));
        // Bad status.
        let input = b"1 1 0 0 1 9 1 1\n";
        assert!(matches!(
            read_linkage_ped(&input[..], "x"),
            Err(DataError::Parse { line: 1, .. })
        ));
        // Bad allele.
        let input = b"1 1 0 0 1 2 1 7\n";
        assert!(matches!(
            read_linkage_ped(&input[..], "x"),
            Err(DataError::Parse { line: 1, .. })
        ));
        // Marker count change on line 2.
        let input = b"1 1 0 0 1 2 1 1\n2 2 0 0 1 1 1 1 2 2\n";
        assert!(matches!(
            read_linkage_ped(&input[..], "x"),
            Err(DataError::Parse { line: 2, .. })
        ));
        // Empty.
        let input = b"\n# only a comment\n";
        assert!(matches!(
            read_linkage_ped(&input[..], "x"),
            Err(DataError::Empty(_))
        ));
    }
}
