//! Bit-packed genotype columns: 2 bits per call, 32 individuals per word.
//!
//! [`crate::column::ColumnMatrix`] already gives the evaluation kernel
//! contiguous per-SNP columns, but each genotype still occupies a full
//! byte-sized enum. [`PackedColumns`] packs the same column-major layout
//! down to 2 bits per genotype inside `u64` lanes, so one word carries 32
//! individuals and the EM front-end (mask building, allele counting,
//! completeness filtering) turns into word-wide bitwise ops plus
//! `count_ones()` instead of a branchy per-genotype `match`.
//!
//! ## Lane layout
//!
//! SNP `s` occupies the lane slice `lanes[s·wps .. (s+1)·wps]` where
//! `wps = ⌈n_individuals / 32⌉`. Individual `i` lives in word `i / 32`,
//! bits `2·(i % 32)` (low) and `2·(i % 32) + 1` (high):
//!
//! | code (hi,lo) | genotype |
//! |--------------|----------|
//! | `00`         | [`Genotype::HomA1`] |
//! | `01`         | [`Genotype::Het`] |
//! | `10`         | [`Genotype::HomA2`] |
//! | `11`         | [`Genotype::Missing`] |
//!
//! The encoding is [`Genotype::to_u8`], chosen so the three *planes* fall
//! out of two AND/ANDNOT ops per word ([`split_planes`]): with
//! `lo = w & EVEN` and `hi = (w >> 1) & EVEN`, heterozygotes are
//! `lo & !hi`, homozygous-mutant is `hi & !lo`, and missing is `hi & lo`.
//! All three plane masks carry their bits at *even* positions, which is
//! exactly what `count_ones()` wants and what [`compress_even`] collapses
//! to a dense `u32` when per-individual bits are needed.
//!
//! ## Tail-word handling
//!
//! When `n_individuals % 32 != 0` the final word's surplus slots are
//! padded with the `11` (missing) code. Missing is excluded from every
//! count and every pattern the kernel builds, so the pad needs no
//! separate tail mask on the hot path; [`PackedColumns::tail_mask`]
//! exposes the valid-slot mask anyway for callers (and debug asserts)
//! that want to reason about the tail explicitly.

use crate::column::ColumnMatrix;
use crate::genotype::Genotype;
use crate::matrix::GenotypeMatrix;
use crate::snp::SnpId;

/// Bitmask of the even (low-of-pair) bit positions of a lane word.
pub const EVEN_BITS: u64 = 0x5555_5555_5555_5555;

/// Individuals packed per lane word.
pub const PER_WORD: usize = 32;

/// Column-major genotype store at 2 bits per call (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedColumns {
    n_individuals: usize,
    n_snps: usize,
    /// Lane words per SNP: `⌈n_individuals / 32⌉`.
    words_per_snp: usize,
    /// `lanes[s * words_per_snp + w]` holds individuals `32w..32(w+1)`
    /// of SNP `s`; tail slots are padded with the missing code `11`.
    lanes: Vec<u64>,
}

impl PackedColumns {
    /// Pack a column-major matrix.
    pub fn from_columns(cols: &ColumnMatrix) -> Self {
        Self::build(cols.n_individuals(), cols.n_snps(), |s| cols.column(s))
    }

    /// Pack a row-major matrix (transposing on the fly).
    pub fn from_matrix(m: &GenotypeMatrix) -> Self {
        let columns: Vec<Vec<Genotype>> = (0..m.n_snps()).map(|s| m.column(s).collect()).collect();
        Self::build(m.n_individuals(), m.n_snps(), |s| &columns[s])
    }

    fn build<'a>(
        n_individuals: usize,
        n_snps: usize,
        column: impl Fn(SnpId) -> &'a [Genotype],
    ) -> Self {
        let words_per_snp = n_individuals.div_ceil(PER_WORD);
        let mut lanes = Vec::with_capacity(n_snps * words_per_snp);
        for s in 0..n_snps {
            let col = column(s);
            debug_assert_eq!(col.len(), n_individuals);
            for chunk in 0..words_per_snp {
                // Start from all-missing so tail slots stay padded `11`.
                let mut word = u64::MAX;
                for (slot, &g) in col
                    [chunk * PER_WORD..(chunk * PER_WORD + PER_WORD).min(n_individuals)]
                    .iter()
                    .enumerate()
                {
                    let shift = 2 * slot;
                    word = (word & !(0b11 << shift)) | ((g.to_u8() as u64) << shift);
                }
                lanes.push(word);
            }
        }
        PackedColumns {
            n_individuals,
            n_snps,
            words_per_snp,
            lanes,
        }
    }

    /// Number of individuals (valid 2-bit slots per SNP).
    #[inline]
    pub fn n_individuals(&self) -> usize {
        self.n_individuals
    }

    /// Number of SNP markers.
    #[inline]
    pub fn n_snps(&self) -> usize {
        self.n_snps
    }

    /// Lane words per SNP (`⌈n_individuals / 32⌉`).
    #[inline]
    pub fn words_per_snp(&self) -> usize {
        self.words_per_snp
    }

    /// The lane words of one SNP, individuals in ascending order.
    ///
    /// # Panics
    /// Panics if `snp` is out of bounds (hot path, mirrors
    /// [`ColumnMatrix::column`]).
    #[inline]
    pub fn snp_lanes(&self, snp: SnpId) -> &[u64] {
        debug_assert!(snp < self.n_snps);
        &self.lanes[snp * self.words_per_snp..(snp + 1) * self.words_per_snp]
    }

    /// Genotype of `individual` at `snp` (unpacked; not for hot loops).
    #[inline]
    pub fn get(&self, individual: usize, snp: SnpId) -> Genotype {
        debug_assert!(individual < self.n_individuals && snp < self.n_snps);
        let word = self.snp_lanes(snp)[individual / PER_WORD];
        let code = (word >> (2 * (individual % PER_WORD))) & 0b11;
        Genotype::from_u8(code as u8).expect("2-bit code is always 0..=3")
    }

    /// Valid-slot mask for lane word `word_idx`: even-position bits of the
    /// slots that hold real individuals (all-ones-at-even except possibly
    /// the final word). Tail padding already decodes as missing, so the
    /// kernels don't need this — it exists for explicit tail reasoning.
    #[inline]
    pub fn tail_mask(&self, word_idx: usize) -> u64 {
        debug_assert!(word_idx < self.words_per_snp.max(1));
        let filled = (self.n_individuals - word_idx * PER_WORD).min(PER_WORD);
        if filled == PER_WORD {
            EVEN_BITS
        } else {
            EVEN_BITS & ((1u64 << (2 * filled)) - 1)
        }
    }
}

/// Split one lane word into its three even-position plane masks
/// `(het, hom2, missing)` — see the module docs for the derivation.
#[inline]
pub fn split_planes(word: u64) -> (u64, u64, u64) {
    let lo = word & EVEN_BITS;
    let hi = (word >> 1) & EVEN_BITS;
    (lo & !hi, hi & !lo, hi & lo)
}

/// Collapse the even-position bits of `x` (bit `2i`) into a dense `u32`
/// (bit `i`) — the standard even-bit extraction shuffle.
#[inline]
pub fn compress_even(x: u64) -> u32 {
    let x = x & EVEN_BITS;
    let x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    let x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    let x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    let x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    let x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// In-place 32×32 bit-matrix transpose (Hacker's Delight §7-3): output row
/// `c` bit `r` equals input row `r` bit `c`. The packed EM front-end uses
/// it to turn `k` per-SNP plane rows into 32 per-individual mask columns
/// in `O(32 log 32)` word ops instead of `32 · k` single-bit probes.
pub fn transpose32(a: &mut [u32; 32]) {
    let mut j = 16usize;
    let mut m = 0x0000_FFFFu32;
    while j != 0 {
        let mut k = 0usize;
        while k < 32 {
            // Swap the high columns of row k with the low columns of
            // row k + j (LSB-first bit-to-column convention).
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genotype::Genotype as G;

    const ALL: [G; 4] = [G::HomA1, G::Het, G::HomA2, G::Missing];

    /// Deterministic LCG so the randomized suites are reproducible.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    fn random_matrix(rng: &mut Lcg, n: usize, snps: usize) -> GenotypeMatrix {
        let data: Vec<G> = (0..n * snps)
            .map(|_| ALL[(rng.next() % 4) as usize])
            .collect();
        GenotypeMatrix::from_rows(n, snps, data).unwrap()
    }

    #[test]
    fn packed_roundtrip_miri() {
        // Small, Miri-sized round-trip covering missing calls and a tail
        // word (n % 32 != 0).
        let m = GenotypeMatrix::from_rows(
            3,
            2,
            vec![G::HomA1, G::Missing, G::Het, G::HomA2, G::HomA2, G::Het],
        )
        .unwrap();
        let p = PackedColumns::from_matrix(&m);
        assert_eq!(p.n_individuals(), 3);
        assert_eq!(p.n_snps(), 2);
        assert_eq!(p.words_per_snp(), 1);
        for i in 0..3 {
            for s in 0..2 {
                assert_eq!(p.get(i, s), m.get(i, s), "({i},{s})");
            }
        }
        // Tail slots decode as missing.
        let (_, _, miss) = split_planes(p.snp_lanes(0)[0]);
        assert_eq!(miss & !p.tail_mask(0), !p.tail_mask(0) & EVEN_BITS);
    }

    #[test]
    fn packed_planes_partition_called_slots_miri() {
        let m =
            GenotypeMatrix::from_rows(4, 1, vec![G::HomA1, G::Het, G::HomA2, G::Missing]).unwrap();
        let p = PackedColumns::from_matrix(&m);
        let (het, hom2, miss) = split_planes(p.snp_lanes(0)[0]);
        let valid = p.tail_mask(0);
        assert_eq!(het & valid, 1 << 2);
        assert_eq!(hom2 & valid, 1 << 4);
        assert_eq!(miss & valid, 1 << 6);
        // Planes are disjoint and HomA1 is the absent-from-all-planes code.
        assert_eq!(het & hom2, 0);
        assert_eq!(het & miss, 0);
        assert_eq!(hom2 & miss, 0);
        assert_eq!((het | hom2 | miss) & 1, 0);
    }

    /// Property: packing round-trips every ColumnMatrix — all four codes,
    /// missing included, across sizes straddling the 32-individual word
    /// boundary (n % 32 ∈ {0, 1, 31, …}).
    #[test]
    fn packed_roundtrips_every_column_matrix() {
        let mut rng = Lcg(0xC0FFEE);
        for n in [1usize, 2, 31, 32, 33, 53, 64, 65, 100] {
            for snps in [1usize, 2, 7] {
                let m = random_matrix(&mut rng, n, snps);
                let cols = ColumnMatrix::from_matrix(&m);
                let packed = PackedColumns::from_columns(&cols);
                assert_eq!(packed.n_individuals(), n);
                assert_eq!(packed.n_snps(), snps);
                assert_eq!(packed.words_per_snp(), n.div_ceil(32));
                for s in 0..snps {
                    for i in 0..n {
                        assert_eq!(packed.get(i, s), cols.get(i, s), "n={n} ({i},{s})");
                    }
                }
                // Both construction routes agree.
                assert_eq!(packed, PackedColumns::from_matrix(&m));
            }
        }
    }

    #[test]
    fn plane_popcounts_match_scalar_counts() {
        let mut rng = Lcg(7);
        for n in [5usize, 32, 61] {
            let m = random_matrix(&mut rng, n, 3);
            let p = PackedColumns::from_matrix(&m);
            for s in 0..3 {
                let (mut het, mut hom2, mut miss) = (0u32, 0u32, 0u32);
                for w in 0..p.words_per_snp() {
                    let (h, h2, mi) = split_planes(p.snp_lanes(s)[w]);
                    het += h.count_ones();
                    hom2 += h2.count_ones();
                    miss += (mi & p.tail_mask(w)).count_ones();
                }
                let col: Vec<G> = (0..n).map(|i| m.get(i, s)).collect();
                assert_eq!(het as usize, col.iter().filter(|g| g.is_het()).count());
                assert_eq!(
                    hom2 as usize,
                    col.iter().filter(|&&g| g == G::HomA2).count()
                );
                assert_eq!(miss as usize, col.iter().filter(|g| !g.is_called()).count());
            }
        }
    }

    #[test]
    fn compress_even_extracts_even_bits() {
        assert_eq!(compress_even(0), 0);
        assert_eq!(compress_even(EVEN_BITS), u32::MAX);
        assert_eq!(compress_even(1 << 2), 1 << 1);
        assert_eq!(compress_even(1 << 62), 1 << 31);
        // Odd bits never leak through.
        assert_eq!(compress_even(!EVEN_BITS), 0);
        let mut rng = Lcg(99);
        for _ in 0..200 {
            let x = rng.next() | (rng.next() << 31);
            let mut expect = 0u32;
            for i in 0..32 {
                expect |= (((x >> (2 * i)) & 1) as u32) << i;
            }
            assert_eq!(compress_even(x), expect, "x = {x:#x}");
        }
    }

    #[test]
    fn transpose32_matches_bit_probe() {
        let mut rng = Lcg(1234);
        for _ in 0..50 {
            let mut a = [0u32; 32];
            for row in a.iter_mut() {
                *row = rng.next() as u32;
            }
            let orig = a;
            transpose32(&mut a);
            for (r, orig_row) in orig.iter().enumerate() {
                for (c, row) in a.iter().enumerate() {
                    assert_eq!((row >> r) & 1, (orig_row >> c) & 1, "({r},{c})");
                }
            }
            // Involution: transposing twice restores the input.
            transpose32(&mut a);
            assert_eq!(a, orig);
        }
    }

    #[test]
    fn empty_matrix_packs() {
        let m = GenotypeMatrix::from_rows(0, 3, vec![]).unwrap();
        let p = PackedColumns::from_matrix(&m);
        assert_eq!(p.n_individuals(), 0);
        assert_eq!(p.words_per_snp(), 0);
        assert_eq!(p.snp_lanes(2), &[] as &[u64]);
    }
}
