//! Synthetic case/control population generator.
//!
//! The paper's evaluation uses a private dataset from the Biological
//! Institute of Lille (diabetes/obesity): 176 individuals — 53 affected,
//! 53 unaffected, 70 unknown — typed at 51 SNPs, with scale-ups at 150 and
//! 249 SNPs. That data cannot be redistributed, so this module builds a
//! synthetic stand-in with the same dimensions and — crucially — the same
//! *landscape structure* the paper's §3 reports:
//!
//! * SNPs are organised in LD blocks (founder haplotypes per block, within-
//!   block recombination and mutation noise), so realistic pairwise LD
//!   exists;
//! * one or more **planted causal haplotypes** raise the odds of being
//!   affected for carriers; planting signals of *different sizes on
//!   disjoint SNP sets* reproduces the paper's observation that the best
//!   haplotype of size `k` is not always an extension of the best of size
//!   `k − 1`;
//! * case/control status is drawn from a logistic disease model and
//!   individuals are accepted into the affected / unaffected / unknown
//!   quotas, mimicking retrospective case-control ascertainment.
//!
//! Everything is deterministic given the seed (ChaCha8 PRNG).

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::genotype::Genotype;
use crate::matrix::GenotypeMatrix;
use crate::snp::{Allele, SnpId, SnpInfo};
use crate::status::Status;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A causal haplotype planted into the population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedSignal {
    /// Ascending SNP ids the signal spans.
    pub snps: Vec<SnpId>,
    /// Risk allele at each of `snps` (same length).
    pub risk_alleles: Vec<Allele>,
    /// Multiplicative odds of disease per carried copy of the risk
    /// haplotype (`> 1` increases risk).
    pub odds: f64,
    /// Frequency with which a sampled chromosome is overwritten with the
    /// risk pattern (this is what creates the haplotype and its internal LD).
    pub carrier_freq: f64,
}

impl PlantedSignal {
    /// Convenience constructor with all-`A2` risk pattern.
    pub fn all_a2(snps: Vec<SnpId>, odds: f64, carrier_freq: f64) -> Self {
        let risk_alleles = vec![Allele::A2; snps.len()];
        PlantedSignal {
            snps,
            risk_alleles,
            odds,
            carrier_freq,
        }
    }

    fn validate(&self, n_snps: usize) -> Result<(), DataError> {
        if self.snps.len() != self.risk_alleles.len() {
            return Err(DataError::InvalidConfig(format!(
                "signal has {} SNPs but {} risk alleles",
                self.snps.len(),
                self.risk_alleles.len()
            )));
        }
        if self.snps.is_empty() {
            return Err(DataError::InvalidConfig("signal with no SNPs".into()));
        }
        for w in self.snps.windows(2) {
            if w[0] >= w[1] {
                return Err(DataError::InvalidConfig(format!(
                    "signal SNPs must be strictly ascending: {:?}",
                    self.snps
                )));
            }
        }
        if *self.snps.last().unwrap() >= n_snps {
            return Err(DataError::InvalidConfig(format!(
                "signal SNP {} out of range (n_snps = {})",
                self.snps.last().unwrap(),
                n_snps
            )));
        }
        if self.odds.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(DataError::InvalidConfig("signal odds must be > 0".into()));
        }
        if !(0.0..=1.0).contains(&self.carrier_freq) {
            return Err(DataError::InvalidConfig(
                "carrier_freq must be in [0, 1]".into(),
            ));
        }
        Ok(())
    }

    /// Whether a chromosome (allele per SNP of the whole panel) carries the
    /// risk pattern.
    fn carried_by(&self, chromosome: &[Allele]) -> bool {
        self.snps
            .iter()
            .zip(&self.risk_alleles)
            .all(|(&s, &a)| chromosome[s] == a)
    }
}

/// Configuration of the synthetic population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of SNP markers.
    pub n_snps: usize,
    /// Affected-individual quota.
    pub n_affected: usize,
    /// Unaffected-individual quota.
    pub n_unaffected: usize,
    /// Unknown-status quota.
    pub n_unknown: usize,
    /// Inclusive range of LD-block lengths (in SNPs).
    pub block_len_range: (usize, usize),
    /// Founder haplotypes per block.
    pub founders_per_block: usize,
    /// Inclusive range of per-SNP mutant-allele frequencies among founders.
    pub allele2_freq_range: (f64, f64),
    /// Probability that a sampled block haplotype recombines two founders.
    pub within_block_recomb: f64,
    /// Per-locus allele flip probability (mutation noise).
    pub mutation_rate: f64,
    /// Per-genotype missing-call probability.
    pub missing_rate: f64,
    /// Baseline disease prevalence for non-carriers.
    pub baseline_prevalence: f64,
    /// Planted causal haplotypes.
    pub signals: Vec<PlantedSignal>,
}

impl SyntheticConfig {
    /// Total number of individuals.
    pub fn n_individuals(&self) -> usize {
        self.n_affected + self.n_unaffected + self.n_unknown
    }

    fn validate(&self) -> Result<(), DataError> {
        if self.n_snps == 0 {
            return Err(DataError::InvalidConfig("n_snps must be > 0".into()));
        }
        if self.n_individuals() == 0 {
            return Err(DataError::InvalidConfig("no individuals requested".into()));
        }
        let (lo, hi) = self.block_len_range;
        if lo == 0 || lo > hi {
            return Err(DataError::InvalidConfig(format!(
                "bad block_len_range ({lo}, {hi})"
            )));
        }
        if self.founders_per_block < 2 {
            return Err(DataError::InvalidConfig(
                "need at least 2 founder haplotypes per block".into(),
            ));
        }
        let (flo, fhi) = self.allele2_freq_range;
        if !(0.0..=1.0).contains(&flo) || !(0.0..=1.0).contains(&fhi) || flo > fhi {
            return Err(DataError::InvalidConfig(format!(
                "bad allele2_freq_range ({flo}, {fhi})"
            )));
        }
        for p in [
            self.within_block_recomb,
            self.mutation_rate,
            self.missing_rate,
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(DataError::InvalidConfig(
                    "probabilities must be in [0, 1]".into(),
                ));
            }
        }
        if !(0.0 < self.baseline_prevalence && self.baseline_prevalence < 1.0) {
            return Err(DataError::InvalidConfig(
                "baseline_prevalence must be in (0, 1)".into(),
            ));
        }
        for s in &self.signals {
            s.validate(self.n_snps)?;
        }
        Ok(())
    }

    /// Generate the dataset. Deterministic for a given `(config, seed)`.
    pub fn generate(&self, seed: u64) -> Result<Dataset, DataError> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let founders = FounderPool::build(self, &mut rng);

        let mut rows: Vec<(Vec<Genotype>, Status)> = Vec::with_capacity(self.n_individuals());
        let mut need_a = self.n_affected;
        let mut need_u = self.n_unaffected;
        let mut need_q = self.n_unknown;
        // Retrospective ascertainment: sample individuals from the
        // population model and accept them into whichever quota their drawn
        // status still has room for. Bounded to avoid pathological configs
        // spinning forever.
        let max_attempts = 4000 * self.n_individuals().max(1);
        let mut attempts = 0usize;
        while need_a + need_u + need_q > 0 {
            attempts += 1;
            if attempts > max_attempts {
                return Err(DataError::InvalidConfig(format!(
                    "could not fill group quotas after {max_attempts} draws; \
                     disease model too extreme (baseline {}, {} signals)",
                    self.baseline_prevalence,
                    self.signals.len()
                )));
            }
            let c1 = founders.sample_chromosome(self, &mut rng);
            let c2 = founders.sample_chromosome(self, &mut rng);
            let p = self.disease_probability(&c1, &c2);
            let affected = rng.random::<f64>() < p;
            let slot = if affected && need_a > 0 {
                need_a -= 1;
                Some(Status::Affected)
            } else if !affected && need_u > 0 {
                need_u -= 1;
                Some(Status::Unaffected)
            } else if need_q > 0 {
                need_q -= 1;
                Some(Status::Unknown)
            } else {
                None
            };
            if let Some(status) = slot {
                rows.push((self.genotypes_from(&c1, &c2, &mut rng), status));
            }
        }
        // Group-block ordering (affected first) like the paper's tables.
        rows.sort_by_key(|(_, s)| match s {
            Status::Affected => 0u8,
            Status::Unaffected => 1,
            Status::Unknown => 2,
        });

        let n = rows.len();
        let mut data = Vec::with_capacity(n * self.n_snps);
        let mut statuses = Vec::with_capacity(n);
        for (gs, st) in rows {
            data.extend(gs);
            statuses.push(st);
        }
        let matrix = GenotypeMatrix::from_rows(n, self.n_snps, data)?;
        let snps = founders.snp_infos();
        Dataset::new(matrix, statuses, snps, format!("synthetic seed={seed}"))
    }

    /// Logistic disease model: logit(p) = logit(baseline) + Σ copies·ln(odds).
    fn disease_probability(&self, c1: &[Allele], c2: &[Allele]) -> f64 {
        let base = self.baseline_prevalence;
        let mut logit = (base / (1.0 - base)).ln();
        for s in &self.signals {
            let copies = usize::from(s.carried_by(c1)) + usize::from(s.carried_by(c2));
            logit += copies as f64 * s.odds.ln();
        }
        1.0 / (1.0 + (-logit).exp())
    }

    fn genotypes_from(&self, c1: &[Allele], c2: &[Allele], rng: &mut ChaCha8Rng) -> Vec<Genotype> {
        c1.iter()
            .zip(c2)
            .map(|(&a, &b)| {
                if self.missing_rate > 0.0 && rng.random::<f64>() < self.missing_rate {
                    Genotype::Missing
                } else {
                    Genotype::from_alleles(a, b)
                }
            })
            .collect()
    }
}

/// Founder haplotypes organised in LD blocks.
struct FounderPool {
    /// `blocks[b] = (start_snp, haplotypes, weights)`.
    blocks: Vec<Block>,
    n_snps: usize,
    /// Per-SNP kilobase positions (blocks are contiguous runs).
    positions_kb: Vec<f64>,
}

struct Block {
    len: usize,
    /// `founders_per_block` haplotypes of length `len`.
    haplotypes: Vec<Vec<Allele>>,
    /// Sampling weights (sum to 1).
    weights: Vec<f64>,
}

impl FounderPool {
    fn build(cfg: &SyntheticConfig, rng: &mut ChaCha8Rng) -> Self {
        let (lo, hi) = cfg.block_len_range;
        let mut blocks = Vec::new();
        let mut start = 0usize;
        while start < cfg.n_snps {
            let len = rng.random_range(lo..=hi).min(cfg.n_snps - start);
            // Per-SNP target mutant frequency.
            let (flo, fhi) = cfg.allele2_freq_range;
            let freqs: Vec<f64> = (0..len)
                .map(|_| {
                    if (fhi - flo).abs() < f64::EPSILON {
                        flo
                    } else {
                        rng.random_range(flo..fhi)
                    }
                })
                .collect();
            let haplotypes: Vec<Vec<Allele>> = (0..cfg.founders_per_block)
                .map(|_| {
                    freqs
                        .iter()
                        .map(|&p| {
                            if rng.random::<f64>() < p {
                                Allele::A2
                            } else {
                                Allele::A1
                            }
                        })
                        .collect()
                })
                .collect();
            // Random founder weights (normalized positive draws).
            let raw: Vec<f64> = (0..cfg.founders_per_block)
                .map(|_| rng.random_range(0.2..1.0))
                .collect();
            let total: f64 = raw.iter().sum();
            let weights = raw.into_iter().map(|w| w / total).collect();
            blocks.push(Block {
                len,
                haplotypes,
                weights,
            });
            start += len;
        }
        // Positions: 5 kb spacing within blocks, 200 kb gaps between blocks.
        let mut positions_kb = Vec::with_capacity(cfg.n_snps);
        let mut pos = 0.0;
        for b in &blocks {
            pos += 200.0;
            for _ in 0..b.len {
                positions_kb.push(pos);
                pos += 5.0;
            }
        }
        FounderPool {
            blocks,
            n_snps: cfg.n_snps,
            positions_kb,
        }
    }

    fn pick_founder<'a>(block: &'a Block, rng: &mut ChaCha8Rng) -> &'a [Allele] {
        let u: f64 = rng.random();
        let mut acc = 0.0;
        for (h, &w) in block.haplotypes.iter().zip(&block.weights) {
            acc += w;
            if u < acc {
                return h;
            }
        }
        block.haplotypes.last().expect("non-empty founders")
    }

    /// Sample one chromosome: per block, draw a founder (possibly
    /// recombining two founders at a crossover point), apply mutation
    /// noise, then overwrite with any planted signal pattern that fires.
    fn sample_chromosome(&self, cfg: &SyntheticConfig, rng: &mut ChaCha8Rng) -> Vec<Allele> {
        let mut chrom = Vec::with_capacity(self.n_snps);
        for block in &self.blocks {
            let a = Self::pick_founder(block, rng);
            if block.len > 1 && rng.random::<f64>() < cfg.within_block_recomb {
                let b = Self::pick_founder(block, rng);
                let cut = rng.random_range(1..block.len);
                chrom.extend_from_slice(&a[..cut]);
                chrom.extend_from_slice(&b[cut..]);
            } else {
                chrom.extend_from_slice(a);
            }
        }
        if cfg.mutation_rate > 0.0 {
            for allele in chrom.iter_mut() {
                if rng.random::<f64>() < cfg.mutation_rate {
                    *allele = allele.other();
                }
            }
        }
        for s in &cfg.signals {
            if rng.random::<f64>() < s.carrier_freq {
                for (&snp, &a) in s.snps.iter().zip(&s.risk_alleles) {
                    chrom[snp] = a;
                }
            }
        }
        chrom
    }

    fn snp_infos(&self) -> Vec<SnpInfo> {
        (0..self.n_snps)
            .map(|i| SnpInfo::synthetic(i, 1, self.positions_kb[i]))
            .collect()
    }
}

/// The paper's primary instance: 51 SNPs, 176 individuals
/// (53 affected / 53 unaffected / 70 unknown).
///
/// ```
/// let data = ld_data::synthetic::lille_51(42);
/// assert_eq!(data.n_snps(), 51);
/// assert_eq!(data.group_sizes(), (53, 53, 70));
/// ```
///
/// Signals are planted on the SNP sets the paper reports as per-size optima
/// (Table 2): a strong size-3 signal on `{8, 12, 15}`, a moderate size-3
/// signal on `{18, 26, 50}` (which combines with SNP 8 at size 4), and a
/// weaker size-3 signal on `{21, 32, 43}` (which combines with the primary
/// signal at size 6). Planting *disjoint* signal sets is what makes optima
/// non-nested across sizes, matching the paper's landscape observation.
pub fn lille_51(seed: u64) -> Dataset {
    lille_51_config()
        .generate(seed)
        .expect("lille_51 preset is a valid configuration")
}

/// Configuration behind [`lille_51`], exposed for parameter sweeps.
pub fn lille_51_config() -> SyntheticConfig {
    SyntheticConfig {
        n_snps: 51,
        n_affected: 53,
        n_unaffected: 53,
        n_unknown: 70,
        block_len_range: (3, 7),
        founders_per_block: 4,
        allele2_freq_range: (0.15, 0.5),
        within_block_recomb: 0.15,
        mutation_rate: 0.01,
        missing_rate: 0.0,
        baseline_prevalence: 0.25,
        signals: vec![
            PlantedSignal::all_a2(vec![8, 12, 15], 3.4, 0.30),
            PlantedSignal::all_a2(vec![18, 26, 50], 2.4, 0.25),
            PlantedSignal::all_a2(vec![21, 32, 43], 1.9, 0.25),
        ],
    }
}

/// Scale-up instance with 150 SNPs (same individuals), matching the paper's
/// intermediate problem size of Table 1.
pub fn scale_150(seed: u64) -> Dataset {
    let mut cfg = lille_51_config();
    cfg.n_snps = 150;
    cfg.signals = vec![
        PlantedSignal::all_a2(vec![8, 12, 15], 3.4, 0.30),
        PlantedSignal::all_a2(vec![18, 26, 50], 2.4, 0.25),
        PlantedSignal::all_a2(vec![61, 88, 104], 2.0, 0.25),
        PlantedSignal::all_a2(vec![120, 133, 141, 149], 2.2, 0.2),
    ];
    cfg.generate(seed).expect("scale_150 preset is valid")
}

/// Scale-up instance with 249 SNPs — the paper's largest real dataset size.
pub fn scale_249(seed: u64) -> Dataset {
    let mut cfg = lille_51_config();
    cfg.n_snps = 249;
    cfg.signals = vec![
        PlantedSignal::all_a2(vec![8, 12, 15], 3.4, 0.30),
        PlantedSignal::all_a2(vec![18, 26, 50], 2.4, 0.25),
        PlantedSignal::all_a2(vec![101, 140, 175], 2.0, 0.25),
        PlantedSignal::all_a2(vec![200, 216, 233, 247], 2.2, 0.2),
    ];
    cfg.generate(seed).expect("scale_249 preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::AlleleFreqTable;
    use crate::ld::LdTable;

    #[test]
    fn lille_51_has_paper_dimensions() {
        let d = lille_51(42);
        assert_eq!(d.n_individuals(), 176);
        assert_eq!(d.n_snps(), 51);
        assert_eq!(d.group_sizes(), (53, 53, 70));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = lille_51(7);
        let b = lille_51(7);
        assert_eq!(a.genotypes, b.genotypes);
        assert_eq!(a.statuses, b.statuses);
        let c = lille_51(8);
        assert_ne!(a.genotypes, c.genotypes);
    }

    #[test]
    fn scale_instances_have_right_width() {
        assert_eq!(scale_150(1).n_snps(), 150);
        assert_eq!(scale_249(1).n_snps(), 249);
    }

    #[test]
    fn planted_signal_enriches_risk_allele_in_cases() {
        let d = lille_51(42);
        let aff = AlleleFreqTable::from_dataset(&d, Some(Status::Affected));
        let una = AlleleFreqTable::from_dataset(&d, Some(Status::Unaffected));
        // Averaged over the primary signal's SNPs, A2 must be materially
        // more frequent in cases.
        let mean = |t: &AlleleFreqTable| (t.get(8).a2 + t.get(12).a2 + t.get(15).a2) / 3.0;
        assert!(
            mean(&aff) > mean(&una) + 0.05,
            "affected {:.3} vs unaffected {:.3}",
            mean(&aff),
            mean(&una)
        );
    }

    #[test]
    fn signal_snps_are_in_ld() {
        let d = lille_51(42);
        let t = LdTable::from_matrix(&d.genotypes);
        // Planted carriers share the whole pattern, creating LD between
        // signal SNPs even across blocks.
        assert!(t.get(8, 12).r2 > 0.02, "r2 = {}", t.get(8, 12).r2);
    }

    #[test]
    fn missing_rate_produces_missing_calls() {
        let mut cfg = lille_51_config();
        cfg.missing_rate = 0.2;
        let d = cfg.generate(3).unwrap();
        let missing = d
            .genotypes
            .as_slice()
            .iter()
            .filter(|g| !g.is_called())
            .count();
        let total = d.n_individuals() * d.n_snps();
        let rate = missing as f64 / total as f64;
        assert!((rate - 0.2).abs() < 0.03, "rate = {rate}");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = lille_51_config();
        cfg.block_len_range = (0, 3);
        assert!(cfg.generate(0).is_err());

        let mut cfg = lille_51_config();
        cfg.signals[0].snps = vec![100]; // out of range
        cfg.signals[0].risk_alleles = vec![Allele::A2];
        assert!(cfg.generate(0).is_err());

        let mut cfg = lille_51_config();
        cfg.signals[0].snps = vec![5, 5, 9];
        cfg.signals[0].risk_alleles = vec![Allele::A2; 3];
        assert!(cfg.generate(0).is_err());

        let mut cfg = lille_51_config();
        cfg.baseline_prevalence = 0.0;
        assert!(cfg.generate(0).is_err());
    }

    #[test]
    fn signal_validation_rejects_length_mismatch() {
        let s = PlantedSignal {
            snps: vec![1, 2],
            risk_alleles: vec![Allele::A2],
            odds: 2.0,
            carrier_freq: 0.2,
        };
        assert!(s.validate(10).is_err());
    }

    #[test]
    fn disease_probability_monotone_in_copies() {
        let cfg = lille_51_config();
        let sig = &cfg.signals[0];
        let mut none = vec![Allele::A1; cfg.n_snps];
        // Ensure the no-carrier chromosome really does not match.
        none[8] = Allele::A1;
        let mut carrier = none.clone();
        for (&s, &a) in sig.snps.iter().zip(&sig.risk_alleles) {
            carrier[s] = a;
        }
        let p0 = cfg.disease_probability(&none, &none);
        let p1 = cfg.disease_probability(&carrier, &none);
        let p2 = cfg.disease_probability(&carrier, &carrier);
        assert!(p0 < p1 && p1 < p2, "p0={p0} p1={p1} p2={p2}");
        assert!((p0 - cfg.baseline_prevalence).abs() < 1e-12);
    }

    #[test]
    fn quota_failure_reports_config_error() {
        let mut cfg = lille_51_config();
        // Practically no one is affected -> affected quota cannot fill.
        cfg.baseline_prevalence = 1e-9;
        cfg.signals.clear();
        cfg.n_affected = 100;
        cfg.n_unaffected = 1;
        cfg.n_unknown = 0;
        assert!(matches!(cfg.generate(0), Err(DataError::InvalidConfig(_))));
    }
}
