//! Error type for data construction, validation and IO.

use std::fmt;

/// Errors produced while building, validating or (de)serializing datasets.
#[derive(Debug)]
pub enum DataError {
    /// A matrix was built with inconsistent dimensions.
    DimensionMismatch {
        /// What was being constructed.
        what: &'static str,
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
    /// A SNP index was out of bounds for the matrix.
    SnpOutOfBounds {
        /// Offending SNP index.
        snp: usize,
        /// Number of SNPs in the matrix.
        n_snps: usize,
    },
    /// An individual index was out of bounds for the matrix.
    IndividualOutOfBounds {
        /// Offending row index.
        individual: usize,
        /// Number of individuals in the matrix.
        n_individuals: usize,
    },
    /// A genotype code outside `{0,1,2,3}` / `{"11","12","22","00"}` was read.
    InvalidGenotypeCode(String),
    /// A status code outside `{A,U,?}` was read.
    InvalidStatusCode(String),
    /// A numeric field failed to parse.
    Parse {
        /// Line number (1-based) in the input.
        line: usize,
        /// Description of the failure.
        message: String,
    },
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The dataset is structurally valid but empty where content is required.
    Empty(&'static str),
    /// A synthetic-generation configuration is infeasible.
    InvalidConfig(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch building {what}: expected {expected} elements, got {actual}"
            ),
            DataError::SnpOutOfBounds { snp, n_snps } => {
                write!(
                    f,
                    "SNP index {snp} out of bounds (matrix has {n_snps} SNPs)"
                )
            }
            DataError::IndividualOutOfBounds {
                individual,
                n_individuals,
            } => write!(
                f,
                "individual index {individual} out of bounds (matrix has {n_individuals} rows)"
            ),
            DataError::InvalidGenotypeCode(code) => {
                write!(f, "invalid genotype code {code:?}")
            }
            DataError::InvalidStatusCode(code) => write!(f, "invalid status code {code:?}"),
            DataError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DataError::Io(e) => write!(f, "io error: {e}"),
            DataError::Empty(what) => write!(f, "{what} must not be empty"),
            DataError::InvalidConfig(msg) => write!(f, "invalid synthetic config: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::SnpOutOfBounds {
            snp: 60,
            n_snps: 51,
        };
        assert!(e.to_string().contains("60"));
        assert!(e.to_string().contains("51"));

        let e = DataError::DimensionMismatch {
            what: "GenotypeMatrix",
            expected: 10,
            actual: 9,
        };
        assert!(e.to_string().contains("GenotypeMatrix"));
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error;
        let e = DataError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
    }
}
