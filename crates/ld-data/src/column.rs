//! Column-major genotype store: contiguous per-SNP columns.
//!
//! [`crate::matrix::GenotypeMatrix`] is row-major because data *loading*
//! and per-individual views want cache-friendly rows. The evaluation
//! kernel wants the opposite: EM pattern pooling scans one SNP across all
//! individuals, so a haplotype evaluation over `k` SNPs touches `k`
//! contiguous columns instead of `n_individuals` strided row gathers.
//! [`ColumnMatrix`] is that transposed view, built once per status group
//! at pipeline construction and borrowed (never re-gathered, never
//! allocated) on every evaluation thereafter.

use crate::error::DataError;
use crate::genotype::Genotype;
use crate::matrix::GenotypeMatrix;
use crate::snp::SnpId;

/// Dense SNPs × individuals genotype matrix (column-major relative to the
/// individuals × SNPs convention of [`GenotypeMatrix`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMatrix {
    n_individuals: usize,
    n_snps: usize,
    /// Column-major: `data[s * n_individuals + i]`.
    data: Vec<Genotype>,
}

impl ColumnMatrix {
    /// Transpose a row-major matrix into contiguous columns.
    pub fn from_matrix(m: &GenotypeMatrix) -> Self {
        let (n_individuals, n_snps) = (m.n_individuals(), m.n_snps());
        let mut data = Vec::with_capacity(n_individuals * n_snps);
        for s in 0..n_snps {
            data.extend(m.column(s));
        }
        ColumnMatrix {
            n_individuals,
            n_snps,
            data,
        }
    }

    /// Transpose a row subset of a row-major matrix, preserving row order
    /// (the column-store analogue of [`GenotypeMatrix::select_rows`]).
    pub fn from_matrix_rows(m: &GenotypeMatrix, rows: &[usize]) -> Result<Self, DataError> {
        for &r in rows {
            if r >= m.n_individuals() {
                return Err(DataError::IndividualOutOfBounds {
                    individual: r,
                    n_individuals: m.n_individuals(),
                });
            }
        }
        let n_snps = m.n_snps();
        let mut data = Vec::with_capacity(rows.len() * n_snps);
        for s in 0..n_snps {
            data.extend(rows.iter().map(|&r| m.get(r, s)));
        }
        Ok(ColumnMatrix {
            n_individuals: rows.len(),
            n_snps,
            data,
        })
    }

    /// Number of individuals (entries per column).
    #[inline]
    pub fn n_individuals(&self) -> usize {
        self.n_individuals
    }

    /// Number of SNP markers (columns).
    #[inline]
    pub fn n_snps(&self) -> usize {
        self.n_snps
    }

    /// The contiguous column of one SNP: all individuals in row order.
    ///
    /// # Panics
    /// Panics if `snp` is out of bounds (hot path, mirrors
    /// [`GenotypeMatrix::get`]).
    #[inline]
    pub fn column(&self, snp: SnpId) -> &[Genotype] {
        debug_assert!(snp < self.n_snps);
        &self.data[snp * self.n_individuals..(snp + 1) * self.n_individuals]
    }

    /// Genotype of `individual` at `snp`.
    #[inline]
    pub fn get(&self, individual: usize, snp: SnpId) -> Genotype {
        debug_assert!(individual < self.n_individuals && snp < self.n_snps);
        self.data[snp * self.n_individuals + individual]
    }

    /// Raw column-major data.
    pub fn as_slice(&self) -> &[Genotype] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genotype::Genotype as G;

    fn small() -> GenotypeMatrix {
        // 3 individuals × 4 SNPs (same fixture as matrix.rs).
        GenotypeMatrix::from_rows(
            3,
            4,
            vec![
                G::HomA1,
                G::Het,
                G::HomA2,
                G::Missing, //
                G::Het,
                G::Het,
                G::HomA1,
                G::HomA1, //
                G::HomA2,
                G::HomA1,
                G::Het,
                G::HomA2,
            ],
        )
        .unwrap()
    }

    #[test]
    fn transpose_matches_row_matrix() {
        let m = small();
        let c = ColumnMatrix::from_matrix(&m);
        assert_eq!(c.n_individuals(), 3);
        assert_eq!(c.n_snps(), 4);
        for i in 0..3 {
            for s in 0..4 {
                assert_eq!(c.get(i, s), m.get(i, s), "({i},{s})");
            }
        }
    }

    #[test]
    fn columns_are_contiguous_slices() {
        let m = small();
        let c = ColumnMatrix::from_matrix(&m);
        assert_eq!(c.column(0), &[G::HomA1, G::Het, G::HomA2]);
        assert_eq!(c.column(3), &[G::Missing, G::HomA1, G::HomA2]);
        // Slice identity against the strided row-major column view.
        for s in 0..4 {
            let strided: Vec<G> = m.column(s).collect();
            assert_eq!(c.column(s), strided.as_slice());
        }
    }

    #[test]
    fn row_subset_preserves_order() {
        let m = small();
        let c = ColumnMatrix::from_matrix_rows(&m, &[2, 0]).unwrap();
        assert_eq!(c.n_individuals(), 2);
        assert_eq!(c.column(0), &[G::HomA2, G::HomA1]);
        // Matches the row-major subset route.
        let sub = m.select_rows(&[2, 0]).unwrap();
        assert_eq!(c, ColumnMatrix::from_matrix(&sub));
        assert!(ColumnMatrix::from_matrix_rows(&m, &[5]).is_err());
    }

    #[test]
    fn empty_subset_is_valid() {
        let m = small();
        let c = ColumnMatrix::from_matrix_rows(&m, &[]).unwrap();
        assert_eq!(c.n_individuals(), 0);
        assert_eq!(c.column(2), &[] as &[G]);
    }
}
