//! # ld-data — genotype data substrate for linkage-disequilibrium studies
//!
//! This crate provides everything the IPDPS 2004 paper's GA consumes as
//! *input data*:
//!
//! * a genotype model for bi-allelic SNP markers ([`snp`], [`genotype`]),
//! * a dense individuals × SNPs genotype matrix with case/control status
//!   ([`matrix`], [`dataset`]),
//! * the three "paper input tables": per-SNP allele frequencies ([`freq`]),
//!   pairwise linkage disequilibrium ([`ld`]), and the genotype table itself
//!   ([`io`]),
//! * the §2.3 haplotype feasibility constraints ([`constraints`]),
//! * and a synthetic population generator ([`synthetic`]) standing in for the
//!   private Lille diabetes/obesity dataset (176 individuals, 51 SNPs), with
//!   planted causal haplotypes so that ground-truth optima exist.
//!
//! The original study's data cannot be redistributed; [`synthetic::lille_51`]
//! builds a deterministic instance with the same dimensions and the same
//! qualitative landscape structure (non-nested optima across haplotype
//! sizes, LD block structure, unknown-status individuals).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod constraints;
pub mod dataset;
pub mod error;
pub mod fingerprint;
pub mod freq;
pub mod genotype;
pub mod impute;
pub mod io;
pub mod ld;
pub mod linkage;
pub mod matrix;
pub mod packed;
pub mod snp;
pub mod status;
pub mod synthetic;

pub use column::ColumnMatrix;
pub use constraints::{ConstraintReport, HaplotypeConstraints};
pub use dataset::Dataset;
pub use error::DataError;
pub use fingerprint::DatasetFingerprint;
pub use freq::AlleleFreqTable;
pub use genotype::Genotype;
pub use io::{read_dataset_tsv, write_dataset_tsv};
pub use ld::{LdTable, PairwiseLd};
pub use matrix::GenotypeMatrix;
pub use packed::PackedColumns;
pub use snp::{Allele, SnpId, SnpInfo};
pub use status::Status;
pub use synthetic::{PlantedSignal, SyntheticConfig};
