//! Haplotype feasibility constraints (§2.3 of the paper).
//!
//! In a linkage-disequilibrium study, two SNPs of the same haplotype must
//! satisfy:
//!
//! 1. their pairwise disequilibrium must be **below** a threshold `s1`
//!    (strongly linked SNPs are redundant — they tag the same signal);
//! 2. the difference between the smaller frequencies (MAF) of their two
//!    variants must be **above** a threshold `s2`.
//!
//! The paper leaves the exact measures open; we use `r²` for (1) and the
//!, absolute MAF difference for (2), plus a conventional per-SNP minimum
//! MAF filter that any real association pipeline applies.

use crate::freq::AlleleFreqTable;
use crate::ld::LdTable;
use crate::snp::SnpId;
use serde::{Deserialize, Serialize};

/// Thresholds for haplotype feasibility.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HaplotypeConstraints {
    /// `s1`: maximum allowed pairwise `r²` between any two SNPs of the
    /// haplotype (exclusive bound; pairs at or above are rejected).
    pub max_pairwise_r2: f64,
    /// `s2`: minimum required absolute difference between the MAFs of any
    /// two SNPs of the haplotype (inclusive bound).
    pub min_maf_difference: f64,
    /// Per-SNP minimum MAF (monomorphic-marker filter).
    pub min_maf: f64,
}

impl Default for HaplotypeConstraints {
    fn default() -> Self {
        // Loose defaults: r² < 0.8 rules out near-duplicate tag SNPs, no MAF
        // spacing requirement, 1% polymorphism floor.
        HaplotypeConstraints {
            max_pairwise_r2: 0.8,
            min_maf_difference: 0.0,
            min_maf: 0.01,
        }
    }
}

/// A single constraint violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A pair of SNPs exceeds the `r²` ceiling.
    PairwiseLdTooHigh {
        /// First SNP of the offending pair.
        a: SnpId,
        /// Second SNP of the offending pair.
        b: SnpId,
        /// Observed `r²`.
        r2: f64,
    },
    /// A pair of SNPs has too-similar MAFs.
    MafDifferenceTooLow {
        /// First SNP of the offending pair.
        a: SnpId,
        /// Second SNP of the offending pair.
        b: SnpId,
        /// Observed |MAF(a) − MAF(b)|.
        diff: f64,
    },
    /// A SNP is (nearly) monomorphic.
    MafTooLow {
        /// Offending SNP.
        snp: SnpId,
        /// Observed MAF.
        maf: f64,
    },
}

/// Result of checking one haplotype against the constraints.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConstraintReport {
    /// All violations found (empty ⇒ feasible).
    pub violations: Vec<Violation>,
}

impl ConstraintReport {
    /// Whether the haplotype satisfies every constraint.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }
}

impl HaplotypeConstraints {
    /// Check a haplotype (ascending SNP list) against the frequency and LD
    /// tables; collects *all* violations rather than stopping at the first.
    pub fn check(&self, snps: &[SnpId], freqs: &AlleleFreqTable, ld: &LdTable) -> ConstraintReport {
        let mut report = ConstraintReport::default();
        for (i, &a) in snps.iter().enumerate() {
            let maf_a = freqs.maf(a);
            if maf_a < self.min_maf {
                report
                    .violations
                    .push(Violation::MafTooLow { snp: a, maf: maf_a });
            }
            for &b in &snps[i + 1..] {
                let r2 = ld.get(a, b).r2;
                if r2 >= self.max_pairwise_r2 {
                    report
                        .violations
                        .push(Violation::PairwiseLdTooHigh { a, b, r2 });
                }
                let diff = (maf_a - freqs.maf(b)).abs();
                if diff < self.min_maf_difference {
                    report
                        .violations
                        .push(Violation::MafDifferenceTooLow { a, b, diff });
                }
            }
        }
        report
    }

    /// Fast boolean feasibility check (stops at the first violation).
    pub fn is_feasible(&self, snps: &[SnpId], freqs: &AlleleFreqTable, ld: &LdTable) -> bool {
        for (i, &a) in snps.iter().enumerate() {
            let maf_a = freqs.maf(a);
            if maf_a < self.min_maf {
                return false;
            }
            for &b in &snps[i + 1..] {
                if ld.get(a, b).r2 >= self.max_pairwise_r2 {
                    return false;
                }
                if (maf_a - freqs.maf(b)).abs() < self.min_maf_difference {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genotype::Genotype as G;
    use crate::matrix::GenotypeMatrix;

    /// 3 SNPs: 0 and 1 perfectly correlated, 2 independent; SNP 2 has
    /// lower MAF than 0/1.
    fn fixtures() -> (AlleleFreqTable, LdTable) {
        let m = GenotypeMatrix::from_rows(
            8,
            3,
            vec![
                G::HomA1,
                G::HomA1,
                G::HomA1, //
                G::HomA1,
                G::HomA1,
                G::HomA1, //
                G::Het,
                G::Het,
                G::HomA1, //
                G::Het,
                G::Het,
                G::HomA1, //
                G::HomA2,
                G::HomA2,
                G::HomA1, //
                G::HomA2,
                G::HomA2,
                G::Het, //
                G::Het,
                G::Het,
                G::HomA1, //
                G::HomA1,
                G::HomA1,
                G::HomA1,
            ],
        )
        .unwrap();
        (AlleleFreqTable::from_matrix(&m), LdTable::from_matrix(&m))
    }

    #[test]
    fn duplicate_tags_are_rejected() {
        let (f, ld) = fixtures();
        let c = HaplotypeConstraints::default();
        let report = c.check(&[0, 1], &f, &ld);
        assert!(!report.is_feasible());
        assert!(matches!(
            report.violations[0],
            Violation::PairwiseLdTooHigh { a: 0, b: 1, .. }
        ));
        assert!(!c.is_feasible(&[0, 1], &f, &ld));
    }

    #[test]
    fn independent_pair_is_feasible() {
        let (f, ld) = fixtures();
        let c = HaplotypeConstraints {
            min_maf: 0.01,
            ..Default::default()
        };
        assert!(c.check(&[0, 2], &f, &ld).is_feasible());
        assert!(c.is_feasible(&[0, 2], &f, &ld));
    }

    #[test]
    fn maf_floor_applies() {
        let (f, ld) = fixtures();
        let c = HaplotypeConstraints {
            min_maf: 0.2,
            ..Default::default()
        };
        // SNP 2 MAF = 1/16 < 0.2.
        let report = c.check(&[2], &f, &ld);
        assert!(matches!(
            report.violations[0],
            Violation::MafTooLow { snp: 2, .. }
        ));
    }

    #[test]
    fn maf_spacing_constraint() {
        let (f, ld) = fixtures();
        let c = HaplotypeConstraints {
            max_pairwise_r2: 2.0, // disable LD constraint
            min_maf_difference: 0.5,
            min_maf: 0.0,
        };
        // SNPs 0 and 1 have identical MAF -> diff = 0 < 0.5.
        let report = c.check(&[0, 1], &f, &ld);
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            report.violations[0],
            Violation::MafDifferenceTooLow { .. }
        ));
    }

    #[test]
    fn check_collects_all_violations() {
        let (f, ld) = fixtures();
        let c = HaplotypeConstraints {
            max_pairwise_r2: 0.0001,
            min_maf_difference: 0.9,
            min_maf: 0.99,
        };
        let report = c.check(&[0, 1, 2], &f, &ld);
        // 3 MAF-floor + pair violations for every pair (LD and/or spacing).
        assert!(report.violations.len() >= 6);
    }

    #[test]
    fn empty_and_singleton_haplotypes() {
        let (f, ld) = fixtures();
        let c = HaplotypeConstraints::default();
        assert!(c.check(&[], &f, &ld).is_feasible());
        assert!(c.check(&[0], &f, &ld).is_feasible());
    }
}
