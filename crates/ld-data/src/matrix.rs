//! Dense genotype matrix: individuals × SNPs.
//!
//! Row-major storage (one row per individual) because the GA's evaluation
//! pipeline iterates individuals and gathers the genotypes of a small SNP
//! subset per individual; a row is one cache-friendly strip.

use crate::error::DataError;
use crate::genotype::Genotype;
use crate::snp::SnpId;

/// Dense individuals × SNPs genotype matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct GenotypeMatrix {
    n_individuals: usize,
    n_snps: usize,
    /// Row-major: `data[i * n_snps + s]`.
    data: Vec<Genotype>,
}

impl GenotypeMatrix {
    /// Build from a row-major genotype vector.
    pub fn from_rows(
        n_individuals: usize,
        n_snps: usize,
        data: Vec<Genotype>,
    ) -> Result<Self, DataError> {
        if data.len() != n_individuals * n_snps {
            return Err(DataError::DimensionMismatch {
                what: "GenotypeMatrix",
                expected: n_individuals * n_snps,
                actual: data.len(),
            });
        }
        Ok(GenotypeMatrix {
            n_individuals,
            n_snps,
            data,
        })
    }

    /// An all-missing matrix, useful as a builder target.
    pub fn filled(n_individuals: usize, n_snps: usize, g: Genotype) -> Self {
        GenotypeMatrix {
            n_individuals,
            n_snps,
            data: vec![g; n_individuals * n_snps],
        }
    }

    /// Number of individuals (rows).
    #[inline]
    pub fn n_individuals(&self) -> usize {
        self.n_individuals
    }

    /// Number of SNP markers (columns).
    #[inline]
    pub fn n_snps(&self) -> usize {
        self.n_snps
    }

    /// Genotype of `individual` at `snp`.
    ///
    /// # Panics
    /// Panics if either index is out of bounds (this is the hot path; use
    /// [`GenotypeMatrix::try_get`] for checked access).
    #[inline]
    pub fn get(&self, individual: usize, snp: SnpId) -> Genotype {
        debug_assert!(individual < self.n_individuals && snp < self.n_snps);
        self.data[individual * self.n_snps + snp]
    }

    /// Checked access.
    pub fn try_get(&self, individual: usize, snp: SnpId) -> Result<Genotype, DataError> {
        if individual >= self.n_individuals {
            return Err(DataError::IndividualOutOfBounds {
                individual,
                n_individuals: self.n_individuals,
            });
        }
        if snp >= self.n_snps {
            return Err(DataError::SnpOutOfBounds {
                snp,
                n_snps: self.n_snps,
            });
        }
        Ok(self.get(individual, snp))
    }

    /// Set one genotype.
    pub fn set(&mut self, individual: usize, snp: SnpId, g: Genotype) {
        assert!(
            individual < self.n_individuals && snp < self.n_snps,
            "GenotypeMatrix::set out of bounds ({individual},{snp})"
        );
        self.data[individual * self.n_snps + snp] = g;
    }

    /// Full row (all SNPs) of one individual.
    #[inline]
    pub fn row(&self, individual: usize) -> &[Genotype] {
        &self.data[individual * self.n_snps..(individual + 1) * self.n_snps]
    }

    /// Gather the genotypes of `individual` at an ordered SNP subset into `out`.
    ///
    /// This is the innermost gather of every haplotype evaluation; it avoids
    /// allocation by writing into a caller-provided buffer.
    #[inline]
    pub fn gather_into(&self, individual: usize, snps: &[SnpId], out: &mut Vec<Genotype>) {
        out.clear();
        let row = self.row(individual);
        out.extend(snps.iter().map(|&s| row[s]));
    }

    /// Allocating variant of [`GenotypeMatrix::gather_into`].
    pub fn gather(&self, individual: usize, snps: &[SnpId]) -> Vec<Genotype> {
        let mut out = Vec::with_capacity(snps.len());
        self.gather_into(individual, snps, &mut out);
        out
    }

    /// Column iterator over all individuals for one SNP.
    pub fn column(&self, snp: SnpId) -> impl Iterator<Item = Genotype> + '_ {
        debug_assert!(snp < self.n_snps);
        (0..self.n_individuals).map(move |i| self.get(i, snp))
    }

    /// Call rate of one SNP: fraction of non-missing genotypes.
    pub fn call_rate(&self, snp: SnpId) -> f64 {
        if self.n_individuals == 0 {
            return 0.0;
        }
        let called = self.column(snp).filter(|g| g.is_called()).count();
        called as f64 / self.n_individuals as f64
    }

    /// Restrict to a subset of rows (cloning), preserving row order.
    pub fn select_rows(&self, rows: &[usize]) -> Result<Self, DataError> {
        let mut data = Vec::with_capacity(rows.len() * self.n_snps);
        for &r in rows {
            if r >= self.n_individuals {
                return Err(DataError::IndividualOutOfBounds {
                    individual: r,
                    n_individuals: self.n_individuals,
                });
            }
            data.extend_from_slice(self.row(r));
        }
        Ok(GenotypeMatrix {
            n_individuals: rows.len(),
            n_snps: self.n_snps,
            data,
        })
    }

    /// Raw row-major data.
    pub fn as_slice(&self) -> &[Genotype] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genotype::Genotype as G;

    fn small() -> GenotypeMatrix {
        // 3 individuals × 4 SNPs
        GenotypeMatrix::from_rows(
            3,
            4,
            vec![
                G::HomA1,
                G::Het,
                G::HomA2,
                G::Missing, //
                G::Het,
                G::Het,
                G::HomA1,
                G::HomA1, //
                G::HomA2,
                G::HomA1,
                G::Het,
                G::HomA2,
            ],
        )
        .unwrap()
    }

    #[test]
    fn dims_and_access() {
        let m = small();
        assert_eq!(m.n_individuals(), 3);
        assert_eq!(m.n_snps(), 4);
        assert_eq!(m.get(0, 2), G::HomA2);
        assert_eq!(m.get(2, 0), G::HomA2);
        assert_eq!(m.try_get(2, 3).unwrap(), G::HomA2);
    }

    #[test]
    fn bad_dims_rejected() {
        assert!(matches!(
            GenotypeMatrix::from_rows(2, 3, vec![G::Het; 5]),
            Err(DataError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn checked_access_errors() {
        let m = small();
        assert!(matches!(
            m.try_get(3, 0),
            Err(DataError::IndividualOutOfBounds { .. })
        ));
        assert!(matches!(
            m.try_get(0, 4),
            Err(DataError::SnpOutOfBounds { .. })
        ));
    }

    #[test]
    fn gather_follows_subset_order() {
        let m = small();
        assert_eq!(m.gather(1, &[2, 0]), vec![G::HomA1, G::Het]);
        let mut buf = Vec::new();
        m.gather_into(0, &[0, 1, 2], &mut buf);
        assert_eq!(buf, vec![G::HomA1, G::Het, G::HomA2]);
        // Reuse does not leak previous content.
        m.gather_into(0, &[3], &mut buf);
        assert_eq!(buf, vec![G::Missing]);
    }

    #[test]
    fn column_and_call_rate() {
        let m = small();
        let col3: Vec<_> = m.column(3).collect();
        assert_eq!(col3, vec![G::Missing, G::HomA1, G::HomA2]);
        assert!((m.call_rate(3) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.call_rate(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn select_rows_clones_in_order() {
        let m = small();
        let sub = m.select_rows(&[2, 0]).unwrap();
        assert_eq!(sub.n_individuals(), 2);
        assert_eq!(sub.row(0), m.row(2));
        assert_eq!(sub.row(1), m.row(0));
        assert!(m.select_rows(&[5]).is_err());
    }

    #[test]
    fn set_roundtrip() {
        let mut m = GenotypeMatrix::filled(2, 2, G::Missing);
        m.set(1, 1, G::Het);
        assert_eq!(m.get(1, 1), G::Het);
        assert_eq!(m.get(0, 0), G::Missing);
    }
}
