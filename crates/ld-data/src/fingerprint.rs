//! Content-addressed dataset identity.
//!
//! A [`DatasetFingerprint`] is the canonical 64-bit FNV-1a digest of a
//! dataset's encoded bytes. It is the single source of truth for "are
//! these two tenants evaluating against the same panel?" — the network
//! layer registers datasets on slaves under it, the eval server shares
//! slave residency and fitness-store entries by it, and the persistent
//! fitness store keys every record with it.
//!
//! The digest was born in `ld-net::wire` (where it still has a
//! delegating re-export so the v3 wire format is unchanged); this module
//! is its canonical home so that layers below the network — the
//! scheduler's fitness store, checkpoints — can speak the same identity
//! without depending on the wire crate.

use serde::{Deserialize, Serialize};

/// 64-bit FNV-1a content fingerprint of a dataset's encoded bytes.
///
/// Two masters encoding the same columns always derive the same
/// fingerprint, so caches and slave-side dataset stores are shared by
/// content, not by name. The inner value is exactly the `u64` carried in
/// v3 `RegisterDataset` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DatasetFingerprint(u64);

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl DatasetFingerprint {
    /// The fingerprint of a purely local (non-networked) evaluation
    /// context: a private in-process cache that never leaves the run has
    /// no dataset bytes to hash, so it uses the reserved value `0`.
    pub const LOCAL: DatasetFingerprint = DatasetFingerprint(0);

    /// Digest `bytes` with 64-bit FNV-1a.
    ///
    /// This is byte-for-byte the historical `ld-net::wire::fingerprint`
    /// computation; wire frames built from this value are identical to
    /// frames built before the relocation.
    pub fn from_bytes(bytes: &[u8]) -> DatasetFingerprint {
        let mut hash = FNV_OFFSET;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        DatasetFingerprint(hash)
    }

    /// Wrap a raw fingerprint received from the wire or a stored record.
    pub fn from_raw(raw: u64) -> DatasetFingerprint {
        DatasetFingerprint(raw)
    }

    /// The raw 64-bit value (what v3 frames and store records carry).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for DatasetFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_fnv1a_vectors() {
        // Published FNV-1a 64-bit test vectors; any drift here would
        // silently orphan every record in an existing on-disk store.
        assert_eq!(DatasetFingerprint::from_bytes(b"").as_u64(), FNV_OFFSET);
        assert_eq!(
            DatasetFingerprint::from_bytes(b"a").as_u64(),
            0xaf63_dc4c_8601_ec8c
        );
        assert_eq!(
            DatasetFingerprint::from_bytes(b"hello").as_u64(),
            0xa430_d846_80aa_bd0b
        );
    }

    #[test]
    fn content_addressed_not_identity_addressed() {
        let a = vec![1u8, 2, 3, 4];
        let b = a.clone();
        let c = vec![1u8, 2, 3, 5];
        assert_eq!(
            DatasetFingerprint::from_bytes(&a),
            DatasetFingerprint::from_bytes(&b)
        );
        assert_ne!(
            DatasetFingerprint::from_bytes(&a),
            DatasetFingerprint::from_bytes(&c)
        );
    }

    #[test]
    fn raw_round_trip_and_display() {
        let fp = DatasetFingerprint::from_raw(0xDEAD_BEEF);
        assert_eq!(fp.as_u64(), 0xDEAD_BEEF);
        assert_eq!(format!("{fp}"), "0x00000000deadbeef");
    }
}
