//! A complete case/control study dataset.

use crate::error::DataError;
use crate::matrix::GenotypeMatrix;
use crate::snp::{SnpId, SnpInfo};
use crate::status::Status;

/// A genotype matrix bundled with per-individual status and SNP metadata —
/// the unit of input the paper's whole pipeline operates on.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Individuals × SNPs genotypes.
    pub genotypes: GenotypeMatrix,
    /// Per-individual disease status, `statuses.len() == n_individuals`.
    pub statuses: Vec<Status>,
    /// Per-SNP metadata, `snps.len() == n_snps`.
    pub snps: Vec<SnpInfo>,
    /// Free-form provenance label (e.g. `"lille-51 seed=42"`).
    pub label: String,
}

impl Dataset {
    /// Bundle parts into a dataset, validating dimensions.
    pub fn new(
        genotypes: GenotypeMatrix,
        statuses: Vec<Status>,
        snps: Vec<SnpInfo>,
        label: impl Into<String>,
    ) -> Result<Self, DataError> {
        if statuses.len() != genotypes.n_individuals() {
            return Err(DataError::DimensionMismatch {
                what: "Dataset statuses",
                expected: genotypes.n_individuals(),
                actual: statuses.len(),
            });
        }
        if snps.len() != genotypes.n_snps() {
            return Err(DataError::DimensionMismatch {
                what: "Dataset snp info",
                expected: genotypes.n_snps(),
                actual: snps.len(),
            });
        }
        if genotypes.n_individuals() == 0 {
            return Err(DataError::Empty("dataset individuals"));
        }
        if genotypes.n_snps() == 0 {
            return Err(DataError::Empty("dataset SNPs"));
        }
        Ok(Dataset {
            genotypes,
            statuses,
            snps,
            label: label.into(),
        })
    }

    /// Number of individuals.
    #[inline]
    pub fn n_individuals(&self) -> usize {
        self.genotypes.n_individuals()
    }

    /// Number of SNPs.
    #[inline]
    pub fn n_snps(&self) -> usize {
        self.genotypes.n_snps()
    }

    /// Row indices of individuals with the given status.
    pub fn rows_with_status(&self, status: Status) -> Vec<usize> {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == status)
            .map(|(i, _)| i)
            .collect()
    }

    /// Count of individuals with the given status.
    pub fn count_status(&self, status: Status) -> usize {
        self.statuses.iter().filter(|&&s| s == status).count()
    }

    /// `(affected, unaffected, unknown)` counts.
    pub fn group_sizes(&self) -> (usize, usize, usize) {
        (
            self.count_status(Status::Affected),
            self.count_status(Status::Unaffected),
            self.count_status(Status::Unknown),
        )
    }

    /// Sub-dataset restricted to phenotyped individuals (affected + unaffected),
    /// which is what association tests consume.
    pub fn phenotyped(&self) -> Result<Dataset, DataError> {
        let rows: Vec<usize> = self
            .statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_phenotyped())
            .map(|(i, _)| i)
            .collect();
        let genotypes = self.genotypes.select_rows(&rows)?;
        let statuses = rows.iter().map(|&r| self.statuses[r]).collect();
        Dataset::new(
            genotypes,
            statuses,
            self.snps.clone(),
            format!("{} (phenotyped)", self.label),
        )
    }

    /// All valid SNP ids `0..n_snps`.
    pub fn snp_ids(&self) -> impl Iterator<Item = SnpId> {
        0..self.n_snps()
    }

    /// Validate that a candidate haplotype refers to in-range, strictly
    /// ascending SNP ids — the encoding invariant of §4.1.
    pub fn validate_haplotype(&self, snps: &[SnpId]) -> Result<(), DataError> {
        let n = self.n_snps();
        for (idx, &s) in snps.iter().enumerate() {
            if s >= n {
                return Err(DataError::SnpOutOfBounds { snp: s, n_snps: n });
            }
            if idx > 0 && snps[idx - 1] >= s {
                return Err(DataError::InvalidConfig(format!(
                    "haplotype SNPs must be strictly ascending, got {:?}",
                    snps
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genotype::Genotype as G;

    fn tiny() -> Dataset {
        let m = GenotypeMatrix::from_rows(
            4,
            2,
            vec![
                G::HomA1,
                G::Het, //
                G::Het,
                G::HomA2, //
                G::HomA2,
                G::HomA1, //
                G::Missing,
                G::Het,
            ],
        )
        .unwrap();
        Dataset::new(
            m,
            vec![
                Status::Affected,
                Status::Unaffected,
                Status::Unknown,
                Status::Affected,
            ],
            vec![SnpInfo::synthetic(0, 1, 0.0), SnpInfo::synthetic(1, 1, 5.0)],
            "tiny",
        )
        .unwrap()
    }

    #[test]
    fn group_accounting() {
        let d = tiny();
        assert_eq!(d.group_sizes(), (2, 1, 1));
        assert_eq!(d.rows_with_status(Status::Affected), vec![0, 3]);
        assert_eq!(d.rows_with_status(Status::Unknown), vec![2]);
    }

    #[test]
    fn phenotyped_drops_unknown() {
        let d = tiny().phenotyped().unwrap();
        assert_eq!(d.n_individuals(), 3);
        assert_eq!(d.count_status(Status::Unknown), 0);
        // Order preserved: rows 0,1,3 of the original.
        assert_eq!(d.genotypes.get(2, 1), G::Het);
    }

    #[test]
    fn dimension_validation() {
        let m = GenotypeMatrix::filled(2, 2, G::Het);
        assert!(Dataset::new(
            m.clone(),
            vec![Status::Affected],
            vec![SnpInfo::synthetic(0, 1, 0.0), SnpInfo::synthetic(1, 1, 1.0)],
            "bad"
        )
        .is_err());
        assert!(Dataset::new(
            m,
            vec![Status::Affected, Status::Unaffected],
            vec![SnpInfo::synthetic(0, 1, 0.0)],
            "bad"
        )
        .is_err());
    }

    #[test]
    fn haplotype_validation() {
        let d = tiny();
        assert!(d.validate_haplotype(&[0, 1]).is_ok());
        assert!(d.validate_haplotype(&[1, 0]).is_err());
        assert!(d.validate_haplotype(&[0, 0]).is_err());
        assert!(d.validate_haplotype(&[0, 2]).is_err());
        assert!(d.validate_haplotype(&[]).is_ok());
    }
}
