//! Unphased single-SNP genotypes.
//!
//! Genotype data (what a sequencing panel reports) gives, per individual and
//! per SNP, the unordered pair of alleles — *not* which chromosome each
//! allele came from. Phase ambiguity across heterozygous loci is exactly
//! what the EH-DIALL EM procedure (crate `ld-stats`) resolves.

use crate::snp::Allele;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unphased genotype of one individual at one bi-allelic SNP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Genotype {
    /// Homozygous wild type (`1/1`).
    HomA1,
    /// Heterozygous (`1/2`).
    Het,
    /// Homozygous mutant (`2/2`).
    HomA2,
    /// Missing call.
    Missing,
}

impl Genotype {
    /// Build a genotype from an unordered pair of alleles.
    #[inline]
    pub fn from_alleles(a: Allele, b: Allele) -> Self {
        match (a, b) {
            (Allele::A1, Allele::A1) => Genotype::HomA1,
            (Allele::A2, Allele::A2) => Genotype::HomA2,
            _ => Genotype::Het,
        }
    }

    /// Number of copies of the mutant allele `A2` (0, 1 or 2); `None` if missing.
    #[inline]
    pub fn a2_count(self) -> Option<u8> {
        match self {
            Genotype::HomA1 => Some(0),
            Genotype::Het => Some(1),
            Genotype::HomA2 => Some(2),
            Genotype::Missing => None,
        }
    }

    /// Whether the genotype is heterozygous.
    #[inline]
    pub fn is_het(self) -> bool {
        matches!(self, Genotype::Het)
    }

    /// Whether the genotype call is present.
    #[inline]
    pub fn is_called(self) -> bool {
        !matches!(self, Genotype::Missing)
    }

    /// Two-character paper-style code: `11`, `12`, `22`, or `00` for missing.
    pub fn code(self) -> &'static str {
        match self {
            Genotype::HomA1 => "11",
            Genotype::Het => "12",
            Genotype::HomA2 => "22",
            Genotype::Missing => "00",
        }
    }

    /// Parse a paper-style code (order-insensitive: `21` is accepted as `12`).
    pub fn from_code(code: &str) -> Option<Self> {
        match code {
            "11" => Some(Genotype::HomA1),
            "12" | "21" => Some(Genotype::Het),
            "22" => Some(Genotype::HomA2),
            "00" => Some(Genotype::Missing),
            _ => None,
        }
    }

    /// Compact numeric encoding used by the binary writer: count of A2
    /// alleles, with `3` for missing.
    #[inline]
    pub fn to_u8(self) -> u8 {
        match self {
            Genotype::HomA1 => 0,
            Genotype::Het => 1,
            Genotype::HomA2 => 2,
            Genotype::Missing => 3,
        }
    }

    /// Inverse of [`Genotype::to_u8`].
    #[inline]
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(Genotype::HomA1),
            1 => Some(Genotype::Het),
            2 => Some(Genotype::HomA2),
            3 => Some(Genotype::Missing),
            _ => None,
        }
    }

    /// The unordered allele pair, `None` when missing.
    pub fn alleles(self) -> Option<(Allele, Allele)> {
        match self {
            Genotype::HomA1 => Some((Allele::A1, Allele::A1)),
            Genotype::Het => Some((Allele::A1, Allele::A2)),
            Genotype::HomA2 => Some((Allele::A2, Allele::A2)),
            Genotype::Missing => None,
        }
    }
}

impl fmt::Display for Genotype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Genotype; 4] = [
        Genotype::HomA1,
        Genotype::Het,
        Genotype::HomA2,
        Genotype::Missing,
    ];

    #[test]
    fn code_roundtrip() {
        for g in ALL {
            assert_eq!(Genotype::from_code(g.code()), Some(g));
            assert_eq!(Genotype::from_u8(g.to_u8()), Some(g));
        }
        assert_eq!(Genotype::from_code("21"), Some(Genotype::Het));
        assert_eq!(Genotype::from_code("13"), None);
        assert_eq!(Genotype::from_u8(4), None);
    }

    #[test]
    fn from_alleles_is_order_insensitive() {
        assert_eq!(
            Genotype::from_alleles(Allele::A1, Allele::A2),
            Genotype::from_alleles(Allele::A2, Allele::A1)
        );
        assert_eq!(
            Genotype::from_alleles(Allele::A2, Allele::A2),
            Genotype::HomA2
        );
    }

    #[test]
    fn a2_count_matches_definition() {
        assert_eq!(Genotype::HomA1.a2_count(), Some(0));
        assert_eq!(Genotype::Het.a2_count(), Some(1));
        assert_eq!(Genotype::HomA2.a2_count(), Some(2));
        assert_eq!(Genotype::Missing.a2_count(), None);
    }

    #[test]
    fn alleles_reconstruct_genotype() {
        for g in ALL {
            if let Some((a, b)) = g.alleles() {
                assert_eq!(Genotype::from_alleles(a, b), g);
            } else {
                assert_eq!(g, Genotype::Missing);
            }
        }
    }

    #[test]
    fn het_detection() {
        assert!(Genotype::Het.is_het());
        assert!(!Genotype::HomA1.is_het());
        assert!(Genotype::HomA1.is_called());
        assert!(!Genotype::Missing.is_called());
    }
}
