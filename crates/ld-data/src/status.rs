//! Disease status of study individuals.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Case/control status, matching the paper's dataset description
/// (53 affected, 53 healthy, 70 unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    /// Affected individual (group A in the paper).
    Affected,
    /// Healthy / unaffected individual (group U).
    Unaffected,
    /// Status not determined; excluded from association tests.
    Unknown,
}

impl Status {
    /// One-character file code: `A`, `U`, `?`.
    pub fn code(self) -> char {
        match self {
            Status::Affected => 'A',
            Status::Unaffected => 'U',
            Status::Unknown => '?',
        }
    }

    /// Parse a one-character file code.
    pub fn from_code(c: char) -> Option<Self> {
        match c {
            'A' | 'a' => Some(Status::Affected),
            'U' | 'u' => Some(Status::Unaffected),
            '?' => Some(Status::Unknown),
            _ => None,
        }
    }

    /// Whether the individual participates in association testing.
    #[inline]
    pub fn is_phenotyped(self) -> bool {
        !matches!(self, Status::Unknown)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for s in [Status::Affected, Status::Unaffected, Status::Unknown] {
            assert_eq!(Status::from_code(s.code()), Some(s));
        }
        assert_eq!(Status::from_code('x'), None);
        assert_eq!(Status::from_code('a'), Some(Status::Affected));
    }

    #[test]
    fn phenotyped() {
        assert!(Status::Affected.is_phenotyped());
        assert!(Status::Unaffected.is_phenotyped());
        assert!(!Status::Unknown.is_phenotyped());
    }
}
