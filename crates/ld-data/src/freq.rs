//! Per-SNP allele frequency tables.
//!
//! This is the first of the paper's two auxiliary input tables (§5.1): "a
//! table indicates for each SNP the frequency of each alternative (1 and 2)".
//! Frequencies are estimated by allele counting over called genotypes, either
//! over all individuals or restricted to a status group.

use crate::dataset::Dataset;
use crate::matrix::GenotypeMatrix;
use crate::snp::SnpId;
use crate::status::Status;

/// Allele frequencies of one SNP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnpFreq {
    /// Frequency of allele `1` (wild type).
    pub a1: f64,
    /// Frequency of allele `2` (mutant).
    pub a2: f64,
    /// Number of called genotypes that contributed.
    pub n_called: usize,
}

impl SnpFreq {
    /// Minor allele frequency: the smaller of the two frequencies.
    #[inline]
    pub fn maf(&self) -> f64 {
        self.a1.min(self.a2)
    }
}

/// Per-SNP allele frequency table.
#[derive(Debug, Clone, PartialEq)]
pub struct AlleleFreqTable {
    freqs: Vec<SnpFreq>,
}

impl AlleleFreqTable {
    /// Estimate frequencies over every individual of the matrix.
    pub fn from_matrix(m: &GenotypeMatrix) -> Self {
        let rows: Vec<usize> = (0..m.n_individuals()).collect();
        Self::from_matrix_rows(m, &rows)
    }

    /// Estimate frequencies over a row subset.
    pub fn from_matrix_rows(m: &GenotypeMatrix, rows: &[usize]) -> Self {
        let freqs = (0..m.n_snps())
            .map(|snp| Self::snp_freq(m, rows, snp))
            .collect();
        AlleleFreqTable { freqs }
    }

    /// Estimate frequencies over a dataset, optionally restricted to a group.
    pub fn from_dataset(d: &Dataset, group: Option<Status>) -> Self {
        match group {
            None => Self::from_matrix(&d.genotypes),
            Some(status) => Self::from_matrix_rows(&d.genotypes, &d.rows_with_status(status)),
        }
    }

    fn snp_freq(m: &GenotypeMatrix, rows: &[usize], snp: SnpId) -> SnpFreq {
        let mut a2_alleles = 0usize;
        let mut called = 0usize;
        for &r in rows {
            if let Some(c) = m.get(r, snp).a2_count() {
                a2_alleles += c as usize;
                called += 1;
            }
        }
        if called == 0 {
            return SnpFreq {
                a1: 0.0,
                a2: 0.0,
                n_called: 0,
            };
        }
        let a2 = a2_alleles as f64 / (2 * called) as f64;
        SnpFreq {
            a1: 1.0 - a2,
            a2,
            n_called: called,
        }
    }

    /// Frequencies of one SNP.
    #[inline]
    pub fn get(&self, snp: SnpId) -> SnpFreq {
        self.freqs[snp]
    }

    /// Minor allele frequency of one SNP.
    #[inline]
    pub fn maf(&self, snp: SnpId) -> f64 {
        self.freqs[snp].maf()
    }

    /// Number of SNPs in the table.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Iterate `(snp, freq)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SnpId, &SnpFreq)> {
        self.freqs.iter().enumerate()
    }

    /// SNPs whose MAF is at least `min_maf` — the usual pre-filter for
    /// association studies (monomorphic SNPs carry no signal).
    pub fn polymorphic_snps(&self, min_maf: f64) -> Vec<SnpId> {
        self.iter()
            .filter(|(_, f)| f.maf() >= min_maf)
            .map(|(s, _)| s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genotype::Genotype as G;

    fn matrix() -> GenotypeMatrix {
        // 4 individuals × 3 SNPs.
        GenotypeMatrix::from_rows(
            4,
            3,
            vec![
                G::HomA1,
                G::Het,
                G::Missing, //
                G::HomA1,
                G::Het,
                G::HomA2, //
                G::Het,
                G::HomA2,
                G::HomA2, //
                G::HomA1,
                G::HomA2,
                G::Missing,
            ],
        )
        .unwrap()
    }

    #[test]
    fn counting_matches_hand_calc() {
        let t = AlleleFreqTable::from_matrix(&matrix());
        // SNP 0: alleles = 1,1,1,1,1,2,1,1 -> a2 = 1/8.
        assert!((t.get(0).a2 - 0.125).abs() < 1e-12);
        assert!((t.get(0).a1 - 0.875).abs() < 1e-12);
        assert_eq!(t.get(0).n_called, 4);
        // SNP 1: 1,2 / 1,2 / 2,2 / 2,2 -> a2 = 6/8.
        assert!((t.get(1).a2 - 0.75).abs() < 1e-12);
        // SNP 2: only two called, both 2/2 -> a2 = 1.
        assert!((t.get(2).a2 - 1.0).abs() < 1e-12);
        assert_eq!(t.get(2).n_called, 2);
    }

    #[test]
    fn maf_is_smaller_frequency() {
        let t = AlleleFreqTable::from_matrix(&matrix());
        assert!((t.maf(0) - 0.125).abs() < 1e-12);
        assert!((t.maf(1) - 0.25).abs() < 1e-12);
        assert!((t.maf(2) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn row_subset_changes_estimates() {
        let m = matrix();
        let t = AlleleFreqTable::from_matrix_rows(&m, &[2]);
        // Only the het/HomA2/HomA2 row: SNP0 a2 = 1/2.
        assert!((t.get(0).a2 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_missing_column_gives_zero_called() {
        let m = GenotypeMatrix::filled(3, 1, G::Missing);
        let t = AlleleFreqTable::from_matrix(&m);
        assert_eq!(t.get(0).n_called, 0);
        assert_eq!(t.maf(0), 0.0);
    }

    #[test]
    fn polymorphic_filter() {
        let t = AlleleFreqTable::from_matrix(&matrix());
        assert_eq!(t.polymorphic_snps(0.2), vec![1]);
        assert_eq!(t.polymorphic_snps(0.1), vec![0, 1]);
        assert_eq!(t.polymorphic_snps(0.0).len(), 3);
    }

    #[test]
    fn frequencies_sum_to_one_when_called() {
        let t = AlleleFreqTable::from_matrix(&matrix());
        for (_, f) in t.iter() {
            if f.n_called > 0 {
                assert!((f.a1 + f.a2 - 1.0).abs() < 1e-12);
            }
        }
    }
}
