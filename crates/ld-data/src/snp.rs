//! SNP identifiers, alleles and marker metadata.
//!
//! The paper codes the two forms of a bi-allelic SNP as `1` (wild type) and
//! `2` (mutation); we keep that convention throughout (an haplotype value
//! such as `1221` in the paper's Figure 2 is a string of these codes).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Zero-based index of a SNP column in a [`crate::GenotypeMatrix`].
///
/// The paper reports haplotypes as lists of SNP numbers (e.g. `8 12 15`);
/// we use the same integers as zero-based column indices.
pub type SnpId = usize;

/// One of the two forms of a bi-allelic SNP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Allele {
    /// The wild-type form, coded `1` in the paper.
    A1,
    /// The mutated form, coded `2` in the paper.
    A2,
}

impl Allele {
    /// Paper-style numeric code (`1` or `2`).
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            Allele::A1 => 1,
            Allele::A2 => 2,
        }
    }

    /// Parse a paper-style code.
    #[inline]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(Allele::A1),
            2 => Some(Allele::A2),
            _ => None,
        }
    }

    /// The other allele.
    #[inline]
    pub fn other(self) -> Self {
        match self {
            Allele::A1 => Allele::A2,
            Allele::A2 => Allele::A1,
        }
    }

    /// Index `0`/`1` usable for bit-packing haplotypes (A1 → 0, A2 → 1).
    #[inline]
    pub fn bit(self) -> usize {
        match self {
            Allele::A1 => 0,
            Allele::A2 => 1,
        }
    }

    /// Inverse of [`Allele::bit`].
    #[inline]
    pub fn from_bit(bit: usize) -> Self {
        if bit == 0 {
            Allele::A1
        } else {
            Allele::A2
        }
    }
}

impl fmt::Display for Allele {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// Metadata describing one SNP marker.
///
/// Mirrors the descriptive columns of the paper's SNP information table:
/// a name, a chromosome, and a physical position (in kilobases, the unit
/// the paper uses for inter-SNP distances).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnpInfo {
    /// Column index in the genotype matrix.
    pub id: SnpId,
    /// Human-readable marker name (e.g. `rs1234` style).
    pub name: String,
    /// Chromosome number the SNP sits on.
    pub chromosome: u8,
    /// Position on the chromosome, in kilobases.
    pub position_kb: f64,
}

impl SnpInfo {
    /// Build a default marker record for column `id`.
    pub fn synthetic(id: SnpId, chromosome: u8, position_kb: f64) -> Self {
        SnpInfo {
            id,
            name: format!("snp{id:03}"),
            chromosome,
            position_kb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allele_codes_roundtrip() {
        for a in [Allele::A1, Allele::A2] {
            assert_eq!(Allele::from_code(a.code()), Some(a));
            assert_eq!(Allele::from_bit(a.bit()), a);
        }
        assert_eq!(Allele::from_code(0), None);
        assert_eq!(Allele::from_code(3), None);
    }

    #[test]
    fn other_is_involutive() {
        assert_eq!(Allele::A1.other(), Allele::A2);
        assert_eq!(Allele::A2.other().other(), Allele::A2);
    }

    #[test]
    fn display_matches_paper_coding() {
        assert_eq!(Allele::A1.to_string(), "1");
        assert_eq!(Allele::A2.to_string(), "2");
    }

    #[test]
    fn synthetic_info_has_padded_name() {
        let s = SnpInfo::synthetic(7, 3, 120.5);
        assert_eq!(s.name, "snp007");
        assert_eq!(s.chromosome, 3);
    }
}
