//! Post-run analysis of GA telemetry.
//!
//! [`RunResult::history`] records per-generation state; this module turns
//! it into the summaries the paper discusses qualitatively: convergence
//! curves per size, adaptive-rate trajectories (which operator "won"),
//! and random-immigrant episodes.

use crate::engine::RunResult;
use crate::ops::crossover::CrossoverKind;
use crate::ops::mutation::MutationKind;
use crate::sched::SchedStats;

/// Convergence curve of one haplotype size: `(generation, best fitness)`
/// sampled at every improvement.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ConvergenceCurve {
    /// Haplotype size.
    pub size: usize,
    /// `(generation, best-so-far)` at each improvement step.
    pub points: Vec<(usize, f64)>,
}

/// Mean adaptive rate of each operator over a window of generations.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct RateSummary {
    /// Operator name.
    pub operator: &'static str,
    /// Mean rate over the first quarter of the run.
    pub early: f64,
    /// Mean rate over the last quarter of the run.
    pub late: f64,
    /// Mean rate over the whole run.
    pub overall: f64,
}

/// One random-immigrant episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct ImmigrantEpisode {
    /// Generation the episode fired.
    pub generation: usize,
    /// Individuals replaced.
    pub replaced: usize,
}

/// Batch-scheduler behaviour over a whole run (generation windows merged).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SchedSummary {
    /// Counters summed over every generation window.
    pub totals: SchedStats,
    /// Mean unevaluated individuals per submitted batch.
    pub mean_batch_size: f64,
    /// Fraction of requests folded as intra-batch duplicates.
    pub dedup_ratio: f64,
    /// Fraction of scheduled evaluations served by the fitness cache.
    pub cache_hit_rate: f64,
    /// Mean backend dispatch latency per batch, in milliseconds.
    pub mean_dispatch_ms: f64,
    /// Peak jobs outstanding at any dispatch.
    pub max_queue_depth: u64,
    /// Total fault-recovery events (retries, retirements, rejoins,
    /// requeues, fallback activations) absorbed by the evaluation layer;
    /// 0 for a fault-free run. Per-kind counts are in `totals`.
    pub fault_events: u64,
}

/// Full telemetry report. `Serialize` so it can become the `telemetry`
/// section of an `ld-observe` run report.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TelemetryReport {
    /// Convergence curve per managed size (ascending).
    pub convergence: Vec<ConvergenceCurve>,
    /// Rate trajectory summary for the three mutation operators.
    pub mutation_rates: Vec<RateSummary>,
    /// Rate trajectory summary for the two crossover operators.
    pub crossover_rates: Vec<RateSummary>,
    /// All random-immigrant episodes.
    pub immigrant_episodes: Vec<ImmigrantEpisode>,
    /// Generation at which the last improvement (any size) happened.
    pub last_improvement: usize,
    /// Scheduler behaviour (batch sizes, dedup, cache, dispatch latency).
    pub sched: SchedSummary,
}

/// Analyse a run's history.
pub fn analyze(result: &RunResult) -> TelemetryReport {
    let n_sizes = result.best_per_size.len();
    let history = &result.history;

    // Convergence curves: record a point whenever a size's best strictly
    // improves over the previous generation's value.
    let mut convergence = Vec::with_capacity(n_sizes);
    let mut last_improvement = 0usize;
    for idx in 0..n_sizes {
        let mut points = Vec::new();
        let mut best = f64::NEG_INFINITY;
        for g in history {
            let f = g.best_per_size.get(idx).copied().unwrap_or(f64::NAN);
            if f.is_finite() && f > best {
                best = f;
                points.push((g.generation, f));
                last_improvement = last_improvement.max(g.generation);
            }
        }
        convergence.push(ConvergenceCurve {
            size: result.min_size + idx,
            points,
        });
    }

    let mutation_names = [
        MutationKind::Snp.name(),
        MutationKind::Reduction.name(),
        MutationKind::Augmentation.name(),
    ];
    let crossover_names = [CrossoverKind::Intra.name(), CrossoverKind::Inter.name()];
    let mutation_rates = summarize_rates(history, &mutation_names, |g| &g.mutation_rates);
    let crossover_rates = summarize_rates(history, &crossover_names, |g| &g.crossover_rates);

    let immigrant_episodes = history
        .iter()
        .filter(|g| g.immigrants > 0)
        .map(|g| ImmigrantEpisode {
            generation: g.generation,
            replaced: g.immigrants,
        })
        .collect();

    let mut totals = SchedStats::default();
    for g in history {
        totals.merge(&g.sched);
    }
    let sched = SchedSummary {
        mean_batch_size: if totals.batches == 0 {
            0.0
        } else {
            totals.requested as f64 / totals.batches as f64
        },
        dedup_ratio: totals.dedup_ratio(),
        cache_hit_rate: totals.cache_hit_rate(),
        mean_dispatch_ms: totals.mean_dispatch_ms(),
        max_queue_depth: totals.max_queue_depth,
        fault_events: totals.fault_events(),
        totals,
    };

    TelemetryReport {
        convergence,
        mutation_rates,
        crossover_rates,
        immigrant_episodes,
        last_improvement,
        sched,
    }
}

fn summarize_rates<F>(
    history: &[crate::engine::GenerationStats],
    names: &[&'static str],
    extract: F,
) -> Vec<RateSummary>
where
    F: Fn(&crate::engine::GenerationStats) -> &Vec<f64>,
{
    if history.is_empty() {
        return names
            .iter()
            .map(|&operator| RateSummary {
                operator,
                early: f64::NAN,
                late: f64::NAN,
                overall: f64::NAN,
            })
            .collect();
    }
    let quarter = (history.len() / 4).max(1);
    let mean_over = |slice: &[crate::engine::GenerationStats], op: usize| -> f64 {
        slice.iter().map(|g| extract(g)[op]).sum::<f64>() / slice.len() as f64
    };
    names
        .iter()
        .enumerate()
        .map(|(op, &operator)| RateSummary {
            operator,
            early: mean_over(&history[..quarter], op),
            late: mean_over(&history[history.len() - quarter..], op),
            overall: mean_over(history, op),
        })
        .collect()
}

/// Write the per-generation history as TSV (one row per generation;
/// per-size best columns, operator rates, immigrant counts) — ready for
/// any plotting tool.
pub fn write_history_tsv<W: std::io::Write>(result: &RunResult, mut w: W) -> std::io::Result<()> {
    let n_sizes = result.best_per_size.len();
    write!(w, "generation\tevaluations")?;
    for i in 0..n_sizes {
        write!(w, "\tbest_k{}", result.min_size + i)?;
    }
    write!(
        w,
        "\tmut_snp\tmut_reduction\tmut_augmentation\tcross_intra\tcross_inter\timmigrants"
    )?;
    write!(
        w,
        "\tsched_requested\tsched_coalesced\tsched_cache_hits\tsched_true_evals\tsched_dispatch_ms\tsched_queue_depth"
    )?;
    write!(
        w,
        "\tsched_retries\tsched_retired\tsched_rejoins\tsched_requeued\tsched_fallbacks"
    )?;
    write!(w, "\tgen_wall_ms")?;
    writeln!(w)?;
    for g in &result.history {
        write!(w, "{}\t{}", g.generation, g.evaluations)?;
        for i in 0..n_sizes {
            let f = g.best_per_size.get(i).copied().unwrap_or(f64::NAN);
            if f.is_nan() {
                write!(w, "\t")?;
            } else {
                write!(w, "\t{f:.6}")?;
            }
        }
        for r in g.mutation_rates.iter().chain(&g.crossover_rates) {
            write!(w, "\t{r:.6}")?;
        }
        write!(w, "\t{}", g.immigrants)?;
        write!(
            w,
            "\t{}\t{}\t{}\t{}\t{:.3}\t{}",
            g.sched.requested,
            g.sched.coalesced,
            g.sched.cache_hits,
            g.sched.true_evals,
            g.sched.dispatch_ns as f64 / 1e6,
            g.sched.max_queue_depth,
        )?;
        write!(
            w,
            "\t{}\t{}\t{}\t{}\t{}",
            g.sched.retries,
            g.sched.retirements,
            g.sched.rejoins,
            g.sched.requeued,
            g.sched.fallback_batches,
        )?;
        writeln!(w, "\t{:.3}", g.gen_wall_ms)?;
    }
    Ok(())
}

impl TelemetryReport {
    /// The mutation operator with the highest overall mean rate.
    pub fn dominant_mutation(&self) -> &'static str {
        self.mutation_rates
            .iter()
            .max_by(|a, b| a.overall.total_cmp(&b.overall))
            .map_or("n/a", |r| r.operator)
    }

    /// Total individuals replaced by random immigrants.
    pub fn total_immigrants(&self) -> usize {
        self.immigrant_episodes.iter().map(|e| e.replaced).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GaConfig;
    use crate::engine::GaEngine;
    use crate::evaluator::FnEvaluator;
    use ld_data::SnpId;

    fn run() -> RunResult {
        let eval = FnEvaluator::new(25, |s: &[SnpId]| {
            s.iter().map(|&x| x as f64).sum::<f64>() + 10.0 * s.len() as f64
        });
        let cfg = GaConfig {
            population_size: 50,
            min_size: 2,
            max_size: 3,
            matings_per_generation: 8,
            stagnation_limit: 20,
            ri_stagnation: 7,
            max_generations: 300,
            ..GaConfig::default()
        };
        GaEngine::new(&eval, cfg, 5).unwrap().run()
    }

    #[test]
    fn convergence_curves_are_monotone_and_sized() {
        let result = run();
        let report = analyze(&result);
        assert_eq!(report.convergence.len(), 2);
        for curve in &report.convergence {
            assert!(
                !curve.points.is_empty(),
                "size {} has no points",
                curve.size
            );
            for w in curve.points.windows(2) {
                assert!(w[0].0 < w[1].0, "generations must increase");
                assert!(w[0].1 < w[1].1, "best must strictly improve");
            }
            // The final point matches the run's champion.
            let champion = result.best_of_size(curve.size).unwrap().fitness();
            assert!((curve.points.last().unwrap().1 - champion).abs() < 1e-12);
        }
    }

    #[test]
    fn rate_summaries_cover_all_operators() {
        let report = analyze(&run());
        assert_eq!(report.mutation_rates.len(), 3);
        assert_eq!(report.crossover_rates.len(), 2);
        for r in report.mutation_rates.iter().chain(&report.crossover_rates) {
            assert!(r.overall.is_finite());
            assert!(r.early > 0.0 && r.late > 0.0);
        }
        // Rates of a family sum to the family's global rate at all windows.
        let sum: f64 = report.mutation_rates.iter().map(|r| r.overall).sum();
        assert!((sum - 0.9).abs() < 1e-9, "sum = {sum}");
        assert!(!report.dominant_mutation().is_empty());
    }

    #[test]
    fn last_improvement_before_termination() {
        let result = run();
        let report = analyze(&result);
        assert!(report.last_improvement > 0);
        assert!(report.last_improvement <= result.generations);
        // Stagnation termination: the gap to the end is the stagnation limit.
        assert_eq!(result.generations - report.last_improvement, 20);
    }

    #[test]
    fn immigrant_episodes_match_history() {
        let result = run();
        let report = analyze(&result);
        let from_history: usize = result.history.iter().map(|g| g.immigrants).sum();
        assert_eq!(report.total_immigrants(), from_history);
        for e in &report.immigrant_episodes {
            assert!(e.replaced > 0);
        }
    }

    #[test]
    fn history_tsv_has_one_row_per_generation() {
        let result = run();
        let mut buf = Vec::new();
        write_history_tsv(&result, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), result.generations + 1);
        assert!(lines[0].starts_with("generation\tevaluations\tbest_k2"));
        assert!(lines[0].ends_with("\tgen_wall_ms"));
        // Every data row has the full column count.
        let n_cols = lines[0].split('\t').count();
        for l in &lines[1..] {
            assert_eq!(l.split('\t').count(), n_cols, "row: {l}");
        }
    }

    #[test]
    fn generation_wall_clock_is_recorded() {
        let result = run();
        for g in &result.history {
            assert!(
                g.gen_wall_ms > 0.0,
                "generation {} has no wall time",
                g.generation
            );
            // The engine-side wall clock must cover at least the dispatch
            // time the scheduler measured inside it.
            assert!(g.gen_wall_ms >= g.sched.dispatch_ns as f64 / 1e6);
        }
    }

    #[test]
    fn sched_summary_reconciles_with_history() {
        let result = run();
        let report = analyze(&result);
        let s = &report.sched;
        // One crossover batch and one mutation batch per generation at
        // minimum.
        assert!(s.totals.batches as usize >= 2 * result.generations);
        assert_eq!(
            s.totals.scheduled(),
            s.totals.cache_hits + s.totals.true_evals,
            "every unique request is either a cache hit or a true eval"
        );
        // No cache configured: all scheduled work reached the backend.
        assert_eq!(s.cache_hit_rate, 0.0);
        assert!(s.mean_batch_size > 0.0);
        assert!(s.max_queue_depth > 0);
        assert!((0.0..=1.0).contains(&s.dedup_ratio));
        // A local in-process run absorbs no faults.
        assert_eq!(s.fault_events, 0);
        assert_eq!(s.totals.fallback_batches, 0);
    }

    #[test]
    fn empty_history_is_handled() {
        let result = RunResult {
            min_size: 2,
            best_per_size: vec![None],
            evals_to_best: vec![0],
            total_evaluations: 0,
            generations: 0,
            history: vec![],
            seed: 0,
        };
        let report = analyze(&result);
        assert!(report.convergence[0].points.is_empty());
        assert!(report.mutation_rates[0].overall.is_nan());
        assert_eq!(report.total_immigrants(), 0);
        assert_eq!(report.sched.totals, crate::sched::SchedStats::default());
        assert_eq!(report.sched.mean_batch_size, 0.0);
    }
}
