//! Post-run analysis of GA telemetry.
//!
//! [`RunResult::history`] records per-generation state; this module turns
//! it into the summaries the paper discusses qualitatively: convergence
//! curves per size, adaptive-rate trajectories (which operator "won"),
//! and random-immigrant episodes.

use crate::engine::RunResult;
use crate::ops::crossover::CrossoverKind;
use crate::ops::mutation::MutationKind;
use crate::sched::SchedStats;

/// Convergence curve of one haplotype size: `(generation, best fitness)`
/// sampled at every improvement.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ConvergenceCurve {
    /// Haplotype size.
    pub size: usize,
    /// `(generation, best-so-far)` at each improvement step.
    pub points: Vec<(usize, f64)>,
}

/// Mean adaptive rate of each operator over a window of generations.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct RateSummary {
    /// Operator name.
    pub operator: &'static str,
    /// Mean rate over the first quarter of the run.
    pub early: f64,
    /// Mean rate over the last quarter of the run.
    pub late: f64,
    /// Mean rate over the whole run.
    pub overall: f64,
}

/// One random-immigrant episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct ImmigrantEpisode {
    /// Generation the episode fired.
    pub generation: usize,
    /// Individuals replaced.
    pub replaced: usize,
}

/// Batch-scheduler behaviour over a whole run (generation windows merged).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SchedSummary {
    /// Counters summed over every generation window.
    pub totals: SchedStats,
    /// Mean unevaluated individuals per submitted batch.
    pub mean_batch_size: f64,
    /// Fraction of requests folded as intra-batch duplicates.
    pub dedup_ratio: f64,
    /// Fraction of scheduled evaluations served by the fitness cache.
    pub cache_hit_rate: f64,
    /// Mean backend dispatch latency per batch, in milliseconds.
    pub mean_dispatch_ms: f64,
    /// Peak jobs outstanding at any dispatch.
    pub max_queue_depth: u64,
    /// Total fault-recovery events (retries, retirements, rejoins,
    /// requeues, fallback activations) absorbed by the evaluation layer;
    /// 0 for a fault-free run. Per-kind counts are in `totals`.
    pub fault_events: u64,
}

/// Search-dynamics trajectory summary over a whole observed run: where
/// diversity started and ended, what the evaluation spend bought, and
/// which operators earned their rates. `None` fields never appear — the
/// whole fold is absent ([`TelemetryReport::dynamics`]) when the run was
/// not observed.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct DynamicsFold {
    /// Generations that carried a dynamics snapshot.
    pub observed_generations: usize,
    /// Mean pairwise Hamming distance at the first observed generation.
    pub initial_hamming: f64,
    /// Mean pairwise Hamming distance at the last observed generation.
    pub final_hamming: f64,
    /// Occupancy entropy at the first observed generation.
    pub initial_entropy: f64,
    /// Occupancy entropy at the last observed generation.
    pub final_entropy: f64,
    /// Fixed SNPs (≥ 90% occupancy) at the last observed generation.
    pub final_fixed_snps: usize,
    /// Champion fitness gained across all observed generations.
    pub total_fitness_gain: f64,
    /// True (backend) evaluations across all observed generations.
    pub total_true_evals: u64,
    /// Run-level economics: true evaluations per unit of fitness gained
    /// (`0.0` when nothing was gained).
    pub evals_per_gain: f64,
    /// Per-operator profit totals over the run (SNP, reduction,
    /// augmentation).
    pub mutation_profit_totals: Vec<f64>,
    /// Per-operator profit totals over the run (intra, inter).
    pub crossover_profit_totals: Vec<f64>,
}

/// Full telemetry report. `Serialize` so it can become the `telemetry`
/// section of an `ld-observe` run report.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TelemetryReport {
    /// Convergence curve per managed size (ascending).
    pub convergence: Vec<ConvergenceCurve>,
    /// Rate trajectory summary for the three mutation operators.
    pub mutation_rates: Vec<RateSummary>,
    /// Rate trajectory summary for the two crossover operators.
    pub crossover_rates: Vec<RateSummary>,
    /// All random-immigrant episodes.
    pub immigrant_episodes: Vec<ImmigrantEpisode>,
    /// Generation at which the last improvement (any size) happened.
    pub last_improvement: usize,
    /// Scheduler behaviour (batch sizes, dedup, cache, dispatch latency).
    pub sched: SchedSummary,
    /// Search-dynamics summary; `None` when the run was not observed
    /// (absent, not zero-as-data).
    pub dynamics: Option<DynamicsFold>,
}

/// Analyse a run's history.
pub fn analyze(result: &RunResult) -> TelemetryReport {
    let n_sizes = result.best_per_size.len();
    let history = &result.history;

    // Convergence curves: record a point whenever a size's best strictly
    // improves over the previous generation's value.
    let mut convergence = Vec::with_capacity(n_sizes);
    let mut last_improvement = 0usize;
    for idx in 0..n_sizes {
        let mut points = Vec::new();
        let mut best = f64::NEG_INFINITY;
        for g in history {
            let f = g.best_per_size.get(idx).copied().unwrap_or(f64::NAN);
            if f.is_finite() && f > best {
                best = f;
                points.push((g.generation, f));
                last_improvement = last_improvement.max(g.generation);
            }
        }
        convergence.push(ConvergenceCurve {
            size: result.min_size + idx,
            points,
        });
    }

    let mutation_names = [
        MutationKind::Snp.name(),
        MutationKind::Reduction.name(),
        MutationKind::Augmentation.name(),
    ];
    let crossover_names = [CrossoverKind::Intra.name(), CrossoverKind::Inter.name()];
    let mutation_rates = summarize_rates(history, &mutation_names, |g| &g.mutation_rates);
    let crossover_rates = summarize_rates(history, &crossover_names, |g| &g.crossover_rates);

    let immigrant_episodes = history
        .iter()
        .filter(|g| g.immigrants > 0)
        .map(|g| ImmigrantEpisode {
            generation: g.generation,
            replaced: g.immigrants,
        })
        .collect();

    let mut totals = SchedStats::default();
    for g in history {
        totals.merge(&g.sched);
    }
    let sched = SchedSummary {
        mean_batch_size: if totals.batches == 0 {
            0.0
        } else {
            totals.requested as f64 / totals.batches as f64
        },
        dedup_ratio: totals.dedup_ratio(),
        cache_hit_rate: totals.cache_hit_rate(),
        mean_dispatch_ms: totals.mean_dispatch_ms(),
        max_queue_depth: totals.max_queue_depth,
        fault_events: totals.fault_events(),
        totals,
    };

    TelemetryReport {
        convergence,
        mutation_rates,
        crossover_rates,
        immigrant_episodes,
        last_improvement,
        sched,
        dynamics: fold_dynamics(history),
    }
}

/// Fold the per-generation dynamics snapshots into a run-level summary.
/// Returns `None` when no generation carried one (unobserved run).
fn fold_dynamics(history: &[crate::engine::GenerationStats]) -> Option<DynamicsFold> {
    let observed: Vec<&ld_observe::DynamicsSnapshot> =
        history.iter().filter_map(|g| g.dynamics.as_ref()).collect();
    let first = observed.first()?;
    let last = observed.last().expect("non-empty after first()");
    let total_fitness_gain: f64 = observed.iter().map(|d| d.fitness_gain).sum();
    let total_true_evals: u64 = observed.iter().map(|d| d.true_evals).sum();
    let mut mutation_profit_totals = vec![0.0; first.mutation_profits.len()];
    let mut crossover_profit_totals = vec![0.0; first.crossover_profits.len()];
    for d in &observed {
        for (acc, p) in mutation_profit_totals.iter_mut().zip(&d.mutation_profits) {
            *acc += p;
        }
        for (acc, p) in crossover_profit_totals.iter_mut().zip(&d.crossover_profits) {
            *acc += p;
        }
    }
    Some(DynamicsFold {
        observed_generations: observed.len(),
        initial_hamming: first.mean_pairwise_hamming,
        final_hamming: last.mean_pairwise_hamming,
        initial_entropy: first.occupancy_entropy,
        final_entropy: last.occupancy_entropy,
        final_fixed_snps: last.fixed_snps,
        total_fitness_gain,
        total_true_evals,
        evals_per_gain: if total_fitness_gain > 0.0 {
            total_true_evals as f64 / total_fitness_gain
        } else {
            0.0
        },
        mutation_profit_totals,
        crossover_profit_totals,
    })
}

fn summarize_rates<F>(
    history: &[crate::engine::GenerationStats],
    names: &[&'static str],
    extract: F,
) -> Vec<RateSummary>
where
    F: Fn(&crate::engine::GenerationStats) -> &Vec<f64>,
{
    if history.is_empty() {
        return names
            .iter()
            .map(|&operator| RateSummary {
                operator,
                early: f64::NAN,
                late: f64::NAN,
                overall: f64::NAN,
            })
            .collect();
    }
    let quarter = (history.len() / 4).max(1);
    let mean_over = |slice: &[crate::engine::GenerationStats], op: usize| -> f64 {
        slice.iter().map(|g| extract(g)[op]).sum::<f64>() / slice.len() as f64
    };
    names
        .iter()
        .enumerate()
        .map(|(op, &operator)| RateSummary {
            operator,
            early: mean_over(&history[..quarter], op),
            late: mean_over(&history[history.len() - quarter..], op),
            overall: mean_over(history, op),
        })
        .collect()
}

/// Write the per-generation history as TSV (one row per generation;
/// per-size best columns, operator rates, immigrant counts) — ready for
/// any plotting tool.
pub fn write_history_tsv<W: std::io::Write>(result: &RunResult, mut w: W) -> std::io::Result<()> {
    let n_sizes = result.best_per_size.len();
    write!(w, "generation\tevaluations")?;
    for i in 0..n_sizes {
        write!(w, "\tbest_k{}", result.min_size + i)?;
    }
    write!(
        w,
        "\tmut_snp\tmut_reduction\tmut_augmentation\tcross_intra\tcross_inter\timmigrants"
    )?;
    write!(
        w,
        "\tsched_requested\tsched_coalesced\tsched_cache_hits\tsched_true_evals\tsched_dispatch_ms\tsched_queue_depth"
    )?;
    write!(
        w,
        "\tsched_retries\tsched_retired\tsched_rejoins\tsched_requeued\tsched_fallbacks"
    )?;
    write!(
        w,
        "\tsched_cache_misses\tsched_cache_evictions\tsched_cache_persists"
    )?;
    write!(w, "\tgen_wall_ms")?;
    // Dynamics columns are empty (not zero) on unobserved runs, so a
    // plotting tool can tell "not measured" from "measured as zero".
    write!(
        w,
        "\tdyn_hamming\tdyn_unique\tdyn_entropy\tdyn_fixed\tdyn_fit_q1\tdyn_fit_median\tdyn_fit_q3\tdyn_gain\tdyn_evals_per_gain"
    )?;
    write!(
        w,
        "\tdyn_profit_mut_snp\tdyn_profit_mut_reduction\tdyn_profit_mut_augmentation\tdyn_profit_cross_intra\tdyn_profit_cross_inter"
    )?;
    writeln!(w)?;
    for g in &result.history {
        write!(w, "{}\t{}", g.generation, g.evaluations)?;
        for i in 0..n_sizes {
            let f = g.best_per_size.get(i).copied().unwrap_or(f64::NAN);
            if f.is_nan() {
                write!(w, "\t")?;
            } else {
                write!(w, "\t{f:.6}")?;
            }
        }
        for r in g.mutation_rates.iter().chain(&g.crossover_rates) {
            write!(w, "\t{r:.6}")?;
        }
        write!(w, "\t{}", g.immigrants)?;
        write!(
            w,
            "\t{}\t{}\t{}\t{}\t{:.3}\t{}",
            g.sched.requested,
            g.sched.coalesced,
            g.sched.cache_hits,
            g.sched.true_evals,
            g.sched.dispatch_ns as f64 / 1e6,
            g.sched.max_queue_depth,
        )?;
        write!(
            w,
            "\t{}\t{}\t{}\t{}\t{}",
            g.sched.retries,
            g.sched.retirements,
            g.sched.rejoins,
            g.sched.requeued,
            g.sched.fallback_batches,
        )?;
        write!(
            w,
            "\t{}\t{}\t{}",
            g.sched.cache_misses, g.sched.cache_evictions, g.sched.cache_persists,
        )?;
        write!(w, "\t{:.3}", g.gen_wall_ms)?;
        match &g.dynamics {
            Some(d) => {
                write!(
                    w,
                    "\t{:.6}\t{:.6}\t{:.6}\t{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}\t{:.3}",
                    d.mean_pairwise_hamming,
                    d.unique_fraction,
                    d.occupancy_entropy,
                    d.fixed_snps,
                    d.fitness_q1,
                    d.fitness_median,
                    d.fitness_q3,
                    d.fitness_gain,
                    d.evals_per_gain,
                )?;
                // Pad missing operators (never expected) with empty cells so
                // the column count stays fixed.
                for i in 0..3 {
                    match d.mutation_profits.get(i) {
                        Some(p) => write!(w, "\t{p:.6}")?,
                        None => write!(w, "\t")?,
                    }
                }
                for i in 0..2 {
                    match d.crossover_profits.get(i) {
                        Some(p) => write!(w, "\t{p:.6}")?,
                        None => write!(w, "\t")?,
                    }
                }
            }
            None => {
                for _ in 0..14 {
                    write!(w, "\t")?;
                }
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

impl TelemetryReport {
    /// The mutation operator with the highest overall mean rate.
    pub fn dominant_mutation(&self) -> &'static str {
        self.mutation_rates
            .iter()
            .max_by(|a, b| a.overall.total_cmp(&b.overall))
            .map_or("n/a", |r| r.operator)
    }

    /// Total individuals replaced by random immigrants.
    pub fn total_immigrants(&self) -> usize {
        self.immigrant_episodes.iter().map(|e| e.replaced).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GaConfig;
    use crate::engine::GaEngine;
    use crate::evaluator::FnEvaluator;
    use ld_data::SnpId;

    fn run() -> RunResult {
        let eval = FnEvaluator::new(25, |s: &[SnpId]| {
            s.iter().map(|&x| x as f64).sum::<f64>() + 10.0 * s.len() as f64
        });
        let cfg = GaConfig {
            population_size: 50,
            min_size: 2,
            max_size: 3,
            matings_per_generation: 8,
            stagnation_limit: 20,
            ri_stagnation: 7,
            max_generations: 300,
            ..GaConfig::default()
        };
        GaEngine::new(&eval, cfg, 5).unwrap().run()
    }

    #[test]
    fn convergence_curves_are_monotone_and_sized() {
        let result = run();
        let report = analyze(&result);
        assert_eq!(report.convergence.len(), 2);
        for curve in &report.convergence {
            assert!(
                !curve.points.is_empty(),
                "size {} has no points",
                curve.size
            );
            for w in curve.points.windows(2) {
                assert!(w[0].0 < w[1].0, "generations must increase");
                assert!(w[0].1 < w[1].1, "best must strictly improve");
            }
            // The final point matches the run's champion.
            let champion = result.best_of_size(curve.size).unwrap().fitness();
            assert!((curve.points.last().unwrap().1 - champion).abs() < 1e-12);
        }
    }

    #[test]
    fn rate_summaries_cover_all_operators() {
        let report = analyze(&run());
        assert_eq!(report.mutation_rates.len(), 3);
        assert_eq!(report.crossover_rates.len(), 2);
        for r in report.mutation_rates.iter().chain(&report.crossover_rates) {
            assert!(r.overall.is_finite());
            assert!(r.early > 0.0 && r.late > 0.0);
        }
        // Rates of a family sum to the family's global rate at all windows.
        let sum: f64 = report.mutation_rates.iter().map(|r| r.overall).sum();
        assert!((sum - 0.9).abs() < 1e-9, "sum = {sum}");
        assert!(!report.dominant_mutation().is_empty());
    }

    #[test]
    fn last_improvement_before_termination() {
        let result = run();
        let report = analyze(&result);
        assert!(report.last_improvement > 0);
        assert!(report.last_improvement <= result.generations);
        // Stagnation termination: the gap to the end is the stagnation limit.
        assert_eq!(result.generations - report.last_improvement, 20);
    }

    #[test]
    fn immigrant_episodes_match_history() {
        let result = run();
        let report = analyze(&result);
        let from_history: usize = result.history.iter().map(|g| g.immigrants).sum();
        assert_eq!(report.total_immigrants(), from_history);
        for e in &report.immigrant_episodes {
            assert!(e.replaced > 0);
        }
    }

    #[test]
    fn history_tsv_has_one_row_per_generation() {
        let result = run();
        let mut buf = Vec::new();
        write_history_tsv(&result, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), result.generations + 1);
        assert!(lines[0].starts_with("generation\tevaluations\tbest_k2"));
        assert!(lines[0].contains("\tsched_cache_misses\tsched_cache_evictions\tsched_cache_persists\tgen_wall_ms\tdyn_hamming"));
        assert!(lines[0].ends_with("\tdyn_profit_cross_inter"));
        // Every data row has the full column count.
        let n_cols = lines[0].split('\t').count();
        for l in &lines[1..] {
            assert_eq!(l.split('\t').count(), n_cols, "row: {l}");
        }
    }

    #[test]
    fn unobserved_run_has_no_dynamics() {
        let result = run();
        // The test fixture is unobserved: no snapshots, empty TSV cells.
        assert!(result.history.iter().all(|g| g.dynamics.is_none()));
        let report = analyze(&result);
        assert!(report.dynamics.is_none());
        let mut buf = Vec::new();
        write_history_tsv(&result, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for row in text.lines().skip(1) {
            assert!(row.ends_with("\t\t\t\t\t\t\t\t\t\t\t\t\t\t"), "row: {row}");
        }
    }

    #[test]
    fn dynamics_fold_reconciles_with_snapshots() {
        let mut result = run();
        // Graft synthetic snapshots onto the first two generations to
        // exercise the fold without an observer.
        let mk = |hamming: f64, gain: f64, evals: u64| ld_observe::DynamicsSnapshot {
            population: 4,
            unique_fraction: 1.0,
            mean_pairwise_hamming: hamming,
            occupancy_entropy: 0.8,
            snps_used: 5,
            fixed_snps: 1,
            fixation_spectrum: [4, 0, 0, 1],
            fitness_q1: 1.0,
            fitness_median: 2.0,
            fitness_q3: 3.0,
            best_fitness: 4.0,
            fitness_gain: gain,
            true_evals: evals,
            cache_hits: 0,
            evals_per_gain: 0.0,
            immigrants: 0,
            mutation_rates: vec![0.3, 0.3, 0.3],
            mutation_profits: vec![0.1, 0.0, 0.2],
            crossover_rates: vec![0.5, 0.5],
            crossover_profits: vec![0.05, 0.0],
        };
        result.history[0].dynamics = Some(mk(3.0, 2.0, 10));
        result.history[1].dynamics = Some(mk(1.5, 0.0, 6));
        let fold = analyze(&result).dynamics.expect("observed generations");
        assert_eq!(fold.observed_generations, 2);
        assert_eq!(fold.initial_hamming, 3.0);
        assert_eq!(fold.final_hamming, 1.5);
        assert_eq!(fold.total_fitness_gain, 2.0);
        assert_eq!(fold.total_true_evals, 16);
        assert!((fold.evals_per_gain - 8.0).abs() < 1e-12);
        assert_eq!(fold.mutation_profit_totals, vec![0.2, 0.0, 0.4]);
        assert_eq!(fold.crossover_profit_totals, vec![0.1, 0.0]);
        // The grafted rows now carry populated dynamics cells.
        let mut buf = Vec::new();
        write_history_tsv(&result, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let row1 = text.lines().nth(1).unwrap();
        assert!(row1.ends_with("\t0.100000\t0.000000\t0.200000\t0.050000\t0.000000"));
    }

    #[test]
    fn generation_wall_clock_is_recorded() {
        let result = run();
        for g in &result.history {
            assert!(
                g.gen_wall_ms > 0.0,
                "generation {} has no wall time",
                g.generation
            );
            // The engine-side wall clock must cover at least the dispatch
            // time the scheduler measured inside it.
            assert!(g.gen_wall_ms >= g.sched.dispatch_ns as f64 / 1e6);
        }
    }

    #[test]
    fn sched_summary_reconciles_with_history() {
        let result = run();
        let report = analyze(&result);
        let s = &report.sched;
        // One crossover batch and one mutation batch per generation at
        // minimum.
        assert!(s.totals.batches as usize >= 2 * result.generations);
        assert_eq!(
            s.totals.scheduled(),
            s.totals.cache_hits + s.totals.true_evals,
            "every unique request is either a cache hit or a true eval"
        );
        // No cache configured: all scheduled work reached the backend.
        assert_eq!(s.cache_hit_rate, 0.0);
        assert!(s.mean_batch_size > 0.0);
        assert!(s.max_queue_depth > 0);
        assert!((0.0..=1.0).contains(&s.dedup_ratio));
        // A local in-process run absorbs no faults.
        assert_eq!(s.fault_events, 0);
        assert_eq!(s.totals.fallback_batches, 0);
    }

    #[test]
    fn empty_history_is_handled() {
        let result = RunResult {
            min_size: 2,
            best_per_size: vec![None],
            evals_to_best: vec![0],
            total_evaluations: 0,
            generations: 0,
            history: vec![],
            seed: 0,
        };
        let report = analyze(&result);
        assert!(report.convergence[0].points.is_empty());
        assert!(report.mutation_rates[0].overall.is_nan());
        assert_eq!(report.total_immigrants(), 0);
        assert_eq!(report.sched.totals, crate::sched::SchedStats::default());
        assert_eq!(report.sched.mean_batch_size, 0.0);
    }
}
