//! Per-generation search-dynamics measurement (DESIGN.md §3h).
//!
//! Everything here is a *pure read* of engine state — no RNG, no
//! population mutation — so attaching the layer cannot perturb the
//! trajectory. The whole module runs only when an observer is attached:
//! [`DynamicsLayer::attach`] returns `None` for disabled observers and
//! [`GaRun::observe_dynamics`] early-returns on `None`, leaving the
//! disabled per-generation path without a single extra allocation (the
//! `alloc_guard` test in `ld-observe` pins the observer primitives this
//! rides on).

use std::collections::HashMap;

use ld_observe::dynamics::{ConvergenceDetector, DetectorConfig, DetectorState, DynamicsMetrics};
use ld_observe::{DynamicsSnapshot, Event, Observer};

use crate::evaluator::Evaluator;
use crate::individual::Haplotype;
use crate::population::MultiPopulation;
use crate::sched::SchedStats;

use super::GaRun;

/// The per-run dynamics state: the sliding-window detector plus the
/// pre-registered metric handles. Exists only on observed runs.
pub(crate) struct DynamicsLayer {
    detector: ConvergenceDetector,
    metrics: Option<DynamicsMetrics>,
}

impl DynamicsLayer {
    /// Build the layer when (and only when) `observer` is enabled. The
    /// detector window is coupled to the run's own §4.6 criterion — see
    /// [`DetectorConfig::for_stagnation_limit`].
    pub(crate) fn attach(observer: &Observer, stagnation_limit: usize) -> Option<Self> {
        if !observer.enabled() {
            return None;
        }
        Some(DynamicsLayer {
            detector: ConvergenceDetector::new(DetectorConfig::for_stagnation_limit(
                stagnation_limit,
            )),
            metrics: DynamicsMetrics::register(observer),
        })
    }

    /// Re-attach the layer on checkpoint resume, restoring the detector's
    /// exact sliding-window state so verdicts fire on the same generation
    /// they would have in the uninterrupted run. Falls back to `None` for
    /// disabled observers, mirroring [`DynamicsLayer::attach`].
    pub(crate) fn attach_with_state(observer: &Observer, state: DetectorState) -> Option<Self> {
        if !observer.enabled() {
            return None;
        }
        Some(DynamicsLayer {
            detector: ConvergenceDetector::from_state(state),
            metrics: DynamicsMetrics::register(observer),
        })
    }

    /// Export the detector's sliding-window state for checkpointing.
    pub(crate) fn detector_state(&self) -> DetectorState {
        self.detector.state()
    }
}

/// Sum of the finite per-size champion fitnesses — the scalar "best"
/// series the detector and the gain economics run on.
pub(crate) fn champion_sum(best_per_size: &[Option<Haplotype>]) -> f64 {
    best_per_size
        .iter()
        .flatten()
        .map(|h| h.fitness())
        .filter(|f| f.is_finite())
        .sum()
}

/// Measure the population: diversity, fixation, fitness distribution.
/// O(n² · k) in the population for the pairwise Hamming pass — run only
/// on observed runs, where populations are a few hundred individuals.
fn measure_population(pop: &MultiPopulation, snap: &mut DynamicsSnapshot) {
    let individuals: Vec<&Haplotype> = pop.iter().flat_map(|sp| sp.individuals()).collect();
    let n = individuals.len();
    snap.population = n;
    if n == 0 {
        return;
    }

    // Distinct SNP sets. Within a subpopulation §4.6 rejects duplicates,
    // so anything below 1.0 would flag a replacement-rule regression.
    let mut seen: std::collections::HashSet<&[ld_data::SnpId]> =
        std::collections::HashSet::with_capacity(n);
    for h in &individuals {
        seen.insert(h.key());
    }
    snap.unique_fraction = seen.len() as f64 / n as f64;

    // Mean pairwise Hamming distance = |A| + |B| − 2|A ∩ B| over sorted
    // SNP sets (merge-walk intersection, same idiom as `diversity.rs`).
    if n >= 2 {
        let mut total = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                let (a, b) = (individuals[i].snps(), individuals[j].snps());
                let mut inter = 0usize;
                let (mut x, mut y) = (0usize, 0usize);
                while x < a.len() && y < b.len() {
                    match a[x].cmp(&b[y]) {
                        std::cmp::Ordering::Less => x += 1,
                        std::cmp::Ordering::Greater => y += 1,
                        std::cmp::Ordering::Equal => {
                            inter += 1;
                            x += 1;
                            y += 1;
                        }
                    }
                }
                total += (a.len() + b.len() - 2 * inter) as u64;
            }
        }
        let pairs = (n * (n - 1) / 2) as f64;
        snap.mean_pairwise_hamming = total as f64 / pairs;
    }

    // SNP occupancy: usage entropy plus the fixation spectrum. The fold
    // runs over counts *sorted by SNP id*: float addition is not
    // associative, so hash-order summation would make the last ulp of the
    // entropy differ between two otherwise identical runs — and the
    // checkpoint/resume bit-identity tests compare these snapshots.
    let mut counts: HashMap<ld_data::SnpId, usize> = HashMap::new();
    for h in &individuals {
        for &s in h.snps() {
            *counts.entry(s).or_insert(0) += 1;
        }
    }
    let mut counts: Vec<(ld_data::SnpId, usize)> = counts.into_iter().collect();
    counts.sort_unstable();
    snap.snps_used = counts.len();
    let memberships: usize = counts.iter().map(|&(_, c)| c).sum();
    if counts.len() > 1 && memberships > 0 {
        let mut entropy = 0.0;
        for &(_, c) in &counts {
            let p = c as f64 / memberships as f64;
            entropy -= p * p.ln();
        }
        snap.occupancy_entropy = entropy / (counts.len() as f64).ln();
    } else if counts.len() == 1 {
        snap.occupancy_entropy = 0.0;
    }
    for &(_, c) in &counts {
        let occupancy = c as f64 / n as f64;
        if occupancy >= 0.9 {
            snap.fixed_snps += 1;
        }
        let band = if occupancy <= 0.25 {
            0
        } else if occupancy <= 0.5 {
            1
        } else if occupancy <= 0.75 {
            2
        } else {
            3
        };
        snap.fixation_spectrum[band] += 1;
    }

    // Fitness distribution quartiles (nearest-rank) and best.
    let mut fitnesses: Vec<f64> = individuals
        .iter()
        .map(|h| h.fitness())
        .filter(|f| f.is_finite())
        .collect();
    if !fitnesses.is_empty() {
        fitnesses.sort_by(f64::total_cmp);
        let rank = |p: f64| fitnesses[(((fitnesses.len() - 1) as f64) * p).round() as usize];
        snap.fitness_q1 = rank(0.25);
        snap.fitness_median = rank(0.5);
        snap.fitness_q3 = rank(0.75);
        snap.best_fitness = *fitnesses.last().expect("non-empty");
    }
}

impl<E: Evaluator> GaRun<'_, E> {
    /// Compute, publish, and return this generation's dynamics snapshot;
    /// `None` (without measuring anything) on unobserved runs.
    ///
    /// `window` is the generation's scheduler window (already taken),
    /// `prev_best` the champion sum captured at the top of the step.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn observe_dynamics(
        &mut self,
        window: &SchedStats,
        immigrants: usize,
        prev_best: f64,
        mutation_profits: &[f64],
        crossover_profits: &[f64],
    ) -> Option<DynamicsSnapshot> {
        self.dynamics.as_ref()?;

        let best_sum = champion_sum(&self.best_per_size);
        let fitness_gain = (best_sum - prev_best).max(0.0);
        let mut snap = DynamicsSnapshot {
            population: 0,
            unique_fraction: 0.0,
            mean_pairwise_hamming: 0.0,
            occupancy_entropy: 0.0,
            snps_used: 0,
            fixed_snps: 0,
            fixation_spectrum: [0; 4],
            fitness_q1: 0.0,
            fitness_median: 0.0,
            fitness_q3: 0.0,
            best_fitness: 0.0,
            fitness_gain,
            true_evals: window.true_evals,
            cache_hits: window.cache_hits,
            evals_per_gain: if fitness_gain > 0.0 {
                window.true_evals as f64 / fitness_gain
            } else {
                0.0
            },
            immigrants,
            mutation_rates: self.mutation_rates.rates().to_vec(),
            mutation_profits: mutation_profits.to_vec(),
            crossover_rates: self.crossover_rates.rates().to_vec(),
            crossover_profits: crossover_profits.to_vec(),
        };
        measure_population(&self.pop, &mut snap);

        let layer = self.dynamics.as_mut().expect("checked above");
        if let Some(metrics) = &layer.metrics {
            metrics.record(&snap);
        }
        let verdict = layer.detector.observe(best_sum, snap.occupancy_entropy);
        if let (Some(v), Some(metrics)) = (&verdict, &layer.metrics) {
            metrics.record_verdict(v);
        }
        let observer = self.service.observer();
        observer.emit_with(|| Event::Dynamics(Box::new(snap.clone())));
        if let Some(v) = verdict {
            observer.emit_with(|| v.to_event());
        }
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::MultiPopulation;

    fn hap(snps: &[usize], fitness: f64) -> Haplotype {
        let mut h = Haplotype::from_sorted(snps.to_vec());
        h.set_fitness(fitness);
        h
    }

    fn blank() -> DynamicsSnapshot {
        DynamicsSnapshot {
            population: 0,
            unique_fraction: 0.0,
            mean_pairwise_hamming: 0.0,
            occupancy_entropy: 0.0,
            snps_used: 0,
            fixed_snps: 0,
            fixation_spectrum: [0; 4],
            fitness_q1: 0.0,
            fitness_median: 0.0,
            fitness_q3: 0.0,
            best_fitness: 0.0,
            fitness_gain: 0.0,
            true_evals: 0,
            cache_hits: 0,
            evals_per_gain: 0.0,
            immigrants: 0,
            mutation_rates: Vec::new(),
            mutation_profits: Vec::new(),
            crossover_rates: Vec::new(),
            crossover_profits: Vec::new(),
        }
    }

    #[test]
    fn measures_diversity_fixation_and_quartiles() {
        let mut pop = MultiPopulation::new(10, 2, 2, 4);
        let sub = pop.get_mut(2).unwrap();
        // {0,1}, {0,2}, {0,3}, {0,9}: SNP 0 fixed (4/4), the rest 1/4.
        sub.try_insert(hap(&[0, 1], 1.0));
        sub.try_insert(hap(&[0, 2], 2.0));
        sub.try_insert(hap(&[0, 3], 3.0));
        sub.try_insert(hap(&[0, 9], 4.0));

        let mut snap = blank();
        measure_population(&pop, &mut snap);
        assert_eq!(snap.population, 4);
        assert_eq!(snap.unique_fraction, 1.0);
        // Every pair shares exactly SNP 0: Hamming 2 for all 6 pairs.
        assert!((snap.mean_pairwise_hamming - 2.0).abs() < 1e-12);
        assert_eq!(snap.snps_used, 5);
        assert_eq!(snap.fixed_snps, 1);
        // SNP 0 occupies 100% (band 3); SNPs 1,2,3,9 occupy 25% (band 0).
        assert_eq!(snap.fixation_spectrum, [4, 0, 0, 1]);
        assert!(snap.occupancy_entropy > 0.0 && snap.occupancy_entropy <= 1.0);
        assert_eq!(snap.best_fitness, 4.0);
        assert!(snap.fitness_q1 <= snap.fitness_median);
        assert!(snap.fitness_median <= snap.fitness_q3);
        assert!(snap.fitness_q3 <= snap.best_fitness);
    }

    #[test]
    fn entropy_is_zero_when_one_snp_owns_the_population() {
        let mut pop = MultiPopulation::new(10, 1, 1, 4);
        let sub = pop.get_mut(1).unwrap();
        sub.try_insert(hap(&[3], 1.0));
        let mut snap = blank();
        measure_population(&pop, &mut snap);
        assert_eq!(snap.snps_used, 1);
        assert_eq!(snap.occupancy_entropy, 0.0);
        assert_eq!(snap.fixed_snps, 1);
        assert_eq!(snap.mean_pairwise_hamming, 0.0);
    }

    #[test]
    fn champion_sum_skips_missing_and_non_finite() {
        assert_eq!(champion_sum(&[]), 0.0);
        let champs = vec![
            Some(hap(&[0, 1], 2.5)),
            None,
            Some(hap(&[2, 3], f64::NAN)),
            Some(hap(&[4, 5], 1.5)),
        ];
        assert_eq!(champion_sum(&champs), 4.0);
    }
}
