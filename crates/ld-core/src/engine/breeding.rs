//! Selection, crossover and mutation: phases A and B of a generation.

use crate::evaluator::Evaluator;
use crate::individual::Haplotype;
use crate::ops::crossover::{inter_crossover, uniform_crossover, CrossoverKind};
use crate::ops::mutation::{apply_mutation, MutationKind};
use crate::population::NormalizerSnapshot;
use crate::sched::EvalBackendError;
use ld_observe::span::names as span_names;
use rand::prelude::*;
use std::ops::Range;

use super::GaRun;

/// One crossover application awaiting its progress measurement.
pub(super) struct MatingRecord {
    pub(super) kind: CrossoverKind,
    /// Normalized fitness of the reference parent for each child (for
    /// intra: the parents' mean, same for both children; for inter: each
    /// child's same-size parent).
    pub(super) parent_norms: (f64, f64),
    /// Indices of the two children in the generation's child list.
    pub(super) children: (usize, usize),
    /// Sizes of the two children (normalization needs them).
    pub(super) sizes: (usize, usize),
}

/// One mutation application awaiting candidate selection.
pub(super) struct MutationRecord {
    pub(super) kind: MutationKind,
    /// Index of the mutated child.
    pub(super) child: usize,
    /// Candidate range in the generation's candidate list.
    pub(super) candidates: Range<usize>,
}

pub(super) fn push_children(
    children: &mut Vec<Haplotype>,
    matings: &mut Vec<MatingRecord>,
    kind: CrossoverKind,
    parent_norms: (f64, f64),
    c1: Haplotype,
    c2: Haplotype,
) {
    let i1 = children.len();
    let sizes = (c1.size(), c2.size());
    children.push(c1);
    children.push(c2);
    matings.push(MatingRecord {
        kind,
        parent_norms,
        children: (i1, i1 + 1),
        sizes,
    });
}

impl<E: Evaluator> GaRun<'_, E> {
    /// Phase A: selection + crossover. Produces the generation's children
    /// (evaluated as one scheduler batch) and feeds crossover progress
    /// (§4.3.2) into the adaptive rates.
    pub(super) fn crossover_phase(
        &mut self,
        norms: &NormalizerSnapshot,
    ) -> Result<Vec<Haplotype>, EvalBackendError> {
        let n_snps = self.service.n_snps();
        let n_sizes = self.cfg.max_size - self.cfg.min_size + 1;
        let mut children: Vec<Haplotype> = Vec::new();
        let mut matings: Vec<MatingRecord> = Vec::new();
        // Master-side selection + operator work, distinct from the
        // evaluation batch that follows inside the same crossover phase.
        let selection_span = self.service.observer().span(span_names::SELECTION);
        for _ in 0..self.cfg.matings_per_generation {
            if !self.crossover_rates.fires(&mut self.rng) {
                // No crossover: a selected parent passes through (it may
                // still be mutated in phase B). Fitness is preserved, so no
                // re-evaluation is needed.
                if let Some(parent) = self.select_any_parent() {
                    children.push(parent);
                }
                continue;
            }
            let kind = if self.cfg.scheme.inter_crossover && n_sizes >= 2 {
                match self.crossover_rates.select(&mut self.rng) {
                    0 => CrossoverKind::Intra,
                    _ => CrossoverKind::Inter,
                }
            } else {
                CrossoverKind::Intra
            };
            match kind {
                CrossoverKind::Intra => {
                    let Some((p1, p2)) = self.select_intra_parents() else {
                        continue;
                    };
                    let (c1, c2) = uniform_crossover(&p1, &p2, n_snps, &mut self.rng);
                    let parent_mean = (norms.normalized(p1.size(), p1.fitness())
                        + norms.normalized(p2.size(), p2.fitness()))
                        / 2.0;
                    push_children(
                        &mut children,
                        &mut matings,
                        kind,
                        (parent_mean, parent_mean),
                        c1,
                        c2,
                    );
                }
                CrossoverKind::Inter => {
                    let Some((p1, p2)) = self.select_inter_parents() else {
                        continue;
                    };
                    let (c1, c2) = inter_crossover(&p1, &p2, n_snps, &mut self.rng);
                    // §4.3.2: for inter-population crossover each child is
                    // compared with its parent of the same size (c1 aligns
                    // with p1, c2 with p2).
                    let n1 = norms.normalized(p1.size(), p1.fitness());
                    let n2 = norms.normalized(p2.size(), p2.fitness());
                    push_children(&mut children, &mut matings, kind, (n1, n2), c1, c2);
                }
            }
        }
        drop(selection_span);

        // Evaluate the unevaluated children (one scheduler batch).
        self.total_evals += self.service.submit_phase(&mut children, "crossover")?;

        // Crossover progress (§4.3.2): average improvement of children over
        // their reference parents.
        for m in &matings {
            let c1 = &children[m.children.0];
            let c2 = &children[m.children.1];
            let prog = ((norms.normalized(m.sizes.0, c1.fitness()) - m.parent_norms.0)
                + (norms.normalized(m.sizes.1, c2.fitness()) - m.parent_norms.1))
                / 2.0;
            self.crossover_rates.record(m.kind.index(), prog);
        }
        Ok(children)
    }

    /// Phase B: mutation. Mutates children in place, evaluating all
    /// candidates as one scheduler batch and feeding mutation progress into
    /// the adaptive rates.
    pub(super) fn mutation_phase(
        &mut self,
        children: &mut [Haplotype],
        norms: &NormalizerSnapshot,
    ) -> Result<(), EvalBackendError> {
        let n_snps = self.service.n_snps();
        let mut candidates: Vec<Haplotype> = Vec::new();
        let mut mut_records: Vec<MutationRecord> = Vec::new();
        // Master-side operator application, distinct from the candidate
        // evaluation batch below.
        let ops_span = self.service.observer().span(span_names::MUTATION_OPS);
        for (i, child) in children.iter().enumerate() {
            if !self.mutation_rates.fires(&mut self.rng) {
                continue;
            }
            let kind = if self.cfg.scheme.size_mutations {
                MutationKind::from_index(self.mutation_rates.select(&mut self.rng))
                    .expect("3 mutation operators")
            } else {
                MutationKind::Snp
            };
            let tries = if kind == MutationKind::Snp {
                self.cfg.snp_mutation_tries
            } else {
                1
            };
            let mut cands = apply_mutation(
                kind,
                child,
                n_snps,
                self.cfg.min_size,
                self.cfg.max_size,
                tries,
                &mut self.rng,
            );
            self.service.retain_feasible(&mut cands);
            if cands.is_empty() {
                continue;
            }
            let start = candidates.len();
            candidates.extend(cands);
            mut_records.push(MutationRecord {
                kind,
                child: i,
                candidates: start..candidates.len(),
            });
        }
        drop(ops_span);
        self.total_evals += self.service.submit_phase(&mut candidates, "mutation")?;

        // "Keep the best individual found by this mutation": the best
        // candidate becomes the mutated child; progress is measured against
        // the pre-mutation child on normalized fitness.
        for rec in &mut_records {
            let best = candidates[rec.candidates.clone()]
                .iter()
                .max_by(|a, b| a.fitness().total_cmp(&b.fitness()))
                .expect("non-empty candidate range")
                .clone();
            let before = &children[rec.child];
            let prog = norms.normalized(best.size(), best.fitness())
                - norms.normalized(before.size(), before.fitness());
            self.mutation_rates.record(rec.kind.index(), prog);
            children[rec.child] = best;
        }
        Ok(())
    }

    /// Pick any parent, from a subpopulation chosen by membership weight.
    pub(super) fn select_any_parent(&mut self) -> Option<Haplotype> {
        let sizes: Vec<(usize, usize)> = self
            .pop
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| (p.size_k(), p.len()))
            .collect();
        let total: usize = sizes.iter().map(|(_, l)| l).sum();
        if total == 0 {
            return None;
        }
        let mut u = self.rng.random_range(0..total);
        for (size, len) in sizes {
            if u < len {
                let idx = self.cfg.selection.select(&mut self.rng, len, None);
                return Some(self.pop.get(size).expect("managed size").individuals()[idx].clone());
            }
            u -= len;
        }
        None
    }

    /// Two (preferably distinct) same-size parents.
    pub(super) fn select_intra_parents(&mut self) -> Option<(Haplotype, Haplotype)> {
        let sizes: Vec<(usize, usize)> = self
            .pop
            .iter()
            .filter(|p| p.len() >= 2)
            .map(|p| (p.size_k(), p.len()))
            .collect();
        let total: usize = sizes.iter().map(|(_, l)| l).sum();
        if total == 0 {
            return None;
        }
        let mut u = self.rng.random_range(0..total);
        for (size, len) in sizes {
            if u < len {
                let i1 = self.cfg.selection.select(&mut self.rng, len, None);
                let i2 = self.cfg.selection.select(&mut self.rng, len, Some(i1));
                let subpop = self.pop.get(size).expect("managed size");
                return Some((
                    subpop.individuals()[i1].clone(),
                    subpop.individuals()[i2].clone(),
                ));
            }
            u -= len;
        }
        None
    }

    /// Two parents from two different size subpopulations.
    pub(super) fn select_inter_parents(&mut self) -> Option<(Haplotype, Haplotype)> {
        let sizes: Vec<usize> = self
            .pop
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| p.size_k())
            .collect();
        if sizes.len() < 2 {
            return None;
        }
        let a = self.rng.random_range(0..sizes.len());
        let mut b = self.rng.random_range(0..sizes.len() - 1);
        if b >= a {
            b += 1;
        }
        let (size_a, size_b) = (sizes[a], sizes[b]);
        let n_a = self.pop.get(size_a).expect("managed").len();
        let n_b = self.pop.get(size_b).expect("managed").len();
        let i1 = self.cfg.selection.select(&mut self.rng, n_a, None);
        let i2 = self.cfg.selection.select(&mut self.rng, n_b, None);
        Some((
            self.pop.get(size_a).expect("managed").individuals()[i1].clone(),
            self.pop.get(size_b).expect("managed").individuals()[i2].clone(),
        ))
    }
}
