use super::*;
use crate::config::Scheme;
use crate::evaluator::{CountingEvaluator, FnEvaluator};
use ld_data::SnpId;
use std::sync::Arc;

/// Toy objective with a known optimum: fitness grows with SNP ids and
/// size, so the best size-k haplotype is the top-k ids.
fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
    FnEvaluator::new(30, |s: &[SnpId]| {
        s.iter().map(|&x| x as f64).sum::<f64>() + 10.0 * s.len() as f64
    })
}

fn small_config() -> GaConfig {
    GaConfig {
        population_size: 60,
        min_size: 2,
        max_size: 4,
        matings_per_generation: 10,
        stagnation_limit: 25,
        ri_stagnation: 8,
        max_generations: 400,
        ..GaConfig::default()
    }
}

#[test]
fn run_finds_toy_optima() {
    let eval = toy();
    let mut engine = GaEngine::new(&eval, small_config(), 42).unwrap();
    let result = engine.run();
    // Optimum of size k is the k largest SNP ids {30-k .. 29}.
    let best4 = result.best_of_size(4).expect("size-4 best");
    assert_eq!(best4.snps(), &[26, 27, 28, 29], "found {best4}");
    let best2 = result.best_of_size(2).expect("size-2 best");
    assert_eq!(best2.snps(), &[28, 29], "found {best2}");
    assert!(result.total_evaluations > 0);
    assert!(result.generations >= 25);
    assert_eq!(result.history.len(), result.generations);
}

#[test]
fn runs_are_reproducible_by_seed() {
    let eval = toy();
    let r1 = GaEngine::new(&eval, small_config(), 7).unwrap().run();
    let r2 = GaEngine::new(&eval, small_config(), 7).unwrap().run();
    assert_eq!(r1.total_evaluations, r2.total_evaluations);
    assert_eq!(r1.generations, r2.generations);
    assert_eq!(
        r1.best_of_size(3).unwrap().snps(),
        r2.best_of_size(3).unwrap().snps()
    );
    let r3 = GaEngine::new(&eval, small_config(), 8).unwrap().run();
    // Different seed: almost surely a different trajectory.
    assert!(r1.total_evaluations != r3.total_evaluations || r1.generations != r3.generations);
}

#[test]
fn eval_accounting_matches_counting_evaluator() {
    let eval = CountingEvaluator::new(toy());
    let result = GaEngine::new(&eval, small_config(), 3).unwrap().run();
    assert_eq!(result.total_evaluations, eval.count());
}

#[test]
fn evals_to_best_is_monotone_in_history() {
    let eval = toy();
    let result = GaEngine::new(&eval, small_config(), 5).unwrap().run();
    for k in 2..=4 {
        let e = result.evals_to_best_of_size(k).unwrap();
        assert!(e <= result.total_evaluations);
        assert!(e > 0);
    }
    // History evaluations are non-decreasing.
    for w in result.history.windows(2) {
        assert!(w[0].evaluations <= w[1].evaluations);
    }
}

#[test]
fn baseline_scheme_still_works() {
    let eval = toy();
    let cfg = GaConfig {
        scheme: Scheme::BASELINE,
        ..small_config()
    };
    let result = GaEngine::new(&eval, cfg, 11).unwrap().run();
    // Even the stripped-down GA should find the small-size optimum.
    let best2 = result.best_of_size(2).expect("size-2 best");
    assert!(best2.fitness() >= 65.0, "found {best2}");
    // No immigrants should ever be introduced.
    assert!(result.history.iter().all(|g| g.immigrants == 0));
}

#[test]
fn random_immigrants_fire_under_stagnation() {
    // Flat objective: everything ties, so no improvement ever happens
    // and the run must terminate by stagnation without immigrants
    // (nothing is strictly below the mean).
    let eval = FnEvaluator::new(20, |_: &[SnpId]| 1.0);
    let cfg = GaConfig {
        population_size: 40,
        min_size: 2,
        max_size: 3,
        matings_per_generation: 5,
        stagnation_limit: 30,
        ri_stagnation: 5,
        max_generations: 100,
        ..GaConfig::default()
    };
    let result = GaEngine::new(&eval, cfg.clone(), 9).unwrap().run();
    assert_eq!(result.generations, 30);

    // Now a graded objective (fitness = leading SNP id): once the best
    // is found the run stagnates while fitness spread persists in each
    // subpopulation, so the immigrant replacement has targets.
    let eval = FnEvaluator::new(20, |s: &[SnpId]| s[0] as f64);
    let result = GaEngine::new(&eval, cfg, 9).unwrap().run();
    let total_immigrants: usize = result.history.iter().map(|g| g.immigrants).sum();
    assert!(total_immigrants > 0, "random immigrants never fired");
}

#[test]
fn feasibility_filter_is_respected() {
    let eval = toy();
    // Forbid SNP 29 anywhere.
    let filter: FeasibilityFilter = Arc::new(|s: &[SnpId]| !s.contains(&29));
    let result = GaEngine::new(&eval, small_config(), 13)
        .unwrap()
        .with_feasibility(filter)
        .run();
    for k in 2..=4 {
        let best = result.best_of_size(k).unwrap();
        assert!(!best.contains(29), "infeasible best {best}");
    }
    // The constrained optimum of size 2 is {27, 28}.
    assert_eq!(result.best_of_size(2).unwrap().snps(), &[27, 28]);
}

#[test]
fn engine_survives_pathological_objective() {
    // Failure injection: the objective returns NaN or infinity for a
    // slice of the space. The engine must neither panic nor stall, and
    // NaN-scored individuals must never enter the population.
    let eval = FnEvaluator::new(20, |s: &[SnpId]| match s[0] % 4 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => s.iter().sum::<usize>() as f64,
    });
    let cfg = GaConfig {
        population_size: 40,
        min_size: 2,
        max_size: 3,
        matings_per_generation: 6,
        stagnation_limit: 10,
        max_generations: 50,
        ..GaConfig::default()
    };
    let result = GaEngine::new(&eval, cfg, 23).unwrap().run();
    assert!(result.generations > 0);
    for k in 2..=3 {
        if let Some(best) = result.best_of_size(k) {
            assert!(!best.fitness().is_nan());
        }
    }
}

#[test]
fn warm_start_initialization_works_and_costs_n_snps_extra() {
    use crate::init::InitStrategy;
    let eval = CountingEvaluator::new(toy());
    let cfg = GaConfig {
        init: InitStrategy::SingleMarkerSeeded {
            seeded_fraction: 0.5,
            pool_size: 10,
        },
        max_generations: 1,
        ..small_config()
    };
    let result = GaEngine::new(&eval, cfg, 3).unwrap().run();
    assert_eq!(result.total_evaluations, eval.count());
    // With fitness increasing in SNP id, the seeded half comes from the
    // top-10 ids {20..29}; the size-2 initial best must be near-optimal
    // immediately (the seeded pool contains the optimum {28, 29}).
    let best2 = result.best_of_size(2).unwrap();
    assert!(best2.fitness() >= 72.0, "seeded init missed: {best2}");
}

#[test]
fn alternative_selection_strategies_work_end_to_end() {
    use crate::selection::SelectionStrategy;
    let eval = toy();
    for selection in [
        SelectionStrategy::Tournament(4),
        SelectionStrategy::RankRoulette,
        SelectionStrategy::Uniform,
    ] {
        let cfg = GaConfig {
            selection,
            ..small_config()
        };
        let result = GaEngine::new(&eval, cfg, 19).unwrap().run();
        let best2 = result.best_of_size(2).expect("size-2 best");
        // Even the drift baseline should do reasonably on this easy
        // landscape; pressured strategies should nail the optimum.
        assert!(best2.fitness() >= 60.0, "{selection:?} found only {best2}");
    }
}

#[test]
fn invalid_config_is_rejected() {
    let eval = toy();
    let cfg = GaConfig {
        max_size: 40, // > 30 SNPs
        ..GaConfig::default()
    };
    assert!(GaEngine::new(&eval, cfg, 0).is_err());
}

#[test]
fn adaptive_rates_appear_in_history() {
    let eval = toy();
    let result = GaEngine::new(&eval, small_config(), 21).unwrap().run();
    let g = result.history.last().unwrap();
    assert_eq!(g.mutation_rates.len(), 3);
    assert_eq!(g.crossover_rates.len(), 2);
    let msum: f64 = g.mutation_rates.iter().sum();
    let csum: f64 = g.crossover_rates.iter().sum();
    assert!((msum - 0.9).abs() < 1e-9);
    assert!((csum - 0.8).abs() < 1e-9);
}

#[test]
fn single_size_range_disables_inter_crossover() {
    let eval = toy();
    let cfg = GaConfig {
        min_size: 3,
        max_size: 3,
        population_size: 30,
        matings_per_generation: 5,
        stagnation_limit: 15,
        max_generations: 200,
        ..GaConfig::default()
    };
    let result = GaEngine::new(&eval, cfg, 17).unwrap().run();
    let best = result.best_of_size(3).expect("size-3 best");
    assert_eq!(best.snps(), &[27, 28, 29]);
    assert!(result.best_of_size(2).is_none());
    assert!(result.best_of_size(4).is_none());
}

// ------ scheduler integration ------

#[test]
fn history_sched_windows_reconcile_with_totals() {
    let eval = toy();
    let engine = GaEngine::new(&eval, small_config(), 37).unwrap();
    let mut run = engine.start().unwrap();
    let init_evals = run.total_evaluations();
    assert!(init_evals > 0);
    loop {
        match run.step() {
            StepOutcome::StagnationLimitReached | StepOutcome::GenerationCapReached => break,
            _ => {}
        }
    }
    // Lifetime scheduler counters include the init batches.
    let lifetime = run.sched_stats().clone();
    assert!(lifetime.batches as usize > run.generation());
    // Without a cache every scheduled evaluation reaches the backend.
    assert_eq!(lifetime.scheduled(), lifetime.true_evals);
    let result = run.finish();
    // Per-generation windows: every step submits a crossover batch and a
    // mutation batch, and their scheduled counts account for exactly the
    // post-init evaluation growth.
    let mut windows_scheduled = 0u64;
    for g in &result.history {
        assert!(
            g.sched.batches >= 2,
            "generation {} missing batches",
            g.generation
        );
        assert_eq!(g.sched.scheduled(), g.sched.cache_hits + g.sched.true_evals);
        windows_scheduled += g.sched.scheduled();
    }
    assert_eq!(windows_scheduled, result.total_evaluations - init_evals);
}

#[test]
fn cached_run_matches_uncached_trajectory() {
    // The scheduler cache changes who computes a fitness, never the GA's
    // random trajectory or its evaluation accounting.
    let eval = toy();
    let uncached = GaEngine::new(&eval, small_config(), 51).unwrap().run();
    let cfg = GaConfig {
        sched_cache: 4096,
        ..small_config()
    };
    let cached = GaEngine::new(&eval, cfg, 51).unwrap().run();
    assert_eq!(cached.total_evaluations, uncached.total_evaluations);
    assert_eq!(cached.generations, uncached.generations);
    for k in 2..=4 {
        assert_eq!(
            cached.best_of_size(k).unwrap().snps(),
            uncached.best_of_size(k).unwrap().snps()
        );
    }
    // The cache actually absorbed backend traffic on this re-exploring
    // landscape.
    let hits: u64 = cached.history.iter().map(|g| g.sched.cache_hits).sum();
    let true_evals: u64 = cached.history.iter().map(|g| g.sched.true_evals).sum();
    assert!(hits > 0, "cache never hit");
    assert!(hits + true_evals > 0);
    let uncached_hits: u64 = uncached.history.iter().map(|g| g.sched.cache_hits).sum();
    assert_eq!(uncached_hits, 0, "no cache configured, no hits");
}

// ------ stepping API ------

#[test]
fn stepping_matches_closed_loop() {
    let eval = toy();
    let closed = GaEngine::new(&eval, small_config(), 31).unwrap().run();
    let engine = GaEngine::new(&eval, small_config(), 31).unwrap();
    let mut run = engine.start().unwrap();
    loop {
        match run.step() {
            StepOutcome::StagnationLimitReached | StepOutcome::GenerationCapReached => break,
            _ => {}
        }
    }
    let stepped = run.finish();
    assert_eq!(closed.total_evaluations, stepped.total_evaluations);
    assert_eq!(closed.generations, stepped.generations);
    assert_eq!(
        closed.best_of_size(4).unwrap().snps(),
        stepped.best_of_size(4).unwrap().snps()
    );
}

#[test]
fn step_outcomes_and_accessors_are_coherent() {
    let eval = toy();
    let engine = GaEngine::new(&eval, small_config(), 4).unwrap();
    let mut run = engine.start().unwrap();
    assert_eq!(run.generation(), 0);
    assert!(run.total_evaluations() > 0, "init population evaluated");
    let outcome = run.step();
    assert_eq!(run.generation(), 1);
    assert!(matches!(
        outcome,
        StepOutcome::Improved | StepOutcome::Stagnating
    ));
    // result() snapshots without consuming.
    let snap = run.result();
    assert_eq!(snap.generations, 1);
    let _ = run.step();
    assert_eq!(run.result().generations, 2);
    assert!(!run.population().is_empty());
    assert_eq!(run.champions().len(), 3);
}

#[test]
fn injection_revives_a_stagnated_run() {
    // An objective the GA cannot climb alone: only one specific
    // haplotype scores high, everything else is flat.
    let eval = FnEvaluator::new(20, |s: &[SnpId]| if s == [5, 6] { 100.0 } else { 1.0 });
    let cfg = GaConfig {
        population_size: 24,
        min_size: 2,
        max_size: 2,
        matings_per_generation: 4,
        stagnation_limit: 5,
        ri_stagnation: 3,
        max_generations: 100,
        scheme: Scheme::BASELINE,
        ..GaConfig::default()
    };
    let engine = GaEngine::new(&eval, cfg, 2).unwrap();
    let mut run = engine.start().unwrap();
    // Step until stagnated (the needle is 1 of C(20,2)=190 subsets; the
    // flat landscape gives no gradient).
    while !run.is_stagnated() {
        let _ = run.step();
    }
    let before = run.champions()[0].clone().unwrap().fitness();
    // Inject the needle as a migrant.
    run.inject(vec![Haplotype::new(vec![5, 6])]);
    assert_eq!(
        run.stagnation(),
        0,
        "injection improvement resets stagnation"
    );
    let after = run.champions()[0].clone().unwrap();
    assert_eq!(after.snps(), &[5, 6]);
    assert!(after.fitness() > before);
}

#[test]
fn injection_respects_feasibility_and_dedup() {
    let eval = toy();
    let filter: FeasibilityFilter = Arc::new(|s: &[SnpId]| !s.contains(&29));
    let engine = GaEngine::new(&eval, small_config(), 6)
        .unwrap()
        .with_feasibility(filter);
    let mut run = engine.start().unwrap();
    let evals_before = run.total_evaluations();
    // Infeasible migrant: filtered before evaluation.
    run.inject(vec![Haplotype::new(vec![28, 29])]);
    assert_eq!(run.total_evaluations(), evals_before);
    for sub in run.population().iter() {
        assert!(sub.individuals().iter().all(|h| !h.contains(29)));
    }
    // Pre-evaluated migrant costs nothing either.
    let mut h = Haplotype::new(vec![1, 2]);
    h.set_fitness(33.0);
    run.inject(vec![h]);
    assert_eq!(run.total_evaluations(), evals_before);
}

#[test]
fn generation_cap_makes_step_a_noop() {
    let eval = toy();
    let cfg = GaConfig {
        max_generations: 3,
        ..small_config()
    };
    let engine = GaEngine::new(&eval, cfg, 8).unwrap();
    let mut run = engine.start().unwrap();
    for _ in 0..3 {
        let _ = run.step();
    }
    let evals = run.total_evaluations();
    assert_eq!(run.step(), StepOutcome::GenerationCapReached);
    assert_eq!(run.generation(), 3);
    assert_eq!(run.total_evaluations(), evals);
}

#[test]
fn observed_run_correlates_events_with_generations() {
    use ld_observe::{Event, Observer, Registry, RingSink};

    let eval = toy();
    let cfg = GaConfig {
        max_generations: 4,
        ..small_config()
    };
    let ring = Arc::new(RingSink::new(10_000));
    let registry = Registry::new();
    let observer = Observer::new("test-run", ring.clone(), registry.clone());
    let result = GaEngine::new(&eval, cfg, 11)
        .unwrap()
        .with_observer(observer)
        .run();

    let events = ring.take();
    assert!(matches!(
        events[0].event,
        Event::RunStarted { seed: 11, .. }
    ));
    assert!(matches!(
        events.last().unwrap().event,
        Event::RunFinished { .. }
    ));

    // Init batches run before the first generation: generation 0.
    let init_batches: Vec<_> = events
        .iter()
        .filter(|e| matches!(&e.event, Event::BatchDispatched { phase, .. } if phase == "init"))
        .collect();
    assert_eq!(init_batches.len(), 3, "one init batch per managed size");
    assert!(init_batches.iter().all(|e| e.generation == 0));

    // Every generation emits its boundary events with its own number, and
    // batch events in between carry that generation.
    for g in 1..=result.generations as u64 {
        let started = events
            .iter()
            .position(|e| matches!(e.event, Event::GenerationStarted) && e.generation == g)
            .unwrap_or_else(|| panic!("no GenerationStarted for generation {g}"));
        let finished = events
            .iter()
            .position(|e| matches!(e.event, Event::GenerationFinished { .. }) && e.generation == g)
            .unwrap_or_else(|| panic!("no GenerationFinished for generation {g}"));
        assert!(started < finished);
        for e in &events[started..finished] {
            assert_eq!(
                e.generation,
                g,
                "event {:?} outside its generation",
                e.event.kind()
            );
        }
        // At least the crossover and mutation batches dispatched inside.
        let phases: Vec<&str> = events[started..finished]
            .iter()
            .filter_map(|e| match &e.event {
                Event::BatchDispatched { phase, .. } => Some(phase.as_str()),
                _ => None,
            })
            .collect();
        assert!(phases.contains(&"crossover"), "generation {g}: {phases:?}");
        assert!(phases.contains(&"mutation"));
    }

    // Batch ids are unique and monotone across the run.
    let batch_ids: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.event {
            Event::BatchDispatched { .. } => Some(e.batch_id),
            _ => None,
        })
        .collect();
    assert!(batch_ids.windows(2).all(|w| w[0] < w[1]), "{batch_ids:?}");
    assert!(batch_ids[0] >= 1);

    // The registry saw the same scheduler totals as the run (init included).
    let requested = registry.counter("ld_sched_requested_total", "").get();
    let history_requested: u64 = result.history.iter().map(|g| g.sched.requested).sum();
    assert!(requested >= history_requested);
    let snap = registry.snapshot();
    assert!(snap
        .families
        .iter()
        .any(|f| f.name == "ld_sched_dispatch_ms"));
}

#[test]
fn observed_and_unobserved_runs_share_a_trajectory() {
    use ld_observe::{Observer, Registry, RingSink};

    // Observation must be pure readout: attaching an observer cannot
    // perturb the GA trajectory.
    let eval = toy();
    let plain = GaEngine::new(&eval, small_config(), 13).unwrap().run();
    let ring = Arc::new(RingSink::new(4096));
    let observed = GaEngine::new(&eval, small_config(), 13)
        .unwrap()
        .with_observer(Observer::new("t", ring, Registry::new()))
        .run();
    assert_eq!(plain.total_evaluations, observed.total_evaluations);
    assert_eq!(plain.generations, observed.generations);
    assert_eq!(
        plain.best_of_size(2).unwrap().snps(),
        observed.best_of_size(2).unwrap().snps()
    );
}
