//! Replacement-adjacent flows: random immigrants (§4.4) and island-model
//! migrant injection.

use crate::evaluator::Evaluator;
use crate::immigrants::replace_below_mean;
use crate::individual::Haplotype;
use crate::sched::EvalBackendError;

use super::GaRun;

impl<E: Evaluator> GaRun<'_, E> {
    /// Insert externally produced individuals (island migrants). They are
    /// feasibility-filtered and evaluated (one scheduler batch) if needed,
    /// then go through the normal §4.6 replacement rule. Improvements reset
    /// the stagnation counters exactly like native offspring.
    ///
    /// Panics if the evaluation layer fails unrecoverably; see
    /// [`GaRun::try_inject`].
    pub fn inject(&mut self, migrants: Vec<Haplotype>) {
        self.try_inject(migrants)
            .expect("evaluation backend failed")
    }

    /// Fallible [`GaRun::inject`]: surfaces evaluation-layer failures as a
    /// typed error. On `Err` the migrants are dropped and the populations
    /// are unchanged.
    pub fn try_inject(&mut self, migrants: Vec<Haplotype>) -> Result<(), EvalBackendError> {
        let mut migrants = migrants;
        self.service.retain_feasible(&mut migrants);
        self.total_evals += self.service.submit_phase(&mut migrants, "inject")?;
        for h in migrants {
            self.pop.try_insert(h);
        }
        if self.track_improvements() {
            self.stagnation = 0;
            self.ri_counter = 0;
        }
        Ok(())
    }

    /// Replace below-mean individuals with random immigrants in every
    /// subpopulation (one scheduler batch); returns how many were
    /// introduced.
    pub(super) fn immigrant_phase(&mut self) -> Result<usize, EvalBackendError> {
        let n_snps = self.service.n_snps();
        let mut immigrants: Vec<Haplotype> = Vec::new();
        for subpop in self.pop.iter_mut() {
            let mut imms = replace_below_mean(subpop, n_snps, &mut self.rng);
            self.service.retain_feasible(&mut imms);
            immigrants.extend(imms);
        }
        let n_immigrants = immigrants.len();
        self.total_evals += self.service.submit_phase(&mut immigrants, "immigrants")?;
        for h in immigrants {
            self.pop.try_insert(h);
        }
        Ok(n_immigrants)
    }
}
