//! The per-generation loop: one [`GaRun::step`] is one Figure-5 pass.

use crate::evaluator::Evaluator;
use crate::sched::EvalBackendError;
use ld_observe::span::names as span_names;
use ld_observe::Event;
use std::time::Instant;

use super::{GaRun, GenerationStats, StepOutcome};

impl<E: Evaluator> GaRun<'_, E> {
    /// Execute one generation. See the module docs for the phase order.
    ///
    /// Panics if the evaluation layer fails unrecoverably; use
    /// [`GaRun::try_step`] to handle [`EvalBackendError`] instead (e.g.
    /// when driving a remote slave pool without a local fallback).
    pub fn step(&mut self) -> StepOutcome {
        self.try_step().expect("evaluation backend failed")
    }

    /// Execute one generation, surfacing evaluation-layer failures as a
    /// typed error instead of panicking. A failed generation leaves the
    /// populations as they were before the failed batch (partial results
    /// are discarded with the batch), so the run can be resumed against a
    /// repaired backend or abandoned cleanly.
    pub fn try_step(&mut self) -> Result<StepOutcome, EvalBackendError> {
        if self.generation >= self.cfg.max_generations {
            return Ok(StepOutcome::GenerationCapReached);
        }
        self.generation += 1;
        // Stamp the observation span before anything can dispatch, so every
        // event below — including pool faults deep inside a batch — carries
        // this generation number.
        self.service
            .observer()
            .set_generation(self.generation as u64);
        self.service
            .observer()
            .emit_with(|| Event::GenerationStarted);
        // Root of this generation's span tree; phase spans below nest
        // under it via the thread-local stack. Guards are inert when the
        // observer is disabled.
        let gen_span = self.service.observer().span(span_names::GENERATION);
        let started = Instant::now();
        // Champion baseline for the gain economics — a pure read, taken
        // only when the dynamics layer is attached (no cost disabled).
        let observing = self.dynamics.is_some();
        let prev_best = if observing {
            super::dynamics::champion_sum(&self.best_per_size)
        } else {
            0.0
        };
        let norms = self.pop.normalizer_snapshot();

        // ------ Phase A: selection + crossover ------
        let crossover_span = self.service.observer().span(span_names::CROSSOVER);
        let mut children = self.crossover_phase(&norms)?;
        drop(crossover_span);

        // ------ Phase B: mutation ------
        let mutation_span = self.service.observer().span(span_names::MUTATION);
        self.mutation_phase(&mut children, &norms)?;
        drop(mutation_span);

        // ------ Replacement (§4.6) ------
        let replacement_span = self.service.observer().span(span_names::REPLACEMENT);
        for child in children {
            self.pop.try_insert(child);
        }
        drop(replacement_span);

        let adaptation_span = self.service.observer().span(span_names::ADAPTATION);
        // Profits must be read before `end_generation` resets the
        // accumulators — they are the deltas that trigger reallocation.
        // `Vec::new()` does not allocate, so the disabled path stays free.
        let (mutation_profits, crossover_profits) = if observing {
            (
                self.mutation_rates.profits(),
                self.crossover_rates.profits(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        self.mutation_rates.end_generation();
        self.crossover_rates.end_generation();
        self.service.observer().emit_with(|| Event::RatesAdapted {
            mutation: self.mutation_rates.rates().to_vec(),
            crossover: self.crossover_rates.rates().to_vec(),
            mutation_profits: mutation_profits.clone(),
            crossover_profits: crossover_profits.clone(),
        });

        // ------ Improvement tracking ------
        let improved = self.track_improvements();
        if improved {
            self.stagnation = 0;
            self.ri_counter = 0;
        } else {
            self.stagnation += 1;
            self.ri_counter += 1;
        }
        drop(adaptation_span);

        // ------ Random immigrants (§4.4) ------
        let mut n_immigrants = 0usize;
        if self.cfg.scheme.random_immigrants && self.ri_counter >= self.cfg.ri_stagnation {
            let immigrants_span = self.service.observer().span(span_names::IMMIGRANTS);
            n_immigrants = self.immigrant_phase()?;
            self.ri_counter = 0;
            self.service
                .observer()
                .emit_with(|| Event::ImmigrantEpisode {
                    replaced: n_immigrants,
                });
            drop(immigrants_span);
        }

        let best_per_size: Vec<f64> = self
            .pop
            .bests()
            .into_iter()
            .map(|b| b.map_or(f64::NAN, |h| h.fitness()))
            .collect();
        let gen_wall_ms = started.elapsed().as_secs_f64() * 1e3;
        self.service
            .observer()
            .emit_with(|| Event::GenerationFinished {
                improved,
                best_per_size: best_per_size.clone(),
                wall_ms: gen_wall_ms,
            });
        drop(gen_span);
        // Take the scheduler window once: the dynamics snapshot and the
        // history row must report the same cache-hit/true-eval counts.
        let window = self.service.take_window();
        let dynamics = self.observe_dynamics(
            &window,
            n_immigrants,
            prev_best,
            &mutation_profits,
            &crossover_profits,
        );
        self.history.push(GenerationStats {
            generation: self.generation,
            evaluations: self.total_evals,
            best_per_size,
            mutation_rates: self.mutation_rates.rates().to_vec(),
            crossover_rates: self.crossover_rates.rates().to_vec(),
            immigrants: n_immigrants,
            sched: window,
            gen_wall_ms,
            dynamics,
        });

        Ok(if improved {
            StepOutcome::Improved
        } else if self.is_stagnated() {
            StepOutcome::StagnationLimitReached
        } else {
            StepOutcome::Stagnating
        })
    }

    /// Update the per-size champions from the live population; returns
    /// whether any size improved.
    pub(super) fn track_improvements(&mut self) -> bool {
        let mut improved = false;
        for (idx, best) in self.pop.bests().into_iter().enumerate() {
            let Some(best) = best else { continue };
            let record = &mut self.best_per_size[idx];
            let is_better = record
                .as_ref()
                .is_none_or(|prev| best.fitness() > prev.fitness());
            if is_better {
                *record = Some(best.clone());
                self.evals_to_best[idx] = self.total_evals;
                improved = true;
            }
        }
        improved
    }
}
