//! The GA engine: Figure 5's loop.
//!
//! ```text
//! Initialization → // Evaluation
//!   ┌─ Selection → Crossover (choice: intra / inter, adaptive)
//!   │      → Mutation (choice: SNP / reduction / augmentation, adaptive)
//!   │      → Replacement → Random-Immigrant test → Termination test ─┐
//!   └──────────────────────────────────────────────────────────────◄─┘
//! ```
//!
//! Each generation evaluates offspring in *batches* through the
//! [`crate::sched::EvalService`] scheduler: one batch of crossover
//! children, one batch of mutation candidates, and (when triggered) one
//! batch of random immigrants. Those batch boundaries are the synchronous
//! master/slave evaluation phases of the paper's Figure 6. The service
//! coalesces intra-batch duplicates, optionally probes a bounded fitness
//! cache ([`GaConfig::sched_cache`]), and dispatches residual work to its
//! [`crate::sched::EvalBackend`] — plugging in `ld-parallel`'s or
//! `ld-net`'s evaluator parallelizes the phases without touching the
//! engine.
//!
//! The engine is split across submodules: this file owns the run state and
//! public API, [`breeding`](self) the selection/crossover/mutation phases,
//! `generation` the per-generation loop, and `replacement` insertion,
//! immigrants and migrant injection.
//!
//! Two driving styles:
//!
//! * [`GaEngine::run`] — the paper's closed loop: generations until the
//!   best has not evolved for `stagnation_limit` generations.
//! * [`GaRun`] — a stepping handle: [`GaRun::step`] executes one
//!   generation and [`GaRun::inject`] inserts externally produced
//!   individuals (island-model migrants) mid-run; this is what
//!   `ld-parallel`'s ring-migration islands build on.

mod breeding;
mod dynamics;
mod generation;
mod replacement;
#[cfg(test)]
mod tests;

use crate::adaptive::AdaptiveRates;
use crate::config::GaConfig;
use crate::evaluator::Evaluator;
use crate::individual::Haplotype;
use crate::population::MultiPopulation;
use crate::rng::random_haplotype;
use crate::sched::{EvalBackend, EvalBackendError, EvalService, EvaluatorBackend, SchedStats};
use crate::store::FitnessStore;
use ld_data::DatasetFingerprint;
use ld_observe::dynamics::DetectorState;
use ld_observe::{Event, Observer};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

pub use crate::sched::FeasibilityFilter;

/// Telemetry for one generation.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GenerationStats {
    /// Generation number (1-based).
    pub generation: usize,
    /// Cumulative evaluations after this generation.
    pub evaluations: u64,
    /// Best fitness per size (ascending sizes; `NAN` for empty subpops).
    pub best_per_size: Vec<f64>,
    /// Mutation-operator rates after adaptation.
    pub mutation_rates: Vec<f64>,
    /// Crossover-operator rates after adaptation.
    pub crossover_rates: Vec<f64>,
    /// Immigrants introduced this generation.
    pub immigrants: usize,
    /// Batch-scheduler observability for this generation (batch sizes,
    /// dedup, cache hits, dispatch latency). Defaults to zeros when
    /// deserializing checkpoints written before this field existed.
    #[serde(default)]
    pub sched: SchedStats,
    /// Engine-side wall clock of the whole generation, milliseconds.
    /// Unlike `sched.dispatch_ns` this includes selection, breeding and
    /// replacement, so engine overhead is `gen_wall_ms − dispatch` time.
    /// Defaults to zero when deserializing pre-existing checkpoints.
    #[serde(default)]
    pub gen_wall_ms: f64,
    /// Search-dynamics snapshot (diversity, fixation, fitness quartiles,
    /// operator economics). `None` on unobserved runs — the snapshot is
    /// computed only when an observer is attached, so its absence marks
    /// "not measured", never "measured as zero". Defaults to `None` for
    /// checkpoints written before the field existed.
    #[serde(default)]
    pub dynamics: Option<ld_observe::DynamicsSnapshot>,
}

/// Result of one GA run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Smallest managed haplotype size.
    pub min_size: usize,
    /// Best individual found per size (ascending sizes).
    pub best_per_size: Vec<Option<Haplotype>>,
    /// Cumulative evaluation count at which each size's best was reached —
    /// the paper's "# of Eval." metric.
    pub evals_to_best: Vec<u64>,
    /// Total evaluations performed.
    pub total_evaluations: u64,
    /// Generations executed.
    pub generations: usize,
    /// Per-generation telemetry.
    pub history: Vec<GenerationStats>,
    /// Seed the run used.
    pub seed: u64,
}

impl RunResult {
    /// Best individual of haplotype size `k`, if that size was managed and
    /// populated.
    pub fn best_of_size(&self, k: usize) -> Option<&Haplotype> {
        k.checked_sub(self.min_size)
            .and_then(|i| self.best_per_size.get(i))
            .and_then(|o| o.as_ref())
    }

    /// Evaluations needed to reach the best of size `k`.
    pub fn evals_to_best_of_size(&self, k: usize) -> Option<u64> {
        k.checked_sub(self.min_size)
            .and_then(|i| self.evals_to_best.get(i))
            .copied()
            .filter(|_| self.best_of_size(k).is_some())
    }
}

/// What a [`GaRun::step`] call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Some subpopulation's best improved this generation.
    Improved,
    /// No improvement, but the stagnation criterion is not yet met.
    Stagnating,
    /// The §4.6 termination criterion is met (best unchanged for
    /// `stagnation_limit` generations). Stepping further is allowed —
    /// injected migrants may revive the search.
    StagnationLimitReached,
    /// The hard generation cap was reached; further steps are no-ops.
    GenerationCapReached,
}

/// A live, steppable GA run.
///
/// Construction initializes and evaluates the multi-population; each
/// [`GaRun::step`] then executes one full Figure-5 generation. External
/// individuals (e.g. migrants from another island) can be inserted at any
/// point with [`GaRun::inject`].
pub struct GaRun<'e, E: Evaluator> {
    pub(crate) service: EvalService<EvaluatorBackend<'e, E>>,
    pub(crate) cfg: GaConfig,
    pub(crate) rng: ChaCha8Rng,
    pub(crate) seed: u64,
    pub(crate) pop: MultiPopulation,
    pub(crate) total_evals: u64,
    pub(crate) best_per_size: Vec<Option<Haplotype>>,
    pub(crate) evals_to_best: Vec<u64>,
    pub(crate) mutation_rates: AdaptiveRates,
    pub(crate) crossover_rates: AdaptiveRates,
    pub(crate) stagnation: usize,
    pub(crate) ri_counter: usize,
    pub(crate) history: Vec<GenerationStats>,
    pub(crate) generation: usize,
    /// Search-dynamics layer (detector + metric handles); `None` on
    /// unobserved runs, so the disabled path carries no state at all.
    pub(crate) dynamics: Option<dynamics::DynamicsLayer>,
}

/// A shared tiered fitness store plus the dataset fingerprint naming this
/// run's evaluations inside it — the pair [`GaEngine::with_store`] and the
/// checkpoint-resume paths thread down to the scheduler.
pub type StoreAttachment = (Arc<FitnessStore>, DatasetFingerprint);

/// Build the run's scheduler: sequential dispatch to the borrowed
/// evaluator, the configured cache (or a caller-supplied tiered store),
/// the caller's feasibility filter, and an optional fallback backend for
/// when the primary evaluator fails.
fn build_service<'e, E: Evaluator>(
    evaluator: &'e E,
    cfg: &GaConfig,
    feasibility: Option<FeasibilityFilter>,
    fallback: Option<Arc<dyn EvalBackend>>,
    store: Option<StoreAttachment>,
) -> EvalService<EvaluatorBackend<'e, E>> {
    let mut service =
        EvalService::new(EvaluatorBackend::new(evaluator)).with_feasibility(feasibility);
    if let Some(fb) = fallback {
        service = service.with_fallback(fb);
    }
    if let Some((store, fp)) = store {
        // An explicit store attachment wins over `sched_cache`: the store
        // carries its own hot-tier capacity and (optionally) a disk tier.
        service = service.with_store(store, fp);
    } else if cfg.sched_cache > 0 {
        service = service.with_cache(cfg.sched_cache);
    }
    service
}

impl<'e, E: Evaluator> GaRun<'e, E> {
    /// Initialize a run: validate the configuration, build the sized
    /// subpopulations, fill them with random feasible individuals, and
    /// evaluate the initial population (one scheduler batch per size).
    pub fn new(
        evaluator: &'e E,
        config: GaConfig,
        seed: u64,
        feasibility: Option<FeasibilityFilter>,
    ) -> Result<Self, String> {
        Self::new_with_fallback(evaluator, config, seed, feasibility, None)
    }

    /// [`GaRun::new`] with an optional fallback backend that finishes
    /// evaluation batches when the primary evaluator fails mid-run (see
    /// [`EvalService::with_fallback`]).
    pub fn new_with_fallback(
        evaluator: &'e E,
        config: GaConfig,
        seed: u64,
        feasibility: Option<FeasibilityFilter>,
        fallback: Option<Arc<dyn EvalBackend>>,
    ) -> Result<Self, String> {
        Self::new_observed(
            evaluator,
            config,
            seed,
            feasibility,
            fallback,
            Observer::disabled(),
        )
    }

    /// [`GaRun::new_with_fallback`] with an [`Observer`] attached from the
    /// very first evaluation batch. The observer's span is maintained by
    /// the run: generation stamped at the top of every step, batch ids by
    /// the scheduler.
    pub fn new_observed(
        evaluator: &'e E,
        config: GaConfig,
        seed: u64,
        feasibility: Option<FeasibilityFilter>,
        fallback: Option<Arc<dyn EvalBackend>>,
        observer: Observer,
    ) -> Result<Self, String> {
        Self::new_full(
            evaluator,
            config,
            seed,
            feasibility,
            fallback,
            observer,
            None,
        )
    }

    /// [`GaRun::new_observed`] with an optional shared [`FitnessStore`]
    /// attachment. When present, the store replaces the run-private
    /// `sched_cache` tier: evaluations are memoized under the given
    /// dataset fingerprint, surviving across runs (and, with a disk tier,
    /// across processes).
    #[allow(clippy::too_many_arguments)]
    pub fn new_full(
        evaluator: &'e E,
        config: GaConfig,
        seed: u64,
        feasibility: Option<FeasibilityFilter>,
        fallback: Option<Arc<dyn EvalBackend>>,
        observer: Observer,
        store: Option<StoreAttachment>,
    ) -> Result<Self, String> {
        config.validate(evaluator.n_snps())?;
        let n_snps = evaluator.n_snps();
        let n_sizes = config.max_size - config.min_size + 1;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pop = MultiPopulation::new(
            n_snps,
            config.min_size,
            config.max_size,
            config.population_size,
        );
        let mut service =
            build_service(evaluator, &config, feasibility, fallback, store).with_observer(observer);
        service.observer().set_generation(0);
        service
            .observer()
            .emit_with(|| Event::RunStarted { seed, n_snps });
        let mut total_evals: u64 = 0;

        // Warm start: rank SNPs by single-marker fitness once (costs
        // n_snps evaluations) when the init strategy asks for it.
        let (seed_pool, seeded_fraction) = match config.init {
            crate::init::InitStrategy::Random => (Vec::new(), 0.0),
            crate::init::InitStrategy::SingleMarkerSeeded {
                seeded_fraction,
                pool_size,
            } => {
                let (mut ranked, cost) = crate::init::rank_single_markers(evaluator);
                total_evals += cost;
                ranked.truncate(pool_size);
                (ranked, seeded_fraction)
            }
        };
        for size in config.min_size..=config.max_size {
            let capacity = pop.get(size).expect("managed size").capacity();
            let n_seeded = (capacity as f64 * seeded_fraction).round() as usize;
            let mut initial: Vec<Haplotype> = Vec::with_capacity(capacity);
            let mut attempts = 0usize;
            while initial.len() < capacity && attempts < capacity * 100 {
                attempts += 1;
                let h = if initial.len() < n_seeded {
                    crate::init::seeded_haplotype(&mut rng, &seed_pool, n_snps, size)
                } else {
                    random_haplotype(&mut rng, n_snps, size)
                };
                if service.is_feasible(h.snps()) && !initial.iter().any(|x| x.key() == h.key()) {
                    initial.push(h);
                }
            }
            total_evals += service
                .submit_phase(&mut initial, "init")
                .map_err(|e| format!("initial evaluation failed: {e}"))?;
            let subpop = pop.get_mut(size).expect("managed size");
            for h in initial {
                subpop.try_insert(h);
            }
        }
        // Initialization batches belong to no generation; drop the window
        // so the first history row covers only its own generation (the
        // lifetime totals in `sched_stats()` still include them).
        let _ = service.take_window();

        let best_per_size: Vec<Option<Haplotype>> =
            pop.bests().into_iter().map(|b| b.cloned()).collect();
        let mutation_rates = AdaptiveRates::new(
            3,
            config.mutation_rate,
            config.delta,
            config.scheme.adaptive_mutation,
        );
        let crossover_rates = AdaptiveRates::new(
            2,
            config.crossover_rate,
            config.delta,
            config.scheme.adaptive_crossover,
        );
        let dynamics = dynamics::DynamicsLayer::attach(service.observer(), config.stagnation_limit);
        Ok(GaRun {
            service,
            evals_to_best: vec![total_evals; n_sizes],
            cfg: config,
            rng,
            seed,
            pop,
            total_evals,
            best_per_size,
            mutation_rates,
            crossover_rates,
            stagnation: 0,
            ri_counter: 0,
            history: Vec::new(),
            generation: 0,
            dynamics,
        })
    }

    /// Rebuild a run from previously captured parts (checkpoint restore;
    /// see [`crate::checkpoint`]). Crate-visible so the checkpoint module
    /// owns the validation logic.
    ///
    /// When `observer` is enabled the dynamics layer is re-attached: from
    /// `detector` when the checkpoint captured the sliding-window state
    /// (verdicts then fire on the same generation as the uninterrupted
    /// run), or fresh for legacy checkpoints — either way the invariant
    /// "layer present ⟺ observer enabled" holds.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        evaluator: &'e E,
        cfg: GaConfig,
        rng: ChaCha8Rng,
        seed: u64,
        feasibility: Option<FeasibilityFilter>,
        pop: MultiPopulation,
        total_evals: u64,
        best_per_size: Vec<Option<Haplotype>>,
        evals_to_best: Vec<u64>,
        mutation_rates: AdaptiveRates,
        crossover_rates: AdaptiveRates,
        stagnation: usize,
        ri_counter: usize,
        history: Vec<GenerationStats>,
        generation: usize,
        observer: Observer,
        detector: Option<DetectorState>,
        store: Option<StoreAttachment>,
    ) -> Self {
        let service =
            build_service(evaluator, &cfg, feasibility, None, store).with_observer(observer);
        let dynamics = match detector {
            Some(state) => dynamics::DynamicsLayer::attach_with_state(service.observer(), state),
            None => dynamics::DynamicsLayer::attach(service.observer(), cfg.stagnation_limit),
        };
        GaRun {
            service,
            cfg,
            rng,
            seed,
            pop,
            total_evals,
            best_per_size,
            evals_to_best,
            mutation_rates,
            crossover_rates,
            stagnation,
            ri_counter,
            history,
            generation,
            dynamics,
        }
    }

    /// The detector's sliding-window state, when a dynamics layer is
    /// attached (observed runs only) — captured into checkpoints so resume
    /// does not shift convergence verdicts.
    pub(crate) fn detector_state(&self) -> Option<DetectorState> {
        self.dynamics.as_ref().map(|d| d.detector_state())
    }

    /// The live multi-population (read-only).
    pub fn population(&self) -> &MultiPopulation {
        &self.pop
    }

    /// The configuration driving this run.
    pub fn cfg(&self) -> &GaConfig {
        &self.cfg
    }

    /// The seed the run was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The live PRNG state (checkpointing).
    pub fn rng_state(&self) -> &ChaCha8Rng {
        &self.rng
    }

    /// Evaluations at which each size's best was reached.
    pub fn evals_to_best(&self) -> &[u64] {
        &self.evals_to_best
    }

    /// Generations since the last improvement, as seen by the
    /// random-immigrant trigger.
    pub fn ri_counter(&self) -> usize {
        self.ri_counter
    }

    /// The mutation-rate controller (read-only).
    pub fn mutation_rates(&self) -> &AdaptiveRates {
        &self.mutation_rates
    }

    /// The crossover-rate controller (read-only).
    pub fn crossover_rates(&self) -> &AdaptiveRates {
        &self.crossover_rates
    }

    /// Per-generation telemetry so far.
    pub fn history(&self) -> &[GenerationStats] {
        &self.history
    }

    /// Generations executed so far.
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Total evaluations spent so far.
    pub fn total_evaluations(&self) -> u64 {
        self.total_evals
    }

    /// Lifetime scheduler counters (including initialization batches).
    /// Checkpoints capture them ([`crate::Checkpoint::sched_totals`]) and
    /// restore carries them forward, so a resumed run reports the same
    /// lifetime totals as the uninterrupted one.
    pub fn sched_stats(&self) -> &SchedStats {
        self.service.stats()
    }

    /// Consecutive generations without improvement.
    pub fn stagnation(&self) -> usize {
        self.stagnation
    }

    /// Whether the §4.6 stagnation criterion is currently met.
    pub fn is_stagnated(&self) -> bool {
        self.stagnation >= self.cfg.stagnation_limit
    }

    /// Best individual per size so far (clones).
    pub fn champions(&self) -> Vec<Option<Haplotype>> {
        self.best_per_size.clone()
    }

    /// Snapshot the run into a [`RunResult`].
    pub fn result(&self) -> RunResult {
        RunResult {
            min_size: self.cfg.min_size,
            best_per_size: self.best_per_size.clone(),
            evals_to_best: self.evals_to_best.clone(),
            total_evaluations: self.total_evals,
            generations: self.generation,
            history: self.history.clone(),
            seed: self.seed,
        }
    }

    /// The observer attached to this run (disabled unless one was passed
    /// to [`GaRun::new_observed`]).
    pub fn observer(&self) -> &Observer {
        self.service.observer()
    }

    /// Finish the run, consuming the handle.
    pub fn finish(self) -> RunResult {
        let obs = self.service.observer();
        obs.emit_with(|| Event::RunFinished {
            generations: self.generation,
            total_evaluations: self.total_evals,
        });
        obs.flush();
        RunResult {
            min_size: self.cfg.min_size,
            best_per_size: self.best_per_size,
            evals_to_best: self.evals_to_best,
            total_evaluations: self.total_evals,
            generations: self.generation,
            history: self.history,
            seed: self.seed,
        }
    }
}

/// The dedicated adaptive multi-population GA — the paper's closed loop.
///
/// ```
/// use ld_core::{evaluator::FnEvaluator, GaConfig, GaEngine};
///
/// // A toy objective over 30 SNPs: bigger ids and bigger sets score higher.
/// let objective = FnEvaluator::new(30, |snps: &[usize]| {
///     snps.iter().map(|&s| s as f64).sum::<f64>() + 10.0 * snps.len() as f64
/// });
/// let config = GaConfig {
///     population_size: 60,
///     min_size: 2,
///     max_size: 4,
///     stagnation_limit: 25,
///     ..GaConfig::default()
/// };
/// let result = GaEngine::new(&objective, config, 42).unwrap().run();
/// // The engine finds the known optimum {28, 29} for size 2.
/// assert_eq!(result.best_of_size(2).unwrap().snps(), &[28, 29]);
/// ```
pub struct GaEngine<'e, E: Evaluator> {
    evaluator: &'e E,
    config: GaConfig,
    seed: u64,
    feasibility: Option<FeasibilityFilter>,
    fallback: Option<Arc<dyn EvalBackend>>,
    observer: Observer,
    store: Option<StoreAttachment>,
}

impl<'e, E: Evaluator> GaEngine<'e, E> {
    /// Build an engine; validates the configuration against the panel.
    pub fn new(evaluator: &'e E, config: GaConfig, seed: u64) -> Result<Self, String> {
        config.validate(evaluator.n_snps())?;
        Ok(GaEngine {
            evaluator,
            config,
            seed,
            feasibility: None,
            fallback: None,
            observer: Observer::disabled(),
            store: None,
        })
    }

    /// Attach a live observer: structured events (generation boundaries,
    /// batch lifecycle, fault recovery) flow to its sink and scheduler
    /// counters to its registry. The default is disabled, which costs
    /// nothing on the evaluation hot path.
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Restrict the search to haplotypes satisfying `filter` (§2.3
    /// constraints). Infeasible candidates are discarded unevaluated.
    pub fn with_feasibility(mut self, filter: FeasibilityFilter) -> Self {
        self.feasibility = Some(filter);
        self
    }

    /// Install a local fallback backend that finishes evaluation batches
    /// when the primary evaluator fails (e.g. a rayon pool behind a TCP
    /// slave pool). Without one, an unrecoverable evaluation failure
    /// surfaces from [`GaEngine::try_run`] / [`GaRun::try_step`] as a typed
    /// [`EvalBackendError`].
    pub fn with_fallback_backend(mut self, fallback: Arc<dyn EvalBackend>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Memoize evaluations in a shared tiered [`FitnessStore`] under the
    /// dataset's content fingerprint, instead of the run-private
    /// [`GaConfig::sched_cache`] tier. The same store can back many runs
    /// (and, when opened with a directory, many processes): a second run
    /// over the same dataset starts warm.
    pub fn with_store(mut self, store: Arc<FitnessStore>, fingerprint: DatasetFingerprint) -> Self {
        self.store = Some((store, fingerprint));
        self
    }

    /// Start a steppable run (island-model building block).
    pub fn start(&self) -> Result<GaRun<'e, E>, String> {
        GaRun::new_full(
            self.evaluator,
            self.config.clone(),
            self.seed,
            self.feasibility.clone(),
            self.fallback.clone(),
            self.observer.clone(),
            self.store.clone(),
        )
    }

    /// Execute the full run: generations until stagnation (§4.6) or the
    /// hard cap.
    ///
    /// Panics if the evaluation layer fails unrecoverably; use
    /// [`GaEngine::try_run`] when driving fallible (remote) evaluators.
    pub fn run(&mut self) -> RunResult {
        self.try_run().expect("evaluation backend failed")
    }

    /// [`GaEngine::run`], surfacing evaluation-layer failures as a typed
    /// [`EvalBackendError`] instead of panicking. The configuration itself
    /// was validated in [`GaEngine::new`], so the only runtime failures
    /// left are evaluation-layer ones.
    pub fn try_run(&mut self) -> Result<RunResult, EvalBackendError> {
        let mut run = self.start().map_err(EvalBackendError::Backend)?;
        loop {
            match run.try_step()? {
                StepOutcome::StagnationLimitReached | StepOutcome::GenerationCapReached => break,
                StepOutcome::Improved | StepOutcome::Stagnating => {}
            }
        }
        Ok(run.finish())
    }
}
