//! A subpopulation of haplotypes of one fixed size (paper §4.2).
//!
//! "Our global population will be divided into several subpopulations,
//! where each subpopulation corresponds to a given size of haplotype."
//!
//! Individuals are kept sorted by descending fitness; the §4.6 replacement
//! rule ("inserted … if it is better than the worst individual of the
//! population and if it is not already in the population") is enforced by
//! [`SubPopulation::try_insert`].

use crate::individual::Haplotype;

/// A fixed-size-haplotype subpopulation with bounded capacity.
#[derive(Debug, Clone)]
pub struct SubPopulation {
    size_k: usize,
    capacity: usize,
    /// Sorted by descending fitness.
    individuals: Vec<Haplotype>,
}

/// Outcome of an insertion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Individual added (population had spare capacity).
    Added,
    /// Individual replaced the worst member.
    ReplacedWorst,
    /// Rejected: identical individual already present.
    Duplicate,
    /// Rejected: not better than the current worst of a full population.
    NotBetter,
    /// Rejected: wrong haplotype size or unevaluated.
    Invalid,
}

impl SubPopulation {
    /// Empty subpopulation for haplotypes of `size_k` SNPs.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(size_k: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "subpopulation capacity must be positive");
        SubPopulation {
            size_k,
            capacity,
            individuals: Vec::with_capacity(capacity),
        }
    }

    /// Haplotype size this subpopulation holds.
    #[inline]
    pub fn size_k(&self) -> usize {
        self.size_k
    }

    /// Maximum number of individuals.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of individuals.
    #[inline]
    pub fn len(&self) -> usize {
        self.individuals.len()
    }

    /// Whether the subpopulation holds no individuals.
    pub fn is_empty(&self) -> bool {
        self.individuals.is_empty()
    }

    /// Whether the subpopulation is at capacity.
    pub fn is_full(&self) -> bool {
        self.individuals.len() >= self.capacity
    }

    /// Individuals, best first.
    pub fn individuals(&self) -> &[Haplotype] {
        &self.individuals
    }

    /// Best individual, if any.
    pub fn best(&self) -> Option<&Haplotype> {
        self.individuals.first()
    }

    /// Worst individual, if any.
    pub fn worst(&self) -> Option<&Haplotype> {
        self.individuals.last()
    }

    /// Mean fitness (0 when empty).
    pub fn mean_fitness(&self) -> f64 {
        if self.individuals.is_empty() {
            return 0.0;
        }
        self.individuals.iter().map(|h| h.fitness()).sum::<f64>() / self.individuals.len() as f64
    }

    /// Whether an identical SNP set is already present.
    pub fn contains(&self, candidate: &Haplotype) -> bool {
        self.individuals.iter().any(|h| h.key() == candidate.key())
    }

    /// §4.6 replacement: insert if evaluated, of the right size, not a
    /// duplicate, and (when full) better than the worst.
    pub fn try_insert(&mut self, candidate: Haplotype) -> InsertOutcome {
        if candidate.size() != self.size_k || !candidate.is_evaluated() {
            return InsertOutcome::Invalid;
        }
        if self.contains(&candidate) {
            return InsertOutcome::Duplicate;
        }
        if self.is_full() {
            let worst = self
                .worst()
                .expect("full population is non-empty")
                .fitness();
            if candidate.fitness() <= worst {
                return InsertOutcome::NotBetter;
            }
            self.individuals.pop();
            self.insert_sorted(candidate);
            InsertOutcome::ReplacedWorst
        } else {
            self.insert_sorted(candidate);
            InsertOutcome::Added
        }
    }

    fn insert_sorted(&mut self, candidate: Haplotype) {
        let pos = self
            .individuals
            .partition_point(|h| h.fitness() >= candidate.fitness());
        self.individuals.insert(pos, candidate);
    }

    /// Remove and return every individual with fitness strictly below the
    /// subpopulation mean — the random-immigrant replacement targets (§4.4).
    pub fn drain_below_mean(&mut self) -> Vec<Haplotype> {
        let mean = self.mean_fitness();
        // Individuals are sorted descending: find the first below-mean index.
        let cut = self.individuals.partition_point(|h| h.fitness() >= mean);
        self.individuals.split_off(cut)
    }

    /// Replace the whole membership (used by tests and immigrant refill);
    /// re-sorts to maintain the invariant.
    pub fn replace_all(&mut self, mut individuals: Vec<Haplotype>) {
        individuals.sort_by(|a, b| b.fitness().total_cmp(&a.fitness()));
        individuals.truncate(self.capacity);
        self.individuals = individuals;
    }

    /// Validate internal invariants (descending order, unique keys, size,
    /// capacity) — used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.individuals.len() > self.capacity {
            return Err(format!(
                "len {} exceeds capacity {}",
                self.individuals.len(),
                self.capacity
            ));
        }
        for h in &self.individuals {
            if h.size() != self.size_k {
                return Err(format!("individual {h} has size != {}", self.size_k));
            }
            if !h.is_evaluated() {
                return Err(format!("individual {h} unevaluated"));
            }
        }
        for w in self.individuals.windows(2) {
            if w[0].fitness() < w[1].fitness() {
                return Err("not sorted descending".into());
            }
        }
        let mut keys: Vec<_> = self.individuals.iter().map(|h| h.key().to_vec()).collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        if keys.len() != before {
            return Err("duplicate individuals".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hap(snps: &[usize], fitness: f64) -> Haplotype {
        let mut h = Haplotype::new(snps.to_vec());
        h.set_fitness(fitness);
        h
    }

    #[test]
    fn insert_keeps_descending_order() {
        let mut p = SubPopulation::new(2, 5);
        for (snps, f) in [(&[1, 2], 3.0), (&[2, 3], 9.0), (&[3, 4], 6.0)] {
            assert_eq!(p.try_insert(hap(snps, f)), InsertOutcome::Added);
        }
        let fits: Vec<f64> = p.individuals().iter().map(|h| h.fitness()).collect();
        assert_eq!(fits, vec![9.0, 6.0, 3.0]);
        assert_eq!(p.best().unwrap().fitness(), 9.0);
        assert_eq!(p.worst().unwrap().fitness(), 3.0);
        p.check_invariants().unwrap();
    }

    #[test]
    fn full_population_replacement_rule() {
        let mut p = SubPopulation::new(2, 2);
        p.try_insert(hap(&[1, 2], 5.0));
        p.try_insert(hap(&[2, 3], 8.0));
        assert!(p.is_full());
        // Worse than worst: rejected.
        assert_eq!(p.try_insert(hap(&[4, 5], 4.0)), InsertOutcome::NotBetter);
        // Equal to worst: rejected (must be strictly better).
        assert_eq!(p.try_insert(hap(&[4, 5], 5.0)), InsertOutcome::NotBetter);
        // Better: replaces worst.
        assert_eq!(
            p.try_insert(hap(&[4, 5], 6.0)),
            InsertOutcome::ReplacedWorst
        );
        assert_eq!(p.len(), 2);
        assert_eq!(p.worst().unwrap().fitness(), 6.0);
        p.check_invariants().unwrap();
    }

    #[test]
    fn duplicates_rejected_regardless_of_fitness() {
        let mut p = SubPopulation::new(2, 5);
        p.try_insert(hap(&[1, 2], 5.0));
        assert_eq!(p.try_insert(hap(&[1, 2], 99.0)), InsertOutcome::Duplicate);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn invalid_insertions() {
        let mut p = SubPopulation::new(3, 5);
        // Wrong size.
        assert_eq!(p.try_insert(hap(&[1, 2], 5.0)), InsertOutcome::Invalid);
        // Unevaluated.
        assert_eq!(
            p.try_insert(Haplotype::new(vec![1, 2, 3])),
            InsertOutcome::Invalid
        );
    }

    #[test]
    fn mean_and_drain_below_mean() {
        let mut p = SubPopulation::new(2, 10);
        for (i, f) in [10.0, 8.0, 4.0, 2.0].iter().enumerate() {
            p.try_insert(hap(&[i, i + 10], *f));
        }
        assert!((p.mean_fitness() - 6.0).abs() < 1e-12);
        let drained = p.drain_below_mean();
        // 4.0 and 2.0 are below the mean of 6.
        assert_eq!(drained.len(), 2);
        assert_eq!(p.len(), 2);
        assert!(p.individuals().iter().all(|h| h.fitness() >= 6.0));
        p.check_invariants().unwrap();
    }

    #[test]
    fn drain_below_mean_empty_population() {
        let mut p = SubPopulation::new(2, 3);
        assert!(p.drain_below_mean().is_empty());
    }

    #[test]
    fn drain_below_mean_uniform_population_keeps_all() {
        let mut p = SubPopulation::new(2, 4);
        p.try_insert(hap(&[1, 2], 5.0));
        p.try_insert(hap(&[2, 3], 5.0));
        // Everyone at the mean: nothing strictly below.
        assert!(p.drain_below_mean().is_empty());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn replace_all_sorts_and_truncates() {
        let mut p = SubPopulation::new(2, 2);
        p.replace_all(vec![
            hap(&[1, 2], 1.0),
            hap(&[2, 3], 9.0),
            hap(&[3, 4], 5.0),
        ]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.best().unwrap().fitness(), 9.0);
        assert_eq!(p.worst().unwrap().fitness(), 5.0);
        p.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SubPopulation::new(2, 0);
    }
}
