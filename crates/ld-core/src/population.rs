//! The multi-population container: one subpopulation per haplotype size.
//!
//! §4.2: "The number of individuals in each subpopulation are not equal and
//! increases with the size of the haplotypes in order to follow the growth
//! of the size of the search space related to each size." We allocate the
//! global population budget proportionally to `ln C(n, k)` (the log of the
//! size-k search space), with a floor so every subpopulation can evolve.

use crate::individual::Haplotype;
use crate::subpop::{InsertOutcome, SubPopulation};

/// Minimum individuals any subpopulation receives.
pub const MIN_SUBPOP_CAPACITY: usize = 8;

/// All subpopulations, indexed by haplotype size.
#[derive(Debug, Clone)]
pub struct MultiPopulation {
    min_size: usize,
    subpops: Vec<SubPopulation>,
}

impl MultiPopulation {
    /// Build subpopulations for sizes `min_size..=max_size` over an
    /// `n_snps`-wide panel, splitting `total_capacity` proportionally to
    /// the log search-space size.
    ///
    /// # Panics
    /// Panics on an empty or inverted size range, or `max_size > n_snps`.
    pub fn new(n_snps: usize, min_size: usize, max_size: usize, total_capacity: usize) -> Self {
        assert!(
            min_size >= 1 && min_size <= max_size,
            "bad size range [{min_size}, {max_size}]"
        );
        assert!(
            max_size <= n_snps,
            "max haplotype size {max_size} exceeds panel width {n_snps}"
        );
        let sizes: Vec<usize> = (min_size..=max_size).collect();
        let weights: Vec<f64> = sizes
            .iter()
            .map(|&k| ln_choose(n_snps, k).max(1.0))
            .collect();
        let weight_sum: f64 = weights.iter().sum();
        let budget = total_capacity.max(MIN_SUBPOP_CAPACITY * sizes.len());
        let mut capacities: Vec<usize> = weights
            .iter()
            .map(|w| ((w / weight_sum) * budget as f64).round() as usize)
            .map(|c| c.max(MIN_SUBPOP_CAPACITY))
            .collect();
        // Nudge the largest subpopulation so the total matches the budget
        // (rounding and flooring can drift by a few individuals).
        let assigned: usize = capacities.iter().sum();
        if assigned < budget {
            *capacities.last_mut().expect("non-empty sizes") += budget - assigned;
        }
        let subpops = sizes
            .iter()
            .zip(capacities)
            .map(|(&k, c)| SubPopulation::new(k, c))
            .collect();
        MultiPopulation { min_size, subpops }
    }

    /// Smallest haplotype size managed.
    pub fn min_size(&self) -> usize {
        self.min_size
    }

    /// Largest haplotype size managed.
    pub fn max_size(&self) -> usize {
        self.min_size + self.subpops.len() - 1
    }

    /// Subpopulation for haplotypes of `size`, if managed.
    pub fn get(&self, size: usize) -> Option<&SubPopulation> {
        size.checked_sub(self.min_size)
            .and_then(|i| self.subpops.get(i))
    }

    /// Mutable subpopulation access.
    pub fn get_mut(&mut self, size: usize) -> Option<&mut SubPopulation> {
        size.checked_sub(self.min_size)
            .and_then(|i| self.subpops.get_mut(i))
    }

    /// Iterate subpopulations in ascending size order.
    pub fn iter(&self) -> impl Iterator<Item = &SubPopulation> {
        self.subpops.iter()
    }

    /// Iterate subpopulations mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut SubPopulation> {
        self.subpops.iter_mut()
    }

    /// Total individuals across subpopulations.
    pub fn len(&self) -> usize {
        self.subpops.iter().map(|p| p.len()).sum()
    }

    /// Whether no individuals exist yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity across subpopulations.
    pub fn total_capacity(&self) -> usize {
        self.subpops.iter().map(|p| p.capacity()).sum()
    }

    /// Route an evaluated individual to the subpopulation of its size.
    /// Returns [`InsertOutcome::Invalid`] for unmanaged sizes.
    pub fn try_insert(&mut self, candidate: Haplotype) -> InsertOutcome {
        match self.get_mut(candidate.size()) {
            Some(p) => p.try_insert(candidate),
            None => InsertOutcome::Invalid,
        }
    }

    /// Best individual of each subpopulation, ascending size order.
    pub fn bests(&self) -> Vec<Option<&Haplotype>> {
        self.subpops.iter().map(|p| p.best()).collect()
    }

    /// Fitness normalization bounds `(best, worst)` per size, captured for
    /// the adaptive-operator progress computation (§4.3.1). `None` for
    /// empty subpopulations.
    pub fn normalizer_snapshot(&self) -> NormalizerSnapshot {
        NormalizerSnapshot {
            min_size: self.min_size,
            bounds: self
                .subpops
                .iter()
                .map(|p| match (p.best(), p.worst()) {
                    (Some(b), Some(w)) => Some((b.fitness(), w.fitness())),
                    _ => None,
                })
                .collect(),
        }
    }
}

/// Per-size `(best, worst)` fitness bounds frozen at a generation start.
#[derive(Debug, Clone)]
pub struct NormalizerSnapshot {
    min_size: usize,
    bounds: Vec<Option<(f64, f64)>>,
}

impl NormalizerSnapshot {
    /// §4.3.1 size-normalized fitness:
    /// `f̄(ind) = (f(ind) − f(worst_k)) / (f(best_k) − f(worst_k))`
    /// where `best_k` / `worst_k` are the bounds of the individual's own
    /// size subpopulation. Degenerate bounds (empty subpopulation or
    /// best == worst) yield `0.5` so progress terms stay finite.
    pub fn normalized(&self, size: usize, fitness: f64) -> f64 {
        let bounds = size
            .checked_sub(self.min_size)
            .and_then(|i| self.bounds.get(i))
            .copied()
            .flatten();
        match bounds {
            Some((best, worst)) if best > worst => {
                let norm = (fitness - worst) / (best - worst);
                // Guard non-finite inputs (a custom objective may emit ±inf
                // or NaN): clamp(NaN) is NaN and would poison the adaptive
                // rates, so degrade to the neutral value instead.
                if norm.is_finite() {
                    norm.clamp(0.0, 1.0)
                } else if norm == f64::INFINITY {
                    1.0
                } else if norm == f64::NEG_INFINITY {
                    0.0
                } else {
                    0.5
                }
            }
            _ => 0.5,
        }
    }
}

/// `ln C(n, k)` without overflow (sum of logs).
pub fn ln_choose(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    (0..k)
        .map(|i| ((n - i) as f64).ln() - ((i + 1) as f64).ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_data::SnpId;

    fn hap(snps: &[SnpId], fitness: f64) -> Haplotype {
        let mut h = Haplotype::new(snps.to_vec());
        h.set_fitness(fitness);
        h
    }

    #[test]
    fn ln_choose_matches_exact_values() {
        assert!((ln_choose(51, 2) - (1275f64).ln()).abs() < 1e-9);
        assert!((ln_choose(51, 3) - (20_825f64).ln()).abs() < 1e-9);
        assert!((ln_choose(5, 0)).abs() < 1e-12);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        // Symmetry.
        assert!((ln_choose(20, 4) - ln_choose(20, 16)).abs() < 1e-9);
    }

    #[test]
    fn capacities_grow_with_size_and_sum_to_budget() {
        let mp = MultiPopulation::new(51, 2, 6, 150);
        let caps: Vec<usize> = mp.iter().map(|p| p.capacity()).collect();
        assert_eq!(caps.len(), 5);
        for w in caps.windows(2) {
            assert!(w[0] <= w[1], "capacities must be non-decreasing: {caps:?}");
        }
        assert_eq!(mp.total_capacity(), 150);
        assert!(caps.iter().all(|&c| c >= MIN_SUBPOP_CAPACITY));
    }

    #[test]
    fn small_budget_is_floored() {
        let mp = MultiPopulation::new(51, 2, 6, 10);
        assert!(mp.total_capacity() >= 5 * MIN_SUBPOP_CAPACITY);
    }

    #[test]
    fn routing_by_size() {
        let mut mp = MultiPopulation::new(51, 2, 4, 60);
        assert_eq!(
            mp.try_insert(hap(&[1, 2], 5.0)),
            crate::subpop::InsertOutcome::Added
        );
        assert_eq!(
            mp.try_insert(hap(&[1, 2, 3, 4], 7.0)),
            crate::subpop::InsertOutcome::Added
        );
        // Size 5 not managed.
        assert_eq!(
            mp.try_insert(hap(&[1, 2, 3, 4, 5], 9.0)),
            crate::subpop::InsertOutcome::Invalid
        );
        assert_eq!(mp.get(2).unwrap().len(), 1);
        assert_eq!(mp.get(4).unwrap().len(), 1);
        assert_eq!(mp.len(), 2);
        assert!(mp.get(1).is_none());
        assert!(mp.get(5).is_none());
    }

    #[test]
    fn bests_in_size_order() {
        let mut mp = MultiPopulation::new(51, 2, 3, 40);
        mp.try_insert(hap(&[1, 2], 5.0));
        mp.try_insert(hap(&[3, 4], 8.0));
        let bests = mp.bests();
        assert_eq!(bests.len(), 2);
        assert_eq!(bests[0].unwrap().fitness(), 8.0);
        assert!(bests[1].is_none());
    }

    #[test]
    fn normalizer_behaviour() {
        let mut mp = MultiPopulation::new(51, 2, 2, 20);
        mp.try_insert(hap(&[1, 2], 10.0));
        mp.try_insert(hap(&[2, 3], 20.0));
        let snap = mp.normalizer_snapshot();
        assert!((snap.normalized(2, 20.0) - 1.0).abs() < 1e-12);
        assert!((snap.normalized(2, 10.0) - 0.0).abs() < 1e-12);
        assert!((snap.normalized(2, 15.0) - 0.5).abs() < 1e-12);
        // Out-of-range fitness clamps.
        assert_eq!(snap.normalized(2, 100.0), 1.0);
        assert_eq!(snap.normalized(2, -5.0), 0.0);
        // Unmanaged or empty size: degenerate 0.5.
        assert_eq!(snap.normalized(7, 3.0), 0.5);
    }

    #[test]
    fn normalizer_handles_non_finite_fitness() {
        let mut mp = MultiPopulation::new(51, 2, 2, 20);
        mp.try_insert(hap(&[1, 2], 10.0));
        mp.try_insert(hap(&[2, 3], 20.0));
        let snap = mp.normalizer_snapshot();
        assert_eq!(snap.normalized(2, f64::INFINITY), 1.0);
        assert_eq!(snap.normalized(2, f64::NEG_INFINITY), 0.0);
        assert_eq!(snap.normalized(2, f64::NAN), 0.5);
    }

    #[test]
    fn normalizer_degenerate_bounds() {
        let mut mp = MultiPopulation::new(51, 2, 2, 20);
        mp.try_insert(hap(&[1, 2], 10.0));
        let snap = mp.normalizer_snapshot();
        // best == worst -> 0.5 regardless of input.
        assert_eq!(snap.normalized(2, 10.0), 0.5);
        assert_eq!(snap.normalized(2, 0.0), 0.5);
    }

    #[test]
    fn min_max_size_accessors() {
        let mp = MultiPopulation::new(51, 3, 6, 100);
        assert_eq!(mp.min_size(), 3);
        assert_eq!(mp.max_size(), 6);
        assert_eq!(mp.iter().count(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds panel width")]
    fn oversized_range_panics() {
        let _ = MultiPopulation::new(4, 2, 6, 100);
    }
}
