//! Population diversity metrics.
//!
//! §4.4 motivates random immigrants as a diversity mechanism ("Random
//! Immigrant is another process that helps to maintain diversity in the
//! population … It should also help to avoid premature convergence").
//! These metrics make that claim measurable:
//!
//! * **SNP entropy** — Shannon entropy of the SNP-usage distribution over
//!   a subpopulation (how spread the population is over the panel);
//! * **mean pairwise Jaccard distance** — average dissimilarity between
//!   individuals' SNP sets;
//! * **fitness spread** — relative interquartile-style spread of fitness.

use crate::subpop::SubPopulation;
use ld_data::SnpId;

/// Diversity summary of one subpopulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiversityReport {
    /// Shannon entropy (nats) of SNP usage, normalized by `ln(n_used)` to
    /// `[0, 1]` (1 = uniform usage of every SNP that appears).
    pub snp_entropy: f64,
    /// Number of distinct SNPs used by the subpopulation.
    pub snps_used: usize,
    /// Mean pairwise Jaccard *distance* between individuals (0 = clones,
    /// 1 = fully disjoint).
    pub mean_jaccard_distance: f64,
    /// `(best − worst) / max(|best|, 1)` fitness spread.
    pub fitness_spread: f64,
}

/// Jaccard distance between two ascending SNP sets.
pub fn jaccard_distance(a: &[SnpId], b: &[SnpId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let (mut i, mut j) = (0usize, 0usize);
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    1.0 - inter as f64 / union as f64
}

/// Measure the diversity of a subpopulation.
pub fn measure(subpop: &SubPopulation) -> DiversityReport {
    let individuals = subpop.individuals();
    if individuals.is_empty() {
        return DiversityReport {
            snp_entropy: 0.0,
            snps_used: 0,
            mean_jaccard_distance: 0.0,
            fitness_spread: 0.0,
        };
    }

    // SNP usage entropy.
    let mut counts: std::collections::BTreeMap<SnpId, usize> = std::collections::BTreeMap::new();
    let mut total = 0usize;
    for h in individuals {
        for &s in h.snps() {
            *counts.entry(s).or_insert(0) += 1;
            total += 1;
        }
    }
    let snps_used = counts.len();
    let entropy: f64 = counts
        .values()
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.ln()
        })
        .sum();
    let snp_entropy = if snps_used > 1 {
        entropy / (snps_used as f64).ln()
    } else {
        0.0
    };

    // Mean pairwise Jaccard distance (exact; subpopulations are small).
    let mut dist_sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..individuals.len() {
        for j in i + 1..individuals.len() {
            dist_sum += jaccard_distance(individuals[i].snps(), individuals[j].snps());
            pairs += 1;
        }
    }
    let mean_jaccard_distance = if pairs > 0 {
        dist_sum / pairs as f64
    } else {
        0.0
    };

    let best = subpop.best().map_or(0.0, |h| h.fitness());
    let worst = subpop.worst().map_or(0.0, |h| h.fitness());
    let fitness_spread = (best - worst) / best.abs().max(1.0);

    DiversityReport {
        snp_entropy,
        snps_used,
        mean_jaccard_distance,
        fitness_spread,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::individual::Haplotype;

    fn hap(snps: &[usize], fitness: f64) -> Haplotype {
        let mut h = Haplotype::new(snps.to_vec());
        h.set_fitness(fitness);
        h
    }

    #[test]
    fn jaccard_distance_basics() {
        assert_eq!(jaccard_distance(&[1, 2], &[1, 2]), 0.0);
        assert_eq!(jaccard_distance(&[1, 2], &[3, 4]), 1.0);
        assert!((jaccard_distance(&[1, 2], &[2, 3]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard_distance(&[], &[]), 0.0);
        assert_eq!(jaccard_distance(&[], &[1]), 1.0);
    }

    #[test]
    fn clones_have_zero_diversity() {
        let mut p = SubPopulation::new(2, 5);
        p.try_insert(hap(&[1, 2], 5.0));
        // Duplicates rejected, so build near-clones sharing both SNPs is
        // impossible; single individual => zero diversity.
        let d = measure(&p);
        assert_eq!(d.mean_jaccard_distance, 0.0);
        assert_eq!(d.snps_used, 2);
        assert_eq!(d.fitness_spread, 0.0);
    }

    #[test]
    fn disjoint_population_is_maximally_diverse() {
        let mut p = SubPopulation::new(2, 5);
        p.try_insert(hap(&[0, 1], 1.0));
        p.try_insert(hap(&[2, 3], 2.0));
        p.try_insert(hap(&[4, 5], 3.0));
        let d = measure(&p);
        assert!((d.mean_jaccard_distance - 1.0).abs() < 1e-12);
        // Uniform usage of 6 SNPs: entropy normalized to 1.
        assert!((d.snp_entropy - 1.0).abs() < 1e-12);
        assert_eq!(d.snps_used, 6);
        assert!(d.fitness_spread > 0.0);
    }

    #[test]
    fn concentrated_usage_lowers_entropy() {
        let mut spread = SubPopulation::new(2, 5);
        spread.try_insert(hap(&[0, 1], 1.0));
        spread.try_insert(hap(&[2, 3], 1.0));
        let mut focused = SubPopulation::new(2, 5);
        focused.try_insert(hap(&[0, 1], 1.0));
        focused.try_insert(hap(&[0, 2], 1.0));
        // Focused population reuses SNP 0: lower normalized entropy.
        assert!(measure(&focused).snp_entropy < measure(&spread).snp_entropy);
    }

    #[test]
    fn empty_population() {
        let p = SubPopulation::new(3, 4);
        let d = measure(&p);
        assert_eq!(d.snps_used, 0);
        assert_eq!(d.snp_entropy, 0.0);
    }
}
