//! Genetic operators (paper §4.3): three mutations and two crossovers,
//! each adapted to the ascending-SNP-set encoding.

pub mod crossover;
pub mod mutation;

pub use crossover::{inter_crossover, uniform_crossover, CrossoverKind};
pub use mutation::{apply_mutation, MutationKind};
