//! The three mutation operators (paper §4.3.1).
//!
//! * **SNP mutation** — "randomly choose a SNP of the individual and
//!   replace it by another randomly chosen SNP. … We use this mutation
//!   several times in parallel and keep the best individual found": the
//!   operator returns `n_tries` candidate neighbours; the engine evaluates
//!   them (in one parallel batch) and keeps the best.
//! * **Reduction mutation** — remove a random SNP; the individual migrates
//!   to the size-(k−1) subpopulation.
//! * **Augmentation mutation** — add a random new SNP; the individual
//!   migrates to the size-(k+1) subpopulation.

use crate::individual::Haplotype;
use crate::rng::random_snp_not_in;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which mutation operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MutationKind {
    /// Replace one SNP by a random unused SNP (multi-try local search).
    Snp,
    /// Remove one SNP (size decreases).
    Reduction,
    /// Add one SNP (size increases).
    Augmentation,
}

impl MutationKind {
    /// Operator index used by the adaptive-rate controller.
    pub fn index(self) -> usize {
        match self {
            MutationKind::Snp => 0,
            MutationKind::Reduction => 1,
            MutationKind::Augmentation => 2,
        }
    }

    /// Inverse of [`MutationKind::index`].
    pub fn from_index(i: usize) -> Option<Self> {
        match i {
            0 => Some(MutationKind::Snp),
            1 => Some(MutationKind::Reduction),
            2 => Some(MutationKind::Augmentation),
            _ => None,
        }
    }

    /// Human-readable operator name.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::Snp => "snp-mutation",
            MutationKind::Reduction => "reduction",
            MutationKind::Augmentation => "augmentation",
        }
    }
}

/// Apply a mutation to `parent`, producing unevaluated candidates.
///
/// * `Snp` yields up to `n_tries` distinct neighbours (the multi-try local
///   search; the engine keeps the best after evaluation).
/// * `Reduction` / `Augmentation` yield one candidate.
///
/// Returns an empty vector when the operator is not applicable: reduction
/// at `min_size`, augmentation at `max_size` or on a saturated panel, SNP
/// mutation when no replacement SNP exists.
pub fn apply_mutation<R: Rng + ?Sized>(
    kind: MutationKind,
    parent: &Haplotype,
    n_snps: usize,
    min_size: usize,
    max_size: usize,
    n_tries: usize,
    rng: &mut R,
) -> Vec<Haplotype> {
    match kind {
        MutationKind::Snp => snp_mutation(parent, n_snps, n_tries, rng),
        MutationKind::Reduction => {
            if parent.size() <= min_size || parent.size() <= 1 {
                return Vec::new();
            }
            let idx = rng.random_range(0..parent.size());
            vec![parent.without_index(idx)]
        }
        MutationKind::Augmentation => {
            if parent.size() >= max_size {
                return Vec::new();
            }
            match random_snp_not_in(rng, n_snps, parent.snps()) {
                Some(snp) => vec![parent.with_snp(snp)],
                None => Vec::new(),
            }
        }
    }
}

fn snp_mutation<R: Rng + ?Sized>(
    parent: &Haplotype,
    n_snps: usize,
    n_tries: usize,
    rng: &mut R,
) -> Vec<Haplotype> {
    if parent.size() == 0 || n_snps <= parent.size() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n_tries);
    for _ in 0..n_tries.max(1) {
        let idx = rng.random_range(0..parent.size());
        let Some(snp) = random_snp_not_in(rng, n_snps, parent.snps()) else {
            break;
        };
        let child = parent.with_replaced(idx, snp);
        if !out.iter().any(|h: &Haplotype| h.key() == child.key()) {
            out.push(child);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    fn parent() -> Haplotype {
        Haplotype::new(vec![3, 10, 20])
    }

    #[test]
    fn kind_index_roundtrip() {
        for k in [
            MutationKind::Snp,
            MutationKind::Reduction,
            MutationKind::Augmentation,
        ] {
            assert_eq!(MutationKind::from_index(k.index()), Some(k));
        }
        assert_eq!(MutationKind::from_index(3), None);
    }

    #[test]
    fn snp_mutation_preserves_size_and_changes_one() {
        let mut rng = rng();
        let p = parent();
        for c in apply_mutation(MutationKind::Snp, &p, 51, 2, 6, 5, &mut rng) {
            assert_eq!(c.size(), 3);
            assert!(!c.is_evaluated());
            // Exactly one SNP differs (set difference of size 1 each way).
            let shared = c.snps().iter().filter(|s| p.contains(**s)).count();
            assert_eq!(shared, 2, "child {c} parent {p}");
            assert!(c.snps().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn snp_mutation_candidates_are_distinct() {
        let mut rng = rng();
        let cands = apply_mutation(MutationKind::Snp, &parent(), 51, 2, 6, 10, &mut rng);
        assert!(!cands.is_empty());
        let mut keys: Vec<_> = cands.iter().map(|h| h.key().to_vec()).collect();
        keys.sort();
        let n = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), n);
    }

    #[test]
    fn snp_mutation_saturated_panel_yields_nothing() {
        let mut rng = rng();
        let p = Haplotype::new(vec![0, 1, 2]);
        assert!(apply_mutation(MutationKind::Snp, &p, 3, 2, 6, 4, &mut rng).is_empty());
    }

    #[test]
    fn reduction_shrinks_by_one() {
        let mut rng = rng();
        let c = apply_mutation(MutationKind::Reduction, &parent(), 51, 2, 6, 1, &mut rng);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].size(), 2);
        // Child SNPs are a subset of the parent's.
        assert!(c[0].snps().iter().all(|&s| parent().contains(s)));
    }

    #[test]
    fn reduction_blocked_at_min_size() {
        let mut rng = rng();
        let p = Haplotype::new(vec![1, 2]);
        assert!(apply_mutation(MutationKind::Reduction, &p, 51, 2, 6, 1, &mut rng).is_empty());
    }

    #[test]
    fn augmentation_grows_by_one() {
        let mut rng = rng();
        let p = parent();
        let c = apply_mutation(MutationKind::Augmentation, &p, 51, 2, 6, 1, &mut rng);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].size(), 4);
        // Parent SNPs preserved.
        assert!(p.snps().iter().all(|&s| c[0].contains(s)));
    }

    #[test]
    fn augmentation_blocked_at_max_size() {
        let mut rng = rng();
        let p = Haplotype::new(vec![1, 2, 3, 4, 5, 6]);
        assert!(apply_mutation(MutationKind::Augmentation, &p, 51, 2, 6, 1, &mut rng).is_empty());
    }

    #[test]
    fn augmentation_blocked_on_saturated_panel() {
        let mut rng = rng();
        let p = Haplotype::new(vec![0, 1, 2]);
        assert!(apply_mutation(MutationKind::Augmentation, &p, 3, 2, 6, 1, &mut rng).is_empty());
    }
}
