//! The two crossover operators (paper §4.3.2).
//!
//! Both use uniform crossover on the ascending SNP tables: "take the two
//! strings of SNPs of the parents and create two children by randomly
//! shuffling the variables corresponding to the SNP at each site".
//!
//! * **Intra-population** — parents of the same size produce two children
//!   of that size.
//! * **Inter-population** — parents of different sizes produce "one child
//!   of each parents size".
//!
//! With set-encoded individuals, naive position-wise exchange can create a
//! child containing the same SNP twice (e.g. parents `[1 5]` and `[5 9]`);
//! children are therefore *repaired* back to their target size by drawing
//! replacement SNPs first from the parents' combined pool, then uniformly
//! from the panel.

use crate::individual::Haplotype;
use crate::rng::random_snp_not_in;
use ld_data::SnpId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which crossover operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrossoverKind {
    /// Both parents from the same size subpopulation.
    Intra,
    /// Parents from different size subpopulations.
    Inter,
}

impl CrossoverKind {
    /// Operator index used by the adaptive-rate controller.
    pub fn index(self) -> usize {
        match self {
            CrossoverKind::Intra => 0,
            CrossoverKind::Inter => 1,
        }
    }

    /// Human-readable operator name.
    pub fn name(self) -> &'static str {
        match self {
            CrossoverKind::Intra => "intra-crossover",
            CrossoverKind::Inter => "inter-crossover",
        }
    }
}

/// Uniform crossover between same-size parents; two same-size children.
///
/// # Panics
/// Panics if the parents differ in size (use [`inter_crossover`]).
pub fn uniform_crossover<R: Rng + ?Sized>(
    p1: &Haplotype,
    p2: &Haplotype,
    n_snps: usize,
    rng: &mut R,
) -> (Haplotype, Haplotype) {
    assert_eq!(
        p1.size(),
        p2.size(),
        "uniform_crossover requires same-size parents"
    );
    let k = p1.size();
    let mut c1 = Vec::with_capacity(k);
    let mut c2 = Vec::with_capacity(k);
    for i in 0..k {
        if rng.random::<bool>() {
            c1.push(p1.snps()[i]);
            c2.push(p2.snps()[i]);
        } else {
            c1.push(p2.snps()[i]);
            c2.push(p1.snps()[i]);
        }
    }
    let pool = parent_pool(p1, p2);
    (
        repair_to_size(c1, k, n_snps, &pool, rng),
        repair_to_size(c2, k, n_snps, &pool, rng),
    )
}

/// Inter-population crossover between different-size parents; one child of
/// each parent's size.
pub fn inter_crossover<R: Rng + ?Sized>(
    p1: &Haplotype,
    p2: &Haplotype,
    n_snps: usize,
    rng: &mut R,
) -> (Haplotype, Haplotype) {
    // Order so `short` has the smaller size; remember if we swapped so the
    // children come back aligned with the argument order.
    let (short, long, swapped) = if p1.size() <= p2.size() {
        (p1, p2, false)
    } else {
        (p2, p1, true)
    };
    let ks = short.size();
    let kl = long.size();
    let mut cs = Vec::with_capacity(ks);
    let mut cl = Vec::with_capacity(kl);
    for i in 0..ks {
        if rng.random::<bool>() {
            cs.push(short.snps()[i]);
            cl.push(long.snps()[i]);
        } else {
            cs.push(long.snps()[i]);
            cl.push(short.snps()[i]);
        }
    }
    // The long child keeps the long parent's tail.
    cl.extend_from_slice(&long.snps()[ks..]);
    let pool = parent_pool(p1, p2);
    let child_short = repair_to_size(cs, ks, n_snps, &pool, rng);
    let child_long = repair_to_size(cl, kl, n_snps, &pool, rng);
    if swapped {
        (child_long, child_short)
    } else {
        (child_short, child_long)
    }
}

/// Combined, deduplicated SNP pool of both parents.
fn parent_pool(p1: &Haplotype, p2: &Haplotype) -> Vec<SnpId> {
    let mut pool: Vec<SnpId> = p1.snps().iter().chain(p2.snps()).copied().collect();
    pool.sort_unstable();
    pool.dedup();
    pool
}

/// Dedup `snps` and bring the haplotype back to exactly `k` SNPs: first by
/// drawing unused SNPs from the parents' `pool`, then uniformly from the
/// panel.
fn repair_to_size<R: Rng + ?Sized>(
    snps: Vec<SnpId>,
    k: usize,
    n_snps: usize,
    pool: &[SnpId],
    rng: &mut R,
) -> Haplotype {
    let mut h = Haplotype::new(snps); // sorts + dedups
    while h.size() < k {
        let unused: Vec<SnpId> = pool.iter().copied().filter(|&s| !h.contains(s)).collect();
        let next = if unused.is_empty() {
            random_snp_not_in(rng, n_snps, h.snps())
        } else {
            Some(unused[rng.random_range(0..unused.len())])
        };
        match next {
            Some(s) => h = h.with_snp(s),
            None => break, // panel saturated; return what we have
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(21)
    }

    #[test]
    fn uniform_children_have_parent_size_and_invariant() {
        let mut rng = rng();
        let p1 = Haplotype::new(vec![1, 5, 9]);
        let p2 = Haplotype::new(vec![2, 5, 30]);
        for _ in 0..100 {
            let (c1, c2) = uniform_crossover(&p1, &p2, 51, &mut rng);
            for c in [&c1, &c2] {
                assert_eq!(c.size(), 3);
                assert!(c.snps().windows(2).all(|w| w[0] < w[1]));
                assert!(!c.is_evaluated());
            }
        }
    }

    #[test]
    fn uniform_crossover_mixes_genes() {
        let mut rng = rng();
        let p1 = Haplotype::new(vec![1, 2, 3]);
        let p2 = Haplotype::new(vec![40, 41, 42]);
        // Disjoint parents: children partition the union position-wise.
        let mut mixed = false;
        for _ in 0..50 {
            let (c1, _) = uniform_crossover(&p1, &p2, 51, &mut rng);
            let from_p1 = c1.snps().iter().filter(|s| p1.contains(**s)).count();
            if from_p1 > 0 && from_p1 < 3 {
                mixed = true;
            }
            // No repair needed for disjoint parents.
            assert!(c1.snps().iter().all(|&s| p1.contains(s) || p2.contains(s)));
        }
        assert!(mixed, "crossover never mixed parent genes");
    }

    #[test]
    fn overlapping_parents_get_repaired() {
        let mut rng = rng();
        // Heavy overlap forces duplicate collisions.
        let p1 = Haplotype::new(vec![1, 5]);
        let p2 = Haplotype::new(vec![5, 9]);
        for _ in 0..200 {
            let (c1, c2) = uniform_crossover(&p1, &p2, 51, &mut rng);
            assert_eq!(c1.size(), 2);
            assert_eq!(c2.size(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "same-size")]
    fn uniform_rejects_mixed_sizes() {
        let mut rng = rng();
        let p1 = Haplotype::new(vec![1, 2]);
        let p2 = Haplotype::new(vec![1, 2, 3]);
        let _ = uniform_crossover(&p1, &p2, 51, &mut rng);
    }

    #[test]
    fn inter_children_match_parent_sizes_in_argument_order() {
        let mut rng = rng();
        let small = Haplotype::new(vec![1, 9]);
        let big = Haplotype::new(vec![3, 14, 30, 44]);
        for _ in 0..100 {
            let (c1, c2) = inter_crossover(&small, &big, 51, &mut rng);
            assert_eq!(c1.size(), 2);
            assert_eq!(c2.size(), 4);
            // Swapped argument order swaps child sizes accordingly.
            let (d1, d2) = inter_crossover(&big, &small, 51, &mut rng);
            assert_eq!(d1.size(), 4);
            assert_eq!(d2.size(), 2);
        }
    }

    #[test]
    fn inter_crossover_inherits_from_both_parents() {
        let mut rng = rng();
        let small = Haplotype::new(vec![1, 2]);
        let big = Haplotype::new(vec![40, 41, 42, 43]);
        let mut small_got_big_gene = false;
        for _ in 0..100 {
            let (c_small, c_big) = inter_crossover(&small, &big, 51, &mut rng);
            if c_small.snps().iter().any(|s| big.contains(*s)) {
                small_got_big_gene = true;
            }
            // The big child always keeps the big parent's tail genes.
            assert!(c_big.contains(42) || c_big.contains(43));
        }
        assert!(small_got_big_gene);
    }

    #[test]
    fn inter_same_size_degenerates_to_uniform_like() {
        let mut rng = rng();
        let p1 = Haplotype::new(vec![1, 2, 3]);
        let p2 = Haplotype::new(vec![10, 20, 30]);
        let (c1, c2) = inter_crossover(&p1, &p2, 51, &mut rng);
        assert_eq!(c1.size(), 3);
        assert_eq!(c2.size(), 3);
    }

    #[test]
    fn repair_saturated_panel_returns_shorter() {
        let mut rng = rng();
        // Panel of 2 SNPs, target size 3 impossible.
        let h = repair_to_size(vec![0, 0, 1], 3, 2, &[0, 1], &mut rng);
        assert_eq!(h.size(), 2);
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(CrossoverKind::Intra.index(), 0);
        assert_eq!(CrossoverKind::Inter.index(), 1);
        assert_eq!(CrossoverKind::Inter.name(), "inter-crossover");
    }
}
