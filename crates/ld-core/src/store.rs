//! Tiered, content-addressed fitness store.
//!
//! Every fitness the GA ever computes is a pure function of
//! `(dataset, SNP set)`: the paper's workloads re-evaluate the same pairs
//! constantly — within a generation (coalescing), across generations (the
//! scheduler cache), and, at fleet scale, across *runs and tenants*. The
//! [`FitnessStore`] is the single home for that memo, keyed by
//! ([`DatasetFingerprint`], canonical SNP-set key), with two tiers:
//!
//! * **Hot tier** — the scheduler's bounded two-generation
//!   [`ShardedCache`], one per fingerprint. Lock-light, O(1) amortized
//!   eviction, lives and dies with the process.
//! * **Disk tier** (optional) — a log-structured append-only file of
//!   CRC-framed records. The index is rebuilt by scanning on open; a
//!   corrupt or torn tail is truncated (the damaged suffix dropped, all
//!   records before it kept) and reported through
//!   [`FitnessStore::take_recovery`] — never a panic. When the log
//!   outgrows its budget it is compacted in place: live index entries are
//!   rewritten newest-wins to a fresh log which atomically replaces the
//!   old one.
//!
//! **Durability policy**: appends go straight to the file descriptor but
//! are *not* fsynced per record — a crash can lose the most recent
//! appends, which is safe because every record is a recomputable memo.
//! [`FitnessStore::flush`] (called when a checkpoint is written) and
//! compaction do fsync. The log assumes a single writing process.
//!
//! Every entry carries an `owner` token (the run key that paid for the
//! true evaluation; 0 for local/unattributed work), which is how the
//! multi-tenant eval server accounts cross-tenant hits.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ld_data::{DatasetFingerprint, SnpId};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use crate::sched::ShardedCache;

/// Canonical byte key of a SNP set: ids sorted ascending, deduplicated,
/// each encoded as a little-endian `u64`.
///
/// Two properties the store relies on (and the property tests pin):
/// permutation invariance (any ordering of the same ids yields the same
/// key) and size distinction (sets of different cardinality can never
/// collide, because the encoding is fixed-width).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SnpSetKey(Vec<u8>);

impl SnpSetKey {
    /// Canonicalize `ids` (sort + dedup) and encode.
    pub fn from_ids(ids: &[SnpId]) -> SnpSetKey {
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut bytes = Vec::with_capacity(sorted.len() * 8);
        for id in sorted {
            bytes.extend_from_slice(&(id as u64).to_le_bytes());
        }
        SnpSetKey(bytes)
    }

    /// The canonical bytes (what the disk tier frames).
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Number of SNPs in the canonicalized set.
    pub fn len(&self) -> usize {
        self.0.len() / 8
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Decode back to the sorted id list.
    pub fn ids(&self) -> Vec<SnpId> {
        self.0
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")) as SnpId)
            .collect()
    }
}

/// A fitness plus the provenance the store keeps per entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoredFitness {
    /// The memoized fitness.
    pub fitness: f64,
    /// Run key that paid for the true evaluation (0 = local/unknown).
    pub owner: u64,
}

/// A successful [`FitnessStore::probe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreHit {
    /// The memoized fitness.
    pub fitness: f64,
    /// Run key that originally paid for the evaluation (0 = local).
    pub owner: u64,
    /// Whether the hit was served by the disk tier (and promoted) rather
    /// than the hot tier.
    pub from_disk: bool,
}

/// What [`FitnessStore::insert`] did, for the caller's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InsertOutcome {
    /// Hot-tier entries evicted by this insert (a whole old generation
    /// when the young generation rolled over; usually 0).
    pub evicted: u64,
    /// Whether the record was appended to the disk tier.
    pub persisted: bool,
}

/// Report of a torn/corrupt-tail recovery performed when the disk tier
/// was opened. Surfaced once through [`FitnessStore::take_recovery`] so
/// the evaluation layer can emit a typed `StoreRecovered` event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreRecovery {
    /// Records successfully re-indexed from the log.
    pub kept_records: u64,
    /// Bytes of damaged tail dropped by truncation.
    pub dropped_bytes: u64,
}

/// One store entry as captured in a checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheEntry {
    /// Sorted SNP set.
    pub snps: Vec<SnpId>,
    /// Memoized fitness.
    pub fitness: f64,
    /// Provenance token (`serde(default)` keeps older snapshots loadable).
    #[serde(default)]
    pub owner: u64,
}

/// One hot-tier shard's exact generational contents.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheShardSnapshot {
    /// Young-generation entries.
    pub young: Vec<CacheEntry>,
    /// Old-generation entries.
    pub old: Vec<CacheEntry>,
}

/// Exact snapshot of one fingerprint's hot tier, embedded in checkpoints.
///
/// The young/old split and the shard geometry are captured verbatim: a
/// restored cache must replay the *same* promotions and evictions the
/// uninterrupted run would have performed, or the resumed history's
/// per-generation hit counts drift.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Shard count the cache was built with.
    pub shard_count: usize,
    /// Configured capacity (0 = unbounded).
    pub capacity: usize,
    /// Per-shard generational contents.
    pub shards: Vec<CacheShardSnapshot>,
}

impl CacheSnapshot {
    /// Total entries captured (both generations, all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.young.len() + s.old.len())
            .sum()
    }

    /// Whether the snapshot holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE), table-driven, built at compile time.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3) of `bytes` — the per-record frame check.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Disk tier
// ---------------------------------------------------------------------

/// Largest record payload the scanner will believe. A corrupt length
/// prefix must not trigger a giant allocation: panels are thousands of
/// SNPs wide and haplotypes a handful of markers, so 1 MiB is generous.
const MAX_RECORD_BYTES: u32 = 1 << 20;

/// Log file name inside the store directory.
const LOG_NAME: &str = "fitness.log";

struct DiskTier {
    path: PathBuf,
    file: File,
    /// Full in-memory index of the log, newest-wins.
    index: HashMap<(u64, SnpSetKey), StoredFitness>,
    /// Current log length in bytes (== file length; appends only).
    bytes: u64,
    /// Compaction threshold in bytes.
    max_bytes: u64,
}

impl DiskTier {
    /// Open (creating if absent) the log under `dir`, rebuild the index
    /// by scanning, and truncate any corrupt/torn tail.
    fn open(dir: &Path, max_bytes: u64) -> std::io::Result<(DiskTier, Option<StoreRecovery>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(LOG_NAME);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;

        let mut index = HashMap::new();
        let mut pos = 0usize;
        let mut kept = 0u64;
        let mut torn = false;
        while pos < raw.len() {
            match parse_record(&raw[pos..]) {
                Some((consumed, fp, key, value)) => {
                    index.insert((fp, key), value);
                    kept += 1;
                    pos += consumed;
                }
                None => {
                    torn = true;
                    break;
                }
            }
        }
        let recovery = if torn {
            let dropped = (raw.len() - pos) as u64;
            file.set_len(pos as u64)?;
            file.sync_data()?;
            Some(StoreRecovery {
                kept_records: kept,
                dropped_bytes: dropped,
            })
        } else {
            None
        };
        file.seek(SeekFrom::End(0))?;
        Ok((
            DiskTier {
                path,
                file,
                index,
                bytes: pos as u64,
                max_bytes,
            },
            recovery,
        ))
    }

    fn append(&mut self, fp: u64, key: &SnpSetKey, value: StoredFitness) -> std::io::Result<()> {
        let rec = encode_record(fp, key, value);
        self.file.write_all(&rec)?;
        self.bytes += rec.len() as u64;
        self.index.insert((fp, key.clone()), value);
        Ok(())
    }

    /// Rewrite the log from the live index (newest-wins survives; dead
    /// duplicates are dropped), fsync, and atomically swap it in.
    fn compact(&mut self) -> std::io::Result<()> {
        let tmp_path = self.path.with_extension("log.compact");
        let mut tmp = File::create(&tmp_path)?;
        let mut bytes = 0u64;
        for ((fp, key), value) in &self.index {
            let rec = encode_record(*fp, key, *value);
            tmp.write_all(&rec)?;
            bytes += rec.len() as u64;
        }
        tmp.sync_data()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.bytes = bytes;
        Ok(())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }
}

/// Frame one record: `[crc32 u32][len u32][payload]` with payload
/// `[fp u64][owner u64][k u32][k × id u64][fitness f64 bits]`, all
/// little-endian. The CRC covers the payload only.
fn encode_record(fp: u64, key: &SnpSetKey, value: StoredFitness) -> Vec<u8> {
    let k = key.len() as u32;
    let mut payload = Vec::with_capacity(8 + 8 + 4 + key.as_bytes().len() + 8);
    payload.extend_from_slice(&fp.to_le_bytes());
    payload.extend_from_slice(&value.owner.to_le_bytes());
    payload.extend_from_slice(&k.to_le_bytes());
    payload.extend_from_slice(key.as_bytes());
    payload.extend_from_slice(&value.fitness.to_bits().to_le_bytes());
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&crc32(&payload).to_le_bytes());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

/// Parse one record from the front of `bytes`; `None` on any damage
/// (short header, absurd length, short payload, CRC mismatch, malformed
/// payload) — the scanner treats that as the torn tail.
fn parse_record(bytes: &[u8]) -> Option<(usize, u64, SnpSetKey, StoredFitness)> {
    if bytes.len() < 8 {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    let len = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if len > MAX_RECORD_BYTES || bytes.len() < 8 + len as usize {
        return None;
    }
    let payload = &bytes[8..8 + len as usize];
    if crc32(payload) != crc {
        return None;
    }
    if payload.len() < 8 + 8 + 4 + 8 {
        return None;
    }
    let fp = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let owner = u64::from_le_bytes(payload[8..16].try_into().ok()?);
    let k = u32::from_le_bytes(payload[16..20].try_into().ok()?) as usize;
    if payload.len() != 20 + k * 8 + 8 {
        return None;
    }
    let key = SnpSetKey(payload[20..20 + k * 8].to_vec());
    let fitness = f64::from_bits(u64::from_le_bytes(
        payload[20 + k * 8..20 + k * 8 + 8].try_into().ok()?,
    ));
    Some((8 + len as usize, fp, key, StoredFitness { fitness, owner }))
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// The tiered content-addressed fitness store (see the module docs).
///
/// Cheap to share: probes take one sharded read lock on the hot path;
/// the disk tier's mutex is touched only on hot-tier misses and inserts.
pub struct FitnessStore {
    /// Hot-tier capacity per fingerprint (0 = unbounded).
    capacity: usize,
    /// One hot tier per dataset fingerprint.
    hot: RwLock<HashMap<u64, Arc<ShardedCache<StoredFitness>>>>,
    disk: Option<Mutex<DiskTier>>,
    /// Lock-free fast path for [`FitnessStore::take_recovery`].
    recovery_pending: AtomicBool,
    recovery: Mutex<Option<StoreRecovery>>,
    compactions: AtomicU64,
}

impl std::fmt::Debug for FitnessStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FitnessStore")
            .field("capacity", &self.capacity)
            .field("fingerprints", &self.hot.read().len())
            .field("disk", &self.disk.is_some())
            .finish()
    }
}

impl FitnessStore {
    /// A hot-tier-only store (`capacity` SNP sets per fingerprint,
    /// 0 = unbounded). This is what `sched_cache > 0` builds internally.
    pub fn in_memory(capacity: usize) -> FitnessStore {
        FitnessStore {
            capacity,
            hot: RwLock::new(HashMap::new()),
            disk: None,
            recovery_pending: AtomicBool::new(false),
            recovery: Mutex::new(None),
            compactions: AtomicU64::new(0),
        }
    }

    /// Open a store with a persistent disk tier under `dir` (created if
    /// absent), with the default 64 MiB compaction threshold. Recovers
    /// from a torn tail; see [`FitnessStore::take_recovery`].
    pub fn open(dir: impl AsRef<Path>, capacity: usize) -> std::io::Result<FitnessStore> {
        Self::open_with(dir, capacity, 64 << 20)
    }

    /// [`FitnessStore::open`] with an explicit log-size budget in bytes;
    /// the log is compacted (newest-wins) when an append pushes it past
    /// the budget.
    pub fn open_with(
        dir: impl AsRef<Path>,
        capacity: usize,
        max_log_bytes: u64,
    ) -> std::io::Result<FitnessStore> {
        let (tier, recovery) = DiskTier::open(dir.as_ref(), max_log_bytes)?;
        Ok(FitnessStore {
            capacity,
            hot: RwLock::new(HashMap::new()),
            disk: Some(Mutex::new(tier)),
            recovery_pending: AtomicBool::new(recovery.is_some()),
            recovery: Mutex::new(recovery),
            compactions: AtomicU64::new(0),
        })
    }

    /// The hot tier serving `fp`, created on first touch.
    fn hot_tier(&self, fp: u64) -> Arc<ShardedCache<StoredFitness>> {
        if let Some(tier) = self.hot.read().get(&fp) {
            return Arc::clone(tier);
        }
        let mut map = self.hot.write();
        Arc::clone(
            map.entry(fp)
                .or_insert_with(|| Arc::new(ShardedCache::with_capacity(self.capacity))),
        )
    }

    /// Look up a SNP set under `fp`. Hot-tier hits are cheapest; disk
    /// hits are promoted into the hot tier on the way out.
    pub fn probe(&self, fp: DatasetFingerprint, snps: &[SnpId]) -> Option<StoreHit> {
        let tier = self.hot_tier(fp.as_u64());
        if let Some(v) = tier.probe(snps) {
            return Some(StoreHit {
                fitness: v.fitness,
                owner: v.owner,
                from_disk: false,
            });
        }
        let disk = self.disk.as_ref()?;
        let key = SnpSetKey::from_ids(snps);
        let v = *disk.lock().index.get(&(fp.as_u64(), key))?;
        tier.insert(snps.to_vec(), v);
        Some(StoreHit {
            fitness: v.fitness,
            owner: v.owner,
            from_disk: true,
        })
    }

    /// Memoize a freshly computed fitness under `fp`, attributed to
    /// `owner` (the run key that paid for it; 0 for local work).
    /// Write-through: the record also lands in the disk tier when one is
    /// attached.
    pub fn insert(
        &self,
        fp: DatasetFingerprint,
        snps: &[SnpId],
        fitness: f64,
        owner: u64,
    ) -> InsertOutcome {
        let value = StoredFitness { fitness, owner };
        let evicted = self.hot_tier(fp.as_u64()).insert(snps.to_vec(), value);
        let mut persisted = false;
        if let Some(disk) = &self.disk {
            let key = SnpSetKey::from_ids(snps);
            let mut tier = disk.lock();
            // Best-effort durability: an I/O error degrades the store to
            // hot-only behaviour for this record rather than failing the
            // evaluation that produced it.
            if tier.append(fp.as_u64(), &key, value).is_ok() {
                persisted = true;
                if tier.bytes > tier.max_bytes && tier.compact().is_ok() {
                    self.compactions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        InsertOutcome { evicted, persisted }
    }

    /// Entries resident in `fp`'s hot tier.
    pub fn len(&self, fp: DatasetFingerprint) -> usize {
        self.hot
            .read()
            .get(&fp.as_u64())
            .map_or(0, |tier| tier.len())
    }

    /// Records live in the disk index (all fingerprints; 0 without a
    /// disk tier).
    pub fn disk_len(&self) -> usize {
        self.disk.as_ref().map_or(0, |d| d.lock().index.len())
    }

    /// Whether a disk tier is attached.
    pub fn is_persistent(&self) -> bool {
        self.disk.is_some()
    }

    /// Log compactions performed since open.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Fsync the disk tier (no-op without one). Called when a checkpoint
    /// is written so the store is at least as fresh as the checkpoint.
    pub fn flush(&self) -> std::io::Result<()> {
        match &self.disk {
            Some(d) => d.lock().flush(),
            None => Ok(()),
        }
    }

    /// The torn-tail recovery performed at open, if any — yielded exactly
    /// once (the evaluation layer emits it as a `StoreRecovered` event).
    pub fn take_recovery(&self) -> Option<StoreRecovery> {
        if !self.recovery_pending.load(Ordering::Acquire) {
            return None;
        }
        self.recovery_pending.store(false, Ordering::Release);
        self.recovery.lock().take()
    }

    /// Capture `fp`'s hot tier exactly (shard geometry and young/old
    /// membership included) for a checkpoint.
    pub fn snapshot(&self, fp: DatasetFingerprint) -> CacheSnapshot {
        let tier = self.hot_tier(fp.as_u64());
        let to_entries = |pairs: Vec<(Vec<SnpId>, StoredFitness)>| {
            pairs
                .into_iter()
                .map(|(snps, v)| CacheEntry {
                    snps,
                    fitness: v.fitness,
                    owner: v.owner,
                })
                .collect()
        };
        CacheSnapshot {
            shard_count: tier.shard_count(),
            capacity: tier.capacity(),
            shards: tier
                .export_generations()
                .into_iter()
                .map(|(young, old)| CacheShardSnapshot {
                    young: to_entries(young),
                    old: to_entries(old),
                })
                .collect(),
        }
    }

    /// Rebuild `fp`'s hot tier verbatim from a checkpoint snapshot,
    /// replacing whatever was resident.
    pub fn restore_snapshot(&self, fp: DatasetFingerprint, snap: &CacheSnapshot) {
        let tier = Arc::new(ShardedCache::with_shards(snap.capacity, snap.shard_count));
        let to_pairs = |entries: &[CacheEntry]| {
            entries
                .iter()
                .map(|e| {
                    (
                        e.snps.clone(),
                        StoredFitness {
                            fitness: e.fitness,
                            owner: e.owner,
                        },
                    )
                })
                .collect::<Vec<_>>()
        };
        for (idx, shard) in snap.shards.iter().enumerate().take(snap.shard_count) {
            tier.load_shard(idx, to_pairs(&shard.young), to_pairs(&shard.old));
        }
        self.hot.write().insert(fp.as_u64(), tier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic PRNG for property-style loops (the vendored proptest
    /// is a no-op stub; this is the repo's standard idiom).
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ld-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const FP: DatasetFingerprint = DatasetFingerprint::LOCAL;

    // ---------------- canonical key properties ----------------

    #[test]
    fn key_is_permutation_invariant() {
        let mut state = 0xFACE_u64;
        for _ in 0..200 {
            let k = (splitmix64(&mut state) % 6 + 1) as usize;
            let ids: Vec<SnpId> = (0..k)
                .map(|_| (splitmix64(&mut state) % 1000) as SnpId)
                .collect();
            let canonical = SnpSetKey::from_ids(&ids);
            // Fisher–Yates over a copy: every permutation must agree.
            let mut shuffled = ids.clone();
            for i in (1..shuffled.len()).rev() {
                let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
                shuffled.swap(i, j);
            }
            assert_eq!(SnpSetKey::from_ids(&shuffled), canonical);
            // And a reversed copy, the adversarial ordering.
            let mut reversed = ids.clone();
            reversed.reverse();
            assert_eq!(SnpSetKey::from_ids(&reversed), canonical);
        }
    }

    #[test]
    fn keys_of_different_set_sizes_never_collide() {
        let mut state = 0xBEEF_u64;
        for _ in 0..200 {
            let k = (splitmix64(&mut state) % 5 + 1) as usize;
            let mut ids: Vec<SnpId> = Vec::new();
            while ids.len() < k + 1 {
                let id = (splitmix64(&mut state) % 500) as SnpId;
                if !ids.contains(&id) {
                    ids.push(id);
                }
            }
            let smaller = SnpSetKey::from_ids(&ids[..k]);
            let larger = SnpSetKey::from_ids(&ids[..k + 1]);
            assert_ne!(smaller, larger);
            assert_eq!(smaller.len(), k);
            assert_eq!(larger.len(), k + 1);
        }
    }

    #[test]
    fn key_round_trips_and_dedups() {
        let key = SnpSetKey::from_ids(&[9, 3, 3, 7]);
        assert_eq!(key.ids(), vec![3, 7, 9]);
        assert_eq!(key.len(), 3);
        assert!(SnpSetKey::from_ids(&[]).is_empty());
    }

    // ---------------- hot tier ----------------

    #[test]
    fn hot_only_store_memoizes_per_fingerprint() {
        let store = FitnessStore::in_memory(0);
        let fp_a = DatasetFingerprint::from_raw(1);
        let fp_b = DatasetFingerprint::from_raw(2);
        store.insert(fp_a, &[1, 2], 5.0, 7);
        assert_eq!(
            store.probe(fp_a, &[1, 2]),
            Some(StoreHit {
                fitness: 5.0,
                owner: 7,
                from_disk: false
            })
        );
        // Same SNP set under a different dataset: distinct universe.
        assert_eq!(store.probe(fp_b, &[1, 2]), None);
        assert_eq!(store.len(fp_a), 1);
        assert_eq!(store.len(fp_b), 0);
        assert!(!store.is_persistent());
    }

    #[test]
    fn snapshot_round_trips_generational_structure() {
        let store = FitnessStore::in_memory(8);
        let mut state = 0xD1CE_u64;
        for i in 0..40 {
            let ids = vec![(splitmix64(&mut state) % 100) as SnpId, 200 + i as SnpId];
            store.insert(FP, &ids, i as f64, i as u64);
        }
        let snap = store.snapshot(FP);
        assert_eq!(snap.len(), store.len(FP));

        // Hash-map iteration order is arbitrary, so compare each
        // generation as a sorted set — membership is what must survive.
        fn normalized(snap: &CacheSnapshot) -> CacheSnapshot {
            let mut s = snap.clone();
            for shard in &mut s.shards {
                shard.young.sort_by(|a, b| a.snps.cmp(&b.snps));
                shard.old.sort_by(|a, b| a.snps.cmp(&b.snps));
            }
            s
        }

        let restored = FitnessStore::in_memory(8);
        restored.restore_snapshot(FP, &snap);
        assert_eq!(restored.len(FP), store.len(FP));
        assert_eq!(normalized(&restored.snapshot(FP)), normalized(&snap));

        // JSON round-trip (what checkpoints do).
        let json = serde_json::to_string(&snap).unwrap();
        let back: CacheSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    // ---------------- disk tier properties ----------------

    #[test]
    fn disk_tier_round_trips_across_reopen() {
        let dir = tmp_dir("roundtrip");
        let mut state = 0xAB5E_u64;
        let mut expected: Vec<(Vec<SnpId>, f64, u64)> = Vec::new();
        {
            let store = FitnessStore::open(&dir, 0).unwrap();
            for i in 0..100u64 {
                let k = (splitmix64(&mut state) % 5 + 1) as usize;
                let ids: Vec<SnpId> = (0..k)
                    .map(|_| (splitmix64(&mut state) % 400) as SnpId)
                    .collect();
                let canonical = SnpSetKey::from_ids(&ids).ids();
                let fitness = (splitmix64(&mut state) % 1_000_000) as f64 / 1e3;
                store.insert(FP, &ids, fitness, i);
                expected.retain(|(snps, _, _)| *snps != canonical);
                expected.push((canonical, fitness, i));
            }
            store.flush().unwrap();
        }
        let store = FitnessStore::open(&dir, 0).unwrap();
        assert!(store.take_recovery().is_none(), "clean log, no recovery");
        assert_eq!(store.disk_len(), expected.len());
        for (snps, fitness, owner) in &expected {
            let hit = store.probe(FP, snps).expect("record survived reopen");
            assert_eq!(hit.fitness, *fitness);
            assert_eq!(hit.owner, *owner);
            assert!(hit.from_disk);
            // Second probe: promoted to the hot tier.
            assert!(!store.probe(FP, snps).unwrap().from_disk);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_recovery_drops_only_the_last_partial_record() {
        let dir = tmp_dir("torn");
        {
            let store = FitnessStore::open(&dir, 0).unwrap();
            for i in 0..20usize {
                store.insert(FP, &[i, i + 100], i as f64, 0);
            }
            store.flush().unwrap();
        }
        // Tear the tail: chop half of the final record off.
        let log = dir.join(LOG_NAME);
        let len = std::fs::metadata(&log).unwrap().len();
        let file = OpenOptions::new().write(true).open(&log).unwrap();
        file.set_len(len - 20).unwrap();
        drop(file);

        let store = FitnessStore::open(&dir, 0).unwrap();
        let recovery = store.take_recovery().expect("torn tail must be reported");
        assert_eq!(recovery.kept_records, 19);
        assert!(recovery.dropped_bytes > 0);
        assert!(store.take_recovery().is_none(), "yielded exactly once");
        assert_eq!(store.disk_len(), 19);
        for i in 0..19usize {
            assert!(store.probe(FP, &[i, i + 100]).is_some(), "record {i} kept");
        }
        assert!(store.probe(FP, &[19, 119]).is_none(), "torn record dropped");
        // The truncated log reopens clean.
        drop(store);
        let store = FitnessStore::open(&dir, 0).unwrap();
        assert!(store.take_recovery().is_none());
        assert_eq!(store.disk_len(), 19);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_crc_mid_log_truncates_from_the_damage() {
        let dir = tmp_dir("crc");
        {
            let store = FitnessStore::open(&dir, 0).unwrap();
            for i in 0..10usize {
                store.insert(FP, &[i], i as f64, 0);
            }
            store.flush().unwrap();
        }
        // Flip one payload byte of the 8th record.
        let log = dir.join(LOG_NAME);
        let mut bytes = std::fs::read(&log).unwrap();
        let rec_len = bytes.len() / 10;
        let target = rec_len * 7 + 12;
        bytes[target] ^= 0xFF;
        std::fs::write(&log, &bytes).unwrap();

        let store = FitnessStore::open(&dir, 0).unwrap();
        let recovery = store.take_recovery().expect("corruption must be reported");
        assert_eq!(recovery.kept_records, 7);
        assert_eq!(store.disk_len(), 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_newest_wins() {
        let dir = tmp_dir("compact");
        // Tiny budget: every few appends trigger a compaction.
        let store = FitnessStore::open_with(&dir, 0, 256).unwrap();
        for round in 0..30u64 {
            for key in 0..4usize {
                store.insert(FP, &[key], (round * 10 + key as u64) as f64, round);
            }
        }
        assert!(store.compactions() > 0, "budget of 256 B must compact");
        assert_eq!(store.disk_len(), 4, "dead versions dropped");
        drop(store);
        // Reopen: only the newest version of each key survives.
        let store = FitnessStore::open_with(&dir, 0, 256).unwrap();
        assert!(store.take_recovery().is_none(), "compacted log is clean");
        assert_eq!(store.disk_len(), 4);
        for key in 0..4usize {
            let hit = store.probe(FP, &[key]).unwrap();
            assert_eq!(hit.fitness, (29 * 10 + key as u64) as f64);
            assert_eq!(hit.owner, 29);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
