//! Population initialization strategies.
//!
//! The paper initializes randomly. Its §3 landscape study argues that
//! *constructive* approaches (building good size-k haplotypes from good
//! smaller ones) miss optima — but says nothing about *soft* seeding:
//! biasing part of the initial population toward SNPs that look good
//! individually, while keeping the rest random. [`InitStrategy::
//! SingleMarkerSeeded`] implements that warm start so the claim can be
//! tested as an ablation (see the `warmstart` harness binary): if §3 is
//! right, seeding should help little — the planted optima are precisely
//! the haplotypes whose members are *not* individually strong.

use crate::evaluator::Evaluator;
use crate::individual::Haplotype;
use crate::rng::random_haplotype;
use ld_data::SnpId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a subpopulation's initial individuals are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum InitStrategy {
    /// Uniformly random SNP subsets (the paper's choice).
    #[default]
    Random,
    /// Rank SNPs by single-marker fitness (costing `n_snps` evaluations),
    /// then draw `seeded_fraction` of each subpopulation from the top
    /// `pool_size` SNPs and the rest uniformly.
    SingleMarkerSeeded {
        /// Fraction of each subpopulation drawn from the top pool.
        seeded_fraction: f64,
        /// Number of top-ranked SNPs forming the pool.
        pool_size: usize,
    },
}

impl InitStrategy {
    /// Validate parameters.
    pub fn validate(&self) -> Result<(), String> {
        if let InitStrategy::SingleMarkerSeeded {
            seeded_fraction,
            pool_size,
        } = self
        {
            if !(0.0..=1.0).contains(seeded_fraction) {
                return Err(format!(
                    "seeded_fraction must be in [0, 1], got {seeded_fraction}"
                ));
            }
            if *pool_size < 2 {
                return Err("pool_size must be at least 2".into());
            }
        }
        Ok(())
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> String {
        match self {
            InitStrategy::Random => "random".into(),
            InitStrategy::SingleMarkerSeeded {
                seeded_fraction,
                pool_size,
            } => format!("seeded({:.0}%, top{pool_size})", seeded_fraction * 100.0),
        }
    }
}

/// Rank all SNPs by their single-marker fitness, best first. Costs exactly
/// `n_snps` evaluations (returned alongside for the caller's accounting).
pub fn rank_single_markers<E: Evaluator>(evaluator: &E) -> (Vec<SnpId>, u64) {
    let n = evaluator.n_snps();
    let mut singles: Vec<Haplotype> = (0..n).map(|s| Haplotype::from_sorted(vec![s])).collect();
    evaluator.evaluate_batch(&mut singles);
    singles.sort_by(|a, b| b.fitness().total_cmp(&a.fitness()));
    (singles.iter().map(|h| h.snps()[0]).collect(), n as u64)
}

/// Draw one size-`k` haplotype from a ranked pool (uniform subset of the
/// pool). Falls back to a panel-wide draw when the pool is too small.
pub fn seeded_haplotype<R: Rng + ?Sized>(
    rng: &mut R,
    pool: &[SnpId],
    n_snps: usize,
    k: usize,
) -> Haplotype {
    if pool.len() < k {
        return random_haplotype(rng, n_snps, k);
    }
    // Draw k distinct indices into the pool, then map to SNP ids.
    let picks = random_haplotype(rng, pool.len(), k);
    Haplotype::new(picks.snps().iter().map(|&i| pool[i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::FnEvaluator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ranking_orders_by_single_marker_fitness() {
        // Fitness of a single SNP s = (s * 7) % 13 — a known permutation.
        let eval = FnEvaluator::new(13, |s: &[SnpId]| ((s[0] * 7) % 13) as f64);
        let (ranked, cost) = rank_single_markers(&eval);
        assert_eq!(cost, 13);
        assert_eq!(ranked.len(), 13);
        // Best first: fitness of ranked[i] is non-increasing.
        for w in ranked.windows(2) {
            assert!((w[0] * 7) % 13 >= (w[1] * 7) % 13);
        }
    }

    #[test]
    fn seeded_haplotypes_stay_in_pool() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let pool = vec![3usize, 8, 15, 22, 40];
        for _ in 0..100 {
            let h = seeded_haplotype(&mut rng, &pool, 51, 3);
            assert_eq!(h.size(), 3);
            assert!(h.snps().iter().all(|s| pool.contains(s)), "{h}");
            assert!(h.snps().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn small_pool_falls_back_to_panel() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let pool = vec![3usize, 8];
        let h = seeded_haplotype(&mut rng, &pool, 51, 4);
        assert_eq!(h.size(), 4);
    }

    #[test]
    fn validation() {
        assert!(InitStrategy::Random.validate().is_ok());
        assert!(InitStrategy::SingleMarkerSeeded {
            seeded_fraction: 0.5,
            pool_size: 10
        }
        .validate()
        .is_ok());
        assert!(InitStrategy::SingleMarkerSeeded {
            seeded_fraction: 1.5,
            pool_size: 10
        }
        .validate()
        .is_err());
        assert!(InitStrategy::SingleMarkerSeeded {
            seeded_fraction: 0.5,
            pool_size: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(InitStrategy::Random.label(), "random");
        let s = InitStrategy::SingleMarkerSeeded {
            seeded_fraction: 0.5,
            pool_size: 12,
        };
        assert!(s.label().contains("top12"));
    }
}
