//! GA configuration (paper §5.2.1 parameters and §5.2 scheme toggles).

use crate::init::InitStrategy;
use crate::selection::SelectionStrategy;
use serde::{Deserialize, Serialize};

/// Which advanced mechanisms are enabled — the paper's §5.2 ablation axes:
/// "Without and with the random immigrant / the reduction and the
/// augmentation mutation / the inter-population crossover."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scheme {
    /// Adapt mutation-operator rates (vs fixed uniform split).
    pub adaptive_mutation: bool,
    /// Adapt crossover-operator rates (vs fixed uniform split).
    pub adaptive_crossover: bool,
    /// Enable reduction + augmentation mutations (inter-size migration).
    pub size_mutations: bool,
    /// Enable inter-population crossover.
    pub inter_crossover: bool,
    /// Enable the random-immigrant diversity mechanism.
    pub random_immigrants: bool,
}

impl Scheme {
    /// Everything on — the paper's best combination.
    pub const FULL: Scheme = Scheme {
        adaptive_mutation: true,
        adaptive_crossover: true,
        size_mutations: true,
        inter_crossover: true,
        random_immigrants: true,
    };

    /// Everything off — plain per-size GAs evolving independently.
    pub const BASELINE: Scheme = Scheme {
        adaptive_mutation: false,
        adaptive_crossover: false,
        size_mutations: false,
        inter_crossover: false,
        random_immigrants: false,
    };

    /// Short label for experiment tables.
    pub fn label(&self) -> String {
        if *self == Scheme::FULL {
            return "full".into();
        }
        if *self == Scheme::BASELINE {
            return "baseline".into();
        }
        let mut parts = Vec::new();
        if self.adaptive_mutation {
            parts.push("aMut");
        }
        if self.adaptive_crossover {
            parts.push("aCross");
        }
        if self.size_mutations {
            parts.push("size");
        }
        if self.inter_crossover {
            parts.push("inter");
        }
        if self.random_immigrants {
            parts.push("RI");
        }
        if parts.is_empty() {
            "none".into()
        } else {
            parts.join("+")
        }
    }
}

impl Default for Scheme {
    fn default() -> Self {
        Scheme::FULL
    }
}

/// Full GA configuration.
///
/// Defaults follow the paper's §5.2.1 experimental setup: global mutation
/// rate 0.9, δ = 0.05, population 150, termination after 100 stagnant
/// generations, haplotype sizes 2–6, random-immigrant stagnation 20.
/// (The PDF's parameter list is partially garbled; `0.9` is printed against
/// the global mutation rate and we take δ = 0.05, a twentieth of the
/// population-level rate, matching Hong et al.'s recommendation.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Total individuals across all subpopulations.
    pub population_size: usize,
    /// Smallest haplotype size.
    pub min_size: usize,
    /// Largest haplotype size ("Biologists choose 6 … as a first experiment").
    pub max_size: usize,
    /// Global mutation rate `p_mut_glob` split adaptively among the three
    /// mutation operators.
    pub mutation_rate: f64,
    /// Global crossover rate split adaptively among the two crossovers.
    pub crossover_rate: f64,
    /// Minimum per-operator rate δ.
    pub delta: f64,
    /// Mating events per generation (each yields two crossover children).
    pub matings_per_generation: usize,
    /// Parallel tries of the SNP mutation ("several times in parallel,
    /// keep the best").
    pub snp_mutation_tries: usize,
    /// Parent-selection strategy (the paper's "Selection" box; unpinned in
    /// the text, binary tournament by default).
    pub selection: SelectionStrategy,
    /// Population initialization (random in the paper; single-marker warm
    /// start available for the §3 ablation).
    pub init: InitStrategy,
    /// Stop after this many generations without any subpopulation-best
    /// improvement.
    pub stagnation_limit: usize,
    /// Trigger random immigrants after this many stagnant generations.
    pub ri_stagnation: usize,
    /// Hard generation cap (safety net; the paper's run length is governed
    /// by stagnation).
    pub max_generations: usize,
    /// Mechanism toggles.
    pub scheme: Scheme,
    /// Capacity of the scheduler's fitness cache, in SNP sets (0 disables
    /// caching, the historical behaviour). Cache hits skip the evaluation
    /// backend but still count toward `total_evaluations` — see
    /// `DESIGN.md` §"Evaluation accounting".
    #[serde(default)]
    pub sched_cache: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population_size: 150,
            min_size: 2,
            max_size: 6,
            mutation_rate: 0.9,
            crossover_rate: 0.8,
            delta: 0.05,
            matings_per_generation: 20,
            snp_mutation_tries: 4,
            selection: SelectionStrategy::Tournament(2),
            init: InitStrategy::Random,
            stagnation_limit: 100,
            ri_stagnation: 20,
            max_generations: 10_000,
            scheme: Scheme::FULL,
            sched_cache: 0,
        }
    }
}

impl GaConfig {
    /// Validate parameter ranges; returns a description of the first
    /// problem found.
    pub fn validate(&self, n_snps: usize) -> Result<(), String> {
        if self.min_size < 1 || self.min_size > self.max_size {
            return Err(format!(
                "bad size range [{}, {}]",
                self.min_size, self.max_size
            ));
        }
        if self.max_size > n_snps {
            return Err(format!(
                "max_size {} exceeds panel width {n_snps}",
                self.max_size
            ));
        }
        for (name, rate) in [
            ("mutation_rate", self.mutation_rate),
            ("crossover_rate", self.crossover_rate),
        ] {
            if !(0.0 < rate && rate <= 1.0) {
                return Err(format!("{name} must be in (0, 1], got {rate}"));
            }
        }
        if self.delta < 0.0 {
            return Err("delta must be non-negative".into());
        }
        if self.mutation_rate < 3.0 * self.delta {
            return Err(format!(
                "mutation_rate {} cannot support 3 operators with floor {}",
                self.mutation_rate, self.delta
            ));
        }
        if self.crossover_rate < 2.0 * self.delta {
            return Err(format!(
                "crossover_rate {} cannot support 2 operators with floor {}",
                self.crossover_rate, self.delta
            ));
        }
        if self.population_size == 0
            || self.matings_per_generation == 0
            || self.snp_mutation_tries == 0
            || self.stagnation_limit == 0
            || self.max_generations == 0
        {
            return Err("counts must be positive".into());
        }
        if matches!(self.selection, SelectionStrategy::Tournament(0)) {
            return Err("tournament size must be positive".into());
        }
        self.init.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GaConfig::default();
        assert_eq!(c.population_size, 150);
        assert_eq!(c.max_size, 6);
        assert_eq!(c.stagnation_limit, 100);
        assert_eq!(c.ri_stagnation, 20);
        assert!((c.mutation_rate - 0.9).abs() < 1e-12);
        assert!((c.delta - 0.05).abs() < 1e-12);
        assert_eq!(c.scheme, Scheme::FULL);
        assert!(c.validate(51).is_ok());
    }

    #[test]
    fn validation_catches_bad_ranges() {
        let bad = [
            GaConfig {
                max_size: 60,
                ..GaConfig::default()
            },
            GaConfig {
                min_size: 0,
                ..GaConfig::default()
            },
            GaConfig {
                mutation_rate: 0.0,
                ..GaConfig::default()
            },
            // 3 operators * 0.5 floor > 0.9 global rate.
            GaConfig {
                delta: 0.5,
                ..GaConfig::default()
            },
            GaConfig {
                matings_per_generation: 0,
                ..GaConfig::default()
            },
            GaConfig {
                selection: SelectionStrategy::Tournament(0),
                ..GaConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate(51).is_err(), "accepted bad config {c:?}");
        }
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::FULL.label(), "full");
        assert_eq!(Scheme::BASELINE.label(), "baseline");
        let s = Scheme {
            random_immigrants: false,
            ..Scheme::FULL
        };
        assert_eq!(s.label(), "aMut+aCross+size+inter");
        let s = Scheme {
            random_immigrants: true,
            ..Scheme::BASELINE
        };
        assert_eq!(s.label(), "RI");
    }
}
