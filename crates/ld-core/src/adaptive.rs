//! Adaptive operator-rate control (paper §4.3.1–§4.3.2, after Hong, Wang &
//! Chen, *Journal of Heuristics* 2000).
//!
//! For each operator family (the three mutations; the two crossovers) the
//! engine records the *progress* of every application — the change in
//! size-normalized fitness between input and output individuals. At the end
//! of a generation, each operator's *profit* is its mean progress:
//!
//! ```text
//! profit_i = Σ_j prog_j(op_i) / NbApplications(op_i)
//! ```
//!
//! and the new rate allocates the global rate proportionally to profit,
//! with a floor δ per operator:
//!
//! ```text
//! rate_i = (profit_i / Σ profits) · (p_global − m·δ) + δ
//! ```
//!
//! so that `Σ rate_i = p_global` and every operator keeps at least δ of the
//! probability mass (it can always earn its way back). Negative profits are
//! clamped to zero; if no operator made progress the rates are left
//! unchanged. "The initial rate of each mutation operator is set to
//! p_global / m."

use rand::Rng;

/// Adaptive allocation of one global application rate among `m` operators.
#[derive(Debug, Clone)]
pub struct AdaptiveRates {
    global_rate: f64,
    delta: f64,
    rates: Vec<f64>,
    progress_sum: Vec<f64>,
    applications: Vec<usize>,
    /// When `false`, rates stay fixed at `p_global / m` (ablation mode).
    adaptive: bool,
}

impl AdaptiveRates {
    /// Equal initial split of `global_rate` among `m` operators.
    ///
    /// # Panics
    /// Panics unless `m ≥ 1`, `0 < global_rate ≤ 1`, `delta ≥ 0` and
    /// `global_rate ≥ m·delta` (otherwise the floor is unsatisfiable).
    pub fn new(m: usize, global_rate: f64, delta: f64, adaptive: bool) -> Self {
        assert!(m >= 1, "need at least one operator");
        assert!(
            global_rate > 0.0 && global_rate <= 1.0,
            "global rate must be in (0, 1], got {global_rate}"
        );
        assert!(delta >= 0.0, "delta must be non-negative");
        assert!(
            global_rate >= m as f64 * delta - 1e-12,
            "global rate {global_rate} cannot support {m} operators with floor {delta}"
        );
        AdaptiveRates {
            global_rate,
            delta,
            rates: vec![global_rate / m as f64; m],
            progress_sum: vec![0.0; m],
            applications: vec![0; m],
            adaptive,
        }
    }

    /// Number of operators.
    pub fn n_ops(&self) -> usize {
        self.rates.len()
    }

    /// The global application rate `p_global`.
    pub fn global_rate(&self) -> f64 {
        self.global_rate
    }

    /// Current per-operator rates (sum = `p_global`).
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Restore previously captured rates (checkpoint resume). The rates
    /// must match the operator count, sum to the global rate, and respect
    /// the floor.
    pub fn restore_rates(&mut self, rates: &[f64]) -> Result<(), String> {
        if rates.len() != self.rates.len() {
            return Err(format!(
                "expected {} rates, got {}",
                self.rates.len(),
                rates.len()
            ));
        }
        let sum: f64 = rates.iter().sum();
        if (sum - self.global_rate).abs() > 1e-6 {
            return Err(format!(
                "rates sum {sum} does not match global rate {}",
                self.global_rate
            ));
        }
        if rates.iter().any(|&r| r < self.delta - 1e-9) {
            return Err(format!("a rate is below the floor {}", self.delta));
        }
        self.rates.copy_from_slice(rates);
        Ok(())
    }

    /// Record one application of operator `op` with the given normalized
    /// progress (may be negative). Non-finite progress (possible only with
    /// a pathological objective) is counted as zero so one bad evaluation
    /// cannot poison the whole rate allocation.
    pub fn record(&mut self, op: usize, progress: f64) {
        self.progress_sum[op] += if progress.is_finite() { progress } else { 0.0 };
        self.applications[op] += 1;
    }

    /// Per-operator profits accumulated so far this generation: mean
    /// positive normalized progress per application (`0.0` for operators
    /// that never fired). This is exactly the vector the next
    /// [`AdaptiveRates::end_generation`] call reallocates on — read it
    /// *before* that call, which resets the accumulators.
    pub fn profits(&self) -> Vec<f64> {
        (0..self.n_ops())
            .map(|i| {
                if self.applications[i] == 0 {
                    0.0
                } else {
                    (self.progress_sum[i] / self.applications[i] as f64).max(0.0)
                }
            })
            .collect()
    }

    /// Recompute rates from the accumulated generation statistics and reset
    /// the accumulators.
    pub fn end_generation(&mut self) {
        if self.adaptive {
            let m = self.n_ops();
            let profits = self.profits();
            let total: f64 = profits.iter().sum();
            if total > 0.0 {
                let spread = self.global_rate - m as f64 * self.delta;
                for (rate, profit) in self.rates.iter_mut().zip(&profits) {
                    *rate = (profit / total) * spread + self.delta;
                }
            }
            // total == 0: no operator earned anything — keep current rates.
        }
        self.progress_sum.iter_mut().for_each(|p| *p = 0.0);
        self.applications.iter_mut().for_each(|a| *a = 0);
    }

    /// Sample an operator index with probability proportional to its rate
    /// (conditioned on the family being applied at all).
    pub fn select<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random_range(0.0..self.global_rate);
        let mut acc = 0.0;
        for (i, &r) in self.rates.iter().enumerate() {
            acc += r;
            if u < acc {
                return i;
            }
        }
        self.rates.len() - 1
    }

    /// Whether the family fires this time (probability `p_global`).
    pub fn fires<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.random::<f64>() < self.global_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sum(rates: &[f64]) -> f64 {
        rates.iter().sum()
    }

    #[test]
    fn initial_rates_are_uniform() {
        let a = AdaptiveRates::new(3, 0.9, 0.05, true);
        for &r in a.rates() {
            assert!((r - 0.3).abs() < 1e-12);
        }
        assert!((sum(a.rates()) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn profitable_operator_gains_rate() {
        let mut a = AdaptiveRates::new(3, 0.9, 0.05, true);
        a.record(0, 0.8);
        a.record(0, 0.6);
        a.record(1, 0.1);
        a.record(2, -0.5); // negative clamps to zero profit
        a.end_generation();
        let r = a.rates().to_vec();
        assert!(r[0] > r[1], "{r:?}");
        assert!(r[1] > r[2], "{r:?}");
        // Invariants: sum preserved, floor respected.
        assert!((sum(&r) - 0.9).abs() < 1e-9);
        for &x in &r {
            assert!(x >= 0.05 - 1e-12);
        }
        // Loser sits exactly at the floor.
        assert!((r[2] - 0.05).abs() < 1e-9);
    }

    #[test]
    fn no_progress_keeps_rates() {
        let mut a = AdaptiveRates::new(2, 0.5, 0.1, true);
        a.record(0, -0.3);
        a.record(1, 0.0);
        let before = a.rates().to_vec();
        a.end_generation();
        assert_eq!(a.rates(), &before[..]);
    }

    #[test]
    fn accumulators_reset_each_generation() {
        let mut a = AdaptiveRates::new(2, 0.8, 0.05, true);
        a.record(0, 1.0);
        a.end_generation();
        let after_first = a.rates().to_vec();
        // Second generation with no applications: rates unchanged.
        a.end_generation();
        assert_eq!(a.rates(), &after_first[..]);
    }

    #[test]
    fn non_adaptive_mode_is_frozen() {
        let mut a = AdaptiveRates::new(3, 0.9, 0.05, false);
        a.record(0, 10.0);
        a.end_generation();
        for &r in a.rates() {
            assert!((r - 0.3).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_progress_not_total_drives_profit() {
        // Operator 0: many mediocre applications; operator 1: one great one.
        let mut a = AdaptiveRates::new(2, 1.0, 0.0, true);
        for _ in 0..10 {
            a.record(0, 0.2);
        }
        a.record(1, 0.9);
        a.end_generation();
        // Mean progress: 0.2 vs 0.9 -> operator 1 wins despite fewer apps.
        assert!(a.rates()[1] > a.rates()[0]);
    }

    #[test]
    fn selection_follows_rates() {
        let mut a = AdaptiveRates::new(2, 1.0, 0.05, true);
        a.record(0, 1.0);
        a.record(1, 0.001);
        a.end_generation();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = [0usize; 2];
        for _ in 0..5000 {
            counts[a.select(&mut rng)] += 1;
        }
        let p0 = counts[0] as f64 / 5000.0;
        assert!((p0 - a.rates()[0]).abs() < 0.03, "p0 = {p0}");
    }

    #[test]
    fn fires_respects_global_rate() {
        let a = AdaptiveRates::new(2, 0.3, 0.05, true);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let fired = (0..10000).filter(|_| a.fires(&mut rng)).count();
        let p = fired as f64 / 10000.0;
        assert!((p - 0.3).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn non_finite_progress_is_neutralized() {
        let mut a = AdaptiveRates::new(2, 0.8, 0.05, true);
        a.record(0, f64::NAN);
        a.record(0, f64::INFINITY);
        a.record(1, 0.5);
        a.end_generation();
        let r = a.rates();
        assert!(r.iter().all(|x| x.is_finite()), "{r:?}");
        assert!((r.iter().sum::<f64>() - 0.8).abs() < 1e-9);
        // Operator 1 made the only real progress.
        assert!(r[1] > r[0]);
    }

    #[test]
    #[should_panic(expected = "cannot support")]
    fn infeasible_floor_panics() {
        let _ = AdaptiveRates::new(4, 0.1, 0.05, true);
    }

    #[test]
    fn repeated_adaptation_converges_toward_winner() {
        let mut a = AdaptiveRates::new(3, 0.9, 0.05, true);
        for _ in 0..20 {
            a.record(0, 0.5);
            a.record(1, 0.05);
            a.record(2, 0.0);
            a.end_generation();
        }
        let r = a.rates();
        assert!(r[0] > 0.7, "{r:?}");
        assert!((sum(r) - 0.9).abs() < 1e-9);
    }
}
