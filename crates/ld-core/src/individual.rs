//! The haplotype individual (paper §4.1).
//!
//! "An haplotype is a structure composed of: an integer indicating the size
//! of the haplotype, a table with SNPs ordered in ascending order without
//! repetition, and a real to store the value of the individual."

use ld_data::SnpId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A candidate haplotype: an ascending, duplicate-free SNP set plus its
/// fitness (`NAN` until evaluated).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Haplotype {
    snps: Vec<SnpId>,
    fitness: f64,
}

impl Haplotype {
    /// Build from an arbitrary SNP list: sorts and deduplicates, so the
    /// §4.1 invariant holds by construction. Fitness starts unset.
    pub fn new(mut snps: Vec<SnpId>) -> Self {
        snps.sort_unstable();
        snps.dedup();
        Haplotype {
            snps,
            fitness: f64::NAN,
        }
    }

    /// Build from a list already known to be ascending and duplicate-free.
    ///
    /// # Panics
    /// Debug-asserts the invariant; use [`Haplotype::new`] for untrusted input.
    pub fn from_sorted(snps: Vec<SnpId>) -> Self {
        debug_assert!(
            snps.windows(2).all(|w| w[0] < w[1]),
            "SNPs must be strictly ascending: {snps:?}"
        );
        Haplotype {
            snps,
            fitness: f64::NAN,
        }
    }

    /// Haplotype size (number of SNPs).
    #[inline]
    pub fn size(&self) -> usize {
        self.snps.len()
    }

    /// The ascending SNP ids.
    #[inline]
    pub fn snps(&self) -> &[SnpId] {
        &self.snps
    }

    /// Fitness value; `NAN` when not yet evaluated.
    #[inline]
    pub fn fitness(&self) -> f64 {
        self.fitness
    }

    /// Whether the individual has been evaluated.
    #[inline]
    pub fn is_evaluated(&self) -> bool {
        !self.fitness.is_nan()
    }

    /// Record the fitness.
    pub fn set_fitness(&mut self, fitness: f64) {
        self.fitness = fitness;
    }

    /// Whether the haplotype contains a SNP.
    pub fn contains(&self, snp: SnpId) -> bool {
        self.snps.binary_search(&snp).is_ok()
    }

    /// New haplotype with `snp` added (no-op clone if already present).
    pub fn with_snp(&self, snp: SnpId) -> Haplotype {
        match self.snps.binary_search(&snp) {
            Ok(_) => Haplotype {
                snps: self.snps.clone(),
                fitness: self.fitness,
            },
            Err(pos) => {
                let mut snps = self.snps.clone();
                snps.insert(pos, snp);
                Haplotype {
                    snps,
                    fitness: f64::NAN,
                }
            }
        }
    }

    /// New haplotype with the SNP at `index` removed.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub fn without_index(&self, index: usize) -> Haplotype {
        let mut snps = self.snps.clone();
        snps.remove(index);
        Haplotype {
            snps,
            fitness: f64::NAN,
        }
    }

    /// New haplotype with the SNP at `index` replaced by `snp`
    /// (re-sorted; caller must ensure `snp` is not already present).
    pub fn with_replaced(&self, index: usize, snp: SnpId) -> Haplotype {
        debug_assert!(!self.contains(snp) || self.snps[index] == snp);
        let mut snps = self.snps.clone();
        snps[index] = snp;
        snps.sort_unstable();
        Haplotype {
            snps,
            fitness: f64::NAN,
        }
    }

    /// Identity key for duplicate detection (the SNP set).
    pub fn key(&self) -> &[SnpId] {
        &self.snps
    }
}

impl fmt::Display for Haplotype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.snps.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")?;
        if self.is_evaluated() {
            write!(f, " = {:.3}", self.fitness)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let h = Haplotype::new(vec![9, 3, 3, 1]);
        assert_eq!(h.snps(), &[1, 3, 9]);
        assert_eq!(h.size(), 3);
        assert!(!h.is_evaluated());
    }

    #[test]
    fn fitness_lifecycle() {
        let mut h = Haplotype::new(vec![1, 2]);
        assert!(h.fitness().is_nan());
        h.set_fitness(12.5);
        assert!(h.is_evaluated());
        assert_eq!(h.fitness(), 12.5);
    }

    #[test]
    fn with_snp_inserts_in_order_and_clears_fitness() {
        let mut h = Haplotype::new(vec![1, 5]);
        h.set_fitness(3.0);
        let h2 = h.with_snp(3);
        assert_eq!(h2.snps(), &[1, 3, 5]);
        assert!(!h2.is_evaluated());
        // Adding an existing SNP keeps fitness (identical individual).
        let h3 = h.with_snp(5);
        assert_eq!(h3.snps(), h.snps());
        assert_eq!(h3.fitness(), 3.0);
    }

    #[test]
    fn without_index_removes() {
        let h = Haplotype::new(vec![1, 3, 5]);
        assert_eq!(h.without_index(1).snps(), &[1, 5]);
        assert_eq!(h.without_index(0).snps(), &[3, 5]);
    }

    #[test]
    fn with_replaced_resorts() {
        let h = Haplotype::new(vec![2, 4, 6]);
        let r = h.with_replaced(0, 9);
        assert_eq!(r.snps(), &[4, 6, 9]);
        assert!(!r.is_evaluated());
    }

    #[test]
    fn contains_uses_binary_search() {
        let h = Haplotype::new(vec![2, 4, 6]);
        assert!(h.contains(4));
        assert!(!h.contains(5));
    }

    #[test]
    fn display_matches_paper_style() {
        let mut h = Haplotype::new(vec![8, 12, 15]);
        assert_eq!(h.to_string(), "[8 12 15]");
        h.set_fitness(58.814);
        assert_eq!(h.to_string(), "[8 12 15] = 58.814");
    }

    #[test]
    fn key_equality_is_set_equality() {
        let a = Haplotype::new(vec![3, 1]);
        let b = Haplotype::new(vec![1, 3]);
        assert_eq!(a.key(), b.key());
    }
}
