//! Random construction helpers for haplotypes.

use crate::individual::Haplotype;
use ld_data::SnpId;
use rand::prelude::*;

/// Draw a uniformly random haplotype of `size` distinct SNPs from
/// `0..n_snps` (Floyd's algorithm, then sort).
///
/// # Panics
/// Panics if `size > n_snps`.
pub fn random_haplotype<R: Rng + ?Sized>(rng: &mut R, n_snps: usize, size: usize) -> Haplotype {
    assert!(
        size <= n_snps,
        "cannot draw {size} distinct SNPs from {n_snps}"
    );
    // Floyd's subset sampling: O(size) expected insertions, no full shuffle.
    let mut chosen: Vec<SnpId> = Vec::with_capacity(size);
    for j in (n_snps - size)..n_snps {
        let t = rng.random_range(0..=j);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    Haplotype::new(chosen)
}

/// Draw a SNP uniformly from `0..n_snps` that is not already in `exclude`
/// (ascending slice). Returns `None` when every SNP is excluded.
pub fn random_snp_not_in<R: Rng + ?Sized>(
    rng: &mut R,
    n_snps: usize,
    exclude: &[SnpId],
) -> Option<SnpId> {
    let available = n_snps.checked_sub(exclude.len())?;
    if available == 0 {
        return None;
    }
    // Draw a rank among the non-excluded SNPs, then map rank -> id by
    // walking the exclusion list (it is ascending and short).
    let rank = rng.random_range(0..available);
    let mut id = rank;
    for &e in exclude {
        if e <= id {
            id += 1;
        } else {
            break;
        }
    }
    Some(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn random_haplotype_has_requested_size_and_invariant() {
        let mut rng = rng();
        for size in 1..=6 {
            for _ in 0..50 {
                let h = random_haplotype(&mut rng, 51, size);
                assert_eq!(h.size(), size);
                assert!(h.snps().windows(2).all(|w| w[0] < w[1]));
                assert!(h.snps().iter().all(|&s| s < 51));
            }
        }
    }

    #[test]
    fn random_haplotype_full_panel() {
        let mut rng = rng();
        let h = random_haplotype(&mut rng, 5, 5);
        assert_eq!(h.snps(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn random_haplotype_oversize_panics() {
        let mut rng = rng();
        let _ = random_haplotype(&mut rng, 3, 4);
    }

    #[test]
    fn random_haplotype_is_roughly_uniform() {
        // Each SNP of 0..10 should appear in a size-3 draw with p = 0.3.
        let mut rng = rng();
        let mut counts = [0usize; 10];
        let n = 6000;
        for _ in 0..n {
            for &s in random_haplotype(&mut rng, 10, 3).snps() {
                counts[s] += 1;
            }
        }
        for (s, &c) in counts.iter().enumerate() {
            let p = c as f64 / n as f64;
            assert!((p - 0.3).abs() < 0.03, "snp {s}: p = {p}");
        }
    }

    #[test]
    fn random_snp_not_in_avoids_exclusions() {
        let mut rng = rng();
        let exclude = [1, 3, 5, 7];
        for _ in 0..200 {
            let s = random_snp_not_in(&mut rng, 9, &exclude).unwrap();
            assert!(!exclude.contains(&s));
            assert!(s < 9);
        }
    }

    #[test]
    fn random_snp_not_in_exhausted() {
        let mut rng = rng();
        assert_eq!(random_snp_not_in(&mut rng, 3, &[0, 1, 2]), None);
        assert_eq!(random_snp_not_in(&mut rng, 0, &[]), None);
    }

    #[test]
    fn random_snp_not_in_covers_all_free_snps() {
        let mut rng = rng();
        let exclude = [0, 2, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(random_snp_not_in(&mut rng, 6, &exclude).unwrap());
        }
        assert_eq!(seen, [1, 3, 5].into_iter().collect());
    }
}
