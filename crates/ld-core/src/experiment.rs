//! Multi-run experiment harness — computes the paper's Table-2 columns.
//!
//! Table 2 reports, per haplotype size and over 10 runs: the best haplotype
//! found, its fitness, the mean fitness across runs, the deviation from the
//! expected (exact) optimum, and the minimum / mean number of evaluations
//! needed to reach each run's best.

use crate::config::GaConfig;
use crate::engine::{FeasibilityFilter, GaEngine, RunResult};
use crate::evaluator::Evaluator;
use crate::individual::Haplotype;

/// Per-size aggregate over a batch of runs.
#[derive(Debug, Clone)]
pub struct SizeSummary {
    /// Haplotype size.
    pub size: usize,
    /// Best individual over all runs.
    pub best: Option<Haplotype>,
    /// Mean of the per-run best fitness.
    pub mean_fitness: f64,
    /// Mean deviation from `reference` (the exact optimum when known;
    /// otherwise from the best-over-runs): `mean(ref_fitness − run_best)`.
    pub deviation: f64,
    /// Minimum over runs of the evaluations needed to reach the run's best.
    pub min_evals: u64,
    /// Mean over runs of the evaluations needed to reach the run's best.
    pub mean_evals: f64,
    /// Number of runs that produced a best of this size.
    pub n_runs: usize,
}

/// Aggregate of a multi-run experiment.
#[derive(Debug, Clone)]
pub struct ExperimentSummary {
    /// One row per managed size (ascending).
    pub sizes: Vec<SizeSummary>,
    /// The raw per-run results.
    pub runs: Vec<RunResult>,
    /// Scheme label of the configuration used.
    pub scheme_label: String,
}

impl ExperimentSummary {
    /// Row for a specific size.
    pub fn size(&self, k: usize) -> Option<&SizeSummary> {
        self.sizes.iter().find(|s| s.size == k)
    }

    /// Mean total evaluations per run.
    pub fn mean_total_evaluations(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs
            .iter()
            .map(|r| r.total_evaluations as f64)
            .sum::<f64>()
            / self.runs.len() as f64
    }

    /// Mean generations per run.
    pub fn mean_generations(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(|r| r.generations as f64).sum::<f64>() / self.runs.len() as f64
    }
}

/// Run the GA `n_runs` times (seeds `seed0..seed0 + n_runs`) and aggregate.
///
/// `reference_fitness(k)` supplies the exact optimum fitness of size `k`
/// when known (from exhaustive enumeration); when `None`, deviation is
/// measured against the best fitness observed across the runs (the paper
/// compares against "the best solutions calculated during the study of
/// landscape" where available).
pub fn run_experiment<E, F>(
    evaluator: &E,
    config: &GaConfig,
    n_runs: usize,
    seed0: u64,
    feasibility: Option<FeasibilityFilter>,
    reference_fitness: F,
) -> ExperimentSummary
where
    E: Evaluator,
    F: Fn(usize) -> Option<f64>,
{
    assert!(n_runs > 0, "need at least one run");
    let mut runs: Vec<RunResult> = Vec::with_capacity(n_runs);
    for i in 0..n_runs {
        let mut engine = GaEngine::new(evaluator, config.clone(), seed0 + i as u64)
            .expect("configuration validated by caller");
        if let Some(f) = &feasibility {
            engine = engine.with_feasibility(f.clone());
        }
        runs.push(engine.run());
    }

    let mut sizes = Vec::new();
    for k in config.min_size..=config.max_size {
        let per_run: Vec<(&Haplotype, u64)> = runs
            .iter()
            .filter_map(|r| {
                r.best_of_size(k)
                    .map(|h| (h, r.evals_to_best_of_size(k).unwrap_or(r.total_evaluations)))
            })
            .collect();
        if per_run.is_empty() {
            sizes.push(SizeSummary {
                size: k,
                best: None,
                mean_fitness: f64::NAN,
                deviation: f64::NAN,
                min_evals: 0,
                mean_evals: 0.0,
                n_runs: 0,
            });
            continue;
        }
        let best = per_run
            .iter()
            .max_by(|a, b| a.0.fitness().total_cmp(&b.0.fitness()))
            .map(|(h, _)| (*h).clone());
        let mean_fitness =
            per_run.iter().map(|(h, _)| h.fitness()).sum::<f64>() / per_run.len() as f64;
        let reference = reference_fitness(k)
            .or(best.as_ref().map(|h| h.fitness()))
            .unwrap_or(f64::NAN);
        let deviation = per_run
            .iter()
            .map(|(h, _)| (reference - h.fitness()).max(0.0))
            .sum::<f64>()
            / per_run.len() as f64;
        let min_evals = per_run.iter().map(|(_, e)| *e).min().unwrap_or(0);
        let mean_evals = per_run.iter().map(|(_, e)| *e as f64).sum::<f64>() / per_run.len() as f64;
        sizes.push(SizeSummary {
            size: k,
            best,
            mean_fitness,
            deviation,
            min_evals,
            mean_evals,
            n_runs: per_run.len(),
        });
    }

    ExperimentSummary {
        sizes,
        runs,
        scheme_label: config.scheme.label(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::FnEvaluator;
    use ld_data::SnpId;

    fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
        FnEvaluator::new(25, |s: &[SnpId]| {
            s.iter().map(|&x| x as f64).sum::<f64>() + 10.0 * s.len() as f64
        })
    }

    fn cfg() -> GaConfig {
        GaConfig {
            population_size: 50,
            min_size: 2,
            max_size: 3,
            matings_per_generation: 8,
            stagnation_limit: 20,
            ri_stagnation: 7,
            max_generations: 300,
            ..GaConfig::default()
        }
    }

    #[test]
    fn experiment_aggregates_runs() {
        let eval = toy();
        // Exact optima: size 2 -> 24+23+20 = 67; size 3 -> 24+23+22+30 = 99.
        let summary = run_experiment(&eval, &cfg(), 4, 100, None, |k| match k {
            2 => Some(67.0),
            3 => Some(99.0),
            _ => None,
        });
        assert_eq!(summary.runs.len(), 4);
        assert_eq!(summary.sizes.len(), 2);
        let s2 = summary.size(2).unwrap();
        assert_eq!(s2.n_runs, 4);
        assert_eq!(s2.best.as_ref().unwrap().snps(), &[23, 24]);
        // Every run found the optimum -> deviation 0, mean == best.
        assert!(s2.deviation.abs() < 1e-9, "dev = {}", s2.deviation);
        assert!((s2.mean_fitness - 67.0).abs() < 1e-9);
        assert!(s2.min_evals > 0);
        assert!(s2.mean_evals >= s2.min_evals as f64);
        assert_eq!(summary.scheme_label, "full");
        assert!(summary.mean_total_evaluations() > 0.0);
        assert!(summary.mean_generations() >= 20.0);
    }

    #[test]
    fn deviation_against_observed_best_when_no_reference() {
        let eval = toy();
        let summary = run_experiment(&eval, &cfg(), 3, 7, None, |_| None);
        for s in &summary.sizes {
            // Deviation measured from the best run: non-negative and zero
            // for the best run itself, so the mean is < best - worst.
            assert!(s.deviation >= 0.0);
            assert!(s.deviation.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        let eval = toy();
        let _ = run_experiment(&eval, &cfg(), 0, 0, None, |_| None);
    }
}
