//! # ld-core — the paper's dedicated adaptive multi-population GA
//!
//! Implements the genetic algorithm of §4 of *"A Parallel Adaptive GA for
//! Linkage Disequilibrium in Genomics"* (IPDPS 2004):
//!
//! * **Encoding** ([`individual`]) — a haplotype is its size, an ascending
//!   duplicate-free table of SNP ids, and a real fitness value (§4.1).
//! * **Multi-population** ([`subpop`], [`population`]) — one subpopulation
//!   per haplotype size, because fitness values of different sizes are not
//!   comparable; capacities grow with the size-specific search space (§4.2).
//! * **Operators** ([`ops`]) — SNP mutation (multi-try local search),
//!   reduction and augmentation mutations that migrate individuals between
//!   subpopulations, uniform intra-population crossover, and
//!   inter-population crossover producing one child per parent size (§4.3).
//! * **Adaptive operator rates** ([`adaptive`]) — the Hong–Wang–Chen
//!   progress/profit scheme on size-normalized fitness (§4.3.1–§4.3.2).
//! * **Random immigrants** ([`immigrants`]) — §4.4's diversity mechanism.
//! * **Engine** ([`engine`]) — Figure 5's loop: selection, crossover,
//!   mutation, batched (parallelizable) evaluation, elitist no-duplicate
//!   replacement, random-immigrant test, stagnation termination (§4.6).
//! * **Evaluator abstraction** ([`evaluator`]) — the engine sees fitness
//!   through a batch-evaluation trait, which is the seam where
//!   `ld-parallel`'s master/slave evaluator (Figure 6) plugs in.
//! * **Batch scheduler** ([`sched`]) — every evaluation batch flows through
//!   one [`sched::EvalService`]: feasibility filter, intra-batch duplicate
//!   coalescing, an optional bounded fitness cache, and timed dispatch to a
//!   pluggable [`sched::EvalBackend`].
//! * **Experiments** ([`experiment`]) — multi-run harness computing the
//!   paper's Table-2 columns (best / mean fitness, deviation from the
//!   reference optimum, min / mean evaluations to reach the best).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod checkpoint;
pub mod config;
pub mod diversity;
pub mod engine;
pub mod evaluator;
pub mod experiment;
pub mod immigrants;
pub mod individual;
pub mod init;
pub mod ops;
pub mod population;
pub mod rng;
pub mod sched;
pub mod selection;
pub mod store;
pub mod subpop;
pub mod telemetry;

pub use checkpoint::Checkpoint;
pub use config::{GaConfig, Scheme};
pub use engine::{GaEngine, GaRun, RunResult, StepOutcome, StoreAttachment};
pub use evaluator::{CachingEvaluator, CountingEvaluator, Evaluator, StatsEvaluator};
// Re-exported so scratch-aware backends (ld-parallel workers, ld-net slave
// loops) can hold per-worker workspaces without depending on ld-stats.
pub use experiment::{ExperimentSummary, SizeSummary};
pub use individual::Haplotype;
pub use init::InitStrategy;
pub use ld_stats::{EvalScratch, KernelPath, ScratchPool};
pub use population::MultiPopulation;
pub use sched::{
    EvalBackend, EvalBackendError, EvalService, EvaluatorBackend, FaultEvents, FeasibilityFilter,
    SchedStats, ShardedCache, WeightedFairQueue,
};
pub use selection::SelectionStrategy;
pub use store::{
    CacheEntry, CacheShardSnapshot, CacheSnapshot, FitnessStore, InsertOutcome, SnpSetKey,
    StoreHit, StoreRecovery, StoredFitness,
};
pub use subpop::SubPopulation;
