//! The GA engine: Figure 5's loop.
//!
//! ```text
//! Initialization → // Evaluation
//!   ┌─ Selection → Crossover (choice: intra / inter, adaptive)
//!   │      → Mutation (choice: SNP / reduction / augmentation, adaptive)
//!   │      → Replacement → Random-Immigrant test → Termination test ─┐
//!   └──────────────────────────────────────────────────────────────◄─┘
//! ```
//!
//! Each generation evaluates offspring in *batches* through the
//! [`Evaluator`] trait: one batch of crossover children, one batch of
//! mutation candidates, and (when triggered) one batch of random
//! immigrants. Those batch boundaries are the synchronous master/slave
//! evaluation phases of the paper's Figure 6 — plugging in
//! `ld-parallel`'s evaluator parallelizes them without touching this file.
//!
//! Two driving styles:
//!
//! * [`GaEngine::run`] — the paper's closed loop: generations until the
//!   best has not evolved for `stagnation_limit` generations.
//! * [`GaRun`] — a stepping handle: [`GaRun::step`] executes one
//!   generation and [`GaRun::inject`] inserts externally produced
//!   individuals (island-model migrants) mid-run; this is what
//!   `ld-parallel`'s ring-migration islands build on.

use crate::adaptive::AdaptiveRates;
use crate::config::GaConfig;
use crate::evaluator::Evaluator;
use crate::immigrants::replace_below_mean;
use crate::individual::Haplotype;
use crate::ops::crossover::{inter_crossover, uniform_crossover, CrossoverKind};
use crate::ops::mutation::{apply_mutation, MutationKind};
use crate::population::MultiPopulation;
use crate::rng::random_haplotype;
use ld_data::SnpId;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::ops::Range;
use std::sync::Arc;

/// Optional feasibility predicate applied to every candidate before it is
/// evaluated (the §2.3 LD / frequency constraints).
pub type FeasibilityFilter = Arc<dyn Fn(&[SnpId]) -> bool + Send + Sync>;

/// Telemetry for one generation.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct GenerationStats {
    /// Generation number (1-based).
    pub generation: usize,
    /// Cumulative evaluations after this generation.
    pub evaluations: u64,
    /// Best fitness per size (ascending sizes; `NAN` for empty subpops).
    pub best_per_size: Vec<f64>,
    /// Mutation-operator rates after adaptation.
    pub mutation_rates: Vec<f64>,
    /// Crossover-operator rates after adaptation.
    pub crossover_rates: Vec<f64>,
    /// Immigrants introduced this generation.
    pub immigrants: usize,
}

/// Result of one GA run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Smallest managed haplotype size.
    pub min_size: usize,
    /// Best individual found per size (ascending sizes).
    pub best_per_size: Vec<Option<Haplotype>>,
    /// Cumulative evaluation count at which each size's best was reached —
    /// the paper's "# of Eval." metric.
    pub evals_to_best: Vec<u64>,
    /// Total evaluations performed.
    pub total_evaluations: u64,
    /// Generations executed.
    pub generations: usize,
    /// Per-generation telemetry.
    pub history: Vec<GenerationStats>,
    /// Seed the run used.
    pub seed: u64,
}

impl RunResult {
    /// Best individual of haplotype size `k`, if that size was managed and
    /// populated.
    pub fn best_of_size(&self, k: usize) -> Option<&Haplotype> {
        k.checked_sub(self.min_size)
            .and_then(|i| self.best_per_size.get(i))
            .and_then(|o| o.as_ref())
    }

    /// Evaluations needed to reach the best of size `k`.
    pub fn evals_to_best_of_size(&self, k: usize) -> Option<u64> {
        k.checked_sub(self.min_size)
            .and_then(|i| self.evals_to_best.get(i))
            .copied()
            .filter(|_| self.best_of_size(k).is_some())
    }
}

/// What a [`GaRun::step`] call observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Some subpopulation's best improved this generation.
    Improved,
    /// No improvement, but the stagnation criterion is not yet met.
    Stagnating,
    /// The §4.6 termination criterion is met (best unchanged for
    /// `stagnation_limit` generations). Stepping further is allowed —
    /// injected migrants may revive the search.
    StagnationLimitReached,
    /// The hard generation cap was reached; further steps are no-ops.
    GenerationCapReached,
}

/// One crossover application awaiting its progress measurement.
struct MatingRecord {
    kind: CrossoverKind,
    /// Normalized fitness of the reference parent for each child (for
    /// intra: the parents' mean, same for both children; for inter: each
    /// child's same-size parent).
    parent_norms: (f64, f64),
    /// Indices of the two children in the generation's child list.
    children: (usize, usize),
    /// Sizes of the two children (normalization needs them).
    sizes: (usize, usize),
}

/// One mutation application awaiting candidate selection.
struct MutationRecord {
    kind: MutationKind,
    /// Index of the mutated child.
    child: usize,
    /// Candidate range in the generation's candidate list.
    candidates: Range<usize>,
}

/// A live, steppable GA run.
///
/// Construction initializes and evaluates the multi-population; each
/// [`GaRun::step`] then executes one full Figure-5 generation. External
/// individuals (e.g. migrants from another island) can be inserted at any
/// point with [`GaRun::inject`].
pub struct GaRun<'e, E: Evaluator> {
    evaluator: &'e E,
    cfg: GaConfig,
    rng: ChaCha8Rng,
    seed: u64,
    feasibility: Option<FeasibilityFilter>,
    pop: MultiPopulation,
    total_evals: u64,
    best_per_size: Vec<Option<Haplotype>>,
    evals_to_best: Vec<u64>,
    mutation_rates: AdaptiveRates,
    crossover_rates: AdaptiveRates,
    stagnation: usize,
    ri_counter: usize,
    history: Vec<GenerationStats>,
    generation: usize,
}

impl<'e, E: Evaluator> GaRun<'e, E> {
    /// Initialize a run: validate the configuration, build the sized
    /// subpopulations, fill them with random feasible individuals, and
    /// evaluate the initial population (one batch per size).
    pub fn new(
        evaluator: &'e E,
        config: GaConfig,
        seed: u64,
        feasibility: Option<FeasibilityFilter>,
    ) -> Result<Self, String> {
        config.validate(evaluator.n_snps())?;
        let n_snps = evaluator.n_snps();
        let n_sizes = config.max_size - config.min_size + 1;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pop =
            MultiPopulation::new(n_snps, config.min_size, config.max_size, config.population_size);
        let mut total_evals: u64 = 0;

        let feasible = |f: &Option<FeasibilityFilter>, snps: &[SnpId]| {
            f.as_ref().is_none_or(|f| f(snps))
        };
        // Warm start: rank SNPs by single-marker fitness once (costs
        // n_snps evaluations) when the init strategy asks for it.
        let (seed_pool, seeded_fraction) = match config.init {
            crate::init::InitStrategy::Random => (Vec::new(), 0.0),
            crate::init::InitStrategy::SingleMarkerSeeded {
                seeded_fraction,
                pool_size,
            } => {
                let (mut ranked, cost) = crate::init::rank_single_markers(evaluator);
                total_evals += cost;
                ranked.truncate(pool_size);
                (ranked, seeded_fraction)
            }
        };
        for size in config.min_size..=config.max_size {
            let capacity = pop.get(size).expect("managed size").capacity();
            let n_seeded = (capacity as f64 * seeded_fraction).round() as usize;
            let mut initial: Vec<Haplotype> = Vec::with_capacity(capacity);
            let mut attempts = 0usize;
            while initial.len() < capacity && attempts < capacity * 100 {
                attempts += 1;
                let h = if initial.len() < n_seeded {
                    crate::init::seeded_haplotype(&mut rng, &seed_pool, n_snps, size)
                } else {
                    random_haplotype(&mut rng, n_snps, size)
                };
                if feasible(&feasibility, h.snps())
                    && !initial.iter().any(|x| x.key() == h.key())
                {
                    initial.push(h);
                }
            }
            total_evals += initial.len() as u64;
            evaluator.evaluate_batch(&mut initial);
            let subpop = pop.get_mut(size).expect("managed size");
            for h in initial {
                subpop.try_insert(h);
            }
        }

        let best_per_size: Vec<Option<Haplotype>> =
            pop.bests().into_iter().map(|b| b.cloned()).collect();
        let mutation_rates = AdaptiveRates::new(
            3,
            config.mutation_rate,
            config.delta,
            config.scheme.adaptive_mutation,
        );
        let crossover_rates = AdaptiveRates::new(
            2,
            config.crossover_rate,
            config.delta,
            config.scheme.adaptive_crossover,
        );
        Ok(GaRun {
            evaluator,
            evals_to_best: vec![total_evals; n_sizes],
            cfg: config,
            rng,
            seed,
            feasibility,
            pop,
            total_evals,
            best_per_size,
            mutation_rates,
            crossover_rates,
            stagnation: 0,
            ri_counter: 0,
            history: Vec::new(),
            generation: 0,
        })
    }

    /// Rebuild a run from previously captured parts (checkpoint restore;
    /// see [`crate::checkpoint`]). Crate-visible so the checkpoint module
    /// owns the validation logic.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        evaluator: &'e E,
        cfg: GaConfig,
        rng: ChaCha8Rng,
        seed: u64,
        feasibility: Option<FeasibilityFilter>,
        pop: MultiPopulation,
        total_evals: u64,
        best_per_size: Vec<Option<Haplotype>>,
        evals_to_best: Vec<u64>,
        mutation_rates: AdaptiveRates,
        crossover_rates: AdaptiveRates,
        stagnation: usize,
        ri_counter: usize,
        history: Vec<GenerationStats>,
        generation: usize,
    ) -> Self {
        GaRun {
            evaluator,
            cfg,
            rng,
            seed,
            feasibility,
            pop,
            total_evals,
            best_per_size,
            evals_to_best,
            mutation_rates,
            crossover_rates,
            stagnation,
            ri_counter,
            history,
            generation,
        }
    }

    fn feasible(&self, snps: &[SnpId]) -> bool {
        self.feasibility.as_ref().is_none_or(|f| f(snps))
    }

    /// The live multi-population (read-only).
    pub fn population(&self) -> &MultiPopulation {
        &self.pop
    }

    /// The configuration driving this run.
    pub fn cfg(&self) -> &GaConfig {
        &self.cfg
    }

    /// The seed the run was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The live PRNG state (checkpointing).
    pub fn rng_state(&self) -> &ChaCha8Rng {
        &self.rng
    }

    /// Evaluations at which each size's best was reached.
    pub fn evals_to_best(&self) -> &[u64] {
        &self.evals_to_best
    }

    /// Generations since the last improvement, as seen by the
    /// random-immigrant trigger.
    pub fn ri_counter(&self) -> usize {
        self.ri_counter
    }

    /// The mutation-rate controller (read-only).
    pub fn mutation_rates(&self) -> &AdaptiveRates {
        &self.mutation_rates
    }

    /// The crossover-rate controller (read-only).
    pub fn crossover_rates(&self) -> &AdaptiveRates {
        &self.crossover_rates
    }

    /// Per-generation telemetry so far.
    pub fn history(&self) -> &[GenerationStats] {
        &self.history
    }

    /// Generations executed so far.
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Total evaluations spent so far.
    pub fn total_evaluations(&self) -> u64 {
        self.total_evals
    }

    /// Consecutive generations without improvement.
    pub fn stagnation(&self) -> usize {
        self.stagnation
    }

    /// Whether the §4.6 stagnation criterion is currently met.
    pub fn is_stagnated(&self) -> bool {
        self.stagnation >= self.cfg.stagnation_limit
    }

    /// Best individual per size so far (clones).
    pub fn champions(&self) -> Vec<Option<Haplotype>> {
        self.best_per_size.clone()
    }

    /// Insert externally produced individuals (island migrants). They are
    /// feasibility-filtered and evaluated (one batch) if needed, then go
    /// through the normal §4.6 replacement rule. Improvements reset the
    /// stagnation counters exactly like native offspring.
    pub fn inject(&mut self, migrants: Vec<Haplotype>) {
        let mut migrants: Vec<Haplotype> = migrants
            .into_iter()
            .filter(|h| self.feasible(h.snps()))
            .collect();
        self.total_evals += evaluate_unevaluated(self.evaluator, &mut migrants);
        for h in migrants {
            self.pop.try_insert(h);
        }
        if self.track_improvements() {
            self.stagnation = 0;
            self.ri_counter = 0;
        }
    }

    /// Execute one generation. See the module docs for the phase order.
    pub fn step(&mut self) -> StepOutcome {
        if self.generation >= self.cfg.max_generations {
            return StepOutcome::GenerationCapReached;
        }
        self.generation += 1;
        let n_snps = self.evaluator.n_snps();
        let n_sizes = self.cfg.max_size - self.cfg.min_size + 1;
        let norms = self.pop.normalizer_snapshot();

        // ------ Phase A: selection + crossover ------
        let mut children: Vec<Haplotype> = Vec::new();
        let mut matings: Vec<MatingRecord> = Vec::new();
        for _ in 0..self.cfg.matings_per_generation {
            if !self.crossover_rates.fires(&mut self.rng) {
                // No crossover: a selected parent passes through (it may
                // still be mutated in phase B). Fitness is preserved, so no
                // re-evaluation is needed.
                if let Some(parent) = self.select_any_parent() {
                    children.push(parent);
                }
                continue;
            }
            let kind = if self.cfg.scheme.inter_crossover && n_sizes >= 2 {
                match self.crossover_rates.select(&mut self.rng) {
                    0 => CrossoverKind::Intra,
                    _ => CrossoverKind::Inter,
                }
            } else {
                CrossoverKind::Intra
            };
            match kind {
                CrossoverKind::Intra => {
                    let Some((p1, p2)) = self.select_intra_parents() else {
                        continue;
                    };
                    let (c1, c2) = uniform_crossover(&p1, &p2, n_snps, &mut self.rng);
                    let parent_mean = (norms.normalized(p1.size(), p1.fitness())
                        + norms.normalized(p2.size(), p2.fitness()))
                        / 2.0;
                    push_children(
                        &mut children,
                        &mut matings,
                        kind,
                        (parent_mean, parent_mean),
                        c1,
                        c2,
                    );
                }
                CrossoverKind::Inter => {
                    let Some((p1, p2)) = self.select_inter_parents() else {
                        continue;
                    };
                    let (c1, c2) = inter_crossover(&p1, &p2, n_snps, &mut self.rng);
                    // §4.3.2: for inter-population crossover each child is
                    // compared with its parent of the same size (c1 aligns
                    // with p1, c2 with p2).
                    let n1 = norms.normalized(p1.size(), p1.fitness());
                    let n2 = norms.normalized(p2.size(), p2.fitness());
                    push_children(&mut children, &mut matings, kind, (n1, n2), c1, c2);
                }
            }
        }

        // Evaluate the unevaluated children (one synchronous batch).
        self.total_evals += evaluate_unevaluated(self.evaluator, &mut children);

        // Crossover progress (§4.3.2): average improvement of children over
        // their reference parents.
        for m in &matings {
            let c1 = &children[m.children.0];
            let c2 = &children[m.children.1];
            let prog = ((norms.normalized(m.sizes.0, c1.fitness()) - m.parent_norms.0)
                + (norms.normalized(m.sizes.1, c2.fitness()) - m.parent_norms.1))
                / 2.0;
            self.crossover_rates.record(m.kind.index(), prog);
        }

        // ------ Phase B: mutation ------
        let mut candidates: Vec<Haplotype> = Vec::new();
        let mut mut_records: Vec<MutationRecord> = Vec::new();
        for (i, child) in children.iter().enumerate() {
            if !self.mutation_rates.fires(&mut self.rng) {
                continue;
            }
            let kind = if self.cfg.scheme.size_mutations {
                MutationKind::from_index(self.mutation_rates.select(&mut self.rng))
                    .expect("3 mutation operators")
            } else {
                MutationKind::Snp
            };
            let tries = if kind == MutationKind::Snp {
                self.cfg.snp_mutation_tries
            } else {
                1
            };
            let mut cands = apply_mutation(
                kind,
                child,
                n_snps,
                self.cfg.min_size,
                self.cfg.max_size,
                tries,
                &mut self.rng,
            );
            let feasibility = self.feasibility.clone();
            cands.retain(|h| feasibility.as_ref().is_none_or(|f| f(h.snps())));
            if cands.is_empty() {
                continue;
            }
            let start = candidates.len();
            candidates.extend(cands);
            mut_records.push(MutationRecord {
                kind,
                child: i,
                candidates: start..candidates.len(),
            });
        }
        self.total_evals += candidates.len() as u64;
        self.evaluator.evaluate_batch(&mut candidates);

        // "Keep the best individual found by this mutation": the best
        // candidate becomes the mutated child; progress is measured against
        // the pre-mutation child on normalized fitness.
        for rec in &mut_records {
            let best = candidates[rec.candidates.clone()]
                .iter()
                .max_by(|a, b| a.fitness().total_cmp(&b.fitness()))
                .expect("non-empty candidate range")
                .clone();
            let before = &children[rec.child];
            let prog = norms.normalized(best.size(), best.fitness())
                - norms.normalized(before.size(), before.fitness());
            self.mutation_rates.record(rec.kind.index(), prog);
            children[rec.child] = best;
        }

        // ------ Replacement (§4.6) ------
        for child in children {
            self.pop.try_insert(child);
        }

        self.mutation_rates.end_generation();
        self.crossover_rates.end_generation();

        // ------ Improvement tracking ------
        let improved = self.track_improvements();
        if improved {
            self.stagnation = 0;
            self.ri_counter = 0;
        } else {
            self.stagnation += 1;
            self.ri_counter += 1;
        }

        // ------ Random immigrants (§4.4) ------
        let mut n_immigrants = 0usize;
        if self.cfg.scheme.random_immigrants && self.ri_counter >= self.cfg.ri_stagnation {
            let mut immigrants: Vec<Haplotype> = Vec::new();
            let feasibility = self.feasibility.clone();
            for subpop in self.pop.iter_mut() {
                let mut imms = replace_below_mean(subpop, n_snps, &mut self.rng);
                imms.retain(|h| feasibility.as_ref().is_none_or(|f| f(h.snps())));
                immigrants.extend(imms);
            }
            n_immigrants = immigrants.len();
            self.total_evals += immigrants.len() as u64;
            self.evaluator.evaluate_batch(&mut immigrants);
            for h in immigrants {
                self.pop.try_insert(h);
            }
            self.ri_counter = 0;
        }

        self.history.push(GenerationStats {
            generation: self.generation,
            evaluations: self.total_evals,
            best_per_size: self
                .pop
                .bests()
                .into_iter()
                .map(|b| b.map_or(f64::NAN, |h| h.fitness()))
                .collect(),
            mutation_rates: self.mutation_rates.rates().to_vec(),
            crossover_rates: self.crossover_rates.rates().to_vec(),
            immigrants: n_immigrants,
        });

        if improved {
            StepOutcome::Improved
        } else if self.is_stagnated() {
            StepOutcome::StagnationLimitReached
        } else {
            StepOutcome::Stagnating
        }
    }

    /// Update the per-size champions from the live population; returns
    /// whether any size improved.
    fn track_improvements(&mut self) -> bool {
        let mut improved = false;
        for (idx, best) in self.pop.bests().into_iter().enumerate() {
            let Some(best) = best else { continue };
            let record = &mut self.best_per_size[idx];
            let is_better = record
                .as_ref()
                .is_none_or(|prev| best.fitness() > prev.fitness());
            if is_better {
                *record = Some(best.clone());
                self.evals_to_best[idx] = self.total_evals;
                improved = true;
            }
        }
        improved
    }

    /// Snapshot the run into a [`RunResult`].
    pub fn result(&self) -> RunResult {
        RunResult {
            min_size: self.cfg.min_size,
            best_per_size: self.best_per_size.clone(),
            evals_to_best: self.evals_to_best.clone(),
            total_evaluations: self.total_evals,
            generations: self.generation,
            history: self.history.clone(),
            seed: self.seed,
        }
    }

    /// Finish the run, consuming the handle.
    pub fn finish(self) -> RunResult {
        RunResult {
            min_size: self.cfg.min_size,
            best_per_size: self.best_per_size,
            evals_to_best: self.evals_to_best,
            total_evaluations: self.total_evals,
            generations: self.generation,
            history: self.history,
            seed: self.seed,
        }
    }

    /// Pick any parent, from a subpopulation chosen by membership weight.
    fn select_any_parent(&mut self) -> Option<Haplotype> {
        let sizes: Vec<(usize, usize)> = self
            .pop
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| (p.size_k(), p.len()))
            .collect();
        let total: usize = sizes.iter().map(|(_, l)| l).sum();
        if total == 0 {
            return None;
        }
        let mut u = self.rng.random_range(0..total);
        for (size, len) in sizes {
            if u < len {
                let idx = self.cfg.selection.select(&mut self.rng, len, None);
                return Some(
                    self.pop.get(size).expect("managed size").individuals()[idx].clone(),
                );
            }
            u -= len;
        }
        None
    }

    /// Two (preferably distinct) same-size parents.
    fn select_intra_parents(&mut self) -> Option<(Haplotype, Haplotype)> {
        let sizes: Vec<(usize, usize)> = self
            .pop
            .iter()
            .filter(|p| p.len() >= 2)
            .map(|p| (p.size_k(), p.len()))
            .collect();
        let total: usize = sizes.iter().map(|(_, l)| l).sum();
        if total == 0 {
            return None;
        }
        let mut u = self.rng.random_range(0..total);
        for (size, len) in sizes {
            if u < len {
                let i1 = self.cfg.selection.select(&mut self.rng, len, None);
                let i2 = self.cfg.selection.select(&mut self.rng, len, Some(i1));
                let subpop = self.pop.get(size).expect("managed size");
                return Some((
                    subpop.individuals()[i1].clone(),
                    subpop.individuals()[i2].clone(),
                ));
            }
            u -= len;
        }
        None
    }

    /// Two parents from two different size subpopulations.
    fn select_inter_parents(&mut self) -> Option<(Haplotype, Haplotype)> {
        let sizes: Vec<usize> = self
            .pop
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| p.size_k())
            .collect();
        if sizes.len() < 2 {
            return None;
        }
        let a = self.rng.random_range(0..sizes.len());
        let mut b = self.rng.random_range(0..sizes.len() - 1);
        if b >= a {
            b += 1;
        }
        let (size_a, size_b) = (sizes[a], sizes[b]);
        let n_a = self.pop.get(size_a).expect("managed").len();
        let n_b = self.pop.get(size_b).expect("managed").len();
        let i1 = self.cfg.selection.select(&mut self.rng, n_a, None);
        let i2 = self.cfg.selection.select(&mut self.rng, n_b, None);
        Some((
            self.pop.get(size_a).expect("managed").individuals()[i1].clone(),
            self.pop.get(size_b).expect("managed").individuals()[i2].clone(),
        ))
    }
}

fn push_children(
    children: &mut Vec<Haplotype>,
    matings: &mut Vec<MatingRecord>,
    kind: CrossoverKind,
    parent_norms: (f64, f64),
    c1: Haplotype,
    c2: Haplotype,
) {
    let i1 = children.len();
    let sizes = (c1.size(), c2.size());
    children.push(c1);
    children.push(c2);
    matings.push(MatingRecord {
        kind,
        parent_norms,
        children: (i1, i1 + 1),
        sizes,
    });
}

/// The dedicated adaptive multi-population GA — the paper's closed loop.
///
/// ```
/// use ld_core::{evaluator::FnEvaluator, GaConfig, GaEngine};
///
/// // A toy objective over 30 SNPs: bigger ids and bigger sets score higher.
/// let objective = FnEvaluator::new(30, |snps: &[usize]| {
///     snps.iter().map(|&s| s as f64).sum::<f64>() + 10.0 * snps.len() as f64
/// });
/// let config = GaConfig {
///     population_size: 60,
///     min_size: 2,
///     max_size: 4,
///     stagnation_limit: 25,
///     ..GaConfig::default()
/// };
/// let result = GaEngine::new(&objective, config, 42).unwrap().run();
/// // The engine finds the known optimum {28, 29} for size 2.
/// assert_eq!(result.best_of_size(2).unwrap().snps(), &[28, 29]);
/// ```
pub struct GaEngine<'e, E: Evaluator> {
    evaluator: &'e E,
    config: GaConfig,
    seed: u64,
    feasibility: Option<FeasibilityFilter>,
}

impl<'e, E: Evaluator> GaEngine<'e, E> {
    /// Build an engine; validates the configuration against the panel.
    pub fn new(evaluator: &'e E, config: GaConfig, seed: u64) -> Result<Self, String> {
        config.validate(evaluator.n_snps())?;
        Ok(GaEngine {
            evaluator,
            config,
            seed,
            feasibility: None,
        })
    }

    /// Restrict the search to haplotypes satisfying `filter` (§2.3
    /// constraints). Infeasible candidates are discarded unevaluated.
    pub fn with_feasibility(mut self, filter: FeasibilityFilter) -> Self {
        self.feasibility = Some(filter);
        self
    }

    /// Start a steppable run (island-model building block).
    pub fn start(&self) -> Result<GaRun<'e, E>, String> {
        GaRun::new(
            self.evaluator,
            self.config.clone(),
            self.seed,
            self.feasibility.clone(),
        )
    }

    /// Execute the full run: generations until stagnation (§4.6) or the
    /// hard cap.
    pub fn run(&mut self) -> RunResult {
        let mut run = self.start().expect("configuration validated in new()");
        loop {
            match run.step() {
                StepOutcome::StagnationLimitReached | StepOutcome::GenerationCapReached => break,
                StepOutcome::Improved | StepOutcome::Stagnating => {}
            }
        }
        run.finish()
    }
}

/// Evaluate only the unevaluated members of `batch` (clone pass-through
/// parents keep their fitness); returns the number of evaluations spent.
fn evaluate_unevaluated<E: Evaluator>(evaluator: &E, batch: &mut [Haplotype]) -> u64 {
    let idx: Vec<usize> = batch
        .iter()
        .enumerate()
        .filter(|(_, h)| !h.is_evaluated())
        .map(|(i, _)| i)
        .collect();
    if idx.is_empty() {
        return 0;
    }
    let mut pending: Vec<Haplotype> = idx
        .iter()
        .map(|&i| Haplotype::from_sorted(batch[i].snps().to_vec()))
        .collect();
    evaluator.evaluate_batch(&mut pending);
    for (&i, h) in idx.iter().zip(pending) {
        batch[i].set_fitness(h.fitness());
    }
    idx.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use crate::evaluator::{CountingEvaluator, FnEvaluator};

    /// Toy objective with a known optimum: fitness grows with SNP ids and
    /// size, so the best size-k haplotype is the top-k ids.
    fn toy() -> FnEvaluator<impl Fn(&[SnpId]) -> f64 + Send + Sync> {
        FnEvaluator::new(30, |s: &[SnpId]| {
            s.iter().map(|&x| x as f64).sum::<f64>() + 10.0 * s.len() as f64
        })
    }

    fn small_config() -> GaConfig {
        GaConfig {
            population_size: 60,
            min_size: 2,
            max_size: 4,
            matings_per_generation: 10,
            stagnation_limit: 25,
            ri_stagnation: 8,
            max_generations: 400,
            ..GaConfig::default()
        }
    }

    #[test]
    fn run_finds_toy_optima() {
        let eval = toy();
        let mut engine = GaEngine::new(&eval, small_config(), 42).unwrap();
        let result = engine.run();
        // Optimum of size k is the k largest SNP ids {30-k .. 29}.
        let best4 = result.best_of_size(4).expect("size-4 best");
        assert_eq!(best4.snps(), &[26, 27, 28, 29], "found {best4}");
        let best2 = result.best_of_size(2).expect("size-2 best");
        assert_eq!(best2.snps(), &[28, 29], "found {best2}");
        assert!(result.total_evaluations > 0);
        assert!(result.generations >= 25);
        assert_eq!(result.history.len(), result.generations);
    }

    #[test]
    fn runs_are_reproducible_by_seed() {
        let eval = toy();
        let r1 = GaEngine::new(&eval, small_config(), 7).unwrap().run();
        let r2 = GaEngine::new(&eval, small_config(), 7).unwrap().run();
        assert_eq!(r1.total_evaluations, r2.total_evaluations);
        assert_eq!(r1.generations, r2.generations);
        assert_eq!(
            r1.best_of_size(3).unwrap().snps(),
            r2.best_of_size(3).unwrap().snps()
        );
        let r3 = GaEngine::new(&eval, small_config(), 8).unwrap().run();
        // Different seed: almost surely a different trajectory.
        assert!(
            r1.total_evaluations != r3.total_evaluations
                || r1.generations != r3.generations
        );
    }

    #[test]
    fn eval_accounting_matches_counting_evaluator() {
        let eval = CountingEvaluator::new(toy());
        let result = GaEngine::new(&eval, small_config(), 3).unwrap().run();
        assert_eq!(result.total_evaluations, eval.count());
    }

    #[test]
    fn evals_to_best_is_monotone_in_history() {
        let eval = toy();
        let result = GaEngine::new(&eval, small_config(), 5).unwrap().run();
        for k in 2..=4 {
            let e = result.evals_to_best_of_size(k).unwrap();
            assert!(e <= result.total_evaluations);
            assert!(e > 0);
        }
        // History evaluations are non-decreasing.
        for w in result.history.windows(2) {
            assert!(w[0].evaluations <= w[1].evaluations);
        }
    }

    #[test]
    fn baseline_scheme_still_works() {
        let eval = toy();
        let cfg = GaConfig {
            scheme: Scheme::BASELINE,
            ..small_config()
        };
        let result = GaEngine::new(&eval, cfg, 11).unwrap().run();
        // Even the stripped-down GA should find the small-size optimum.
        let best2 = result.best_of_size(2).expect("size-2 best");
        assert!(best2.fitness() >= 65.0, "found {best2}");
        // No immigrants should ever be introduced.
        assert!(result.history.iter().all(|g| g.immigrants == 0));
    }

    #[test]
    fn random_immigrants_fire_under_stagnation() {
        // Flat objective: everything ties, so no improvement ever happens
        // and the run must terminate by stagnation without immigrants
        // (nothing is strictly below the mean).
        let eval = FnEvaluator::new(20, |_: &[SnpId]| 1.0);
        let cfg = GaConfig {
            population_size: 40,
            min_size: 2,
            max_size: 3,
            matings_per_generation: 5,
            stagnation_limit: 30,
            ri_stagnation: 5,
            max_generations: 100,
            ..GaConfig::default()
        };
        let result = GaEngine::new(&eval, cfg.clone(), 9).unwrap().run();
        assert_eq!(result.generations, 30);

        // Now a graded objective (fitness = leading SNP id): once the best
        // is found the run stagnates while fitness spread persists in each
        // subpopulation, so the immigrant replacement has targets.
        let eval = FnEvaluator::new(20, |s: &[SnpId]| s[0] as f64);
        let result = GaEngine::new(&eval, cfg, 9).unwrap().run();
        let total_immigrants: usize = result.history.iter().map(|g| g.immigrants).sum();
        assert!(total_immigrants > 0, "random immigrants never fired");
    }

    #[test]
    fn feasibility_filter_is_respected() {
        let eval = toy();
        // Forbid SNP 29 anywhere.
        let filter: FeasibilityFilter = Arc::new(|s: &[SnpId]| !s.contains(&29));
        let result = GaEngine::new(&eval, small_config(), 13)
            .unwrap()
            .with_feasibility(filter)
            .run();
        for k in 2..=4 {
            let best = result.best_of_size(k).unwrap();
            assert!(!best.contains(29), "infeasible best {best}");
        }
        // The constrained optimum of size 2 is {27, 28}.
        assert_eq!(result.best_of_size(2).unwrap().snps(), &[27, 28]);
    }

    #[test]
    fn engine_survives_pathological_objective() {
        // Failure injection: the objective returns NaN or infinity for a
        // slice of the space. The engine must neither panic nor stall, and
        // NaN-scored individuals must never enter the population.
        let eval = FnEvaluator::new(20, |s: &[SnpId]| match s[0] % 4 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => s.iter().sum::<usize>() as f64,
        });
        let cfg = GaConfig {
            population_size: 40,
            min_size: 2,
            max_size: 3,
            matings_per_generation: 6,
            stagnation_limit: 10,
            max_generations: 50,
            ..GaConfig::default()
        };
        let result = GaEngine::new(&eval, cfg, 23).unwrap().run();
        assert!(result.generations > 0);
        for k in 2..=3 {
            if let Some(best) = result.best_of_size(k) {
                assert!(!best.fitness().is_nan());
            }
        }
    }

    #[test]
    fn warm_start_initialization_works_and_costs_n_snps_extra() {
        use crate::init::InitStrategy;
        let eval = CountingEvaluator::new(toy());
        let cfg = GaConfig {
            init: InitStrategy::SingleMarkerSeeded {
                seeded_fraction: 0.5,
                pool_size: 10,
            },
            max_generations: 1,
            ..small_config()
        };
        let result = GaEngine::new(&eval, cfg, 3).unwrap().run();
        assert_eq!(result.total_evaluations, eval.count());
        // With fitness increasing in SNP id, the seeded half comes from the
        // top-10 ids {20..29}; the size-2 initial best must be near-optimal
        // immediately (the seeded pool contains the optimum {28, 29}).
        let best2 = result.best_of_size(2).unwrap();
        assert!(best2.fitness() >= 72.0, "seeded init missed: {best2}");
    }

    #[test]
    fn alternative_selection_strategies_work_end_to_end() {
        use crate::selection::SelectionStrategy;
        let eval = toy();
        for selection in [
            SelectionStrategy::Tournament(4),
            SelectionStrategy::RankRoulette,
            SelectionStrategy::Uniform,
        ] {
            let cfg = GaConfig {
                selection,
                ..small_config()
            };
            let result = GaEngine::new(&eval, cfg, 19).unwrap().run();
            let best2 = result.best_of_size(2).expect("size-2 best");
            // Even the drift baseline should do reasonably on this easy
            // landscape; pressured strategies should nail the optimum.
            assert!(
                best2.fitness() >= 60.0,
                "{selection:?} found only {best2}"
            );
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let eval = toy();
        let cfg = GaConfig {
            max_size: 40, // > 30 SNPs
            ..GaConfig::default()
        };
        assert!(GaEngine::new(&eval, cfg, 0).is_err());
    }

    #[test]
    fn adaptive_rates_appear_in_history() {
        let eval = toy();
        let result = GaEngine::new(&eval, small_config(), 21).unwrap().run();
        let g = result.history.last().unwrap();
        assert_eq!(g.mutation_rates.len(), 3);
        assert_eq!(g.crossover_rates.len(), 2);
        let msum: f64 = g.mutation_rates.iter().sum();
        let csum: f64 = g.crossover_rates.iter().sum();
        assert!((msum - 0.9).abs() < 1e-9);
        assert!((csum - 0.8).abs() < 1e-9);
    }

    #[test]
    fn single_size_range_disables_inter_crossover() {
        let eval = toy();
        let cfg = GaConfig {
            min_size: 3,
            max_size: 3,
            population_size: 30,
            matings_per_generation: 5,
            stagnation_limit: 15,
            max_generations: 200,
            ..GaConfig::default()
        };
        let result = GaEngine::new(&eval, cfg, 17).unwrap().run();
        let best = result.best_of_size(3).expect("size-3 best");
        assert_eq!(best.snps(), &[27, 28, 29]);
        assert!(result.best_of_size(2).is_none());
        assert!(result.best_of_size(4).is_none());
    }

    // ------ stepping API ------

    #[test]
    fn stepping_matches_closed_loop() {
        let eval = toy();
        let closed = GaEngine::new(&eval, small_config(), 31).unwrap().run();
        let engine = GaEngine::new(&eval, small_config(), 31).unwrap();
        let mut run = engine.start().unwrap();
        loop {
            match run.step() {
                StepOutcome::StagnationLimitReached | StepOutcome::GenerationCapReached => break,
                _ => {}
            }
        }
        let stepped = run.finish();
        assert_eq!(closed.total_evaluations, stepped.total_evaluations);
        assert_eq!(closed.generations, stepped.generations);
        assert_eq!(
            closed.best_of_size(4).unwrap().snps(),
            stepped.best_of_size(4).unwrap().snps()
        );
    }

    #[test]
    fn step_outcomes_and_accessors_are_coherent() {
        let eval = toy();
        let engine = GaEngine::new(&eval, small_config(), 4).unwrap();
        let mut run = engine.start().unwrap();
        assert_eq!(run.generation(), 0);
        assert!(run.total_evaluations() > 0, "init population evaluated");
        let outcome = run.step();
        assert_eq!(run.generation(), 1);
        assert!(matches!(
            outcome,
            StepOutcome::Improved | StepOutcome::Stagnating
        ));
        // result() snapshots without consuming.
        let snap = run.result();
        assert_eq!(snap.generations, 1);
        let _ = run.step();
        assert_eq!(run.result().generations, 2);
        assert!(!run.population().is_empty());
        assert_eq!(run.champions().len(), 3);
    }

    #[test]
    fn injection_revives_a_stagnated_run() {
        // An objective the GA cannot climb alone: only one specific
        // haplotype scores high, everything else is flat.
        let eval = FnEvaluator::new(20, |s: &[SnpId]| {
            if s == [5, 6] {
                100.0
            } else {
                1.0
            }
        });
        let cfg = GaConfig {
            population_size: 24,
            min_size: 2,
            max_size: 2,
            matings_per_generation: 4,
            stagnation_limit: 5,
            ri_stagnation: 3,
            max_generations: 100,
            scheme: Scheme::BASELINE,
            ..GaConfig::default()
        };
        let engine = GaEngine::new(&eval, cfg, 2).unwrap();
        let mut run = engine.start().unwrap();
        // Step until stagnated (the needle is 1 of C(20,2)=190 subsets; the
        // flat landscape gives no gradient).
        while !run.is_stagnated() {
            let _ = run.step();
        }
        let before = run.champions()[0].clone().unwrap().fitness();
        // Inject the needle as a migrant.
        run.inject(vec![Haplotype::new(vec![5, 6])]);
        assert_eq!(run.stagnation(), 0, "injection improvement resets stagnation");
        let after = run.champions()[0].clone().unwrap();
        assert_eq!(after.snps(), &[5, 6]);
        assert!(after.fitness() > before);
    }

    #[test]
    fn injection_respects_feasibility_and_dedup() {
        let eval = toy();
        let filter: FeasibilityFilter = Arc::new(|s: &[SnpId]| !s.contains(&29));
        let engine = GaEngine::new(&eval, small_config(), 6)
            .unwrap()
            .with_feasibility(filter);
        let mut run = engine.start().unwrap();
        let evals_before = run.total_evaluations();
        // Infeasible migrant: filtered before evaluation.
        run.inject(vec![Haplotype::new(vec![28, 29])]);
        assert_eq!(run.total_evaluations(), evals_before);
        for sub in run.population().iter() {
            assert!(sub.individuals().iter().all(|h| !h.contains(29)));
        }
        // Pre-evaluated migrant costs nothing either.
        let mut h = Haplotype::new(vec![1, 2]);
        h.set_fitness(33.0);
        run.inject(vec![h]);
        assert_eq!(run.total_evaluations(), evals_before);
    }

    #[test]
    fn generation_cap_makes_step_a_noop() {
        let eval = toy();
        let cfg = GaConfig {
            max_generations: 3,
            ..small_config()
        };
        let engine = GaEngine::new(&eval, cfg, 8).unwrap();
        let mut run = engine.start().unwrap();
        for _ in 0..3 {
            let _ = run.step();
        }
        let evals = run.total_evaluations();
        assert_eq!(run.step(), StepOutcome::GenerationCapReached);
        assert_eq!(run.generation(), 3);
        assert_eq!(run.total_evaluations(), evals);
    }
}
